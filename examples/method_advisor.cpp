// method_advisor: Section 5 of the paper as a tool. Describe the platform
// you must measure from; get the recommended measurement method, browser,
// and the list of accuracy traps to avoid - each backed by a quick
// calibration experiment run on the simulated testbed.
//
//   $ method_advisor [--os windows|ubuntu] [--no-plugins] [--no-websocket]
//                    [--no-nanotime] [--calibrate]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/appraisal.h"
#include "core/experiment.h"
#include "report/table.h"

using namespace bnm;
using T = report::TextTable;

int main(int argc, char** argv) {
  core::Platform platform;
  bool calibrate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--os" && i + 1 < argc) {
      platform.os = std::string{argv[++i]} == "windows"
                        ? browser::OsId::kWindows7
                        : browser::OsId::kUbuntu;
    } else if (arg == "--no-plugins") {
      platform.plugins_available = false;
    } else if (arg == "--no-websocket") {
      platform.websocket_available = false;
    } else if (arg == "--no-nanotime") {
      platform.can_use_nanotime = false;
    } else if (arg == "--calibrate") {
      calibrate = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--os windows|ubuntu] [--no-plugins] "
                   "[--no-websocket] [--no-nanotime] [--calibrate]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("platform: %s, plugins=%s, websocket=%s, nanotime=%s\n\n",
              browser::os_name(platform.os),
              platform.plugins_available ? "yes" : "no",
              platform.websocket_available ? "yes" : "no",
              platform.can_use_nanotime ? "yes" : "no");

  const auto rec = core::recommend(platform);
  std::printf("RECOMMENDED METHOD : %s\n", probe_kind_name(rec.method));
  std::printf("PREFERRED BROWSER  : %s\n",
              browser::browser_name(rec.preferred_browser));
  std::printf("WHY                : %s\n\n", rec.rationale.c_str());
  std::printf("accuracy traps to avoid:\n");
  for (const auto& c : rec.cautions) {
    std::printf("  * %s\n", c.c_str());
  }

  if (!calibrate) {
    std::printf("\n(run with --calibrate to verify the recommendation "
                "against the simulated testbed)\n");
    return 0;
  }

  std::printf("\n-- calibration: overhead of each candidate on this platform --\n");
  report::TextTable table(
      {"method", "median overhead (ms)", "IQR (ms)", "verdict"});
  const methods::ProbeKind candidates[] = {
      methods::ProbeKind::kJavaSocket, methods::ProbeKind::kWebSocket,
      methods::ProbeKind::kDom, methods::ProbeKind::kXhrGet,
      methods::ProbeKind::kFlashGet};
  for (const auto kind : candidates) {
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.browser = rec.preferred_browser;
    cfg.os = platform.os;
    cfg.runs = 30;
    cfg.java_use_nanotime = platform.can_use_nanotime;
    const auto series = core::run_experiment(cfg);
    if (series.samples.empty()) {
      table.add_row({probe_kind_name(kind), "n/a", "n/a",
                     series.first_error});
      continue;
    }
    const auto box = series.d2_box();
    const char* verdict = std::abs(box.median) < 1.0   ? "excellent"
                          : std::abs(box.median) < 5.0 ? "usable"
                                                       : "avoid";
    table.add_row({probe_kind_name(kind), T::fmt(box.median, 2),
                   T::fmt(box.iqr(), 2), verdict});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
