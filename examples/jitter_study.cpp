// jitter_study: quantifies the paper's warning that unstable delay
// overheads corrupt *jitter* measurements, not just RTTs (Section 2.2).
//
// For each measurement method on one platform, compares the jitter a
// browser-based tool would report against the packet-level truth, then
// sweeps artificial event-loop load to show the effect growing.
//
//   $ jitter_study [browser] [os]
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "core/knockon.h"
#include "report/table.h"

using namespace bnm;
using T = report::TextTable;

namespace {

browser::BrowserId parse_browser(const std::string& s) {
  using B = browser::BrowserId;
  if (s == "firefox") return B::kFirefox;
  if (s == "ie") return B::kIe;
  if (s == "opera") return B::kOpera;
  if (s == "safari") return B::kSafari;
  return B::kChrome;
}

}  // namespace

int main(int argc, char** argv) {
  browser::BrowserId b = browser::BrowserId::kChrome;
  browser::OsId os = browser::OsId::kWindows7;
  if (argc > 1) b = parse_browser(argv[1]);
  if (argc > 2 && std::string{argv[2]} == "ubuntu") {
    os = browser::OsId::kUbuntu;
  }
  if (!browser::case_supported(b, os)) {
    std::fprintf(stderr, "unsupported browser/OS pair (Table 2)\n");
    return 2;
  }

  std::printf("=== jitter study: %s on %s ===\n", browser::browser_name(b),
              browser::os_name(os));
  std::printf("jitter = mean |RTT_i - RTT_(i-1)| over consecutive probes "
              "(RFC 3550 style)\n\n");

  report::TextTable table({"method", "reported jitter (ms)",
                           "true jitter (ms)", "inflation"});
  const methods::ProbeKind kinds[] = {
      methods::ProbeKind::kWebSocket,  methods::ProbeKind::kJavaSocket,
      methods::ProbeKind::kFlashSocket, methods::ProbeKind::kDom,
      methods::ProbeKind::kXhrGet,     methods::ProbeKind::kFlashGet};
  for (const auto kind : kinds) {
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.browser = b;
    cfg.os = os;
    cfg.runs = 40;
    const auto series = core::run_experiment(cfg);
    if (series.samples.empty()) {
      table.add_row({probe_kind_name(kind), "n/a", "n/a",
                     series.first_error});
      continue;
    }
    const auto j = core::jitter_report(series);
    table.add_row({probe_kind_name(kind), T::fmt(j.browser_jitter_ms, 3),
                   T::fmt(j.net_jitter_ms, 3),
                   T::fmt(j.inflation(), 1) + "x"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("-- sensitivity: Java socket jitter vs timing function --\n");
  report::TextTable sens({"timing function", "reported jitter (ms)"});
  for (const bool nano : {false, true}) {
    core::ExperimentConfig cfg;
    cfg.kind = methods::ProbeKind::kJavaSocket;
    cfg.browser = b;
    cfg.os = os;
    cfg.runs = 40;
    cfg.java_use_nanotime = nano;
    const auto series = core::run_experiment(cfg);
    const auto j = core::jitter_report(series);
    sens.add_row({nano ? "System.nanoTime()" : "Date.getTime()",
                  T::fmt(j.browser_jitter_ms, 3)});
  }
  std::printf("%s\n", sens.render().c_str());
  std::printf(
      "takeaway: on Windows, Date.getTime() quantization turns a ~0 ms\n"
      "jitter path into a multi-ms one; socket methods + nanoTime keep the\n"
      "jitter estimate honest.\n");
  return 0;
}
