// Quickstart: measure the delay overhead of one browser-based RTT
// measurement method on the simulated Figure-2 testbed.
//
//   $ quickstart [method] [browser] [os] [runs]
//   $ quickstart websocket chrome ubuntu 50
//
// Prints the Δd1/Δd2 box statistics for the chosen case - the building
// block behind every figure in the paper.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.h"
#include "report/table.h"

namespace {

using namespace bnm;

methods::ProbeKind parse_method(const std::string& s) {
  using K = methods::ProbeKind;
  if (s == "xhr_get") return K::kXhrGet;
  if (s == "xhr_post") return K::kXhrPost;
  if (s == "dom") return K::kDom;
  if (s == "flash_get") return K::kFlashGet;
  if (s == "flash_post") return K::kFlashPost;
  if (s == "flash_socket") return K::kFlashSocket;
  if (s == "java_get") return K::kJavaGet;
  if (s == "java_post") return K::kJavaPost;
  if (s == "java_socket") return K::kJavaSocket;
  if (s == "java_udp") return K::kJavaUdp;
  if (s == "websocket") return K::kWebSocket;
  std::fprintf(stderr, "unknown method '%s'\n", s.c_str());
  std::exit(2);
}

browser::BrowserId parse_browser(const std::string& s) {
  using B = browser::BrowserId;
  if (s == "chrome") return B::kChrome;
  if (s == "firefox") return B::kFirefox;
  if (s == "ie") return B::kIe;
  if (s == "opera") return B::kOpera;
  if (s == "safari") return B::kSafari;
  std::fprintf(stderr, "unknown browser '%s'\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kWebSocket;
  cfg.browser = browser::BrowserId::kChrome;
  cfg.os = browser::OsId::kUbuntu;
  cfg.runs = 50;

  if (argc > 1) cfg.kind = parse_method(argv[1]);
  if (argc > 2) cfg.browser = parse_browser(argv[2]);
  if (argc > 3) {
    cfg.os = std::string{argv[3]} == "windows" ? browser::OsId::kWindows7
                                               : browser::OsId::kUbuntu;
  }
  if (argc > 4) cfg.runs = std::atoi(argv[4]);

  if (!browser::case_supported(cfg.browser, cfg.os)) {
    std::fprintf(stderr, "that browser/OS pair is outside the Table 2 matrix\n");
    return 2;
  }

  std::printf("bnm quickstart: %s on %s / %s, %d runs\n",
              probe_kind_name(cfg.kind), browser_name(cfg.browser),
              os_name(cfg.os), cfg.runs);
  std::printf("testbed: 100 Mbps switched Ethernet, +50 ms server delay, "
              "client-side packet capture\n\n");

  const core::OverheadSeries series = core::run_experiment(cfg);
  if (series.samples.empty()) {
    std::printf("no successful runs (%d failures: %s)\n", series.failures,
                series.first_error.c_str());
    return 1;
  }

  report::TextTable table({"metric", "delta-d1 (fresh object)",
                           "delta-d2 (object reused)"});
  const auto b1 = series.d1_box();
  const auto b2 = series.d2_box();
  using T = report::TextTable;
  table.add_row({"median (ms)", T::fmt(b1.median, 2), T::fmt(b2.median, 2)});
  table.add_row({"quartiles (ms)",
                 T::fmt(b1.q1, 2) + " .. " + T::fmt(b1.q3, 2),
                 T::fmt(b2.q1, 2) + " .. " + T::fmt(b2.q3, 2)});
  table.add_row({"whiskers (ms)",
                 T::fmt(b1.whisker_lo, 2) + " .. " + T::fmt(b1.whisker_hi, 2),
                 T::fmt(b2.whisker_lo, 2) + " .. " + T::fmt(b2.whisker_hi, 2)});
  table.add_row({"outliers", std::to_string(b1.outlier_count()),
                 std::to_string(b2.outlier_count())});
  const auto ci1 = series.d1_ci();
  const auto ci2 = series.d2_ci();
  table.add_row({"mean +- 95% CI (ms)", T::fmt_ci(ci1.mean, ci1.half_width),
                 T::fmt_ci(ci2.mean, ci2.half_width)});
  std::printf("%s", table.render().c_str());

  std::printf("\nsamples: %zu ok, %d failed\n", series.samples.size(),
              series.failures);
  std::printf("interpretation: delta-d is how much the browser-level RTT "
              "overshoots the packet-level RTT (Eq. 1).\n");
  return 0;
}
