// granularity_probe: the paper's Figure 5 experiment as a standalone tool.
// Busy-polls Date.getTime() until the value changes, repeatedly, on a
// simulated Windows 7 and Ubuntu machine - exposing the non-constant
// granularity the paper discovered (1 ms or ~15.6 ms, flipping every few
// minutes on Windows).
//
//   $ granularity_probe [minutes]
#include <cstdio>
#include <cstdlib>

#include "browser/clock_set.h"
#include "core/granularity.h"

using namespace bnm;

namespace {

void probe(const char* label, browser::OsId os, int minutes) {
  std::printf("\n== %s: sampling Date.getTime() granularity every 10 s for "
              "%d min ==\n", label, minutes);
  sim::Rng rng{os == browser::OsId::kWindows7 ? 424242u : 171717u};
  browser::ClockSet clocks{os, rng};

  const auto series = core::GranularityProber::probe_series(
      clocks.java_date(), sim::TimePoint::epoch() + sim::Duration::seconds(1),
      sim::Duration::seconds(10), static_cast<std::size_t>(minutes * 6));

  // Timeline strip: one character per sample ('.' = 1 ms, '#' = coarse).
  std::printf("timeline: ");
  for (const auto& p : series) {
    std::printf("%c", p.measured.ms_f() < 2.0 ? '.' : '#');
  }
  std::printf("\n          ('.' = 1 ms regime, '#' = ~15.6 ms regime)\n");

  const auto levels = core::GranularityProber::distinct_levels(series);
  std::printf("observed granularity level(s):");
  for (const auto& l : levels) std::printf(" %s", l.to_string().c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int minutes = argc > 1 ? std::atoi(argv[1]) : 20;

  std::printf("Reproducing the paper's Figure 5 probe loop:\n"
              "  start = Date.getTime();\n"
              "  while ((current = Date.getTime()) == start) {}\n"
              "  print(current - start);\n");

  probe("Windows 7", browser::OsId::kWindows7, minutes);
  probe("Ubuntu 12.04", browser::OsId::kUbuntu, minutes);

  std::printf("\n== System.nanoTime() for comparison ==\n");
  sim::Rng rng{1};
  browser::ClockSet clocks{browser::OsId::kWindows7, rng};
  const auto p = core::GranularityProber::probe_once(
      clocks.java_nano(), sim::TimePoint::epoch() + sim::Duration::seconds(1));
  std::printf("nanoTime tick observed after %llu calls: %s\n",
              static_cast<unsigned long long>(p.api_calls),
              p.measured.to_string().c_str());
  std::printf("\nconclusion: never compute RTTs from "
              "Date.getTime()/currentTimeMillis() on Windows - the clock\n"
              "may only tick every ~15.6 ms, swallowing or inventing up to "
              "one granule per measurement.\n");
  return 0;
}
