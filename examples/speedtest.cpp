// speedtest: a browser-based "speedtest service" built on the library,
// showing exactly what the paper warns about - the same network, measured
// by different in-browser methods, reports different latencies, and
// small-transfer throughput is under-estimated by the delay overhead.
//
//   $ speedtest [browser] [os]
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "core/knockon.h"
#include "report/table.h"
#include "stats/descriptive.h"

using namespace bnm;
using T = report::TextTable;

namespace {

browser::BrowserId parse_browser(const std::string& s) {
  using B = browser::BrowserId;
  if (s == "chrome") return B::kChrome;
  if (s == "firefox") return B::kFirefox;
  if (s == "ie") return B::kIe;
  if (s == "opera") return B::kOpera;
  if (s == "safari") return B::kSafari;
  return B::kChrome;
}

}  // namespace

int main(int argc, char** argv) {
  browser::BrowserId b = browser::BrowserId::kChrome;
  browser::OsId os = browser::OsId::kUbuntu;
  if (argc > 1) b = parse_browser(argv[1]);
  if (argc > 2 && std::string{argv[2]} == "windows") {
    os = browser::OsId::kWindows7;
  }
  if (!browser::case_supported(b, os)) {
    std::fprintf(stderr, "unsupported browser/OS pair (Table 2)\n");
    return 2;
  }

  std::printf("=== bnm speedtest: %s on %s ===\n", browser::browser_name(b),
              browser::os_name(os));
  std::printf("true network RTT: ~50 ms (simulated Internet path)\n\n");

  // --- Latency panel: what each method would report as "your ping". ---
  std::printf("-- latency, as each in-browser method reports it --\n");
  report::TextTable lat({"method", "reported RTT (median, ms)",
                         "true RTT (median, ms)", "overhead (ms)"});
  const methods::ProbeKind kinds[] = {
      methods::ProbeKind::kXhrGet, methods::ProbeKind::kDom,
      methods::ProbeKind::kFlashGet, methods::ProbeKind::kFlashSocket,
      methods::ProbeKind::kJavaSocket, methods::ProbeKind::kWebSocket};
  for (const auto kind : kinds) {
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.browser = b;
    cfg.os = os;
    cfg.runs = 30;
    const auto series = core::run_experiment(cfg);
    if (series.samples.empty()) {
      lat.add_row({probe_kind_name(kind), "n/a (" + series.first_error + ")",
                   "", ""});
      continue;
    }
    std::vector<double> reported, truth;
    for (const auto& s : series.samples) {
      reported.push_back(s.browser_rtt2_ms);
      truth.push_back(s.net_rtt2_ms);
    }
    lat.add_row({probe_kind_name(kind),
                 T::fmt(stats::median(reported), 1),
                 T::fmt(stats::median(truth), 1),
                 T::fmt(series.d2_box().median, 1)});
  }
  std::printf("%s\n", lat.render().c_str());

  // --- Throughput panel. ---
  std::printf("-- download throughput (XHR), browser-level vs true --\n");
  core::ThroughputExperiment::Config tput_cfg;
  tput_cfg.browser = b;
  tput_cfg.os = os;
  tput_cfg.payload_sizes = {10 * 1024, 100 * 1024, 1024 * 1024};
  core::ThroughputExperiment tput{tput_cfg};
  report::TextTable tp({"download size", "reported Mbps", "true Mbps",
                        "under-estimation"});
  for (const auto& s : tput.run()) {
    tp.add_row({std::to_string(s.payload_bytes / 1024) + " KiB",
                T::fmt(s.browser_tput_mbps, 2), T::fmt(s.net_tput_mbps, 2),
                T::fmt((s.underestimation() - 1.0) * 100.0, 1) + "%"});
  }
  std::printf("%s\n", tp.render().c_str());

  std::printf(
      "takeaway: pick the measurement method before trusting the number -\n"
      "socket-based probes track the true RTT; HTTP-based ones add their\n"
      "own machinery to your \"ping\" (Li et al., IMC 2013).\n");
  return 0;
}
