// Trace export: run one measurement case with tracing enabled and write
// the structured trace in both exporter formats.
//
//   $ trace_export [runs]             (default: 3)
//
// Writes:
//   trace.jsonl  - one JSON object per record (grep/jq-friendly)
//   trace.json   - Chrome trace_event JSON; load it in chrome://tracing
//                  or https://ui.perfetto.dev to see scheduler dispatch,
//                  per-link packet hops and method-level probe spans on
//                  their own timeline rows
//
// Also prints the profiling-scope table for the run and a metrics snapshot,
// so this one example exercises the whole observability surface described
// in docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace_export.h"

int main(int argc, char** argv) {
  using namespace bnm;

  core::ExperimentConfig cfg;
  cfg.kind = methods::ProbeKind::kXhrGet;
  cfg.browser = browser::BrowserId::kChrome;
  cfg.os = browser::OsId::kUbuntu;
  cfg.runs = argc > 1 ? std::atoi(argv[1]) : 3;

  std::printf("trace_export: %s on %s / %s, %d runs\n",
              probe_kind_name(cfg.kind), browser_name(cfg.browser),
              os_name(cfg.os), cfg.runs);

  core::Experiment experiment{cfg};
  sim::Trace& trace = experiment.testbed().sim().trace();
  trace.set_enabled(true);
  obs::prof::reset();
  obs::prof::set_enabled(true);

  const core::OverheadSeries series = experiment.run();

  obs::prof::set_enabled(false);
  if (series.samples.empty()) {
    std::fprintf(stderr, "no successful runs (%d failures: %s)\n",
                 series.failures, series.first_error.c_str());
    return 1;
  }
  std::printf("%zu samples, %zu trace records\n", series.samples.size(),
              trace.records().size());

  // The Perfetto acceptance bar: the trace must show scheduler spans,
  // network-hop spans and method-layer probe spans for the run.
  std::printf("  scheduler dispatch spans : %zu\n",
              trace.view_by_component("scheduler").size());
  std::printf("  network hop spans        : %zu\n",
              trace.view_by_attr("wire_bytes").size());
  std::printf("  method probe spans       : %zu\n",
              trace.view_by_component("method").size());

  if (!obs::trace::write_file("trace.jsonl", obs::trace::to_jsonl(trace)) ||
      !obs::trace::write_file("trace.json",
                              obs::trace::to_chrome_trace(trace))) {
    std::fprintf(stderr, "failed to write trace files\n");
    return 1;
  }
  std::printf("wrote trace.jsonl and trace.json (open the latter in "
              "chrome://tracing or ui.perfetto.dev)\n\n");

  std::printf("profiling scopes:\n%s\n",
              obs::prof::format_report(obs::prof::report()).c_str());
  obs::prof::reset();

  std::printf("metrics snapshot:\n%s",
              obs::MetricsRegistry::instance().snapshot().to_text().c_str());
  return 0;
}
