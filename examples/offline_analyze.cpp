// offline_analyze: the post-processing half of the paper's methodology as
// a standalone tool - feed it a pcap (from this library's writer or any
// LINKTYPE_RAW capture), get the request/response RTT record a
// WinDump/tcpdump analysis would produce.
//
// With no arguments it demonstrates the full loop: generate traffic on the
// simulated testbed, export the client capture to /tmp, analyze the file,
// and print both the RTT summary and a packet sequence diagram.
//
//   $ offline_analyze [capture.pcap client_ip server_port]
#include <cstdio>
#include <string>

#include "core/offline_analysis.h"
#include "core/testbed.h"
#include "http/client.h"
#include "net/pcap_writer.h"
#include "report/sequence_render.h"
#include "report/table.h"

using namespace bnm;
using T = report::TextTable;

namespace {

void print_report(const std::vector<core::OfflineRtt>& rtts) {
  const auto summary = core::OfflineAnalyzer::summarize(rtts);
  std::printf("%zu request/response exchanges\n", summary.exchanges);
  if (summary.exchanges == 0) return;
  report::TextTable table({"#", "request at (ms)", "RTT (ms)", "req B", "resp B"});
  int i = 0;
  for (const auto& r : rtts) {
    table.add_row({std::to_string(i++),
                   T::fmt(r.request_at.ms_since_epoch_f(), 3),
                   T::fmt(r.rtt_ms, 3), std::to_string(r.request_bytes),
                   std::to_string(r.response_bytes)});
    if (i >= 20) break;
  }
  std::printf("%s", table.render().c_str());
  std::printf("min %.3f ms / median %.3f ms / max %.3f ms\n",
              summary.min_rtt_ms, summary.median_rtt_ms, summary.max_rtt_ms);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4) {
    try {
      const auto rtts = core::OfflineAnalyzer::analyze_file(
          argv[1], net::IpAddress::parse(argv[2]),
          static_cast<net::Port>(std::atoi(argv[3])));
      print_report(rtts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  std::printf("no pcap given; demonstrating the full capture->file->analysis "
              "loop on the simulated testbed\n\n");
  core::Testbed::Config cfg;
  core::Testbed testbed{cfg};
  http::HttpClient client{testbed.client()};
  for (int i = 0; i < 5; ++i) {
    http::HttpRequest req;
    req.method = "GET";
    req.target = "/echo?r=" + std::to_string(i);
    client.request(testbed.http_endpoint(), req,
                   [](http::HttpResponse, http::HttpClient::TransferInfo) {});
    testbed.sim().scheduler().run();
  }

  const std::string path = "/tmp/bnm_offline_demo.pcap";
  const std::size_t bytes =
      net::PcapWriter::write_file(testbed.client().capture(), path);
  std::printf("wrote %zu bytes to %s (readable by tcpdump/Wireshark)\n\n",
              bytes, path.c_str());

  const auto rtts = core::OfflineAnalyzer::analyze_file(
      path, net::IpAddress{10, 0, 0, 1}, 80);
  print_report(rtts);

  std::printf("\npacket sequence (pure ACKs hidden):\n");
  report::SequenceRenderer::Options opts;
  opts.hide_pure_acks = true;
  opts.limit = 12;
  report::SequenceRenderer renderer{opts};
  std::printf("%s", renderer.render(testbed.client().capture()).c_str());
  return 0;
}
