// netalyzr_lite: a Netalyzr/HMN-style diagnostic battery built on the
// library - the kind of tool the paper appraises. Runs, from one simulated
// browser session's point of view:
//
//   1. RTT via three methods (and shows their disagreement),
//   2. clock sanity (the Figure 5 granularity probe),
//   3. loss and reordering via UDP probes,
//   4. download throughput,
//   5. a packet-level trace of one measurement (why the numbers differ).
//
//   $ netalyzr_lite [browser] [os] [--impaired] [--jobs=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/parallel_runner.h"
#include "core/granularity.h"
#include "core/knockon.h"
#include "core/loss_experiment.h"
#include "net/dns.h"
#include "report/sequence_render.h"
#include "report/table.h"
#include "stats/descriptive.h"

using namespace bnm;
using T = report::TextTable;

namespace {

browser::BrowserId parse_browser(const std::string& s) {
  using B = browser::BrowserId;
  if (s == "firefox") return B::kFirefox;
  if (s == "ie") return B::kIe;
  if (s == "opera") return B::kOpera;
  if (s == "safari") return B::kSafari;
  return B::kChrome;
}

void section(const char* name) { std::printf("\n### %s\n", name); }

}  // namespace

int main(int argc, char** argv) {
  browser::BrowserId b = browser::BrowserId::kChrome;
  browser::OsId os = browser::OsId::kWindows7;
  bool impaired = false;
  int jobs = 0;  // 0 = all cores (core::run_matrix resolves it)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--impaired") {
      impaired = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
    } else if (arg == "ubuntu") {
      os = browser::OsId::kUbuntu;
    } else if (arg == "windows") {
      os = browser::OsId::kWindows7;
    } else {
      b = parse_browser(arg);
    }
  }
  if (!browser::case_supported(b, os)) {
    std::fprintf(stderr, "unsupported browser/OS pair (Table 2)\n");
    return 2;
  }

  std::printf("netalyzr_lite: diagnosing the network from %s on %s%s\n",
              browser::browser_name(b), browser::os_name(os),
              impaired ? " (impaired network: 2% loss, reordering)" : "");

  // ------------------------------------------------------------ 1. RTT
  section("1. round-trip time (three in-browser opinions)");
  report::TextTable rtt({"method", "RTT median (ms)", "spread (IQR, ms)",
                         "trust"});
  const methods::ProbeKind rtt_kinds[] = {methods::ProbeKind::kJavaSocket,
                                          methods::ProbeKind::kWebSocket,
                                          methods::ProbeKind::kXhrGet};
  // The three opinions are independent experiments: one parallel batch.
  std::vector<core::ExperimentConfig> rtt_cells;
  for (const auto kind : rtt_kinds) {
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.browser = b;
    cfg.os = os;
    cfg.runs = 25;
    cfg.java_use_nanotime = true;  // this tool read Section 5
    rtt_cells.push_back(std::move(cfg));
  }
  const auto rtt_results = core::run_matrix(rtt_cells, jobs);
  for (std::size_t ki = 0; ki < std::size(rtt_kinds); ++ki) {
    const auto kind = rtt_kinds[ki];
    const auto& series = rtt_results[ki];
    if (series.samples.empty()) {
      rtt.add_row({probe_kind_name(kind), "n/a", "", series.first_error});
      continue;
    }
    std::vector<double> reported;
    for (const auto& s : series.samples) reported.push_back(s.browser_rtt2_ms);
    const double overhead = series.d2_box().median;
    rtt.add_row({probe_kind_name(kind), T::fmt(stats::median(reported), 1),
                 T::fmt(series.d2_box().iqr(), 2),
                 std::abs(overhead) < 1 ? "high (socket)" : "biased (+HTTP)"});
  }
  std::printf("%s", rtt.render().c_str());

  // --------------------------------------------------------- 2. clock
  section("2. timing-API sanity (Date.getTime granularity)");
  {
    sim::Rng rng{2024};
    browser::ClockSet clocks{os, rng};
    const auto series = core::GranularityProber::probe_series(
        clocks.java_date(), sim::TimePoint::epoch() + sim::Duration::seconds(1),
        sim::Duration::seconds(15), 60);
    const auto levels = core::GranularityProber::distinct_levels(series);
    std::printf("observed granularity level(s):");
    for (const auto& l : levels) std::printf(" %s", l.to_string().c_str());
    std::printf("\nverdict: %s\n",
                levels.size() > 1 || levels.front() > sim::Duration::millis(2)
                    ? "UNSAFE for millisecond timing - use System.nanoTime()"
                    : "1 ms granularity, adequate for coarse RTTs");
  }

  // ------------------------------------------------- 3. loss/reordering
  section("3. packet loss & reordering (UDP probe train)");
  {
    core::LossReorderingExperiment::Config cfg;
    cfg.browser = b;
    cfg.os = os;
    cfg.probes = 200;
    if (impaired) {
      cfg.testbed.link_loss_probability = 0.02;
      cfg.testbed.server_jitter = sim::Duration::millis(20);
      cfg.testbed.allow_reorder = true;
    }
    core::LossReorderingExperiment exp{cfg};
    const auto r = exp.run();
    std::printf("sent %d probes: %.1f%% lost, %d reordered "
                "(capture agrees within %.2fpp)\n",
                r.probes_sent, r.browser_loss_rate() * 100,
                r.browser_reordered, r.loss_rate_error() * 100);
  }

  // ----------------------------------------------------------- 3b. DNS
  section("3b. DNS resolution (Netalyzr measures this too)");
  {
    core::Testbed::Config tcfg;
    tcfg.client_os = os;
    core::Testbed testbed{tcfg};
    net::DnsServer dns{testbed.server(), 53};
    dns.add_record("server.bnm.test", testbed.http_endpoint().ip);
    net::DnsResolver resolver{testbed.client(),
                              net::Endpoint{testbed.http_endpoint().ip, 53}};
    const sim::TimePoint t0 = testbed.sim().now();
    sim::TimePoint done;
    std::optional<net::IpAddress> addr;
    resolver.resolve("server.bnm.test", [&](std::optional<net::IpAddress> a) {
      addr = a;
      done = testbed.sim().now();
    });
    testbed.sim().scheduler().run();
    if (addr) {
      std::printf("server.bnm.test -> %s in %.1f ms (cold cache)\n",
                  addr->to_string().c_str(), (done - t0).ms_f());
      std::printf("note: this lookup rides the same delayed path - a "
                  "hostname-addressed probe's first RTT includes it.\n");
    } else {
      std::printf("resolution failed\n");
    }
  }

  // ---------------------------------------------------- 4. throughput
  section("4. download throughput (XHR)");
  {
    core::ThroughputExperiment::Config cfg;
    cfg.browser = b;
    cfg.os = os;
    cfg.payload_sizes = {100 * 1024, 1024 * 1024};
    core::ThroughputExperiment exp{cfg};
    for (const auto& s : exp.run()) {
      std::printf("%7zu KiB: %.1f Mbps reported (true %.1f Mbps)\n",
                  s.payload_bytes / 1024, s.browser_tput_mbps,
                  s.net_tput_mbps);
    }
  }

  // --------------------------------------------------------- 5. trace
  section("5. packet-level view of one WebSocket probe");
  {
    core::Testbed::Config tcfg;
    tcfg.client_os = os;
    core::Testbed testbed{tcfg};
    auto session = testbed.launch_browser(browser::make_profile(
        browser::case_supported(b, os) &&
                browser::make_profile(b, os).supports_websocket
            ? b
            : browser::BrowserId::kChrome,
        os), 0);
    methods::MethodContext ctx;
    ctx.browser = session.get();
    ctx.http_server = testbed.http_endpoint();
    ctx.ws_server = testbed.ws_endpoint();
    auto method = methods::make_method(methods::ProbeKind::kWebSocket);
    bool done = false;
    method->run(ctx, [&](methods::MethodRunResult) { done = true; });
    testbed.sim().scheduler().run();
    if (done) {
      report::SequenceRenderer::Options opts;
      opts.hide_pure_acks = true;
      opts.limit = 18;
      report::SequenceRenderer renderer{opts};
      std::printf("%s", renderer.render(testbed.client().capture()).c_str());
    }
  }

  std::printf("\ndiagnosis complete.\n");
  return 0;
}
