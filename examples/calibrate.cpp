// calibrate: build a per-method overhead calibration table for a platform,
// save it as CSV, and verify it against an independent measurement round.
//
// This is what a careful speedtest operator would ship alongside their
// tool: per-(browser, OS, method) corrections - and the honest answer for
// which methods such corrections actually work (Section 4's consistency
// concern).
//
//   $ calibrate [browser] [os] [output.csv]
#include <cstdio>
#include <fstream>
#include <string>

#include "core/calibration.h"
#include "report/table.h"

using namespace bnm;
using T = report::TextTable;

namespace {

browser::BrowserId parse_browser(const std::string& s) {
  using B = browser::BrowserId;
  if (s == "firefox") return B::kFirefox;
  if (s == "ie") return B::kIe;
  if (s == "opera") return B::kOpera;
  if (s == "safari") return B::kSafari;
  return B::kChrome;
}

}  // namespace

int main(int argc, char** argv) {
  browser::BrowserId b = browser::BrowserId::kFirefox;
  browser::OsId os = browser::OsId::kWindows7;
  std::string out_path = "calibration.csv";
  if (argc > 1) b = parse_browser(argv[1]);
  if (argc > 2 && std::string{argv[2]} == "ubuntu") os = browser::OsId::kUbuntu;
  if (argc > 3) out_path = argv[3];
  if (!browser::case_supported(b, os)) {
    std::fprintf(stderr, "unsupported browser/OS pair (Table 2)\n");
    return 2;
  }

  std::printf("calibrating %s on %s (50 runs per method)...\n\n",
              browser::browser_name(b), browser::os_name(os));

  const methods::ProbeKind kinds[] = {
      methods::ProbeKind::kXhrGet,      methods::ProbeKind::kXhrPost,
      methods::ProbeKind::kDom,         methods::ProbeKind::kWebSocket,
      methods::ProbeKind::kFlashGet,    methods::ProbeKind::kFlashSocket,
      methods::ProbeKind::kJavaGet,     methods::ProbeKind::kJavaSocket};

  core::CalibrationTable table;
  for (const auto kind : kinds) {
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.browser = b;
    cfg.os = os;
    cfg.runs = 50;
    const auto series = core::run_experiment(cfg);
    if (series.samples.empty()) {
      std::printf("  %-24s unavailable (%s)\n", probe_kind_name(kind),
                  series.first_error.c_str());
      continue;
    }
    table.learn(series);
    const auto rec = table.lookup(series.case_label, kind);
    std::printf("  %-24s correction %+7.2f ms (IQR %.2f)\n",
                probe_kind_name(kind), rec->median_overhead_ms, rec->iqr_ms);
  }

  std::ofstream out{out_path};
  out << table.to_csv();
  out.close();
  std::printf("\nwrote %zu records to %s\n", table.size(), out_path.c_str());

  // Verification round: reload the CSV and measure residuals on fresh,
  // independently-seeded experiments.
  std::ifstream in{out_path};
  std::string csv{std::istreambuf_iterator<char>{in},
                  std::istreambuf_iterator<char>{}};
  const auto reloaded = core::CalibrationTable::from_csv(csv);

  std::printf("\nverification (independent round, corrections applied):\n");
  report::TextTable verify({"method", "raw |overhead| (ms)",
                            "residual (ms)", "calibratable?"});
  for (const auto kind : kinds) {
    core::ExperimentConfig cfg;
    cfg.kind = kind;
    cfg.browser = b;
    cfg.os = os;
    cfg.runs = 30;
    cfg.seed = 31337;
    const auto fresh = core::run_experiment(cfg);
    if (fresh.samples.empty()) continue;
    const double raw = std::abs(fresh.d2_box().median);
    const double residual = reloaded.residual_ms(fresh);
    verify.add_row({probe_kind_name(kind), T::fmt(raw, 2), T::fmt(residual, 2),
                    residual < 1.5 ? "yes" : residual < 5 ? "marginal" : "NO"});
  }
  std::printf("%s", verify.render().c_str());
  std::printf("\nrule of thumb (paper Section 4): a correction is only as\n"
              "good as the method's consistency - Flash HTTP stays broken.\n");
  return 0;
}
