// Performance harness for the experiment pipeline. Three sections:
//
//   1. Full Figure-3 matrix, serial (jobs=1) vs parallel (--jobs, default
//      all cores), with byte-identity checks between the result sets —
//      including a pass on the binary-heap reference queue, which must
//      match the calendar queue bit-for-bit across all 88 cells.
//   2. Capture window extraction: linear scan (the old
//      network_rtt_in_window behaviour) vs first_index_at_or_after.
//   3. Scheduler event throughput: cancellable schedule_at path (pooled
//      control blocks) vs fire-and-forget post_at path, calendar-vs-heap
//      and batched-vs-stepwise sub-benches, and the events/sec headline
//      the Release kernel gate (scripts/check.sh) enforces a floor on.
//
// Emits BENCH_perf_matrix.json in the working directory so CI (or a human)
// can track the numbers. The speedup section reports whatever the host
// offers; on a single-core machine the parallel run cannot win and the
// harness says so instead of failing.
//
//   $ perf_matrix [--runs=N] [--jobs=N]   (default 12 runs per cell)
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/prof.h"
#include "net/capture.h"
#include "sim/arena.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"

using namespace bnm;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::vector<core::ExperimentConfig> full_matrix(int runs) {
  std::vector<core::ExperimentConfig> cells;
  for (const auto& who : browser::paper_cases()) {
    for (const auto kind : browser::all_probe_kinds()) {
      core::ExperimentConfig cfg;
      cfg.browser = who.browser;
      cfg.os = who.os;
      cfg.kind = kind;
      cfg.runs = runs;
      cells.push_back(cfg);
    }
  }
  return cells;
}

bool identical(const core::OverheadSeries& a, const core::OverheadSeries& b) {
  if (a.case_label != b.case_label || a.method_name != b.method_name ||
      a.failures != b.failures || a.first_error != b.first_error ||
      a.samples.size() != b.samples.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const auto& x = a.samples[i];
    const auto& y = b.samples[i];
    if (x.d1_ms != y.d1_ms || x.d2_ms != y.d2_ms ||
        x.browser_rtt1_ms != y.browser_rtt1_ms ||
        x.browser_rtt2_ms != y.browser_rtt2_ms ||
        x.net_rtt1_ms != y.net_rtt1_ms || x.net_rtt2_ms != y.net_rtt2_ms ||
        x.connections_opened1 != y.connections_opened1 ||
        x.connections_opened2 != y.connections_opened2) {
      return false;
    }
  }
  return true;
}

struct MatrixTimings {
  std::size_t cells = 0;
  int runs = 0;
  int jobs = 0;
  double serial_ms = 0;
  double parallel_ms = 0;
  bool identical = true;
  // Arena service counters over the serial + parallel passes (zero when the
  // library was built without BNM_ARENA_STATS). Every arena allocation is a
  // global-allocator round trip the packet path no longer pays.
  bool arena_stats_compiled = false;
  std::uint64_t arena_allocs_avoided = 0;
  std::uint64_t arena_bytes_served = 0;
  std::uint64_t arena_peak_bytes = 0;
  // Reference pass with arenas globally disabled: results must stay
  // bit-identical, and its wall clock shows what the arena buys.
  double arena_off_serial_ms = 0;
  bool arena_identical = true;
  // Reference pass on the binary-heap queue: the calendar queue must be a
  // pure speedup, invisible in every sample of every cell.
  double heap_serial_ms = 0;
  bool queue_identical = true;
  double speedup() const {
    return parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
  }
  /// With one worker the "parallel" run is just a second serial run, and
  /// with one visible core extra workers only timeslice it, so in either
  /// case the measured speedup is noise, not signal.
  bool parallel_meaningful() const {
    return jobs > 1 && std::thread::hardware_concurrency() > 1;
  }
};

MatrixTimings bench_matrix(int runs, int jobs_flag) {
  MatrixTimings t;
  const auto cells = full_matrix(runs);
  t.cells = cells.size();
  t.runs = runs;
  t.jobs = core::resolve_jobs(jobs_flag, cells.size());

  std::printf("matrix: %zu cells x %d runs\n", t.cells, runs);
  t.arena_stats_compiled = sim::ArenaStats::compiled_in();
  sim::ArenaStats::reset();

  std::printf("  serial (jobs=1)    ... ");
  std::fflush(stdout);
  const auto s0 = Clock::now();
  const auto serial = core::run_matrix(cells, 1);
  const auto s1 = Clock::now();
  t.serial_ms = ms_between(s0, s1);
  std::printf("%8.1f ms\n", t.serial_ms);

  std::printf("  parallel (jobs=%d)  ... ", t.jobs);
  std::fflush(stdout);
  const auto p0 = Clock::now();
  const auto parallel = core::run_matrix(cells, t.jobs);
  const auto p1 = Clock::now();
  t.parallel_ms = ms_between(p0, p1);
  std::printf("%8.1f ms   (%.2fx)%s\n", t.parallel_ms, t.speedup(),
              t.parallel_meaningful() ? "" : "  [1 core/worker: not meaningful]");

  t.arena_allocs_avoided = sim::ArenaStats::allocations();
  t.arena_bytes_served = sim::ArenaStats::bytes();
  t.arena_peak_bytes = sim::ArenaStats::peak_arena_bytes();

  // Reference pass: arenas disabled process-wide, same cells, same seeds.
  // The appraisal output must not depend on where memory came from.
  std::printf("  arena off (jobs=1) ... ");
  std::fflush(stdout);
  sim::Arena::set_enabled(false);
  const auto a0 = Clock::now();
  const auto arena_off = core::run_matrix(cells, 1);
  const auto a1 = Clock::now();
  sim::Arena::set_enabled(true);
  t.arena_off_serial_ms = ms_between(a0, a1);
  std::printf("%8.1f ms\n", t.arena_off_serial_ms);

  // Reference pass: every scheduler in the process runs the binary heap.
  std::printf("  heap queue (jobs=1) .. ");
  std::fflush(stdout);
  sim::Scheduler::set_default_impl(sim::Scheduler::QueueImpl::kHeap);
  const auto q0 = Clock::now();
  const auto heap_ref = core::run_matrix(cells, 1);
  const auto q1 = Clock::now();
  sim::Scheduler::set_default_impl(sim::Scheduler::QueueImpl::kCalendar);
  t.heap_serial_ms = ms_between(q0, q1);
  std::printf("%8.1f ms\n", t.heap_serial_ms);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!identical(serial[i], parallel[i])) {
      t.identical = false;
      std::printf("  !! cell %zu (%s %s) differs between serial and parallel\n",
                  i, serial[i].case_label.c_str(),
                  serial[i].method_name.c_str());
    }
    if (!identical(serial[i], arena_off[i])) {
      t.arena_identical = false;
      std::printf("  !! cell %zu (%s %s) differs with the arena disabled\n",
                  i, serial[i].case_label.c_str(),
                  serial[i].method_name.c_str());
    }
    if (!identical(serial[i], heap_ref[i])) {
      t.queue_identical = false;
      std::printf("  !! cell %zu (%s %s) differs between calendar and heap\n",
                  i, serial[i].case_label.c_str(),
                  serial[i].method_name.c_str());
    }
  }
  std::printf(
      "  results byte-identical: %s (arena on/off: %s, calendar/heap: %s)\n",
      t.identical ? "yes" : "NO", t.arena_identical ? "yes" : "NO",
      t.queue_identical ? "yes" : "NO");
  if (t.arena_stats_compiled) {
    std::printf("  arena: %" PRIu64 " allocs avoided, %" PRIu64
                " bytes served, peak %" PRIu64 " bytes\n",
                t.arena_allocs_avoided, t.arena_bytes_served,
                t.arena_peak_bytes);
  }
  return t;
}

// Crash-safe engine overhead: the resilient run_matrix_checked path with
// every feature disabled must cost <1% (or sub-millisecond noise) over the
// legacy run_matrix baseline — robustness that taxes every healthy run
// would never stay on by default. The enabled pass (checkpointing on)
// is informational: it prices what a crash-safe campaign actually pays.
struct CheckpointTimings {
  double baseline_ms = 0;  ///< legacy run_matrix, serial
  double disabled_ms = 0;  ///< run_matrix_checked, all features off
  double enabled_ms = 0;   ///< checkpointing on (flush every 8 cells)
  bool identical = true;   ///< all three result sets bitwise equal
  double disabled_delta_ms() const { return disabled_ms - baseline_ms; }
  double disabled_overhead_percent() const {
    return baseline_ms > 0 ? (disabled_ms - baseline_ms) / baseline_ms * 100.0
                           : 0.0;
  }
  double enabled_overhead_percent() const {
    return baseline_ms > 0 ? (enabled_ms - baseline_ms) / baseline_ms * 100.0
                           : 0.0;
  }
};

CheckpointTimings bench_checkpoint(int runs) {
  CheckpointTimings t;
  const auto cells = full_matrix(runs);
  constexpr int kPasses = 5;  // best-of: single-digit-ms deltas vs VM jitter
  const auto best_of = [](auto&& pass) {
    double best = pass();  // first pass doubles as warm-up
    for (int i = 0; i < kPasses; ++i) best = std::min(best, pass());
    return best;
  };

  std::printf("checkpoint overhead: %zu cells x %d runs, best of %d\n",
              cells.size(), runs, kPasses + 1);

  std::vector<core::OverheadSeries> baseline;
  t.baseline_ms = best_of([&] {
    const auto t0 = Clock::now();
    baseline = core::run_matrix(cells, 1);
    return ms_between(t0, Clock::now());
  });
  std::printf("  legacy run_matrix  ... %8.1f ms\n", t.baseline_ms);

  core::MatrixResult disabled;
  core::MatrixOptions disabled_opts;
  disabled_opts.jobs = 1;
  t.disabled_ms = best_of([&] {
    const auto t0 = Clock::now();
    disabled = core::run_matrix_checked(cells, disabled_opts);
    return ms_between(t0, Clock::now());
  });
  std::printf("  engine, all off    ... %8.1f ms   (%+.2f%%, %+.2f ms)\n",
              t.disabled_ms, t.disabled_overhead_percent(),
              t.disabled_delta_ms());

  const char* ck_path = "BENCH_checkpoint_scratch.json";
  core::MatrixResult enabled;
  t.enabled_ms = best_of([&] {
    std::remove(ck_path);
    core::MatrixOptions options;
    options.jobs = 1;
    options.checkpoint.path = ck_path;
    options.checkpoint.flush_every = 8;
    const auto t0 = Clock::now();
    enabled = core::run_matrix_checked(cells, options);
    return ms_between(t0, Clock::now());
  });
  std::remove(ck_path);
  std::remove((std::string{ck_path} + ".tmp").c_str());
  std::printf("  checkpointing on   ... %8.1f ms   (%+.2f%%)\n", t.enabled_ms,
              t.enabled_overhead_percent());

  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!identical(baseline[i], disabled.series[i]) ||
        !identical(baseline[i], enabled.series[i])) {
      t.identical = false;
      std::printf("  !! cell %zu (%s %s) differs under the checked engine\n",
                  i, baseline[i].case_label.c_str(),
                  baseline[i].method_name.c_str());
    }
  }
  std::printf("  results byte-identical across all three passes: %s\n",
              t.identical ? "yes" : "NO");
  return t;
}

struct CaptureTimings {
  std::size_t records = 0;
  std::size_t windows = 0;
  double linear_ms = 0;
  double indexed_ms = 0;
  double speedup() const {
    return indexed_ms > 0 ? linear_ms / indexed_ms : 0.0;
  }
};

CaptureTimings bench_capture_scan() {
  CaptureTimings t;
  constexpr std::size_t kRecords = 40000;
  constexpr std::size_t kWindows = 4000;
  t.records = kRecords;
  t.windows = kWindows;

  // Populate a capture the way an experiment does: records appended as the
  // simulation clock advances, one per simulated millisecond.
  sim::Simulation sim;
  net::PacketCapture capture{sim};
  for (std::size_t i = 0; i < kRecords; ++i) {
    sim.scheduler().post_at(
        sim::TimePoint::epoch() + sim::Duration::millis(static_cast<double>(i)),
        [&capture, i] {
          net::Packet p;
          p.id = i;
          p.payload = std::vector<std::uint8_t>{0x42};
          capture.record(i % 2 ? net::CaptureDirection::kInbound
                               : net::CaptureDirection::kOutbound,
                         p);
        });
  }
  sim.scheduler().run();

  // Late windows are the worst case for the linear scan (an experiment's
  // run N re-scans all records of runs 1..N-1).
  std::vector<sim::TimePoint> starts;
  starts.reserve(kWindows);
  for (std::size_t w = 0; w < kWindows; ++w) {
    const double at_ms =
        static_cast<double>(kRecords) * 0.5 +
        static_cast<double>(w % (kRecords / 2));
    starts.push_back(sim::TimePoint::epoch() + sim::Duration::millis(at_ms));
  }

  std::size_t sum_linear = 0, sum_indexed = 0;
  const auto l0 = Clock::now();
  for (const auto from : starts) {
    std::size_t i = 0;
    while (i < capture.size() && capture.true_time(i) < from) ++i;
    sum_linear += i;
  }
  const auto l1 = Clock::now();
  t.linear_ms = ms_between(l0, l1);

  const auto b0 = Clock::now();
  for (const auto from : starts) {
    sum_indexed += capture.first_index_at_or_after(from);
  }
  const auto b1 = Clock::now();
  t.indexed_ms = ms_between(b0, b1);

  std::printf("capture scan: %zu records, %zu window lookups\n", t.records,
              t.windows);
  std::printf("  linear scan        ... %8.2f ms\n", t.linear_ms);
  std::printf("  binary search      ... %8.2f ms   (%.0fx)\n", t.indexed_ms,
              t.speedup());
  if (sum_linear != sum_indexed) {
    std::printf("  !! index mismatch: linear=%zu indexed=%zu\n", sum_linear,
                sum_indexed);
    t.indexed_ms = -1;  // poison: the JSON shows something went wrong
  }
  return t;
}

struct SchedulerTimings {
  std::size_t events = 0;
  double handle_ns_per_event = 0;
  double post_ns_per_event = 0;
  std::size_t pooled_blocks = 0;
  // Calendar-vs-heap sub-bench: identical spread workload on both queues.
  double calendar_ns_per_event = 0;
  double heap_ns_per_event = 0;
  // Batched-vs-stepwise sub-bench: same calendar queue, run() (whole-bucket
  // batches) vs a step() loop (one event per queue touch).
  double batched_ns_per_event = 0;
  double stepwise_ns_per_event = 0;
  double queue_speedup() const {
    return calendar_ns_per_event > 0
               ? heap_ns_per_event / calendar_ns_per_event
               : 0.0;
  }
  double batch_speedup() const {
    return batched_ns_per_event > 0
               ? stepwise_ns_per_event / batched_ns_per_event
               : 0.0;
  }
  /// Headline throughput: the cancellable schedule_after path (the one the
  /// experiment pipeline leans on; 238.9 ns/event on the PR-5 heap).
  double events_per_sec() const {
    return handle_ns_per_event > 0 ? 1e9 / handle_ns_per_event : 0.0;
  }
};

SchedulerTimings bench_scheduler() {
  SchedulerTimings t;
  constexpr std::size_t kEvents = 200000;
  constexpr std::size_t kBatch = 1000;  // queue depth per drain cycle
  constexpr int kPasses = 3;            // best-of, to shrug off host jitter
  t.events = kEvents;

  volatile std::uint64_t sink = 0;

  // Every section reports the minimum of kPasses passes: at ~100 ns/event a
  // single pass is at the mercy of VM steal time, and the floor gate in
  // scripts/check.sh needs the machine's speed, not the hypervisor's mood.
  const auto best_of = [](auto&& pass) {
    double best = pass();  // first pass doubles as warm-up
    for (int i = 0; i < kPasses; ++i) best = std::min(best, pass());
    return best;
  };

  // Cancellable path: every event carries a pooled control block; steady
  // state is allocation-free (tests/test_kernel_alloc.cpp).
  t.handle_ns_per_event = best_of([&] {
    sim::Scheduler sched;
    const auto h0 = Clock::now();
    for (std::size_t done = 0; done < kEvents; done += kBatch) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        sched.schedule_after(sim::Duration::millis(1),
                             [&sink] { sink = sink + 1; });
      }
      sched.run();
    }
    const auto h1 = Clock::now();
    t.pooled_blocks = sched.pooled_control_blocks();
    return ms_between(h0, h1) * 1e6 / kEvents;
  });

  // Fire-and-forget path: no control blocks at all.
  t.post_ns_per_event = best_of([&] {
    sim::Scheduler sched;
    const auto p0 = Clock::now();
    for (std::size_t done = 0; done < kEvents; done += kBatch) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        sched.post_after(sim::Duration::millis(1),
                         [&sink] { sink = sink + 1; });
      }
      sched.run();
    }
    const auto p1 = Clock::now();
    return ms_between(p0, p1) * 1e6 / kEvents;
  });

  // Calendar vs heap, batched vs stepwise: the same spread workload (1000
  // events across ~1 ms, i.e. ~16 calendar buckets per drain cycle) so the
  // calendar actually pays its promotion/sort costs.
  const auto drive = [&sink](sim::Scheduler::QueueImpl impl, bool batched) {
    sim::Scheduler sched{impl};
    const auto t0 = Clock::now();
    for (std::size_t done = 0; done < kEvents; done += kBatch) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        sched.post_after(sim::Duration::micros(static_cast<std::int64_t>(i)),
                         [&sink] { sink = sink + 1; });
      }
      if (batched) {
        sched.run();
      } else {
        while (sched.step()) {
        }
      }
    }
    return ms_between(t0, Clock::now()) * 1e6 / kEvents;
  };
  t.calendar_ns_per_event =
      best_of([&] { return drive(sim::Scheduler::QueueImpl::kCalendar, true); });
  t.heap_ns_per_event =
      best_of([&] { return drive(sim::Scheduler::QueueImpl::kHeap, true); });
  t.batched_ns_per_event = t.calendar_ns_per_event;
  t.stepwise_ns_per_event = best_of(
      [&] { return drive(sim::Scheduler::QueueImpl::kCalendar, false); });

  std::printf("scheduler: %zu events, batches of %zu\n", t.events, kBatch);
  std::printf("  schedule_after     ... %8.1f ns/event  (%zu pooled blocks, "
              "%.2fM events/s)\n",
              t.handle_ns_per_event, t.pooled_blocks,
              t.events_per_sec() / 1e6);
  std::printf("  post_after         ... %8.1f ns/event\n",
              t.post_ns_per_event);
  std::printf("  calendar (batched) ... %8.1f ns/event\n",
              t.calendar_ns_per_event);
  std::printf("  heap reference     ... %8.1f ns/event   (calendar %.2fx)\n",
              t.heap_ns_per_event, t.queue_speedup());
  std::printf("  stepwise dispatch  ... %8.1f ns/event   (batched %.2fx)\n",
              t.stepwise_ns_per_event, t.batch_speedup());
  return t;
}

// One small profiled matrix pass: enable the obs profiling scopes, run a
// few cells, and surface where the wall-clock goes. Informational only
// (wall-clock, so never part of a determinism gate).
std::vector<obs::prof::ProfEntry> bench_profile(int runs) {
  std::vector<core::ExperimentConfig> cells;
  for (const auto kind : browser::all_probe_kinds()) {
    cells.push_back(benchutil::make_config(browser::BrowserId::kChrome,
                                           browser::OsId::kUbuntu, kind,
                                           std::max(1, runs / 4)));
  }
  obs::prof::reset();
  obs::prof::set_enabled(true);
  core::run_matrix(cells, 1);
  obs::prof::set_enabled(false);
  auto entries = obs::prof::report();
  obs::prof::reset();

  std::printf("profile (profiling scopes enabled, %zu cells):\n",
              cells.size());
  std::printf("%s", obs::prof::format_report(entries).c_str());
  return entries;
}

void write_json(const char* path, unsigned hw, const MatrixTimings& m,
                const CheckpointTimings& k, const CaptureTimings& c,
                const SchedulerTimings& s,
                const std::vector<obs::prof::ProfEntry>& profile) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"matrix\": {\n");
  std::fprintf(f, "    \"cells\": %zu,\n", m.cells);
  std::fprintf(f, "    \"runs_per_cell\": %d,\n", m.runs);
  std::fprintf(f, "    \"jobs\": %d,\n", m.jobs);
  std::fprintf(f, "    \"serial_ms\": %.3f,\n", m.serial_ms);
  std::fprintf(f, "    \"parallel_ms\": %.3f,\n", m.parallel_ms);
  std::fprintf(f, "    \"speedup\": %.3f,\n", m.speedup());
  std::fprintf(f, "    \"parallel_meaningful\": %s,\n",
               m.parallel_meaningful() ? "true" : "false");
  if (!m.parallel_meaningful()) {
    // Explicit note so a ~1.0x "speedup" on a single-core host (or jobs=1)
    // is read as a timeslicing artifact, not a parallelization regression.
    std::fprintf(f, "    \"parallel_note\": \"%s\",\n",
                 hw <= 1 ? "single visible core: parallel pass only "
                           "timeslices the serial work"
                         : "jobs=1: parallel pass is a second serial run");
  }
  std::fprintf(f, "    \"identical\": %s,\n", m.identical ? "true" : "false");
  std::fprintf(f, "    \"arena\": {\n");
  std::fprintf(f, "      \"stats_compiled\": %s,\n",
               m.arena_stats_compiled ? "true" : "false");
  std::fprintf(f, "      \"allocs_avoided\": %" PRIu64 ",\n",
               m.arena_allocs_avoided);
  std::fprintf(f, "      \"bytes_served\": %" PRIu64 ",\n",
               m.arena_bytes_served);
  std::fprintf(f, "      \"peak_arena_bytes\": %" PRIu64 ",\n",
               m.arena_peak_bytes);
  std::fprintf(f, "      \"off_serial_ms\": %.3f,\n", m.arena_off_serial_ms);
  std::fprintf(f, "      \"identical_on_off\": %s\n",
               m.arena_identical ? "true" : "false");
  std::fprintf(f, "    },\n");
  std::fprintf(f, "    \"queue\": {\n");
  std::fprintf(f, "      \"heap_serial_ms\": %.3f,\n", m.heap_serial_ms);
  std::fprintf(f, "      \"identical_calendar_heap\": %s\n",
               m.queue_identical ? "true" : "false");
  std::fprintf(f, "    }\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"checkpoint\": {\n");
  std::fprintf(f, "    \"baseline_ms\": %.3f,\n", k.baseline_ms);
  std::fprintf(f, "    \"disabled_ms\": %.3f,\n", k.disabled_ms);
  std::fprintf(f, "    \"enabled_ms\": %.3f,\n", k.enabled_ms);
  std::fprintf(f, "    \"disabled_overhead_percent\": %.3f,\n",
               k.disabled_overhead_percent());
  std::fprintf(f, "    \"disabled_delta_ms\": %.3f,\n", k.disabled_delta_ms());
  std::fprintf(f, "    \"enabled_overhead_percent\": %.3f,\n",
               k.enabled_overhead_percent());
  std::fprintf(f, "    \"identical\": %s\n", k.identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"capture_scan\": {\n");
  std::fprintf(f, "    \"records\": %zu,\n", c.records);
  std::fprintf(f, "    \"window_lookups\": %zu,\n", c.windows);
  std::fprintf(f, "    \"linear_ms\": %.3f,\n", c.linear_ms);
  std::fprintf(f, "    \"indexed_ms\": %.3f,\n", c.indexed_ms);
  std::fprintf(f, "    \"speedup\": %.1f\n", c.speedup());
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"scheduler\": {\n");
  std::fprintf(f, "    \"events\": %zu,\n", s.events);
  std::fprintf(f, "    \"schedule_ns_per_event\": %.1f,\n",
               s.handle_ns_per_event);
  std::fprintf(f, "    \"post_ns_per_event\": %.1f,\n", s.post_ns_per_event);
  std::fprintf(f, "    \"events_per_sec\": %.0f,\n", s.events_per_sec());
  std::fprintf(f, "    \"calendar_ns_per_event\": %.1f,\n",
               s.calendar_ns_per_event);
  std::fprintf(f, "    \"heap_ns_per_event\": %.1f,\n", s.heap_ns_per_event);
  std::fprintf(f, "    \"queue_speedup\": %.2f,\n", s.queue_speedup());
  std::fprintf(f, "    \"batched_ns_per_event\": %.1f,\n",
               s.batched_ns_per_event);
  std::fprintf(f, "    \"stepwise_ns_per_event\": %.1f,\n",
               s.stepwise_ns_per_event);
  std::fprintf(f, "    \"batch_speedup\": %.2f,\n", s.batch_speedup());
  std::fprintf(f, "    \"pooled_control_blocks\": %zu\n", s.pooled_blocks);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"profile\": [\n");
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const auto& e = profile[i];
    std::fprintf(f,
                 "    {\"site\": \"%s\", \"calls\": %llu, "
                 "\"total_ms\": %.3f, \"avg_us\": %.3f, "
                 "\"max_us\": %.3f}%s\n",
                 e.name.c_str(), static_cast<unsigned long long>(e.calls),
                 static_cast<double>(e.total_ns) / 1e6,
                 e.calls ? static_cast<double>(e.total_ns) / 1e3 /
                               static_cast<double>(e.calls)
                         : 0.0,
                 static_cast<double>(e.max_ns) / 1e3,
                 i + 1 < profile.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::options().runs = 12;  // perf default; --runs=N overrides
  const auto& opts = benchutil::init(argc, argv);

  const unsigned hw = std::thread::hardware_concurrency();
  benchutil::banner("perf_matrix: experiment pipeline performance");
  std::printf("hardware_concurrency: %u\n\n", hw);

  const MatrixTimings m = bench_matrix(opts.runs, opts.jobs);
  std::printf("\n");
  const CheckpointTimings k = bench_checkpoint(opts.runs);
  std::printf("\n");
  const CaptureTimings c = bench_capture_scan();
  std::printf("\n");
  const SchedulerTimings s = bench_scheduler();
  std::printf("\n");
  const auto profile = bench_profile(opts.runs);

  write_json("BENCH_perf_matrix.json", hw, m, k, c, s, profile);

  if (!k.identical) {
    std::fprintf(stderr,
                 "FAIL: checked-engine results differ from run_matrix\n");
    return 1;
  }
  // The hard <1% gate (with sub-ms noise slack) lives in scripts/check.sh;
  // the shape check here flags drift on any direct bench run.
  benchutil::shape_check(
      k.disabled_overhead_percent() < 1.0 || k.disabled_delta_ms() < 1.0,
      "disabled crash-safe engine within 1% (or <1 ms) of run_matrix");
  if (!m.identical) {
    std::fprintf(stderr, "FAIL: parallel results differ from serial\n");
    return 1;
  }
  if (!m.arena_identical) {
    std::fprintf(stderr, "FAIL: arena-off results differ from arena-on\n");
    return 1;
  }
  if (!m.queue_identical) {
    std::fprintf(stderr,
                 "FAIL: heap-queue results differ from calendar-queue\n");
    return 1;
  }
  if (!m.parallel_meaningful() || hw < 4) {
    std::printf("note: only %u core(s) visible (jobs=%d) - speedup is not "
                "meaningful on this host (expect >=3x at jobs=4 on 4+ "
                "cores)\n", hw, m.jobs);
  } else {
    benchutil::shape_check(m.speedup() >= 3.0 || m.jobs < 4,
                           "parallel full matrix >=3x over serial at jobs>=4");
  }
  return 0;
}
