// Campaign-scale harness: how fast and how small the campaign layer is.
//
// Three sections, emitted to BENCH_campaign_scale.json:
//
//   1. Headline throughput: one full campaign (default 100k clients x 1
//      run) through core::run_campaign — clients/sec is the number the
//      Release gate in scripts/check.sh enforces a floor on.
//   2. Shard identity: the same small population run as 1 shard serially
//      and as 8 shards, reports compared byte for byte ("identical_shards")
//      — the campaign layer's core correctness claim.
//   3. Memory model: exact accounting of the aggregation state. One
//      CampaignAggregate is a fixed few hundred KB for a given sketch grid;
//      campaign aggregation memory is (shards + 1) aggregates (per-shard
//      checkpoint records + the merged result), O(shards) and independent
//      of the client count ("independent_of_clients" — doubling the
//      population must not change aggregate_bytes). Peak RSS is reported
//      informationally (it includes the allocator's high-water mark).
//
//   $ campaign_scale [--clients=N] [--shards=N] [--runs=N] [--jobs=N]
#include <sys/resource.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "core/campaign.h"

using namespace bnm;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

long peak_rss_kb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // KiB on Linux
}

core::CampaignSpec base_spec(std::uint64_t clients, int shards, int runs) {
  core::CampaignSpec spec;
  spec.seed = 1729;
  spec.clients = clients;
  spec.shards = shards;
  spec.runs_per_client = runs;
  return spec;
}

struct Headline {
  std::uint64_t clients = 0;
  int runs = 0;
  int shards = 0;
  int jobs = 0;
  double wall_ms = 0;
  std::uint64_t samples = 0;
  std::uint64_t failed_clients = 0;
  double clients_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(clients) / (wall_ms / 1e3) : 0;
  }
};

Headline bench_headline(std::uint64_t clients, int shards, int runs,
                        int jobs) {
  Headline h;
  h.clients = clients;
  h.runs = runs;
  h.shards = shards;

  const core::CampaignSpec spec = base_spec(clients, shards, runs);
  core::CampaignOptions options;
  options.jobs = jobs;

  std::printf("headline: %" PRIu64 " clients x %d runs, %d shards ... ",
              clients, runs, shards);
  std::fflush(stdout);
  const auto t0 = Clock::now();
  const core::CampaignResult result = core::run_campaign(spec, options);
  h.wall_ms = ms_between(t0, Clock::now());
  h.jobs = jobs;
  h.samples = result.aggregate.samples;
  h.failed_clients = result.aggregate.failed_clients;
  std::printf("%.1f ms   (%.0f clients/s, %" PRIu64 " samples, %" PRIu64
              " failed)\n",
              h.wall_ms, h.clients_per_sec(), h.samples, h.failed_clients);
  return h;
}

struct Identity {
  std::uint64_t clients = 0;
  std::size_t report_bytes = 0;
  bool identical_shards = false;
};

Identity bench_identity(int jobs) {
  Identity id;
  id.clients = 2000;
  std::printf("shard identity: %" PRIu64
              " clients, 1 shard serial vs 8 shards ... ",
              id.clients);
  std::fflush(stdout);

  core::CampaignSpec serial_spec = base_spec(id.clients, 1, 2);
  core::CampaignOptions serial_opts;
  serial_opts.jobs = 1;
  const core::CampaignResult serial =
      core::run_campaign(serial_spec, serial_opts);
  const std::string serial_report =
      core::campaign_report_json(serial_spec, serial);

  core::CampaignSpec sharded_spec = base_spec(id.clients, 8, 2);
  core::CampaignOptions sharded_opts;
  sharded_opts.jobs = jobs;
  const core::CampaignResult sharded =
      core::run_campaign(sharded_spec, sharded_opts);
  const std::string sharded_report =
      core::campaign_report_json(sharded_spec, sharded);

  id.report_bytes = serial_report.size();
  id.identical_shards = serial_report == sharded_report;
  std::printf("%s (%zu-byte reports)\n",
              id.identical_shards ? "identical" : "DIFFER", id.report_bytes);
  return id;
}

struct Memory {
  std::size_t aggregate_bytes = 0;  ///< one shard's full aggregation state
  bool independent_of_clients = false;
  long rss_kb = 0;
  struct Point {
    int shards;
    std::size_t aggregation_bytes;  ///< (shards + 1) * aggregate_bytes
  };
  Point points[3];
};

Memory bench_memory() {
  Memory mem;
  std::printf("memory model:\n");

  // Two real campaigns, same shape, 2x the clients: the aggregation state
  // must not grow by a byte.
  core::CampaignOptions opts;
  opts.jobs = 1;
  const core::CampaignSpec small_spec = base_spec(500, 4, 1);
  const core::CampaignSpec large_spec = base_spec(1000, 4, 1);
  const core::CampaignResult small = core::run_campaign(small_spec, opts);
  const core::CampaignResult large = core::run_campaign(large_spec, opts);
  mem.aggregate_bytes = small.aggregate.memory_bytes();
  mem.independent_of_clients =
      small.aggregate.memory_bytes() == large.aggregate.memory_bytes();
  std::printf("  one aggregate      ... %zu bytes\n", mem.aggregate_bytes);
  std::printf("  500 vs 1000 clients .. %zu vs %zu bytes (%s)\n",
              small.aggregate.memory_bytes(), large.aggregate.memory_bytes(),
              mem.independent_of_clients ? "independent of clients"
                                         : "GROWS WITH CLIENTS");

  // Aggregation memory by shard count: the engine holds one merged result
  // plus (checkpointing on) one record per completed shard.
  const int shard_counts[3] = {1, 8, 64};
  for (int i = 0; i < 3; ++i) {
    const int s = shard_counts[i];
    mem.points[i].shards = s;
    mem.points[i].aggregation_bytes =
        (static_cast<std::size_t>(s) + 1) * mem.aggregate_bytes;
    std::printf("  %3d shards         ... %zu bytes aggregation state\n", s,
                mem.points[i].aggregation_bytes);
  }
  mem.rss_kb = peak_rss_kb();
  std::printf("  peak RSS           ... %ld KiB (informational)\n",
              mem.rss_kb);
  return mem;
}

void write_json(const char* path, const Headline& h, const Identity& id,
                const Memory& mem) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"clients\": %" PRIu64 ",\n", h.clients);
  std::fprintf(f, "  \"runs_per_client\": %d,\n", h.runs);
  std::fprintf(f, "  \"shards\": %d,\n", h.shards);
  std::fprintf(f, "  \"jobs\": %d,\n", h.jobs);
  std::fprintf(f, "  \"wall_ms\": %.3f,\n", h.wall_ms);
  std::fprintf(f, "  \"clients_per_sec\": %.1f,\n", h.clients_per_sec());
  std::fprintf(f, "  \"samples\": %" PRIu64 ",\n", h.samples);
  std::fprintf(f, "  \"failed_clients\": %" PRIu64 ",\n", h.failed_clients);
  std::fprintf(f, "  \"identity\": {\n");
  std::fprintf(f, "    \"clients\": %" PRIu64 ",\n", id.clients);
  std::fprintf(f, "    \"report_bytes\": %zu,\n", id.report_bytes);
  std::fprintf(f, "    \"identical_shards\": %s\n",
               id.identical_shards ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"memory\": {\n");
  std::fprintf(f, "    \"aggregate_bytes\": %zu,\n", mem.aggregate_bytes);
  std::fprintf(f, "    \"independent_of_clients\": %s,\n",
               mem.independent_of_clients ? "true" : "false");
  std::fprintf(f, "    \"peak_rss_kb\": %ld,\n", mem.rss_kb);
  std::fprintf(f, "    \"per_shards\": [\n");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(f,
                 "      {\"shards\": %d, \"aggregation_bytes\": %zu}%s\n",
                 mem.points[i].shards, mem.points[i].aggregation_bytes,
                 i < 2 ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t clients = 100000;
  int shards = 64;
  int runs = 1;
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* s = value("--clients=")) {
      clients = std::strtoull(s, nullptr, 10);
    } else if (const char* s = value("--shards=")) {
      shards = std::atoi(s);
    } else if (const char* s = value("--runs=")) {
      runs = std::atoi(s);
    } else if (const char* s = value("--jobs=")) {
      jobs = std::atoi(s);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients=N] [--shards=N] [--runs=N] "
                   "[--jobs=N]\n",
                   argv[0]);
      return 2;
    }
  }

  benchutil::banner("campaign_scale: population campaign throughput & memory");

  const Headline h = bench_headline(clients, shards, runs, jobs);
  std::printf("\n");
  const Identity id = bench_identity(jobs);
  std::printf("\n");
  const Memory mem = bench_memory();

  write_json("BENCH_campaign_scale.json", h, id, mem);

  if (!id.identical_shards) {
    std::fprintf(stderr,
                 "FAIL: sharded campaign report differs from serial run\n");
    return 1;
  }
  benchutil::shape_check(mem.independent_of_clients,
                         "aggregation memory independent of client count");
  benchutil::shape_check(h.failed_clients == 0, "no clients failed");
  return 0;
}
