// Substrate micro-benchmarks (google-benchmark): the cost of the building
// blocks everything above runs on. Useful for regression-tracking the
// simulator itself.
#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "http/parser.h"
#include "sim/scheduler.h"
#include "stats/boxplot.h"
#include "ws/frame.h"
#include "ws/sha1.h"

using namespace bnm;

namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sched.schedule_after(sim::Duration::micros(static_cast<std::int64_t>(i % 997)),
                           [&sink] { ++sink; });
    }
    sched.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(10000);

void BM_HttpParseRequest(benchmark::State& state) {
  const std::string wire =
      http::HttpRequest{"GET", "/echo?r=1", "HTTP/1.1", {}, ""}.serialize();
  for (auto _ : state) {
    http::RequestParser parser;
    parser.feed(wire);
    auto req = parser.take();
    benchmark::DoNotOptimize(req);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParseRequest);

void BM_WsFrameRoundtrip(benchmark::State& state) {
  ws::Frame frame;
  frame.opcode = ws::Opcode::kBinary;
  frame.masked = true;
  frame.masking_key = 0xDEADBEEF;
  frame.payload.assign(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    const std::string wire = frame.encode();
    ws::FrameDecoder decoder;
    decoder.feed(wire);
    auto out = decoder.take();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WsFrameRoundtrip)->Arg(16)->Arg(1460)->Arg(64 * 1024);

void BM_Sha1(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    auto digest = ws::sha1(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096);

void BM_BoxStats(benchmark::State& state) {
  std::vector<double> xs;
  sim::Rng rng{5};
  for (int i = 0; i < state.range(0); ++i) xs.push_back(rng.normal(10, 3));
  for (auto _ : state) {
    auto b = stats::box_stats(xs);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_BoxStats)->Arg(50)->Arg(5000);

// One full two-phase WebSocket measurement through the whole stack:
// testbed + browser + RFC6455 + TCP + switch + capture.
void BM_EndToEndProbe(benchmark::State& state) {
  for (auto _ : state) {
    core::ExperimentConfig cfg;
    cfg.kind = methods::ProbeKind::kWebSocket;
    cfg.browser = browser::BrowserId::kChrome;
    cfg.os = browser::OsId::kUbuntu;
    cfg.runs = 1;
    auto series = core::run_experiment(cfg);
    benchmark::DoNotOptimize(series);
  }
}
BENCHMARK(BM_EndToEndProbe)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
