// Cost of the observability layer, and proof it cannot skew results.
//
// The obs contract (DESIGN.md §3e): metrics counters are always on and
// cost one thread-local relaxed add; profiling scopes and tracing are off
// by default and must be near-free while disabled; and nothing in the
// layer may perturb measurement results. Three sections:
//
//   1. Micro: ns/op for a raw uint64 add vs obs::Counter::add, a ProfScope
//      with profiling disabled vs enabled, and a guarded trace emit with
//      tracing disabled.
//   2. Experiment macro A/B: every method on one case, profiling disabled
//      vs enabled — samples must be bit-identical, and the *disabled*-path
//      cost (scope entries observed in the enabled pass x measured
//      disabled-scope ns, as a fraction of the disabled pass wall-clock)
//      must stay under 1%.
//   3. Registry determinism: a MetricsRegistry snapshot taken after a
//      parallel run_matrix must serialize byte-identically to the snapshot
//      after the same matrix run serially.
//
// Emits BENCH_obs_overhead.json; exits non-zero if any gate fails.
// Schema: docs/BENCH_SCHEMAS.md.
//
//   $ obs_overhead [--runs=N] [--jobs=N]   (default 20 runs per cell)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "sim/simulation.h"

using namespace bnm;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct MicroTimings {
  std::size_t iters = 0;
  double raw_add_ns = 0;
  double counter_add_ns = 0;
  double profscope_disabled_ns = 0;
  double profscope_enabled_ns = 0;
  double trace_emit_disabled_ns = 0;
};

MicroTimings bench_micro() {
  MicroTimings t;
  constexpr std::size_t kIters = 20000000;
  t.iters = kIters;

  // Raw baseline: what the cheapest possible counter would cost.
  {
    volatile std::uint64_t sink = 0;
    std::uint64_t local = 0;
    const auto a = Clock::now();
    for (std::size_t i = 0; i < kIters; ++i) local += i;
    const auto b = Clock::now();
    sink = local;
    (void)sink;
    t.raw_add_ns = ms_between(a, b) * 1e6 / kIters;
  }

  const obs::Counter counter = obs::MetricsRegistry::instance().counter(
      "bench.obs_overhead.scratch", "ops", "micro-bench scratch counter");
  {
    const auto a = Clock::now();
    for (std::size_t i = 0; i < kIters; ++i) counter.add(1);
    const auto b = Clock::now();
    t.counter_add_ns = ms_between(a, b) * 1e6 / kIters;
  }
  counter.reset();

  obs::prof::set_enabled(false);
  {
    const auto a = Clock::now();
    for (std::size_t i = 0; i < kIters; ++i) {
      BNM_PROF_SCOPE("bench.scratch_scope");
    }
    const auto b = Clock::now();
    t.profscope_disabled_ns = ms_between(a, b) * 1e6 / kIters;
  }

  obs::prof::set_enabled(true);
  {
    // Clock reads dominate here; fewer iterations keep the bench quick.
    constexpr std::size_t kEnabledIters = kIters / 20;
    const auto a = Clock::now();
    for (std::size_t i = 0; i < kEnabledIters; ++i) {
      BNM_PROF_SCOPE("bench.scratch_scope");
    }
    const auto b = Clock::now();
    t.profscope_enabled_ns = ms_between(a, b) * 1e6 / kEnabledIters;
  }
  obs::prof::set_enabled(false);
  obs::prof::reset();

  // The per-packet trace guard as the hot paths write it.
  {
    sim::Simulation sim{1};
    const auto a = Clock::now();
    for (std::size_t i = 0; i < kIters; ++i) {
      if (sim.trace().enabled()) {
        sim.trace().emit_instant(sim.now(), "bench", "never-reached");
      }
    }
    const auto b = Clock::now();
    t.trace_emit_disabled_ns = ms_between(a, b) * 1e6 / kIters;
  }

  std::printf("micro: %zu iterations\n", t.iters);
  std::printf("  raw uint64 add          ... %8.2f ns/op\n", t.raw_add_ns);
  std::printf("  Counter::add            ... %8.2f ns/op\n", t.counter_add_ns);
  std::printf("  ProfScope (disabled)    ... %8.2f ns/op\n",
              t.profscope_disabled_ns);
  std::printf("  ProfScope (enabled)     ... %8.2f ns/op\n",
              t.profscope_enabled_ns);
  std::printf("  trace guard (disabled)  ... %8.2f ns/op\n",
              t.trace_emit_disabled_ns);
  return t;
}

struct MacroTimings {
  std::size_t cells = 0;
  int runs = 0;
  int reps = 0;
  double disabled_ms = 0;  ///< best-of-reps, profiling off (the norm)
  double enabled_ms = 0;   ///< best-of-reps, profiling on
  std::uint64_t scope_entries = 0;  ///< ProfScope entries in one enabled pass
  double est_disabled_overhead_percent = 0;
  bool identical = true;
  double measured_overhead_percent() const {
    return disabled_ms > 0 ? (enabled_ms / disabled_ms - 1.0) * 100.0 : 0.0;
  }
};

std::vector<core::ExperimentConfig> method_cells(int runs) {
  std::vector<core::ExperimentConfig> cells;
  for (const auto kind : browser::all_probe_kinds()) {
    core::ExperimentConfig cfg;
    cfg.browser = browser::BrowserId::kChrome;
    cfg.os = browser::OsId::kUbuntu;
    cfg.kind = kind;
    cfg.runs = runs;
    cells.push_back(cfg);
  }
  return cells;
}

bool same_samples(const core::OverheadSeries& a,
                  const core::OverheadSeries& b) {
  if (a.failures != b.failures || a.samples.size() != b.samples.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const auto& x = a.samples[i];
    const auto& y = b.samples[i];
    if (x.d1_ms != y.d1_ms || x.d2_ms != y.d2_ms ||
        x.browser_rtt1_ms != y.browser_rtt1_ms ||
        x.browser_rtt2_ms != y.browser_rtt2_ms ||
        x.net_rtt1_ms != y.net_rtt1_ms || x.net_rtt2_ms != y.net_rtt2_ms ||
        x.connections_opened1 != y.connections_opened1 ||
        x.connections_opened2 != y.connections_opened2) {
      return false;
    }
  }
  return true;
}

MacroTimings bench_macro(int runs, const MicroTimings& micro) {
  MacroTimings t;
  t.runs = runs;
  t.reps = 5;
  const auto cells = method_cells(runs);
  t.cells = cells.size();

  std::printf("experiment hot path: %zu cells x %d runs, best of %d\n",
              t.cells, runs, t.reps);

  std::vector<core::OverheadSeries> off, on;
  double best_off = 0, best_on = 0;
  for (int rep = 0; rep < t.reps; ++rep) {
    obs::prof::set_enabled(false);
    const auto a = Clock::now();
    auto p = core::run_matrix(cells, 1);
    const auto b = Clock::now();

    obs::prof::reset();
    obs::prof::set_enabled(true);
    auto s = core::run_matrix(cells, 1);
    obs::prof::set_enabled(false);
    const auto c = Clock::now();

    if (rep == 0) {
      // Scope entries per enabled pass: the count of disabled-path branch
      // executions a normal (profiling-off) run would have performed.
      for (const auto& e : obs::prof::report()) t.scope_entries += e.calls;
    }

    const double pm = ms_between(a, b), sm = ms_between(b, c);
    if (rep == 0 || pm < best_off) best_off = pm;
    if (rep == 0 || sm < best_on) best_on = sm;
    if (rep == 0) {
      off = std::move(p);
      on = std::move(s);
    }
    benchutil::progress_dot();
  }
  std::printf("\n");
  t.disabled_ms = best_off;
  t.enabled_ms = best_on;

  for (std::size_t i = 0; i < off.size(); ++i) {
    if (!same_samples(off[i], on[i])) {
      t.identical = false;
      std::printf("  !! cell %zu (%s) differs with profiling enabled\n", i,
                  off[i].method_name.c_str());
    }
  }

  // The disabled path cannot be isolated by wall-clock A/B (it IS the
  // baseline), so gate on a rigorous estimate instead: every scope entry
  // costs micro.profscope_disabled_ns when profiling is off.
  if (t.disabled_ms > 0) {
    t.est_disabled_overhead_percent = 100.0 *
                                      static_cast<double>(t.scope_entries) *
                                      micro.profscope_disabled_ns /
                                      (t.disabled_ms * 1e6);
  }

  std::printf("  profiling off            ... %8.1f ms\n", t.disabled_ms);
  std::printf("  profiling on             ... %8.1f ms   (%+.2f%%)\n",
              t.enabled_ms, t.measured_overhead_percent());
  std::printf("  scope entries/pass       ... %llu\n",
              static_cast<unsigned long long>(t.scope_entries));
  std::printf("  est. disabled overhead   ... %8.4f %%\n",
              t.est_disabled_overhead_percent);
  std::printf("  results bit-identical: %s\n", t.identical ? "yes" : "NO");

  std::printf("\nprofile table (one enabled pass):\n%s",
              obs::prof::format_report(obs::prof::report()).c_str());
  obs::prof::reset();
  return t;
}

struct RegistryResult {
  std::size_t metrics = 0;
  std::size_t snapshot_bytes = 0;
  bool snapshot_identical = true;
};

RegistryResult bench_registry(int runs, int jobs) {
  RegistryResult r;
  const auto cells = method_cells(runs);
  // At least 4 workers even on single-core hosts: the point is to merge
  // shards from real threads, not to go fast.
  const int parallel_jobs =
      core::resolve_jobs(jobs > 0 ? jobs : 4, cells.size());

  obs::MetricsRegistry::instance().reset();
  core::run_matrix(cells, 1);
  const std::string serial = obs::MetricsRegistry::instance().snapshot().to_json();

  obs::MetricsRegistry::instance().reset();
  core::run_matrix(cells, parallel_jobs);
  const std::string parallel =
      obs::MetricsRegistry::instance().snapshot().to_json();

  r.metrics = obs::MetricsRegistry::instance().metric_count();
  r.snapshot_bytes = serial.size();
  r.snapshot_identical = serial == parallel;

  std::printf("registry: %zu metrics, snapshot %zu bytes\n", r.metrics,
              r.snapshot_bytes);
  std::printf("  serial vs %d-way parallel snapshot: %s\n", parallel_jobs,
              r.snapshot_identical ? "byte-identical" : "DIFFERS");
  return r;
}

void write_json(const char* path, const MicroTimings& u, const MacroTimings& m,
                const RegistryResult& r) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"micro\": {\n");
  std::fprintf(f, "    \"iters\": %zu,\n", u.iters);
  std::fprintf(f, "    \"raw_add_ns\": %.3f,\n", u.raw_add_ns);
  std::fprintf(f, "    \"counter_add_ns\": %.3f,\n", u.counter_add_ns);
  std::fprintf(f, "    \"profscope_disabled_ns\": %.3f,\n",
               u.profscope_disabled_ns);
  std::fprintf(f, "    \"profscope_enabled_ns\": %.3f,\n",
               u.profscope_enabled_ns);
  std::fprintf(f, "    \"trace_emit_disabled_ns\": %.3f\n",
               u.trace_emit_disabled_ns);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"experiment\": {\n");
  std::fprintf(f, "    \"cells\": %zu,\n", m.cells);
  std::fprintf(f, "    \"runs_per_cell\": %d,\n", m.runs);
  std::fprintf(f, "    \"best_of\": %d,\n", m.reps);
  std::fprintf(f, "    \"disabled_ms\": %.3f,\n", m.disabled_ms);
  std::fprintf(f, "    \"enabled_ms\": %.3f,\n", m.enabled_ms);
  std::fprintf(f, "    \"measured_overhead_percent\": %.3f,\n",
               m.measured_overhead_percent());
  std::fprintf(f, "    \"profiled_scope_entries\": %llu,\n",
               static_cast<unsigned long long>(m.scope_entries));
  std::fprintf(f, "    \"est_disabled_overhead_percent\": %.4f,\n",
               m.est_disabled_overhead_percent);
  std::fprintf(f, "    \"identical\": %s\n", m.identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"registry\": {\n");
  std::fprintf(f, "    \"metrics\": %zu,\n", r.metrics);
  std::fprintf(f, "    \"snapshot_bytes\": %zu,\n", r.snapshot_bytes);
  std::fprintf(f, "    \"snapshot_identical\": %s\n",
               r.snapshot_identical ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::options().runs = 20;  // overhead default; --runs=N overrides
  const auto& opts = benchutil::init(argc, argv);

  benchutil::banner("obs_overhead: disabled observability must be free");

  const MicroTimings u = bench_micro();
  std::printf("\n");
  const MacroTimings m = bench_macro(opts.runs, u);
  std::printf("\n");
  const RegistryResult r = bench_registry(opts.runs, opts.jobs);

  write_json("BENCH_obs_overhead.json", u, m, r);

  benchutil::shape_check(m.identical,
                         "profiling on/off leaves samples bit-identical");
  benchutil::shape_check(m.est_disabled_overhead_percent < 1.0,
                         "disabled-path observability overhead < 1%");
  benchutil::shape_check(r.snapshot_identical,
                         "registry snapshot serial == parallel");
  if (!m.identical || !r.snapshot_identical ||
      m.est_disabled_overhead_percent >= 1.0) {
    std::fprintf(stderr, "FAIL: observability gates violated\n");
    return 1;
  }
  return 0;
}
