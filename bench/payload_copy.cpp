// Payload copy accounting: how many payload bytes does the stack actually
// memcpy, now that packets carry refcounted Payload views instead of owned
// byte vectors?
//
// Three sections:
//
//   1. TCP bulk transfer (the headline): push a large buffer through the
//      testbed's echo server and compare bytes deep-copied against bytes
//      merely aliased. Every aliased byte is a copy the old owned-vector
//      design paid (per segmentation chunk, per retransmit-queue entry, per
//      capture record, per reassembly insert, per echo re-send). Expected
//      reduction: >= 5x.
//   2. Browser probe matrix: the same counters over a slice of the
//      Figure-3 experiment matrix. Handshake-heavy and string-built, so
//      unavoidable string->buffer creation copies dilute the ratio; shown
//      for context, not checked.
//   3. Micro: ns per packet hand-off for an aliasing Payload copy vs the
//      old deep vector copy, at a typical MSS-sized payload.
//
// Emits BENCH_payload_copy.json in the working directory.
//
//   $ payload_copy [--runs=N] [--jobs=N]   (default 12 runs per cell)
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/testbed.h"
#include "net/packet.h"
#include "net/payload.h"
#include "net/tcp.h"

using namespace bnm;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct CopyCounts {
  std::uint64_t deep_bytes = 0;     ///< bytes actually memcpy'd
  std::uint64_t aliased_bytes = 0;  ///< copies the old design would have made
  std::uint64_t buffers = 0;
  std::uint64_t old_design_bytes() const { return deep_bytes + aliased_bytes; }
  double reduction() const {
    return static_cast<double>(old_design_bytes()) /
           static_cast<double>(deep_bytes > 0 ? deep_bytes : 1);
  }
  void print() const {
    std::printf("  deep-copied bytes  ... %12llu\n",
                static_cast<unsigned long long>(deep_bytes));
    std::printf("  aliased bytes      ... %12llu  (old design: deep copies)\n",
                static_cast<unsigned long long>(aliased_bytes));
    std::printf("  buffers allocated  ... %12llu\n",
                static_cast<unsigned long long>(buffers));
    if (deep_bytes == 0) {
      std::printf("  old/new copy ratio ...         inf (no deep copies)\n");
    } else {
      std::printf("  old/new copy ratio ... %11.1fx\n", reduction());
    }
  }
};

CopyCounts snapshot_stats() {
  CopyCounts c;
  c.deep_bytes = net::PayloadStats::deep_copy_bytes();
  c.aliased_bytes = net::PayloadStats::aliased_bytes();
  c.buffers = net::PayloadStats::buffers_allocated();
  return c;
}

struct BulkResult {
  std::size_t transfer_bytes = 0;
  std::size_t echoed_bytes = 0;
  CopyCounts counts;
};

// One client->echo->client round trip of a bulk buffer: the TCP-heavy
// workload where per-hop copying dominates (segmentation, capture taps,
// retransmit queue, reassembly, and the echo server's re-send).
BulkResult bench_tcp_bulk() {
  BulkResult r;
  constexpr std::size_t kTransfer = 256 * 1024;
  r.transfer_bytes = kTransfer;

  core::Testbed::Config cfg;
  cfg.tcp.congestion_control = true;
  core::Testbed tb{cfg};

  net::PayloadStats::reset();

  std::size_t echoed = 0;
  std::shared_ptr<net::TcpConnection> conn;
  net::TcpCallbacks cbs;
  cbs.on_connect = [&] {
    conn->send(std::vector<std::uint8_t>(kTransfer, 0x42));
  };
  cbs.on_data = [&](const net::Payload& d) {
    echoed += d.size();
    if (echoed >= kTransfer) conn->close();
  };
  conn = tb.client().tcp_connect(tb.tcp_echo_endpoint(), std::move(cbs));
  tb.sim().scheduler().run();
  conn.reset();

  r.echoed_bytes = echoed;
  r.counts = snapshot_stats();

  std::printf("tcp bulk: %zu bytes client -> echo -> client (%zu echoed)\n",
              r.transfer_bytes, r.echoed_bytes);
  r.counts.print();
  return r;
}

struct MatrixResult {
  std::size_t cells = 0;
  int runs = 0;
  CopyCounts counts;
};

MatrixResult bench_probe_matrix(int runs) {
  MatrixResult r;
  r.runs = runs;

  std::vector<core::ExperimentConfig> cells;
  for (const auto& who : browser::paper_cases()) {
    for (const auto kind : browser::all_probe_kinds()) {
      cells.push_back(benchutil::make_config(who.browser, who.os, kind, runs));
    }
  }
  r.cells = cells.size();

  std::printf("probe matrix: %zu cells x %d runs (serial; global counters)\n",
              r.cells, runs);
  net::PayloadStats::reset();
  const auto t0 = Clock::now();
  const auto series = core::run_matrix(cells, /*jobs=*/1);
  const auto t1 = Clock::now();
  r.counts = snapshot_stats();

  std::size_t failures = 0;
  for (const auto& s : series) failures += s.failures;
  std::printf("  wall time          ... %8.1f ms (%zu failures)\n",
              ms_between(t0, t1), failures);
  r.counts.print();
  return r;
}

struct Micro {
  std::size_t payload_bytes = 0;
  std::size_t handoffs = 0;
  double alias_ns = 0;  ///< per hand-off, Payload (refcount bump)
  double deep_ns = 0;   ///< per hand-off, old design (vector deep copy)
};

Micro bench_handoff() {
  Micro m;
  constexpr std::size_t kPayload = 1400;  // ~MSS worth of probe data
  constexpr std::size_t kHandoffs = 200000;
  m.payload_bytes = kPayload;
  m.handoffs = kHandoffs;

  volatile std::uint8_t sink = 0;

  {
    const net::Payload src{std::vector<std::uint8_t>(kPayload, 0x42)};
    const auto a0 = Clock::now();
    for (std::size_t i = 0; i < kHandoffs; ++i) {
      net::Payload hop = src;  // what a forwarding hop / capture tap pays now
      sink = sink + hop[i % kPayload];
    }
    const auto a1 = Clock::now();
    m.alias_ns = ms_between(a0, a1) * 1e6 / kHandoffs;
  }

  {
    const std::vector<std::uint8_t> src(kPayload, 0x42);
    const auto d0 = Clock::now();
    for (std::size_t i = 0; i < kHandoffs; ++i) {
      std::vector<std::uint8_t> hop = src;  // what it used to pay
      sink = sink + hop[i % kPayload];
    }
    const auto d1 = Clock::now();
    m.deep_ns = ms_between(d0, d1) * 1e6 / kHandoffs;
  }

  std::printf("hand-off: %zu-byte payload, %zu hops per variant\n",
              m.payload_bytes, m.handoffs);
  std::printf("  Payload alias copy ... %8.1f ns/packet\n", m.alias_ns);
  std::printf("  vector deep copy   ... %8.1f ns/packet\n", m.deep_ns);
  return m;
}

void print_counts_json(std::FILE* f, const CopyCounts& c) {
  std::fprintf(f, "    \"deep_copy_bytes\": %llu,\n",
               static_cast<unsigned long long>(c.deep_bytes));
  std::fprintf(f, "    \"aliased_bytes\": %llu,\n",
               static_cast<unsigned long long>(c.aliased_bytes));
  std::fprintf(f, "    \"old_design_bytes\": %llu,\n",
               static_cast<unsigned long long>(c.old_design_bytes()));
  std::fprintf(f, "    \"buffers_allocated\": %llu,\n",
               static_cast<unsigned long long>(c.buffers));
  std::fprintf(f, "    \"copy_reduction\": %.2f\n", c.reduction());
}

void write_json(const char* path, const BulkResult& b, const MatrixResult& x,
                const Micro& m) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"tcp_bulk\": {\n");
  std::fprintf(f, "    \"transfer_bytes\": %zu,\n", b.transfer_bytes);
  std::fprintf(f, "    \"echoed_bytes\": %zu,\n", b.echoed_bytes);
  print_counts_json(f, b.counts);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"probe_matrix\": {\n");
  std::fprintf(f, "    \"cells\": %zu,\n", x.cells);
  std::fprintf(f, "    \"runs_per_cell\": %d,\n", x.runs);
  print_counts_json(f, x.counts);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"handoff\": {\n");
  std::fprintf(f, "    \"payload_bytes\": %zu,\n", m.payload_bytes);
  std::fprintf(f, "    \"handoffs\": %zu,\n", m.handoffs);
  std::fprintf(f, "    \"alias_ns_per_packet\": %.2f,\n", m.alias_ns);
  std::fprintf(f, "    \"deep_copy_ns_per_packet\": %.2f\n", m.deep_ns);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::options().runs = 12;  // perf default; --runs=N overrides
  const auto& opts = benchutil::init(argc, argv);

  benchutil::banner("payload_copy: payload byte-copy accounting");

  const BulkResult b = bench_tcp_bulk();
  std::printf("\n");
  const MatrixResult x = bench_probe_matrix(opts.runs);
  std::printf("\n");
  const Micro m = bench_handoff();

  write_json("BENCH_payload_copy.json", b, x, m);

  const bool complete = b.echoed_bytes >= b.transfer_bytes;
  benchutil::shape_check(complete, "bulk transfer echoed back in full");
  benchutil::shape_check(b.counts.reduction() >= 5.0,
                         "zero-copy payloads cut copied bytes >=5x (TCP bulk)");
  return complete && b.counts.reduction() >= 5.0 ? 0 : 1;
}
