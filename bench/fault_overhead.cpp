// Cost of the fault-injection subsystem when it is switched off.
//
// The FaultInjector is designed so a disabled stage (empty FaultPlan) is a
// zero-draw pass-through: it must neither perturb results (bit-identity)
// nor cost measurable time on the experiment hot path. Two sections:
//
//   1. Pipeline micro-benchmark: packets through an empty-plan injector vs
//      a direct sink call, ns/packet.
//   2. Experiment macro-benchmark: every method on one case, baseline tree
//      vs the same tree with inactive injectors spliced into both
//      directions. Wall-clock overhead (best-of-R) must stay under 1%, and
//      every sample must be bit-identical.
//
// Emits BENCH_fault_overhead.json in the working directory.
//
//   $ fault_overhead [--runs=N]   (default 20 runs per cell)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "net/fault.h"
#include "sim/simulation.h"

using namespace bnm;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct MicroTimings {
  std::size_t packets = 0;
  double direct_ns = 0;    ///< per packet, sink called directly
  double disabled_ns = 0;  ///< per packet, through an empty-plan injector
  double active_ns = 0;    ///< per packet, through a lossy injector
};

struct CountSink final : net::PacketSink {
  std::uint64_t count = 0;
  void handle_packet(net::Packet) override { ++count; }
};

net::Packet make_packet(std::uint64_t id) {
  net::Packet p;
  p.id = id;
  p.protocol = net::Protocol::kUdp;
  p.src = {net::IpAddress{10, 0, 0, 1}, 1111};
  p.dst = {net::IpAddress{10, 0, 0, 2}, 2222};
  p.payload = net::to_bytes("fault-overhead-probe");
  return p;
}

MicroTimings bench_micro() {
  MicroTimings t;
  constexpr std::size_t kPackets = 2000000;
  t.packets = kPackets;

  CountSink sink;
  {
    const auto a = Clock::now();
    for (std::size_t i = 0; i < kPackets; ++i) {
      sink.handle_packet(make_packet(i));
    }
    const auto b = Clock::now();
    t.direct_ns = ms_between(a, b) * 1e6 / kPackets;
  }

  sim::Simulation sim{1};
  net::FaultInjector disabled{sim, net::FaultPlan{}};
  disabled.set_output(&sink);
  {
    const auto a = Clock::now();
    for (std::size_t i = 0; i < kPackets; ++i) {
      disabled.handle_packet(make_packet(i));
    }
    const auto b = Clock::now();
    t.disabled_ns = ms_between(a, b) * 1e6 / kPackets;
  }

  net::FaultPlan lossy;
  lossy.loss_probability = 0.1;
  net::FaultInjector active{sim, lossy};
  active.set_output(&sink);
  {
    const auto a = Clock::now();
    for (std::size_t i = 0; i < kPackets; ++i) {
      active.handle_packet(make_packet(i));
    }
    const auto b = Clock::now();
    t.active_ns = ms_between(a, b) * 1e6 / kPackets;
  }

  std::printf("pipeline stage: %zu packets\n", t.packets);
  std::printf("  direct sink call   ... %8.1f ns/packet\n", t.direct_ns);
  std::printf("  disabled injector  ... %8.1f ns/packet\n", t.disabled_ns);
  std::printf("  10%% loss injector  ... %8.1f ns/packet\n", t.active_ns);
  return t;
}

struct MacroTimings {
  std::size_t cells = 0;
  int runs = 0;
  int reps = 0;
  double baseline_ms = 0;  ///< best-of-reps, no injector objects at all
  double disabled_ms = 0;  ///< best-of-reps, inactive injectors spliced in
  bool identical = true;
  double overhead_percent() const {
    return baseline_ms > 0 ? (disabled_ms / baseline_ms - 1.0) * 100.0 : 0.0;
  }
};

std::vector<core::ExperimentConfig> method_cells(int runs, bool staged) {
  std::vector<core::ExperimentConfig> cells;
  for (const auto kind : browser::all_probe_kinds()) {
    core::ExperimentConfig cfg;
    cfg.browser = browser::BrowserId::kChrome;
    cfg.os = browser::OsId::kUbuntu;
    cfg.kind = kind;
    cfg.runs = runs;
    if (staged) {
      // Inactive stages in both directions: the hot path now crosses two
      // extra PacketSink hops per packet, with every knob off.
      cfg.testbed.faults_to_server = net::FaultPlan{};
      cfg.testbed.faults_from_server = net::FaultPlan{};
    }
    cells.push_back(cfg);
  }
  return cells;
}

bool same_samples(const core::OverheadSeries& a, const core::OverheadSeries& b) {
  if (a.failures != b.failures || a.samples.size() != b.samples.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const auto& x = a.samples[i];
    const auto& y = b.samples[i];
    if (x.d1_ms != y.d1_ms || x.d2_ms != y.d2_ms ||
        x.browser_rtt1_ms != y.browser_rtt1_ms ||
        x.browser_rtt2_ms != y.browser_rtt2_ms ||
        x.net_rtt1_ms != y.net_rtt1_ms || x.net_rtt2_ms != y.net_rtt2_ms ||
        x.connections_opened1 != y.connections_opened1 ||
        x.connections_opened2 != y.connections_opened2) {
      return false;
    }
  }
  return true;
}

MacroTimings bench_macro(int runs) {
  MacroTimings t;
  t.runs = runs;
  t.reps = 5;
  const auto plain_cells = method_cells(runs, /*staged=*/false);
  const auto staged_cells = method_cells(runs, /*staged=*/true);
  t.cells = plain_cells.size();

  std::printf("experiment hot path: %zu cells x %d runs, best of %d\n",
              t.cells, runs, t.reps);

  std::vector<core::OverheadSeries> plain, staged;
  double best_plain = 0, best_staged = 0;
  for (int rep = 0; rep < t.reps; ++rep) {
    const auto a = Clock::now();
    auto p = core::run_matrix(plain_cells, 1);
    const auto b = Clock::now();
    auto s = core::run_matrix(staged_cells, 1);
    const auto c = Clock::now();
    const double pm = ms_between(a, b), sm = ms_between(b, c);
    if (rep == 0 || pm < best_plain) best_plain = pm;
    if (rep == 0 || sm < best_staged) best_staged = sm;
    if (rep == 0) {
      plain = std::move(p);
      staged = std::move(s);
    }
    benchutil::progress_dot();
  }
  std::printf("\n");
  t.baseline_ms = best_plain;
  t.disabled_ms = best_staged;

  for (std::size_t i = 0; i < plain.size(); ++i) {
    if (!same_samples(plain[i], staged[i])) {
      t.identical = false;
      std::printf("  !! cell %zu (%s) differs with inactive injectors\n", i,
                  plain[i].method_name.c_str());
    }
  }

  std::printf("  baseline (no stages)     ... %8.1f ms\n", t.baseline_ms);
  std::printf("  disabled injectors       ... %8.1f ms   (%+.2f%%)\n",
              t.disabled_ms, t.overhead_percent());
  std::printf("  results bit-identical: %s\n", t.identical ? "yes" : "NO");
  return t;
}

void write_json(const char* path, const MicroTimings& u,
                const MacroTimings& m) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"pipeline\": {\n");
  std::fprintf(f, "    \"packets\": %zu,\n", u.packets);
  std::fprintf(f, "    \"direct_ns_per_packet\": %.2f,\n", u.direct_ns);
  std::fprintf(f, "    \"disabled_ns_per_packet\": %.2f,\n", u.disabled_ns);
  std::fprintf(f, "    \"active_ns_per_packet\": %.2f\n", u.active_ns);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"experiment\": {\n");
  std::fprintf(f, "    \"cells\": %zu,\n", m.cells);
  std::fprintf(f, "    \"runs_per_cell\": %d,\n", m.runs);
  std::fprintf(f, "    \"best_of\": %d,\n", m.reps);
  std::fprintf(f, "    \"baseline_ms\": %.3f,\n", m.baseline_ms);
  std::fprintf(f, "    \"disabled_ms\": %.3f,\n", m.disabled_ms);
  std::fprintf(f, "    \"overhead_percent\": %.3f,\n", m.overhead_percent());
  std::fprintf(f, "    \"identical\": %s\n", m.identical ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::options().runs = 20;  // overhead default; --runs=N overrides
  const auto& opts = benchutil::init(argc, argv);

  benchutil::banner("fault_overhead: disabled fault stages must be free");

  const MicroTimings u = bench_micro();
  std::printf("\n");
  const MacroTimings m = bench_macro(opts.runs);

  write_json("BENCH_fault_overhead.json", u, m);

  benchutil::shape_check(m.identical,
                         "inactive injectors leave samples bit-identical");
  benchutil::shape_check(m.overhead_percent() < 1.0,
                         "disabled injector wall-clock overhead < 1%");
  if (!m.identical) {
    std::fprintf(stderr, "FAIL: inactive injectors perturbed results\n");
    return 1;
  }
  return 0;
}
