// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints a "paper vs measured" section; PASS/CHECK markers are
// qualitative (shape) checks, not absolute-number assertions - the paper's
// absolute values came from 2012-era hardware and real browsers, ours from
// the calibrated testbed simulator.
//
// Common CLI, shared by every bench binary (call benchutil::init first):
//   --runs=N   repetitions per experiment cell (default 50, the paper's)
//   --jobs=N   worker threads for experiment matrices (default: all cores)
// Anything else is returned as a positional argument (e.g. fig3's CSV path).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/parallel_runner.h"
#include "report/boxplot_render.h"
#include "report/cdf_render.h"
#include "report/table.h"

namespace bnm::benchutil {

/// Default repetition count (the paper's "we run it for 50 times").
inline constexpr int kRuns = 50;

struct Options {
  int runs = kRuns;
  int jobs = 0;  ///< 0 = auto (hardware concurrency)
  std::vector<std::string> positional;
};

inline Options& options() {
  static Options opts;
  return opts;
}

/// Parse the shared bench CLI into options(). Returns the options for
/// convenience; exits with a usage message on malformed flags.
inline Options& init(int argc, char** argv) {
  Options& opts = options();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, int& out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      char* end = nullptr;
      const long v = std::strtol(arg.c_str() + std::strlen(prefix), &end, 10);
      if (end == nullptr || *end != '\0' || v <= 0) {
        std::fprintf(stderr, "invalid value in '%s'\n", arg.c_str());
        std::exit(2);
      }
      out = static_cast<int>(v);
      return true;
    };
    if (int_flag("--runs=", opts.runs) || int_flag("--jobs=", opts.jobs)) {
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--runs=N] [--jobs=N] [args...]\n", argv[0]);
      std::exit(0);
    }
    opts.positional.push_back(arg);
  }
  return opts;
}

/// Banner for a table/figure section.
inline void banner(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void shape_check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "DEVIATES", what.c_str());
}

inline void progress_dot() {
  std::printf(".");
  std::fflush(stdout);
}

/// Build one matrix cell. runs <= 0 picks up the --runs value.
inline core::ExperimentConfig make_config(browser::BrowserId b,
                                          browser::OsId os,
                                          methods::ProbeKind kind,
                                          int runs = 0,
                                          bool java_nanotime = false,
                                          bool appletviewer = false) {
  core::ExperimentConfig cfg;
  cfg.browser = b;
  cfg.os = os;
  cfg.kind = kind;
  cfg.runs = runs > 0 ? runs : options().runs;
  cfg.java_use_nanotime = java_nanotime;
  cfg.java_via_appletviewer = appletviewer;
  return cfg;
}

/// Run one case and return the series (prints a progress dot).
inline core::OverheadSeries run_case(browser::BrowserId b, browser::OsId os,
                                     methods::ProbeKind kind,
                                     int runs = 0,
                                     bool java_nanotime = false,
                                     bool appletviewer = false) {
  progress_dot();
  return core::run_experiment(
      make_config(b, os, kind, runs, java_nanotime, appletviewer));
}

/// Run a batch of cells through the parallel runner, honouring --jobs and
/// printing one progress dot per completed cell. Results in input order,
/// byte-identical to running each cell serially.
inline std::vector<core::OverheadSeries> run_cases(
    const std::vector<core::ExperimentConfig>& cells) {
  return core::run_matrix(cells, options().jobs,
                          [](std::size_t, std::size_t) { progress_dot(); });
}

/// Box-plot rows ("<label> d1" / "<label> d2") for one series.
inline void add_box_rows(std::vector<report::BoxRow>& rows,
                         const core::OverheadSeries& s) {
  if (s.samples.empty()) return;
  rows.push_back({s.case_label + " d1", s.d1_box()});
  rows.push_back({s.case_label + " d2", s.d2_box()});
}

}  // namespace bnm::benchutil
