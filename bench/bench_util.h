// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints a "paper vs measured" section; PASS/CHECK markers are
// qualitative (shape) checks, not absolute-number assertions - the paper's
// absolute values came from 2012-era hardware and real browsers, ours from
// the calibrated testbed simulator.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "report/boxplot_render.h"
#include "report/cdf_render.h"
#include "report/table.h"

namespace bnm::benchutil {

/// Default repetition count (the paper's "we run it for 50 times").
inline constexpr int kRuns = 50;

/// Banner for a table/figure section.
inline void banner(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void shape_check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "DEVIATES", what.c_str());
}

/// Run one case and return the series (prints a progress dot).
inline core::OverheadSeries run_case(browser::BrowserId b, browser::OsId os,
                                     methods::ProbeKind kind,
                                     int runs = kRuns,
                                     bool java_nanotime = false,
                                     bool appletviewer = false) {
  core::ExperimentConfig cfg;
  cfg.browser = b;
  cfg.os = os;
  cfg.kind = kind;
  cfg.runs = runs;
  cfg.java_use_nanotime = java_nanotime;
  cfg.java_via_appletviewer = appletviewer;
  std::fflush(stdout);
  return core::run_experiment(cfg);
}

/// Box-plot rows ("<label> d1" / "<label> d2") for one series.
inline void add_box_rows(std::vector<report::BoxRow>& rows,
                         const core::OverheadSeries& s) {
  if (s.samples.empty()) return;
  rows.push_back({s.case_label + " d1", s.d1_box()});
  rows.push_back({s.case_label + " d2", s.d2_box()});
}

}  // namespace bnm::benchutil
