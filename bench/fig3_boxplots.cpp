// Figure 3 reproduction: box plots of the delay overheads, one panel per
// measurement method, eight browser-OS cases each (Δd1 red / Δd2 cyan in
// the paper; "d1"/"d2" rows here).
//
// Shape checks encode the paper's Section 4 findings:
//   - HTTP-based methods: overheads too large to ignore (XHR: few to tens
//     of ms; Flash: 20-100 ms medians; DOM: mostly < 5 ms).
//   - Socket-based methods: medians mostly < 1 ms; WebSocket most stable.
//   - Java applet methods under-estimate on Windows (negative overheads).
#include <cmath>

#include "bench_util.h"
#include "core/appraisal.h"
#include "methods/registry.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;

namespace {

struct PanelExpectation {
  const char* note;
  double median_lo_ms;  // expected range for the bulk of Δd2 medians
  double median_hi_ms;
};

PanelExpectation expectation(methods::ProbeKind k) {
  using K = methods::ProbeKind;
  switch (k) {
    case K::kXhrGet:
    case K::kXhrPost:
      return {"XHR: a few ms to tens of ms", 2, 30};
    case K::kDom:
      return {"DOM: most medians < 5 ms (best HTTP method)", 0.5, 8};
    case K::kFlashGet:
    case K::kFlashPost:
      return {"Flash HTTP: 20-100 ms medians, worst variability", 15, 110};
    case K::kFlashSocket:
      return {"Flash socket: small (< ~3 ms medians)", 0, 4};
    case K::kJavaGet:
    case K::kJavaPost:
      return {"Java HTTP: small, can be negative on Windows", -6, 8};
    case K::kJavaSocket:
    case K::kJavaUdp:
      return {"Java socket: ~0 ms medians, Windows quantization spread", -4, 2};
    case K::kWebSocket:
      return {"WebSocket: most accurate/consistent native method", -1, 1.5};
  }
  return {"", 0, 0};
}

}  // namespace

int main(int argc, char** argv) {
  const auto& opts = benchutil::init(argc, argv);
  banner("Figure 3: box plots of the delay overheads (by method)");
  std::printf(
      "testbed: 100 Mbps switched Ethernet, +50 ms server-side netem delay,\n"
      "%d runs per case; d1 = fresh object, d2 = object reused (paper's\n"
      "delta-d1 / delta-d2). Units: ms.\n",
      opts.runs);

  // Optional raw-sample export for external plotting:
  //   fig3_boxplots [--runs=N] [--jobs=N] /path/to/fig3_samples.csv
  std::FILE* csv = nullptr;
  if (!opts.positional.empty()) {
    csv = std::fopen(opts.positional.front().c_str(), "w");
    if (csv) {
      std::fprintf(csv, "method,case,run,d1_ms,d2_ms,net_rtt2_ms\n");
    } else {
      std::fprintf(stderr, "cannot open %s for CSV export\n",
                   opts.positional.front().c_str());
    }
  }

  const char* panel = "abcdefghij";
  int panel_idx = 0;
  // Figure 3's panel order.
  const methods::ProbeKind kinds[] = {
      methods::ProbeKind::kXhrGet,     methods::ProbeKind::kXhrPost,
      methods::ProbeKind::kDom,        methods::ProbeKind::kWebSocket,
      methods::ProbeKind::kFlashGet,   methods::ProbeKind::kFlashPost,
      methods::ProbeKind::kFlashSocket, methods::ProbeKind::kJavaGet,
      methods::ProbeKind::kJavaPost,   methods::ProbeKind::kJavaSocket};

  for (const auto kind : kinds) {
    const auto exp = expectation(kind);
    banner(std::string{"Figure 3("} + panel[panel_idx++] + "): " +
           probe_kind_name(kind) + "  --  " + exp.note);

    std::vector<report::BoxRow> rows;
    report::TextTable medians({"case", "median d1", "median d2", "IQR d2",
                               "min d1", "max d2"});
    int in_range = 0, cases_run = 0;
    std::vector<core::OverheadSeries> panel_series;

    // One panel = one batch of independent cells for the parallel runner.
    std::vector<core::ExperimentConfig> cells;
    for (const auto& c : browser::paper_cases()) {
      // Table 2: IE9 and Safari 5 lack WebSocket; skip those cases like
      // the paper's Figure 3(d) does.
      if (kind == methods::ProbeKind::kWebSocket) {
        const auto profile = browser::make_profile(c.browser, c.os);
        if (!profile.supports_websocket) continue;
      }
      cells.push_back(benchutil::make_config(c.browser, c.os, kind));
    }
    for (const auto& series : benchutil::run_cases(cells)) {
      if (series.samples.empty()) {
        std::printf("  %s: FAILED (%s)\n", series.case_label.c_str(),
                    series.first_error.c_str());
        continue;
      }
      ++cases_run;
      if (csv) {
        int run = 0;
        for (const auto& s : series.samples) {
          std::fprintf(csv, "\"%s\",\"%s\",%d,%.6f,%.6f,%.6f\n",
                       probe_kind_name(kind), series.case_label.c_str(), run++,
                       s.d1_ms, s.d2_ms, s.net_rtt2_ms);
        }
      }
      panel_series.push_back(series);
      benchutil::add_box_rows(rows, series);
      const auto b1 = series.d1_box();
      const auto b2 = series.d2_box();
      using T = report::TextTable;
      medians.add_row({series.case_label, T::fmt(b1.median, 2),
                       T::fmt(b2.median, 2), T::fmt(b2.iqr(), 2),
                       T::fmt(b1.whisker_lo, 2), T::fmt(b2.whisker_hi, 2)});
      if (b2.median >= exp.median_lo_ms && b2.median <= exp.median_hi_ms) {
        ++in_range;
      }
    }

    report::BoxPlotRenderer renderer;
    std::printf("%s\n", renderer.render(rows).c_str());
    std::printf("%s\n", medians.render().c_str());
    const auto appraisal = core::appraise_method(kind, panel_series);
    std::printf("cross-case consistency: spread of medians %.1f ms, min "
                "pairwise KS p-value %.3f\n",
                appraisal.cross_case_spread_ms, appraisal.min_pairwise_ks_p);
    shape_check(in_range >= cases_run - 1,
                std::string{"bulk of d2 medians inside the paper's band ["} +
                    report::TextTable::fmt(exp.median_lo_ms, 1) + ", " +
                    report::TextTable::fmt(exp.median_hi_ms, 1) + "] ms (" +
                    std::to_string(in_range) + "/" +
                    std::to_string(cases_run) + ")");
  }

  if (csv) {
    std::fclose(csv);
    std::printf("\n(raw samples exported to %s)\n", argv[1]);
  }

  banner("Figure 3 cross-method findings");
  std::printf(
      "  - socket-based methods incur much lower overheads than HTTP-based\n"
      "  - Flash GET/POST are the least reliable (highest medians and\n"
      "    cross-browser variability)\n"
      "  - Java applet methods under-estimate RTT on Windows (negative d)\n");
  return 0;
}
