// Extension: loss and reordering measurement through the browser (the Java
// UDP method of Table 1), validating the paper's Section 2 claim that the
// delay overhead "does not impact packet loss and reordering measurement" -
// unlike RTT, jitter and throughput, which it visibly corrupts.
//
// Sweep: configured link loss 0/2/10%, and a reordering-prone netem
// (jitter with overtaking allowed).
#include "bench_util.h"
#include "core/loss_experiment.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;
using T = report::TextTable;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  banner("Extension: browser-level vs capture-level loss rates");
  report::TextTable loss_table({"configured loss", "probes", "browser loss",
                                "capture loss", "disagreement"});
  bool all_agree = true;
  bool tracks_configured = true;
  for (const double loss : {0.0, 0.02, 0.10}) {
    core::LossReorderingExperiment::Config cfg;
    cfg.probes = 400;
    cfg.testbed.link_loss_probability = loss;
    core::LossReorderingExperiment exp{cfg};
    const auto r = exp.run();
    loss_table.add_row({T::fmt(loss * 100, 0) + "%",
                        std::to_string(r.probes_sent),
                        T::fmt(r.browser_loss_rate() * 100, 2) + "%",
                        T::fmt(r.net_loss_rate() * 100, 2) + "%",
                        T::fmt(r.loss_rate_error() * 100, 2) + "pp"});
    if (r.loss_rate_error() > 0.005) all_agree = false;
    // Round-trip survival: (1-p)^2 per probe.
    const double expected = 1.0 - (1.0 - loss) * (1.0 - loss);
    if (std::abs(r.net_loss_rate() - expected) > 0.05) {
      tracks_configured = false;
    }
  }
  std::printf("%s\n", loss_table.render().c_str());
  shape_check(all_agree,
              "browser and capture agree on the loss rate (paper Section 2: "
              "no overhead impact on loss)");
  shape_check(tracks_configured,
              "measured loss tracks the configured two-way loss probability");

  banner("Extension: reordering measurement");
  report::TextTable ro({"netem jitter (reorder allowed)", "browser reordered",
                        "capture reordered"});
  bool reorder_agrees = true;
  bool reorder_appears = false;
  for (const int jitter_ms : {0, 30}) {
    core::LossReorderingExperiment::Config cfg;
    cfg.probes = 300;
    cfg.probe_interval = sim::Duration::millis(10);
    cfg.testbed.server_jitter = sim::Duration::millis(jitter_ms);
    cfg.testbed.allow_reorder = jitter_ms > 0;
    core::LossReorderingExperiment exp{cfg};
    const auto r = exp.run();
    ro.add_row({std::to_string(jitter_ms) + " ms",
                std::to_string(r.browser_reordered),
                std::to_string(r.net_reordered)});
    if (std::abs(r.browser_reordered - r.net_reordered) > 3) {
      reorder_agrees = false;
    }
    if (jitter_ms > 0 && r.net_reordered > 10) reorder_appears = true;
  }
  std::printf("%s\n", ro.render().c_str());
  shape_check(reorder_appears,
              "reordering netem produces out-of-order arrivals");
  shape_check(reorder_agrees,
              "browser-level reordering counts match the capture");

  std::printf(
      "\nconclusion: the browser is a fine place to measure loss and\n"
      "reordering; it is delay-derived metrics that need the paper's care.\n");
  return 0;
}
