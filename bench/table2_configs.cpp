// Table 2 reproduction: configurations of the browsers and systems used in
// the experiments, generated from the profile tables.
#include "bench_util.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  banner("Table 2: browser/system configurations (from profiles)");

  report::TextTable table(
      {"OS", "Browser", "Version", "Flash", "Java applet", "WebSocket"});
  std::string last_os;
  int ws_supported = 0;
  for (const auto& c : browser::paper_cases()) {
    const auto p = browser::make_profile(c.browser, c.os);
    const std::string os = browser::os_name(c.os);
    if (!last_os.empty() && os != last_os) table.add_rule();
    last_os = os;
    table.add_row({os, browser::browser_name(c.browser), p.browser_version,
                   p.flash_version, p.java_version,
                   p.supports_websocket ? "yes" : "no"});
    if (p.supports_websocket) ++ws_supported;
  }
  std::printf("%s\n", table.render().c_str());

  shape_check(browser::paper_cases().size() == 8,
              "eight browser-OS cases (5 on Windows, 3 on Ubuntu)");
  shape_check(ws_supported == 6,
              "IE 9 and Safari 5 lack WebSocket; the other six support it");
  shape_check(!browser::case_supported(browser::BrowserId::kIe,
                                       browser::OsId::kUbuntu) &&
                  !browser::case_supported(browser::BrowserId::kSafari,
                                           browser::OsId::kUbuntu),
              "IE/Safari are not available on Ubuntu");

  banner("Testbed (Figure 2)");
  core::Testbed::Config cfg;
  std::printf(
      "two machines <-> 100 Mbps switched Ethernet (configured %.0f Mbps)\n"
      "server-side netem delay: %s (without it the <1 ms link RTT is too\n"
      "small to sample); client runs WinDump/tcpdump equivalent capture\n"
      "with %s timestamp jitter.\n",
      cfg.bandwidth_bps / 1e6, cfg.server_delay.to_string().c_str(),
      cfg.capture_jitter.to_string().c_str());
  return 0;
}
