// Table 4 reproduction: delay overheads of the Java applet methods on
// Windows when System.nanoTime() replaces Date.getTime() (mean with 95%
// confidence interval, ms).
//
// The paper's headline: the under-estimation and wild variation vanish;
// the socket method's overhead is ~0 ms with ~0 variation - comparable to
// tcpdump/WinDump (whose own accuracy is no better than ~0.3 ms).
#include "bench_util.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;

namespace {
struct PaperRow {
  const char* browser;
  double get_d1, get_d2, post_d1, post_d2, sock_d1, sock_d2;
};
// Table 4 means (ms).
constexpr PaperRow kPaper[] = {
    {"Chrome", 2.96, 4.80, 2.71, 1.84, 0.01, 0.07},
    {"Firefox", 2.73, 4.38, 2.41, 1.49, 0.00, 0.07},
    {"IE", 2.73, 4.56, 2.57, 1.49, 0.02, 0.06},
    {"Opera", 2.83, 4.46, 2.51, 1.57, 0.01, 0.06},
    {"Safari", 1.88, 1.52, 1.62, 1.42, 0.07, 0.13},
};
}  // namespace

int main(int argc, char** argv) {
  const auto& opts = benchutil::init(argc, argv);
  banner("Table 4: Java applet overheads in Windows with System.nanoTime()");
  std::printf("mean +- 95%% CI over %d runs, ms; paper values in parentheses\n\n",
              opts.runs);

  report::TextTable table({"browser", "GET d1", "GET d2", "POST d1", "POST d2",
                           "Socket d1", "Socket d2"});
  using T = report::TextTable;

  const browser::BrowserId browsers[] = {
      browser::BrowserId::kChrome, browser::BrowserId::kFirefox,
      browser::BrowserId::kIe, browser::BrowserId::kOpera,
      browser::BrowserId::kSafari};

  bool socket_near_zero = true;
  bool no_underestimation = true;
  double worst_ci = 0;

  // 5 browsers x 3 methods = 15 independent cells, one parallel batch.
  std::vector<core::ExperimentConfig> batch;
  for (const auto b : browsers) {
    for (const auto kind : {methods::ProbeKind::kJavaGet,
                            methods::ProbeKind::kJavaPost,
                            methods::ProbeKind::kJavaSocket}) {
      batch.push_back(benchutil::make_config(b, browser::OsId::kWindows7, kind,
                                             /*runs=*/0,
                                             /*java_nanotime=*/true));
    }
  }
  const auto results = benchutil::run_cases(batch);

  for (std::size_t i = 0; i < std::size(browsers); ++i) {
    const auto b = browsers[i];
    const auto& get = results[i * 3];
    const auto& post = results[i * 3 + 1];
    const auto& sock = results[i * 3 + 2];

    auto cell = [&](const stats::ConfidenceInterval& ci, double paper) {
      worst_ci = std::max(worst_ci, ci.half_width);
      if (ci.mean < -0.5) no_underestimation = false;
      return T::fmt_ci(ci.mean, ci.half_width) + " (" + T::fmt(paper, 2) + ")";
    };
    const auto& p = kPaper[i];
    const auto s1 = sock.d1_ci();
    const auto s2 = sock.d2_ci();
    if (s1.mean > 0.5 || s2.mean > 0.5) socket_near_zero = false;
    table.add_row({browser::browser_name(b),
                   cell(get.d1_ci(), p.get_d1), cell(get.d2_ci(), p.get_d2),
                   cell(post.d1_ci(), p.post_d1), cell(post.d2_ci(), p.post_d2),
                   cell(s1, p.sock_d1), cell(s2, p.sock_d2)});
  }
  std::printf("%s\n", table.render().c_str());

  banner("Table 4 shape checks");
  shape_check(no_underestimation,
              "no RTT under-estimation remains once nanoTime is used");
  shape_check(socket_near_zero,
              "socket-method overhead ~0 ms -> comparable to tcpdump/WinDump "
              "(capture accuracy itself is ~0.3 ms)");
  shape_check(worst_ci < 1.0,
              "tight 95% CIs -> the wild Date.getTime() variation is gone "
              "(worst half-width " + T::fmt(worst_ci, 2) + " ms)");
  std::printf(
      "\npractical takeaway (Section 5): browser tools still timing with\n"
      "currentTimeMillis()/Date.getTime() should switch to nanoTime().\n");
  return 0;
}
