// Figure 5 / Section 4.2 reproduction: measure the actual granularity of
// Date.getTime() by busy-polling until the returned value changes (the
// paper's Java snippet), repeated over tens of minutes.
//
// Expected on Windows 7: the measured granularity is NOT constant - it is
// 1 ms or ~15.6 ms, and each value persists for a stretch of minutes
// before flipping. On Ubuntu: constant 1 ms. System.nanoTime() has no such
// pathology.
#include "bench_util.h"
#include "browser/clock_set.h"
#include "core/granularity.h"
#include "stats/histogram.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;

namespace {

void probe_os(browser::OsId os) {
  banner(std::string{"Figure 5 probe loop on "} + browser::os_name(os));

  sim::Rng rng{os == browser::OsId::kWindows7 ? 2026u : 7070u};
  browser::ClockSet clocks{os, rng};

  // Sample every 10 s for 30 minutes of machine time.
  const auto series = core::GranularityProber::probe_series(
      clocks.java_date(), sim::TimePoint::epoch() + sim::Duration::seconds(3),
      sim::Duration::seconds(10), 180);

  stats::Histogram hist{0.0, 20.0, 20};
  for (const auto& p : series) hist.add(p.measured.ms_f());
  std::printf("measured granularity histogram (ms):\n%s\n",
              hist.render(40).c_str());

  const auto levels = core::GranularityProber::distinct_levels(series);
  std::printf("distinct levels:");
  for (const auto& l : levels) std::printf(" %s", l.to_string().c_str());
  std::printf("\n");

  // Longest stretch of consecutive samples at the same level, in samples
  // (x10 s) - the paper: "each possible value will last for a period of
  // time (several minutes)".
  std::size_t longest = 1, cur = 1;
  for (std::size_t i = 1; i < series.size(); ++i) {
    const double a = series[i].measured.ms_f();
    const double b = series[i - 1].measured.ms_f();
    if (std::abs(a - b) < 0.5) {
      ++cur;
    } else {
      cur = 1;
    }
    longest = std::max(longest, cur);
  }
  std::printf("longest same-granularity stretch: %zu samples (~%zu s)\n",
              longest, longest * 10);

  if (os == browser::OsId::kWindows7) {
    shape_check(levels.size() == 2, "two granularity levels on Windows");
    shape_check(!levels.empty() && std::abs(levels.front().ms_f() - 1.0) < 0.2,
                "low level = 1 ms");
    shape_check(levels.size() > 1 &&
                    std::abs(levels.back().ms_f() - 15.625) < 1.0,
                "high level ~ 15.6 ms");
    shape_check(longest * 10 >= 60,
                "each regime persists for minutes before flipping");
  } else {
    shape_check(levels.size() == 1 &&
                    std::abs(levels.front().ms_f() - 1.0) < 0.2,
                "constant 1 ms granularity on Ubuntu");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  probe_os(browser::OsId::kWindows7);
  probe_os(browser::OsId::kUbuntu);

  banner("System.nanoTime() comparison");
  sim::Rng rng{99};
  browser::ClockSet clocks{browser::OsId::kWindows7, rng};
  const auto probe = core::GranularityProber::probe_once(
      clocks.java_nano(), sim::TimePoint::epoch() + sim::Duration::seconds(1));
  std::printf("nanoTime measured granularity: %s after %llu calls\n",
              probe.measured.to_string().c_str(),
              static_cast<unsigned long long>(probe.api_calls));
  shape_check(probe.measured < sim::Duration::micros(2),
              "nanoTime resolves well below 1 ms (no quantization trap)");
  return 0;
}
