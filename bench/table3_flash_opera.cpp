// Table 3 reproduction: median Δd1 and Δd2 for the Flash GET/POST methods
// in Opera, plus the Section 4.1 packet-capture audit that explains them:
// Opera opens a new TCP connection for the first Flash HTTP request (so
// Δd1 swallows a TCP handshake = one extra network RTT) and for *every*
// POST (so Δd2 does too); other browsers reuse the preparation-phase
// connection.
#include "bench_util.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;

namespace {
struct PaperRow {
  const char* label;
  double d1, d2;
};
// Table 3 in the paper (ms).
constexpr PaperRow kPaperGet[] = {{"O (W)", 101.1, 19.8}, {"O (U)", 105.3, 19.8}};
constexpr PaperRow kPaperPost[] = {{"O (W)", 100.1, 69.6}, {"O (U)", 105.6, 68.1}};
}  // namespace

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  banner("Table 3: median delta-d1 / delta-d2, Flash HTTP methods in Opera");

  report::TextTable table({"method", "case", "paper d1", "measured d1",
                           "paper d2", "measured d2", "new conn (m1/m2)"});
  using T = report::TextTable;

  struct Cell {
    double d1_med, d2_med;
    double conn1, conn2;
  };
  std::map<std::string, Cell> cells;

  const browser::OsId oses[] = {browser::OsId::kWindows7, browser::OsId::kUbuntu};
  const bool post_flags[] = {false, true};

  // All five cells (4 Opera + the Chrome contrast) run as one parallel batch.
  std::vector<core::ExperimentConfig> batch;
  for (bool post : post_flags) {
    for (const auto os : oses) {
      batch.push_back(benchutil::make_config(
          browser::BrowserId::kOpera, os,
          post ? methods::ProbeKind::kFlashPost : methods::ProbeKind::kFlashGet));
    }
  }
  batch.push_back(benchutil::make_config(browser::BrowserId::kChrome,
                                         browser::OsId::kWindows7,
                                         methods::ProbeKind::kFlashGet));
  const auto results = benchutil::run_cases(batch);

  std::size_t next = 0;
  for (bool post : post_flags) {
    int row_idx = 0;
    for (const auto os : oses) {
      (void)os;
      const auto& series = results[next++];
      double conn1 = 0, conn2 = 0;
      for (const auto& s : series.samples) {
        conn1 += s.connections_opened1;
        conn2 += s.connections_opened2;
      }
      const auto n = static_cast<double>(series.samples.size());
      const PaperRow& paper = (post ? kPaperPost : kPaperGet)[row_idx++];
      const auto b1 = series.d1_box();
      const auto b2 = series.d2_box();
      table.add_row({post ? "Flash POST" : "Flash GET", series.case_label,
                     T::fmt(paper.d1, 1), T::fmt(b1.median, 1),
                     T::fmt(paper.d2, 1), T::fmt(b2.median, 1),
                     T::fmt(conn1 / n, 2) + " / " + T::fmt(conn2 / n, 2)});
      cells[std::string{post ? "P" : "G"} + series.case_label] =
          Cell{b1.median, b2.median, conn1 / n, conn2 / n};
    }
  }
  std::printf("%s\n", table.render().c_str());

  banner("Section 4.1 audit: who pays the TCP handshake?");
  const auto& gw = cells["GO (W)"];
  const auto& pw = cells["PO (W)"];
  shape_check(gw.conn1 >= 0.99 && gw.conn2 <= 0.01,
              "Opera Flash GET: new connection on the 1st measurement only");
  shape_check(pw.conn1 >= 0.99 && pw.conn2 >= 0.99,
              "Opera Flash POST: new connection on every measurement");
  shape_check(gw.d1_med > 80 && gw.d2_med < 40,
              "GET d1 inflated by ~one handshake RTT (~50 ms) vs d2");
  shape_check(pw.d2_med > 50,
              "POST d2 also inflated (handshake per measurement)");
  const double post_d2_minus_delay = pw.d2_med - 50.0;
  shape_check(std::abs(post_d2_minus_delay - gw.d2_med) < 8.0,
              "paper's confirmation: POST d2 - 50 ms ~= GET d2 (" +
                  T::fmt(post_d2_minus_delay, 1) + " vs " +
                  T::fmt(gw.d2_med, 1) + ")");

  // Contrast: a browser that reuses the container-page connection.
  const auto& chrome = results[next];
  double cconn1 = 0;
  for (const auto& s : chrome.samples) cconn1 += s.connections_opened1;
  shape_check(cconn1 / static_cast<double>(chrome.samples.size()) <= 0.01,
              "Chrome Flash GET reuses the preparation-phase connection even "
              "for the 1st measurement (much lower d1)");
  return 0;
}
