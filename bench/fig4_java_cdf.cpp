// Figure 4 reproduction: CDFs of Δd1 and Δd2 for the Java applet TCP
// socket method on Windows - (a) launched in the five browsers, (b)
// launched with the JDK appletviewer (no browser, no Java Plug-in).
//
// The signature the paper discovered: discrete Δd levels ~16 ms apart,
// caused by Date.getTime()'s 15.625 ms granularity regime; the same levels
// appear under appletviewer, exonerating the browsers and indicting the
// JRE/OS timer.
#include "bench_util.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  banner("Figure 4(a): CDFs of delta-d, Java applet socket in Windows browsers");

  std::vector<report::CdfSeries> curves;
  bool any_two_levels = false;
  double observed_gap = 0;

  const browser::BrowserId browsers[] = {
      browser::BrowserId::kChrome, browser::BrowserId::kFirefox,
      browser::BrowserId::kIe, browser::BrowserId::kOpera,
      browser::BrowserId::kSafari};

  // Five browser cells plus the appletviewer variant as one parallel batch.
  std::vector<core::ExperimentConfig> batch;
  for (const auto b : browsers) {
    batch.push_back(benchutil::make_config(b, browser::OsId::kWindows7,
                                           methods::ProbeKind::kJavaSocket));
  }
  batch.push_back(benchutil::make_config(
      browser::BrowserId::kChrome, browser::OsId::kWindows7,
      methods::ProbeKind::kJavaSocket, /*runs=*/0,
      /*java_nanotime=*/false, /*appletviewer=*/true));
  const auto results = benchutil::run_cases(batch);

  for (std::size_t bi = 0; bi < std::size(browsers); ++bi) {
    const auto b = browsers[bi];
    const auto& series = results[bi];
    if (series.samples.empty()) continue;
    const std::string initial = browser::browser_initial(b);
    curves.push_back({"d1," + initial, stats::EmpiricalCdf{series.d1()}});
    curves.push_back({"d2," + initial, stats::EmpiricalCdf{series.d2()}});

    // Two discrete levels ~16 ms apart? (tolerance 1 ms clusters, >= 6%
    // of mass each - the paper's visual "two discrete levels"). A middle
    // cluster near 0 from 1 ms-regime runs may also appear; the gap check
    // looks for the quantization pair.
    const auto levels = curves[curves.size() - 2].cdf.mass_levels(1.0, 0.06);
    if (levels.size() >= 2) any_two_levels = true;
    for (std::size_t i = 0; i < levels.size(); ++i) {
      for (std::size_t j = i + 1; j < levels.size(); ++j) {
        const double gap = levels[j] - levels[i];
        if (gap > 13.0 && gap < 18.0) observed_gap = gap;
      }
    }
  }

  report::CdfRenderer renderer{report::CdfRenderer::Options{70, 20, -16, 21}};
  std::printf("%s\n", renderer.render(curves).c_str());

  shape_check(any_two_levels,
              "at least one browser shows >= 2 discrete delta-d1 levels");
  shape_check(observed_gap > 13.0 && observed_gap < 18.0,
              "gap between the two significant levels ~ 16 ms (measured " +
                  report::TextTable::fmt(observed_gap, 1) + " ms)");

  banner("Figure 4(b): same applet launched with appletviewer (no browser)");
  const auto& av = results.back();
  std::vector<report::CdfSeries> av_curves;
  av_curves.push_back({"d1", stats::EmpiricalCdf{av.d1()}});
  av_curves.push_back({"d2", stats::EmpiricalCdf{av.d2()}});
  std::printf("%s\n", renderer.render(av_curves).c_str());

  const auto av_levels = av_curves.front().cdf.mass_levels(1.0, 0.15);
  shape_check(av_levels.size() >= 2 ||
                  (av_levels.size() == 1 && std::abs(av_levels[0]) < 1.0),
              "discrete levels persist without any browser/plug-in -> the "
              "JRE timer, not the browsers, causes them");
  std::printf(
      "\nconclusion (paper 4.2): the coarse, unstable timestamp granularity\n"
      "of Date.getTime()/currentTimeMillis() on Windows causes the bizarre\n"
      "delta-d distributions; browsers and Java Plug-ins are ruled out.\n");
  return 0;
}
