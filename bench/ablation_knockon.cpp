// Knock-on effects and design ablations (Sections 2.2, 3, 4.1):
//
//  A. Throughput under-estimation: round-trip throughput computed from a
//     browser-level duration vs the packet-level truth, across payload
//     sizes (small transfers suffer most - the overhead is amortized away
//     as transfers grow).
//  B. Jitter inflation: overhead variability leaks into jitter estimates.
//  C. Server-delay sweep: the netem delay is "a major factor determining
//     the amount of RTT inflation when a measurement method includes TCP
//     handshaking" - Opera Flash GET d1 tracks the configured delay 1:1.
//  D. Capture-jitter ablation: ground-truth timestamping error does not
//     change the findings (it is ~2 orders below the HTTP overheads).
#include "bench_util.h"
#include "browser/websocket_api.h"
#include "browser/xhr.h"
#include "core/knockon.h"
#include "stats/descriptive.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;
using T = report::TextTable;

namespace {

void throughput_section() {
  banner("A. Throughput under-estimation (XHR download, Chrome/Ubuntu)");
  core::ThroughputExperiment::Config cfg;
  cfg.payload_sizes = {1024, 10 * 1024, 100 * 1024, 1024 * 1024};
  core::ThroughputExperiment exp{cfg};
  const auto samples = exp.run();

  report::TextTable table({"payload", "browser ms", "capture ms",
                           "browser Mbps", "capture Mbps", "under-est."});
  double small_ratio = 0, big_ratio = 0, xhr_10k_ratio = 0;
  for (const auto& s : samples) {
    table.add_row({std::to_string(s.payload_bytes) + " B",
                   T::fmt(s.browser_ms, 2), T::fmt(s.net_ms, 2),
                   T::fmt(s.browser_tput_mbps, 3), T::fmt(s.net_tput_mbps, 3),
                   T::fmt(s.underestimation(), 2) + "x"});
    if (s.payload_bytes == cfg.payload_sizes.front()) {
      small_ratio = s.underestimation();
    }
    if (s.payload_bytes == cfg.payload_sizes.back()) {
      big_ratio = s.underestimation();
    }
    if (s.payload_bytes == 10 * 1024) xhr_10k_ratio = s.underestimation();
  }
  std::printf("%s\n", table.render().c_str());
  shape_check(small_ratio > big_ratio,
              "under-estimation shrinks as transfers grow (overhead "
              "amortized)");
  shape_check(small_ratio > 1.02,
              "small transfers visibly under-estimated (" +
                  T::fmt(small_ratio, 2) + "x)");

  // The socket family barely under-estimates: same transfer over
  // WebSocket for contrast.
  core::ThroughputExperiment::Config ws_cfg;
  ws_cfg.via = core::ThroughputExperiment::Via::kWebSocket;
  ws_cfg.payload_sizes = {10 * 1024};
  core::ThroughputExperiment ws_exp{ws_cfg};
  const auto ws_samples = ws_exp.run();
  if (!ws_samples.empty()) {
    std::printf("WebSocket, 10 KiB: %.2fx under-estimation (vs %.2fx XHR)\n",
                ws_samples[0].underestimation(), xhr_10k_ratio);
    shape_check(ws_samples[0].underestimation() < xhr_10k_ratio,
                "the socket method under-estimates less than the HTTP one");
  }
}

void jitter_section() {
  banner("B. Jitter inflation by overhead variability");
  report::TextTable table(
      {"method", "case", "browser jitter ms", "capture jitter ms", "x"});
  struct Row {
    methods::ProbeKind kind;
    browser::BrowserId browser;
  };
  const Row rows[] = {
      {methods::ProbeKind::kFlashGet, browser::BrowserId::kSafari},
      {methods::ProbeKind::kXhrGet, browser::BrowserId::kIe},
      {methods::ProbeKind::kWebSocket, browser::BrowserId::kChrome},
  };
  double flash_infl = 0, ws_infl = 0;
  for (const auto& r : rows) {
    const auto series =
        benchutil::run_case(r.browser, browser::OsId::kWindows7, r.kind);
    const auto j = core::jitter_report(series);
    table.add_row({series.method_name, series.case_label,
                   T::fmt(j.browser_jitter_ms, 3), T::fmt(j.net_jitter_ms, 3),
                   T::fmt(j.inflation(), 1)});
    if (r.kind == methods::ProbeKind::kFlashGet) flash_infl = j.inflation();
    if (r.kind == methods::ProbeKind::kWebSocket) ws_infl = j.inflation();
  }
  std::printf("%s\n", table.render().c_str());
  shape_check(flash_infl > ws_infl * 3,
              "unstable overheads (Flash HTTP) inflate jitter far more than "
              "stable ones (WebSocket)");
}

void delay_sweep_section() {
  banner("C. Server-delay sweep: handshake inclusion tracks the delay");
  report::TextTable table({"netem delay", "Opera Flash GET d1 med",
                           "d2 med", "d1 - d2"});
  // d1 - d2 = one handshake (the netem delay) + the Flash first-use cost;
  // sweeping the delay should move d1 - d2 by exactly the delta.
  std::vector<double> delays, gaps;
  const int delay_steps[] = {25, 50, 100};
  std::vector<core::ExperimentConfig> batch;
  for (const int delay_ms : delay_steps) {
    core::ExperimentConfig cfg;
    cfg.browser = browser::BrowserId::kOpera;
    cfg.os = browser::OsId::kWindows7;
    cfg.kind = methods::ProbeKind::kFlashGet;
    cfg.runs = 30;
    cfg.testbed.server_delay = sim::Duration::millis(delay_ms);
    batch.push_back(std::move(cfg));
  }
  const auto results = core::run_matrix(batch, benchutil::options().jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const int delay_ms = delay_steps[i];
    const auto& series = results[i];
    const double d1 = series.d1_box().median;
    const double d2 = series.d2_box().median;
    table.add_row({std::to_string(delay_ms) + " ms", T::fmt(d1, 1),
                   T::fmt(d2, 1), T::fmt(d1 - d2, 1)});
    delays.push_back(delay_ms);
    gaps.push_back(d1 - d2);
  }
  std::printf("%s\n", table.render().c_str());
  bool tracks = delays.size() >= 2;
  for (std::size_t i = 1; i < delays.size(); ++i) {
    const double slope =
        (gaps[i] - gaps[i - 1]) / (delays[i] - delays[i - 1]);
    if (slope < 0.8 || slope > 1.2) tracks = false;
  }
  shape_check(tracks,
              "d1 - d2 grows 1:1 with the configured delay (one handshake "
              "RTT is folded into the first measurement)");
}

void capture_jitter_section() {
  banner("D. Capture-jitter ablation (ground truth error 0 vs 0.3 ms)");
  report::TextTable table({"capture jitter", "XHR GET d2 med (IE/W)"});
  double med0 = 0, med3 = 0;
  for (const double jitter_ms : {0.0, 0.3}) {
    core::ExperimentConfig cfg;
    cfg.browser = browser::BrowserId::kIe;
    cfg.os = browser::OsId::kWindows7;
    cfg.kind = methods::ProbeKind::kXhrGet;
    cfg.runs = 30;
    cfg.testbed.capture_jitter = sim::Duration::from_millis_f(jitter_ms);
    const auto series = core::run_experiment(cfg);
    const double med = series.d2_box().median;
    table.add_row({T::fmt(jitter_ms, 1) + " ms", T::fmt(med, 2)});
    if (jitter_ms == 0.0) med0 = med;
    if (jitter_ms == 0.3) med3 = med;
  }
  std::printf("%s\n", table.render().c_str());
  shape_check(std::abs(med0 - med3) < 2.0,
              "capture timestamping error is negligible next to the "
              "browser-side overhead");
}

void redirect_section() {
  banner("E. Hidden redirects double-charge the RTT");
  // A measurement page that probes a URL behind a 302 pays one extra
  // round trip per hop without the tool noticing - same failure class as
  // the Flash handshake inclusion (Section 4.1), different mechanism.
  core::Testbed::Config tcfg;
  core::Testbed testbed{tcfg};
  http::HttpClient client{testbed.client()};

  auto timed_get = [&](const std::string& target,
                       http::HttpClient::Options opts) {
    const sim::TimePoint t0 = testbed.sim().now();
    sim::TimePoint done;
    http::HttpRequest req;
    req.method = "GET";
    req.target = target;
    client.request(testbed.http_endpoint(), req,
                   [&](http::HttpResponse, http::HttpClient::TransferInfo) {
                     done = testbed.sim().now();
                   },
                   opts);
    testbed.sim().scheduler().run();
    return (done - t0).ms_f();
  };

  http::HttpClient::Options follow;
  follow.max_redirects = 5;
  (void)timed_get("/echo", follow);  // warm the connection pool first
  const double direct_ms = timed_get("/echo", follow);
  const double redirected_ms = timed_get("/redirect?to=/echo", follow);

  report::TextTable table({"probe target", "measured duration (ms)"});
  table.add_row({"/echo (direct)", T::fmt(direct_ms, 1)});
  table.add_row({"/redirect -> /echo", T::fmt(redirected_ms, 1)});
  std::printf("%s\n", table.render().c_str());
  shape_check(redirected_ms > direct_ms + 40.0,
              "one 302 hop adds ~one network RTT to the measurement");
}

void slow_start_section() {
  banner("F. TCP slow start vs throughput probes (why speedtests ramp)");
  // With real congestion control the first seconds of a transfer are
  // window-limited: short throughput probes measure the slow-start ramp,
  // not the pipe - an *additional* bias on top of the browser overhead.
  report::TextTable table({"payload", "fixed window Mbps (capture)",
                           "slow start Mbps (capture)"});
  bool ramp_visible = true;
  for (const std::size_t size : {64UL * 1024, 1024UL * 1024}) {
    double fixed = 0, ss = 0;
    for (const bool cc : {false, true}) {
      core::ThroughputExperiment::Config cfg;
      cfg.payload_sizes = {size};
      cfg.runs_per_size = 3;
      cfg.testbed.tcp.congestion_control = cc;
      core::ThroughputExperiment exp{cfg};
      const auto samples = exp.run();
      if (samples.empty()) continue;
      (cc ? ss : fixed) = samples[0].net_tput_mbps;
    }
    table.add_row({std::to_string(size / 1024) + " KiB", T::fmt(fixed, 2),
                   T::fmt(ss, 2)});
    if (ss >= fixed) ramp_visible = false;
  }
  std::printf("%s\n", table.render().c_str());
  shape_check(ramp_visible,
              "slow start depresses short-transfer throughput below the "
              "fixed-window measurement");
}

void busy_page_section() {
  banner("G. Real pages compete for connections (Section 5's warning)");
  // "The browsers have to establish new connections due to the competition
  // of downloading the other files": saturate the 6-per-host pool with
  // subresource fetches, then measure - the probe's connection setup leaks
  // into the measured RTT.
  auto measure_xhr_ms = [&](int busy_subresources) {
    core::Testbed::Config tcfg;
    core::Testbed testbed{tcfg};
    auto session = testbed.launch_browser(
        browser::make_profile(browser::BrowserId::kChrome,
                              browser::OsId::kUbuntu),
        0);
    double measured = 0;
    session->load_container_page(browser::ProbeKind::kXhrGet, [&] {
      // The page starts large competing downloads that hold pool slots.
      for (int i = 0; i < busy_subresources; ++i) {
        http::HttpRequest sub;
        sub.method = "GET";
        sub.target = "/payload?size=2000000";
        session->http().request(
            testbed.http_endpoint(), sub,
            [](http::HttpResponse, http::HttpClient::TransferInfo) {});
      }
      auto xhr = std::make_shared<browser::XmlHttpRequest>(*session);
      auto& clock = session->clock(browser::ClockKind::kJsDate);
      auto t0 = std::make_shared<sim::TimePoint>();
      xhr->set_onreadystatechange([&, xhr, t0] {
        if (xhr->ready_state() != browser::XmlHttpRequest::ReadyState::kDone) {
          return;
        }
        measured = (clock.read(testbed.sim().now()) - *t0).ms_f();
      });
      xhr->open("GET", "/echo");
      *t0 = clock.read(testbed.sim().now());
      xhr->send();
    });
    testbed.sim().scheduler().run();
    return measured;
  };

  const double quiet_ms = measure_xhr_ms(0);
  const double busy_ms = measure_xhr_ms(8);  // > the 6-connection limit
  report::TextTable table({"page state", "measured RTT (ms)"});
  table.add_row({"quiet page", T::fmt(quiet_ms, 1)});
  table.add_row({"8 competing downloads", T::fmt(busy_ms, 1)});
  std::printf("%s\n", table.render().c_str());
  shape_check(busy_ms > quiet_ms + 30.0,
              "a busy page inflates the probe (queueing + handshake + "
              "contended link), exactly Section 5's caution");
}

void event_loop_load_section() {
  banner("H. Main-thread load sensitivity (Section 3's system-load caveat)");
  // Pile rendering-sized tasks onto the browser event loop while probing:
  // completion events queue behind them, inflating the measured RTT.
  auto measure_ws_ms = [&](bool loaded) {
    core::Testbed::Config tcfg;
    core::Testbed testbed{tcfg};
    auto session = testbed.launch_browser(
        browser::make_profile(browser::BrowserId::kChrome,
                              browser::OsId::kUbuntu),
        0);
    auto rtts = std::make_shared<std::vector<double>>();
    session->load_container_page(browser::ProbeKind::kWebSocket, [&] {
      if (loaded) {
        // ~8 ms of main-thread work arriving with aperiodic ~10 ms gaps
        // (a page mid-animation with jittery rendering). Periodic load
        // would phase-lock with the probe train and hide the effect.
        session->event_loop().set_task_cost(sim::Duration::millis(8));
        sim::Rng load_rng{12345};
        double at_ms = 0;
        for (int i = 0; i < 800; ++i) {
          at_ms += load_rng.uniform(6.0, 14.0);
          session->event_loop().post(sim::Duration::from_millis_f(at_ms),
                                     [] {});
        }
      }
      auto ws = std::make_shared<browser::BrowserWebSocket>(
          *session, testbed.ws_endpoint(), "/ws");
      auto& clock = session->clock(browser::ClockKind::kJsDate);
      auto t0 = std::make_shared<sim::TimePoint>();
      // 10 back-to-back probes sample different phases of the load.
      ws->set_onmessage([&, ws, t0, rtts](const std::string&) {
        rtts->push_back((clock.read(testbed.sim().now()) - *t0).ms_f());
        if (rtts->size() >= 10) {
          ws->close();
          return;
        }
        *t0 = clock.read(testbed.sim().now());
        ws->send("probe");
      });
      ws->set_onopen([&, ws, t0] {
        *t0 = clock.read(testbed.sim().now());
        ws->send("probe");
      });
    });
    testbed.sim().scheduler().run();
    return rtts->empty() ? 0.0 : stats::median(*rtts);
  };

  const double idle_ms = measure_ws_ms(false);
  const double loaded_ms = measure_ws_ms(true);
  report::TextTable table({"main thread", "WebSocket measured RTT (ms)"});
  table.add_row({"idle", T::fmt(idle_ms, 1)});
  table.add_row({"80% busy (animation)", T::fmt(loaded_ms, 1)});
  std::printf("%s\n", table.render().c_str());
  shape_check(loaded_ms > idle_ms + 1.0,
              "even the best method inflates when the page keeps the main "
              "thread busy");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  throughput_section();
  jitter_section();
  delay_sweep_section();
  capture_jitter_section();
  redirect_section();
  slow_start_section();
  busy_page_section();
  event_loop_load_section();
  return 0;
}
