// Extension benches:
//   A. IPPM dedicated-host baseline (RFC 2330/2681 Poisson sampling): the
//      "traditional" measurement the paper's introduction contrasts
//      browser tools against. Its overhead is the floor.
//   B. Cross-traffic ablation: the paper's testbed was "free of cross
//      traffic"; here we add contention and watch the *network* RTT move
//      while the *overhead* (browser minus capture) stays put - evidence
//      the Eq. 1 methodology isolates the browser's contribution.
//   C. Mobile-platform extension (paper §7): plugin-less browsers, where
//      WebSocket is the only socket option and HTTP overheads grow on
//      phone-class CPUs.
#include "bench_util.h"
#include "core/calibration.h"
#include "core/ippm.h"
#include "net/dns.h"
#include "stats/descriptive.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;
using T = report::TextTable;

namespace {

void ippm_baseline() {
  banner("A. Dedicated-host IPPM baseline vs browser methods");
  core::PoissonRttStream::Config cfg;
  cfg.probes = 60;
  cfg.rate_per_second = 4.0;
  core::PoissonRttStream stream{cfg};
  const auto samples = stream.run();

  std::vector<double> overheads;
  overheads.reserve(samples.size());
  for (const auto& s : samples) overheads.push_back(s.overhead_ms());

  report::TextTable table({"measurement path", "median overhead (ms)"});
  const double ippm_med = stats::median(overheads);
  table.add_row({"dedicated host, Poisson UDP (RFC 2681)", T::fmt(ippm_med, 3)});

  double ws_med = 0, xhr_med = 0;
  {
    const auto ws = benchutil::run_case(browser::BrowserId::kChrome,
                                        browser::OsId::kUbuntu,
                                        methods::ProbeKind::kWebSocket, 30);
    const auto xhr = benchutil::run_case(browser::BrowserId::kChrome,
                                         browser::OsId::kUbuntu,
                                         methods::ProbeKind::kXhrGet, 30);
    ws_med = ws.d2_box().median;
    xhr_med = xhr.d2_box().median;
    table.add_row({"browser, WebSocket", T::fmt(ws_med, 3)});
    table.add_row({"browser, XHR GET", T::fmt(xhr_med, 3)});
  }
  std::printf("%zu/%d probes answered\n%s\n", samples.size(), cfg.probes,
              table.render().c_str());
  shape_check(std::abs(ippm_med) < 0.2,
              "dedicated-host overhead ~0 (the floor browser tools chase)");
  shape_check(std::abs(ippm_med) <= std::abs(ws_med) + 0.2 &&
                  std::abs(ws_med) < std::abs(xhr_med),
              "ordering: dedicated <= WebSocket < XHR");
}

void cross_traffic_ablation() {
  banner("B. Cross-traffic ablation (Eq. 1 isolates the browser overhead)");
  report::TextTable table({"cross traffic", "net RTT med (ms)",
                           "browser RTT med (ms)", "overhead med (ms)"});
  double overhead_quiet = 0, overhead_busy = 0;
  double net_quiet = 0, net_busy = 0;
  for (const double mbps : {0.0, 60.0}) {
    core::ExperimentConfig cfg;
    cfg.kind = methods::ProbeKind::kXhrGet;
    cfg.browser = browser::BrowserId::kChrome;
    cfg.os = browser::OsId::kUbuntu;
    cfg.runs = 30;
    cfg.testbed.cross_traffic_mbps = mbps;
    const auto series = core::run_experiment(cfg);
    std::vector<double> net, brw;
    for (const auto& s : series.samples) {
      net.push_back(s.net_rtt2_ms);
      brw.push_back(s.browser_rtt2_ms);
    }
    const double net_med = stats::median(net);
    const double overhead = series.d2_box().median;
    table.add_row({T::fmt(mbps, 0) + " Mbps", T::fmt(net_med, 2),
                   T::fmt(stats::median(brw), 2), T::fmt(overhead, 2)});
    if (mbps == 0.0) {
      overhead_quiet = overhead;
      net_quiet = net_med;
    } else {
      overhead_busy = overhead;
      net_busy = net_med;
    }
  }
  std::printf("%s\n", table.render().c_str());
  shape_check(net_busy > net_quiet + 0.05,
              "contention visibly lifts the *network* RTT");
  shape_check(std::abs(overhead_busy - overhead_quiet) <
                  0.35 * std::max(overhead_quiet, 1.0),
              "...but the measured *overhead* stays put: Eq. 1 subtracts the "
              "network's share");
}

void mobile_extension() {
  banner("C. Mobile platforms (no plug-ins): method overheads");
  report::TextTable table({"platform", "method", "median d2 (ms)", "IQR (ms)"});
  double mob_ws = 1e9, mob_xhr = 0;
  const browser::MobilePlatform platforms[] = {
      browser::MobilePlatform::kIosSafari,
      browser::MobilePlatform::kAndroidChrome};
  const methods::ProbeKind kinds[] = {methods::ProbeKind::kWebSocket,
                                      methods::ProbeKind::kDom,
                                      methods::ProbeKind::kXhrGet};
  // 2 platforms x 3 methods as one parallel batch.
  std::vector<core::ExperimentConfig> batch;
  for (const auto platform : platforms) {
    for (const auto kind : kinds) {
      core::ExperimentConfig cfg;
      cfg.kind = kind;
      cfg.browser = browser::BrowserId::kChrome;  // clock/label basis
      cfg.os = browser::OsId::kUbuntu;
      cfg.runs = 30;
      cfg.custom_profile = browser::make_mobile_profile(platform);
      batch.push_back(std::move(cfg));
    }
  }
  const auto results = core::run_matrix(batch, benchutil::options().jobs);
  std::size_t idx = 0;
  for (const auto platform : platforms) {
    for (const auto kind : kinds) {
      const auto& series = results[idx++];
      const auto box = series.d2_box();
      table.add_row({browser::mobile_platform_name(platform),
                     probe_kind_name(kind), T::fmt(box.median, 2),
                     T::fmt(box.iqr(), 2)});
      if (kind == methods::ProbeKind::kWebSocket) {
        mob_ws = std::min(mob_ws, std::abs(box.median));
      }
      if (kind == methods::ProbeKind::kXhrGet) {
        mob_xhr = std::max(mob_xhr, box.median);
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  shape_check(mob_ws < 2.0,
              "WebSocket stays accurate on mobile - and it is the only "
              "socket option without plug-ins (Section 2.1)");
  shape_check(mob_xhr > 10.0,
              "mobile HTTP overheads exceed their desktop counterparts");
}

void calibratability() {
  banner("D. Calibratability (Section 4's consistency concern, quantified)");
  // Learn each method's overhead on one experiment; apply it to an
  // independent one; report the residual. Consistent methods calibrate
  // away; Flash HTTP does not.
  report::TextTable table({"method", "case", "raw |median d2| (ms)",
                           "residual after calibration (ms)"});
  double flash_residual = 0, ws_residual = 0;
  struct Cell {
    methods::ProbeKind kind;
    browser::BrowserId browser;
    browser::OsId os;
  };
  const Cell cells[] = {
      {methods::ProbeKind::kWebSocket, browser::BrowserId::kChrome,
       browser::OsId::kUbuntu},
      {methods::ProbeKind::kDom, browser::BrowserId::kFirefox,
       browser::OsId::kWindows7},
      {methods::ProbeKind::kXhrGet, browser::BrowserId::kIe,
       browser::OsId::kWindows7},
      {methods::ProbeKind::kFlashGet, browser::BrowserId::kSafari,
       browser::OsId::kWindows7},
  };
  for (const auto& c : cells) {
    core::ExperimentConfig cfg;
    cfg.kind = c.kind;
    cfg.browser = c.browser;
    cfg.os = c.os;
    cfg.runs = 30;
    const auto train = core::run_experiment(cfg);
    core::CalibrationTable cal;
    cal.learn(train);
    cfg.seed = 777;  // independent repetition
    const auto fresh = core::run_experiment(cfg);
    const double raw = std::abs(fresh.d2_box().median);
    const double residual = cal.residual_ms(fresh);
    table.add_row({probe_kind_name(c.kind), fresh.case_label, T::fmt(raw, 2),
                   T::fmt(residual, 2)});
    if (c.kind == methods::ProbeKind::kFlashGet) flash_residual = residual;
    if (c.kind == methods::ProbeKind::kWebSocket) ws_residual = residual;
  }
  std::printf("%s\n", table.render().c_str());
  shape_check(flash_residual > 5 * std::max(ws_residual, 0.5),
              "Flash HTTP's cross-run variability defeats calibration; "
              "consistent methods calibrate to ~0");
}

void dns_in_preparation() {
  banner("E. DNS lookup in the first measurement (another d1/d2 asymmetry)");
  // Tools address servers by hostname: the first probe can include a DNS
  // round trip the tool never notices; the resolver cache removes it from
  // the second - the same cold/warm asymmetry as the TCP handshake of
  // Table 3, one layer down.
  core::Testbed::Config tcfg;
  core::Testbed testbed{tcfg};
  net::DnsServer dns{testbed.server(), 53};
  dns.add_record("server.bnm.test", testbed.http_endpoint().ip);
  net::DnsResolver resolver{testbed.client(),
                            net::Endpoint{testbed.http_endpoint().ip, 53}};
  http::HttpClient client{testbed.client()};

  auto resolve_and_get = [&]() {
    const sim::TimePoint t0 = testbed.sim().now();
    sim::TimePoint done;
    resolver.resolve("server.bnm.test", [&](std::optional<net::IpAddress> a) {
      if (!a) return;
      http::HttpRequest req;
      req.method = "GET";
      req.target = "/echo";
      client.request(net::Endpoint{*a, 80}, req,
                     [&](http::HttpResponse, http::HttpClient::TransferInfo) {
                       done = testbed.sim().now();
                     });
    });
    testbed.sim().scheduler().run();
    return (done - t0).ms_f();
  };

  // Warm the TCP pool so the comparison isolates DNS (cold pool would add
  // a handshake to the first probe as well).
  {
    http::HttpRequest req;
    req.method = "GET";
    req.target = "/echo";
    client.request(testbed.http_endpoint(), req,
                   [](http::HttpResponse, http::HttpClient::TransferInfo) {});
    testbed.sim().scheduler().run();
  }

  const double first_ms = resolve_and_get();   // cold resolver cache
  const double second_ms = resolve_and_get();  // cached

  report::TextTable table({"probe", "duration (ms)", "DNS queries so far"});
  table.add_row({"1st (cold DNS cache)", T::fmt(first_ms, 2),
                 std::to_string(resolver.queries_sent())});
  table.add_row({"2nd (cached)", T::fmt(second_ms, 2),
                 std::to_string(resolver.queries_sent())});
  std::printf("%s\n", table.render().c_str());
  shape_check(resolver.queries_sent() == 1 && resolver.cache_hits() == 1,
              "only the first probe pays a DNS query");
  shape_check(first_ms > second_ms,
              "the cold-cache probe measures DNS + RTT, the warm one RTT "
              "only");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  ippm_baseline();
  cross_traffic_ablation();
  mobile_extension();
  calibratability();
  dns_in_preparation();
  return 0;
}
