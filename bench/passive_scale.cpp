// Passive-matcher throughput: how many captured packets per second the
// TSval<->TSecr matcher sustains, independent of the simulator.
//
// Three sections, emitted to BENCH_passive_scale.json:
//
//   1. Headline throughput: a pre-synthesized capture stream (default 64
//      flows x 8k packets, request/ACK pairs with RFC 7323 timestamps)
//      pushed through PassiveRttEstimator::observe — packets/sec is the
//      number the Release gate in scripts/check.sh enforces a floor on.
//   2. Report identity: the same stream consumed by two independent
//      estimators must serialize byte-identical reports ("identical" —
//      the determinism claim the offline-pcap gate builds on).
//   3. Yield: fraction of data packets that produced an RTT sample (every
//      echoed anchor, minus coarse-clock duplicates), sanity that the
//      throughput number measures real matching work, not early-outs.
//
//   $ passive_scale [--flows=N] [--packets=N]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "passive/rtt_estimator.h"

using namespace bnm;

namespace {

using Clock = std::chrono::steady_clock;

struct Observation {
  net::Packet packet;
  sim::TimePoint at;
};

// One flow's endpoints spread across /16s so the half-flow map actually
// fans out like a real trunk capture.
net::Endpoint client_ep(int flow) {
  return {net::IpAddress{10, 1, static_cast<std::uint8_t>(flow >> 8),
                         static_cast<std::uint8_t>(flow & 0xff)},
          static_cast<net::Port>(40000 + (flow % 1024))};
}

// Request/ACK ping-pong with a 1 ms TSval clock: data packet out (fresh
// TSval every other round, duplicated in between to exercise the coarse
// clock path), pure ACK back echoing it ~2 ms later.
std::vector<Observation> synthesize(int flows, int packets_per_flow) {
  std::vector<Observation> stream;
  stream.reserve(static_cast<std::size_t>(flows) * packets_per_flow);
  const net::Endpoint server{net::IpAddress{10, 0, 0, 2}, 80};
  for (int f = 0; f < flows; ++f) {
    const net::Endpoint cl = client_ep(f);
    std::uint32_t seq = 1;
    std::int64_t ns = static_cast<std::int64_t>(f) * 1000;  // staggered start
    for (int p = 0; p + 1 < packets_per_flow; p += 2) {
      const std::uint32_t tick = static_cast<std::uint32_t>(ns / 1'000'000);
      net::Packet data;
      data.protocol = net::Protocol::kTcp;
      data.src = cl;
      data.dst = server;
      data.seq = seq;
      data.ack = 1;
      data.flags.ack = true;
      data.flags.psh = true;
      data.ts.present = true;
      data.ts.tsval = 1 + tick;
      data.ts.tsecr = tick;
      stream.push_back({data, sim::TimePoint::from_ns(ns)});
      seq += 512;

      net::Packet ack;
      ack.protocol = net::Protocol::kTcp;
      ack.src = server;
      ack.dst = cl;
      ack.seq = 1;
      ack.ack = seq;
      ack.flags.ack = true;
      ack.ts.present = true;
      ack.ts.tsval = 1 + tick;
      ack.ts.tsecr = data.ts.tsval;
      stream.push_back({ack, sim::TimePoint::from_ns(ns + 2'000'000)});
      ns += 500'000;  // 0.5 ms between requests: every other TSval repeats
    }
  }
  return stream;
}

struct Headline {
  std::uint64_t packets = 0;
  int flows = 0;
  double wall_ms = 0;
  std::uint64_t samples = 0;
  std::uint64_t duplicate_tsvals = 0;
  double packets_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(packets) / (wall_ms / 1e3) : 0;
  }
};

Headline bench_headline(const std::vector<Observation>& stream, int flows,
                        passive::PassiveRttEstimator& est) {
  Headline h;
  h.flows = flows;
  h.packets = stream.size();
  std::printf("headline: %" PRIu64 " packets across %d flows ... ", h.packets,
              flows);
  std::fflush(stdout);
  const auto t0 = Clock::now();
  for (const Observation& ob : stream) {
    est.observe(ob.packet, ob.at, ob.packet.payload.size());
  }
  h.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  h.samples = est.counters().samples;
  h.duplicate_tsvals = est.counters().duplicate_tsvals;
  std::printf("%.1f ms   (%.0f packets/s, %" PRIu64 " samples)\n", h.wall_ms,
              h.packets_per_sec(), h.samples);
  return h;
}

void write_json(const char* path, const Headline& h, bool identical,
                std::size_t report_bytes, double yield) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"packets\": %" PRIu64 ",\n", h.packets);
  std::fprintf(f, "  \"flows\": %d,\n", h.flows);
  std::fprintf(f, "  \"wall_ms\": %.3f,\n", h.wall_ms);
  std::fprintf(f, "  \"packets_per_sec\": %.1f,\n", h.packets_per_sec());
  std::fprintf(f, "  \"samples\": %" PRIu64 ",\n", h.samples);
  std::fprintf(f, "  \"duplicate_tsvals\": %" PRIu64 ",\n",
               h.duplicate_tsvals);
  std::fprintf(f, "  \"sample_yield\": %.4f,\n", yield);
  std::fprintf(f, "  \"report_bytes\": %zu,\n", report_bytes);
  std::fprintf(f, "  \"identical_reports\": %s\n", identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  int flows = 64;
  int packets_per_flow = 8192;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* s = value("--flows=")) {
      flows = std::atoi(s);
    } else if (const char* s = value("--packets=")) {
      packets_per_flow = std::atoi(s);
    } else {
      std::fprintf(stderr, "usage: %s [--flows=N] [--packets=N]\n", argv[0]);
      return 2;
    }
  }

  benchutil::banner("passive_scale: TSval matcher throughput");

  const std::vector<Observation> stream = synthesize(flows, packets_per_flow);

  passive::PassiveRttEstimator est;
  const Headline h = bench_headline(stream, flows, est);

  // Same stream, fresh estimator: reports must agree byte for byte.
  std::printf("report identity: re-consuming the stream ... ");
  std::fflush(stdout);
  passive::PassiveRttEstimator est2;
  for (const Observation& ob : stream) {
    est2.observe(ob.packet, ob.at, ob.packet.payload.size());
  }
  const std::string r1 = est.report_json("passive_scale");
  const std::string r2 = est2.report_json("passive_scale");
  const bool identical = r1 == r2;
  std::printf("%s (%zu-byte reports)\n", identical ? "identical" : "DIFFER",
              r1.size());

  const double data_packets = static_cast<double>(h.packets) / 2.0;
  const double yield =
      data_packets > 0 ? static_cast<double>(h.samples) / data_packets : 0.0;
  benchutil::shape_check(yield > 0.3, "sample yield over 30% of data packets");
  benchutil::shape_check(h.duplicate_tsvals > 0,
                         "coarse-clock duplicate path exercised");

  write_json("BENCH_passive_scale.json", h, identical, r1.size(), yield);

  if (!identical) {
    std::fprintf(stderr, "FAIL: passive reports differ across replays\n");
    return 1;
  }
  return 0;
}
