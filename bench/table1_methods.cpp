// Table 1 reproduction: the browser-based network measurement methods and
// the tools/services that use them, generated from the method registry's
// metadata (so the table can never drift from the implementation).
#include "bench_util.h"
#include "core/appraisal.h"
#include "methods/registry.h"

using namespace bnm;
using benchutil::banner;
using benchutil::shape_check;

int main(int argc, char** argv) {
  benchutil::init(argc, argv);
  banner("Table 1: browser-based network measurement methods (from registry)");

  report::TextTable table({"Approach", "Technology", "Availability", "Method",
                           "Same-origin?", "Metrics", "Tools / Services"});
  const auto methods = methods::all_methods();
  std::string last_approach;
  for (const auto& m : methods) {
    const auto& i = m->info();
    std::string tools;
    for (const auto& t : i.example_tools) {
      if (!tools.empty()) tools += ", ";
      tools += t;
    }
    if (!last_approach.empty() && i.approach != last_approach) table.add_rule();
    last_approach = i.approach;
    table.add_row({i.approach, i.technology, i.availability, i.verb,
                   i.same_origin_text(), i.metrics_text(), tools});
  }
  std::printf("%s\nNote: \"Yes*\" = the same-origin policy can be bypassed "
              "(Flash cross-domain policy / signed applet).\n\n",
              table.render().c_str());

  // Structural checks against the paper's Table 1.
  int http = 0, socket = 0, native = 0, plugin = 0, loss_capable = 0;
  for (const auto& m : methods) {
    const auto& i = m->info();
    if (i.approach == "HTTP-based") ++http;
    if (i.approach == "Socket-based") ++socket;
    if (i.availability == "Native") ++native;
    if (i.availability == "Plug-in") ++plugin;
    if (i.measures_loss) ++loss_capable;
  }
  shape_check(http == 7, "seven HTTP-based methods");
  shape_check(socket == 4, "four socket-based methods (incl. Java UDP)");
  shape_check(native == 4, "native methods: XHR GET/POST, DOM, WebSocket");
  shape_check(plugin == 7, "plug-in methods: Flash x3, Java x4");
  shape_check(loss_capable == 1, "only the UDP method measures loss");

  banner("Section 5 recommendations (codified)");
  for (const auto os : {browser::OsId::kWindows7, browser::OsId::kUbuntu}) {
    for (const bool plugins : {true, false}) {
      core::Platform p;
      p.os = os;
      p.plugins_available = plugins;
      const auto rec = core::recommend(p);
      std::printf("%s, plugins=%s -> %s on %s\n  %s\n", browser::os_name(os),
                  plugins ? "yes" : "no ", browser::probe_kind_name(rec.method),
                  browser::browser_name(rec.preferred_browser),
                  rec.rationale.c_str());
    }
  }
  return 0;
}
