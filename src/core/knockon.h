// Knock-on effects of delay overhead (Section 2.2): jitter measurements
// inherit the overhead's variability, and round-trip throughput computed
// from an inflated RTT is under-estimated.
#pragma once

#include <cstddef>
#include <vector>

#include "browser/profile.h"
#include "core/experiment.h"

namespace bnm::core {

/// Jitter as a measurement tool computes it (mean absolute difference of
/// consecutive RTTs, RFC 3550 style), at browser level vs packet level.
struct JitterReport {
  double browser_jitter_ms = 0;  ///< from tB_r - tB_s series
  double net_jitter_ms = 0;      ///< from tN_r - tN_s series (ground truth)
  /// How much of the reported jitter is overhead artifact (>= 1 means the
  /// browser at least doubles ... ratio browser/net).
  double inflation() const {
    return net_jitter_ms > 0 ? browser_jitter_ms / net_jitter_ms : 0;
  }
};

/// Compute from the Δd2 repetitions of one experiment (steady-state path).
JitterReport jitter_report(const OverheadSeries& series);

/// One payload size's throughput comparison.
struct ThroughputSample {
  std::size_t payload_bytes = 0;
  double browser_ms = 0;  ///< duration seen by the measurement code
  double net_ms = 0;      ///< duration seen by the packet capture
  double browser_tput_mbps = 0;
  double net_tput_mbps = 0;
  /// net/browser throughput ratio - 1.0 means no under-estimation.
  double underestimation() const {
    return browser_tput_mbps > 0 ? net_tput_mbps / browser_tput_mbps : 0;
  }
};

/// Download a payload (XHR GET /payload?size=N, or a WebSocket PULL:<n>
/// message) and compare browser-level against capture-level round-trip
/// throughput, per payload size.
class ThroughputExperiment {
 public:
  /// The transfer vehicle: an HTTP method or the socket method (Table 1
  /// lists Tput for both families).
  enum class Via { kXhr, kWebSocket };

  struct Config {
    browser::BrowserId browser = browser::BrowserId::kChrome;
    browser::OsId os = browser::OsId::kUbuntu;
    Via via = Via::kXhr;
    std::vector<std::size_t> payload_sizes{1024, 10 * 1024, 100 * 1024,
                                           1024 * 1024};
    int runs_per_size = 5;
    std::uint64_t seed = 42;
    Testbed::Config testbed{};
  };

  explicit ThroughputExperiment(Config config);

  /// Median-of-runs sample per payload size.
  std::vector<ThroughputSample> run();

 private:
  Config config_;
  std::unique_ptr<Testbed> testbed_;
};

}  // namespace bnm::core
