#include "core/campaign.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.h"
#include "core/parallel_runner.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "sim/arena.h"
#include "sim/trace.h"
#include "stats/moving_min.h"

namespace bnm::core {
namespace {

using obs::json::Value;

// ---------------------------------------------------------------------------
// Metrics (docs/OBSERVABILITY.md, "campaign.*" family).

const obs::Counter& shards_completed_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "campaign.shards_completed", "shards", "campaign shards folded in");
  return c;
}
const obs::Counter& shards_resumed_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "campaign.shards_resumed", "shards",
      "campaign shards restored from a checkpoint");
  return c;
}
const obs::Counter& clients_simulated_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "campaign.clients_simulated", "clients",
      "population clients simulated to completion");
  return c;
}
const obs::Counter& client_failures_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "campaign.client_failures", "clients",
      "clients whose experiment threw and was skipped");
  return c;
}
const obs::Counter& samples_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "campaign.samples", "samples",
      "accepted (d1, d2) sample pairs folded into campaign sketches");
  return c;
}
const obs::Counter& checkpoint_flushes_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "campaign.checkpoint_flushes", "writes",
      "atomic campaign-checkpoint rewrites");
  return c;
}
const obs::Counter& progress_errors_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "campaign.progress_errors", "exceptions",
      "campaign progress-callback exceptions absorbed");
  return c;
}

// ---------------------------------------------------------------------------
// Spec hashing: FNV-1a over the population-defining fields, bit patterns
// for doubles (same discipline as cell_config_hash). The shard count and
// everything in CampaignOptions are excluded on purpose: they change how
// the campaign executes, never what it measures.

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

class SpecHasher {
 public:
  void u64(std::uint64_t v) {
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    for (std::size_t i = 0; i < sizeof v; ++i) {
      h_ ^= p[i];
      h_ *= kFnvPrime;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

/// Salt separating the campaign's per-client seed stream from every other
/// consumer of ExperimentConfig::seed.
constexpr std::uint64_t kClientSeedSalt = 0xC47A116E5EEDULL;

bool kind_supported(const browser::BrowserProfile& profile,
                    methods::ProbeKind kind) {
  using methods::ProbeKind;
  switch (kind) {
    case ProbeKind::kFlashGet:
    case ProbeKind::kFlashPost:
    case ProbeKind::kFlashSocket:
      return profile.supports_flash;
    case ProbeKind::kJavaGet:
    case ProbeKind::kJavaPost:
    case ProbeKind::kJavaSocket:
    case ProbeKind::kJavaUdp:
      return profile.supports_java;
    case ProbeKind::kWebSocket:
      return profile.supports_websocket;
    default:
      return true;  // XHR GET/POST, DOM: every Table-2 browser runs them
  }
}

/// Weighted pick: u in [0, total) walks the cumulative weights.
template <typename Weight>
std::size_t pick_weighted(double u, const std::vector<Weight>& weights) {
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // fp edge: u == total
}

// ---------------------------------------------------------------------------
// Aggregate JSON helpers.

Value u64_json(std::uint64_t v) {
  return Value::integer(static_cast<std::int64_t>(v));
}

bool read_u64(const Value* v, std::uint64_t* out) {
  if (!v || !v->is_int() || v->as_int() < 0) return false;
  *out = static_cast<std::uint64_t>(v->as_int());
  return true;
}

/// Parse a sketch member and require its grid to match `expected`'s.
bool read_sketch(const Value* v, stats::QuantileSketch* expected) {
  if (!v) return false;
  stats::QuantileSketch parsed;
  if (!stats::QuantileSketch::from_json(*v, &parsed)) return false;
  if (!(parsed.grid() == expected->grid())) return false;
  *expected = std::move(parsed);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Spec hash.

std::uint64_t campaign_spec_hash(const CampaignSpec& spec) {
  SpecHasher h;
  h.u64(0xB14CA4BA16ULL);  // format salt
  h.u64(spec.seed);
  h.u64(spec.clients);
  h.i64(spec.runs_per_client);
  h.i64(spec.min_rtt_window);
  h.u64(spec.cases.size());
  for (const CaseWeight& c : spec.cases) {
    h.u64(static_cast<std::uint64_t>(c.which.browser));
    h.u64(static_cast<std::uint64_t>(c.which.os));
    h.f64(c.weight);
  }
  h.u64(spec.methods.size());
  for (const MethodWeight& m : spec.methods) {
    h.u64(static_cast<std::uint64_t>(m.kind));
    h.f64(m.weight);
  }
  h.u64(static_cast<std::uint64_t>(spec.rtt_ms.kind));
  h.f64(spec.rtt_ms.a);
  h.f64(spec.rtt_ms.b);
  h.u64(spec.bandwidth_mbps.size());
  for (double mbps : spec.bandwidth_mbps) h.f64(mbps);
  h.f64(spec.lossy_fraction);
  h.f64(spec.loss_probability);
  h.i64(spec.inter_run_gap_min.ns());
  h.i64(spec.inter_run_gap_max.ns());
  h.i64(spec.sample_deadline.ns());
  h.i64(spec.http_request_timeout.ns());
  h.i64(spec.http_max_retries);
  h.f64(spec.grid.lo);
  h.f64(spec.grid.hi);
  h.i64(spec.grid.cells);
  return h.value();
}

std::string campaign_spec_hash_hex(const CampaignSpec& spec) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(campaign_spec_hash(spec)));
  return buf;
}

// ---------------------------------------------------------------------------
// CampaignSampler.

CampaignSampler::CampaignSampler(const CampaignSpec& spec) : spec_{spec} {
  std::vector<CaseWeight> cases = spec.cases;
  if (cases.empty()) {
    for (const browser::BrowserOsCase& c : browser::paper_cases()) {
      cases.push_back(CaseWeight{c, 1.0});
    }
  }
  std::vector<MethodWeight> methods = spec.methods;
  if (methods.empty()) {
    for (methods::ProbeKind k : browser::all_probe_kinds()) {
      methods.push_back(MethodWeight{k, 1.0});
    }
  }
  for (const CaseWeight& cw : cases) {
    if (!(cw.weight > 0)) {
      throw std::invalid_argument{"campaign: case weight must be > 0"};
    }
    // make_profile throws for combinations outside Table 2.
    const browser::BrowserProfile profile =
        browser::make_profile(cw.which.browser, cw.which.os);
    ResolvedCase rc;
    rc.which = cw.which;
    rc.weight = cw.weight;
    for (const MethodWeight& mw : methods) {
      if (!(mw.weight > 0)) {
        throw std::invalid_argument{"campaign: method weight must be > 0"};
      }
      if (!kind_supported(profile, mw.kind)) continue;
      rc.kinds.push_back(mw.kind);
      rc.kind_weights.push_back(mw.weight);
      rc.kind_weight_total += mw.weight;
    }
    if (rc.kinds.empty()) {
      throw std::invalid_argument{
          "campaign: case '" + cw.which.label() +
          "' supports none of the methods in the mix"};
    }
    case_weight_total_ += rc.weight;
    profile_labels_.push_back(cw.which.label());
    cases_.push_back(std::move(rc));
  }
}

ExperimentConfig CampaignSampler::client_config(
    std::uint64_t client, std::size_t* profile_index) const {
  // One private RNG stream per client, derived from (spec seed, client
  // index) only — shard layout and execution order can never perturb it.
  sim::Rng rng{mix(mix(kClientSeedSalt, spec_.seed), client)};

  const double cu = rng.uniform01() * case_weight_total_;
  double acc = 0;
  std::size_t ci = cases_.size() - 1;
  for (std::size_t i = 0; i < cases_.size(); ++i) {
    acc += cases_[i].weight;
    if (cu < acc) {
      ci = i;
      break;
    }
  }
  const ResolvedCase& rc = cases_[ci];
  if (profile_index) *profile_index = ci;

  const double mu = rng.uniform01() * rc.kind_weight_total;
  const std::size_t mi = pick_weighted(mu, rc.kind_weights);

  ExperimentConfig cfg;
  cfg.browser = rc.which.browser;
  cfg.os = rc.which.os;
  cfg.kind = rc.kinds[mi];
  cfg.runs = spec_.runs_per_client;
  cfg.seed = mix(mix(spec_.seed, kClientSeedSalt), client + 1);
  cfg.inter_run_gap_min = spec_.inter_run_gap_min;
  cfg.inter_run_gap_max = spec_.inter_run_gap_max;
  cfg.sample_deadline = spec_.sample_deadline;
  cfg.http_request_timeout = spec_.http_request_timeout;
  cfg.http_max_retries = spec_.http_max_retries;
  cfg.testbed.server_delay = spec_.rtt_ms.sample(rng);
  if (!spec_.bandwidth_mbps.empty()) {
    const auto bi = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec_.bandwidth_mbps.size()) - 1));
    cfg.testbed.bandwidth_bps = spec_.bandwidth_mbps[bi] * 1e6;
  }
  cfg.testbed.link_loss_probability =
      rng.chance(spec_.lossy_fraction) ? spec_.loss_probability : 0.0;
  return cfg;
}

// ---------------------------------------------------------------------------
// CampaignAggregate.

CampaignAggregate::CampaignAggregate(const stats::QuantileSketch::Grid& grid,
                                     std::size_t profiles)
    : net_rtt{grid}, rtt_inflation{grid} {
  methods.reserve(kCampaignMethodCount);
  for (std::size_t i = 0; i < kCampaignMethodCount; ++i) {
    MethodAggregate m;
    m.d1 = stats::QuantileSketch{grid};
    m.d2 = stats::QuantileSketch{grid};
    methods.push_back(std::move(m));
  }
  this->profiles.reserve(profiles);
  for (std::size_t i = 0; i < profiles; ++i) {
    ProfileAggregate p;
    p.d = stats::QuantileSketch{grid};
    this->profiles.push_back(std::move(p));
  }
}

void CampaignAggregate::fold(const OverheadSeries& series,
                             std::size_t profile_index, int min_rtt_window) {
  const auto mi = static_cast<std::size_t>(series.config.kind);
  MethodAggregate& m = methods.at(mi);
  ProfileAggregate& p = profiles.at(profile_index);

  ++clients;
  ++m.clients;
  ++p.clients;
  const std::uint64_t n = series.samples.size();
  samples += n;
  m.samples += n;
  p.samples += n;
  m.timeouts += static_cast<std::uint64_t>(series.accounting.timeouts);
  m.transport_errors +=
      static_cast<std::uint64_t>(series.accounting.transport_errors);
  m.degraded += static_cast<std::uint64_t>(series.accounting.degraded);
  m.http_retries += series.accounting.http_retries;
  m.http_timeouts += series.accounting.http_timeouts;

  const auto overhead_bucket = [](double d_ms) {
    const auto us = static_cast<std::uint64_t>(
        std::llround(std::fabs(d_ms) * 1000.0));
    std::size_t i = 0;
    while (i < kOverheadBucketBoundsUs.size() &&
           us > kOverheadBucketBoundsUs[i]) {
      ++i;  // same rule as obs::Histogram::observe
    }
    return i;
  };

  // One MovingMin per client over its network RTT stream: `sample − window
  // min` is the RTT inflation the min-filter baseline would remove.
  stats::MovingMin window{static_cast<std::size_t>(
      min_rtt_window > 0 ? min_rtt_window : 1)};
  for (const OverheadSample& s : series.samples) {
    m.d1.insert(s.d1_ms);
    m.d2.insert(s.d2_ms);
    ++m.overhead_us[overhead_bucket(s.d1_ms)];
    ++m.overhead_us[overhead_bucket(s.d2_ms)];
    p.d.insert(s.d1_ms);
    p.d.insert(s.d2_ms);
    net_rtt.insert(s.net_rtt1_ms);
    net_rtt.insert(s.net_rtt2_ms);
    rtt_inflation.insert(s.net_rtt1_ms - window.push(s.net_rtt1_ms));
    rtt_inflation.insert(s.net_rtt2_ms - window.push(s.net_rtt2_ms));
  }
}

void CampaignAggregate::merge(const CampaignAggregate& other) {
  clients += other.clients;
  samples += other.samples;
  failed_clients += other.failed_clients;
  for (std::size_t i = 0; i < methods.size(); ++i) {
    MethodAggregate& a = methods[i];
    const MethodAggregate& b = other.methods.at(i);
    a.clients += b.clients;
    a.samples += b.samples;
    a.timeouts += b.timeouts;
    a.transport_errors += b.transport_errors;
    a.degraded += b.degraded;
    a.http_retries += b.http_retries;
    a.http_timeouts += b.http_timeouts;
    a.d1.merge(b.d1);
    a.d2.merge(b.d2);
    for (std::size_t j = 0; j < a.overhead_us.size(); ++j) {
      a.overhead_us[j] += b.overhead_us[j];
    }
  }
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    profiles[i].clients += other.profiles.at(i).clients;
    profiles[i].samples += other.profiles.at(i).samples;
    profiles[i].d.merge(other.profiles.at(i).d);
  }
  net_rtt.merge(other.net_rtt);
  rtt_inflation.merge(other.rtt_inflation);
}

std::size_t CampaignAggregate::memory_bytes() const {
  const auto sketch_heap = [](const stats::QuantileSketch& s) {
    return s.memory_bytes() - sizeof(stats::QuantileSketch);
  };
  std::size_t bytes = sizeof(*this);
  bytes += methods.capacity() * sizeof(MethodAggregate);
  bytes += profiles.capacity() * sizeof(ProfileAggregate);
  for (const MethodAggregate& m : methods) {
    bytes += sketch_heap(m.d1) + sketch_heap(m.d2);
  }
  for (const ProfileAggregate& p : profiles) bytes += sketch_heap(p.d);
  bytes += sketch_heap(net_rtt) + sketch_heap(rtt_inflation);
  return bytes;
}

obs::json::Value CampaignAggregate::to_json() const {
  Value v = Value::object();
  v.add("clients", u64_json(clients));
  v.add("samples", u64_json(samples));
  v.add("failed_clients", u64_json(failed_clients));
  Value ms = Value::array();
  for (const MethodAggregate& m : methods) {
    Value mv = Value::object();
    mv.add("clients", u64_json(m.clients));
    mv.add("samples", u64_json(m.samples));
    mv.add("timeouts", u64_json(m.timeouts));
    mv.add("transport_errors", u64_json(m.transport_errors));
    mv.add("degraded", u64_json(m.degraded));
    mv.add("http_retries", u64_json(m.http_retries));
    mv.add("http_timeouts", u64_json(m.http_timeouts));
    mv.add("d1", m.d1.to_json());
    mv.add("d2", m.d2.to_json());
    Value hist = Value::array();
    for (std::uint64_t b : m.overhead_us) hist.push(u64_json(b));
    mv.add("overhead_us", std::move(hist));
    ms.push(std::move(mv));
  }
  v.add("methods", std::move(ms));
  Value ps = Value::array();
  for (const ProfileAggregate& p : profiles) {
    Value pv = Value::object();
    pv.add("clients", u64_json(p.clients));
    pv.add("samples", u64_json(p.samples));
    pv.add("d", p.d.to_json());
    ps.push(std::move(pv));
  }
  v.add("profiles", std::move(ps));
  v.add("net_rtt", net_rtt.to_json());
  v.add("rtt_inflation", rtt_inflation.to_json());
  return v;
}

bool CampaignAggregate::from_json(const obs::json::Value& v,
                                  CampaignAggregate* out) {
  if (!v.is_object()) return false;
  if (!read_u64(v.find("clients"), &out->clients) ||
      !read_u64(v.find("samples"), &out->samples) ||
      !read_u64(v.find("failed_clients"), &out->failed_clients)) {
    return false;
  }
  const Value* ms = v.find("methods");
  if (!ms || !ms->is_array() || ms->items().size() != out->methods.size()) {
    return false;
  }
  for (std::size_t i = 0; i < out->methods.size(); ++i) {
    const Value& mv = ms->items()[i];
    if (!mv.is_object()) return false;
    MethodAggregate& m = out->methods[i];
    if (!read_u64(mv.find("clients"), &m.clients) ||
        !read_u64(mv.find("samples"), &m.samples) ||
        !read_u64(mv.find("timeouts"), &m.timeouts) ||
        !read_u64(mv.find("transport_errors"), &m.transport_errors) ||
        !read_u64(mv.find("degraded"), &m.degraded) ||
        !read_u64(mv.find("http_retries"), &m.http_retries) ||
        !read_u64(mv.find("http_timeouts"), &m.http_timeouts) ||
        !read_sketch(mv.find("d1"), &m.d1) ||
        !read_sketch(mv.find("d2"), &m.d2)) {
      return false;
    }
    const Value* hist = mv.find("overhead_us");
    if (!hist || !hist->is_array() ||
        hist->items().size() != m.overhead_us.size()) {
      return false;
    }
    for (std::size_t j = 0; j < m.overhead_us.size(); ++j) {
      if (!read_u64(&hist->items()[j], &m.overhead_us[j])) return false;
    }
  }
  const Value* ps = v.find("profiles");
  if (!ps || !ps->is_array() || ps->items().size() != out->profiles.size()) {
    return false;
  }
  for (std::size_t i = 0; i < out->profiles.size(); ++i) {
    const Value& pv = ps->items()[i];
    if (!pv.is_object()) return false;
    ProfileAggregate& p = out->profiles[i];
    if (!read_u64(pv.find("clients"), &p.clients) ||
        !read_u64(pv.find("samples"), &p.samples) ||
        !read_sketch(pv.find("d"), &p.d)) {
      return false;
    }
  }
  if (!read_sketch(v.find("net_rtt"), &out->net_rtt) ||
      !read_sketch(v.find("rtt_inflation"), &out->rtt_inflation)) {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Campaign checkpoint: one record per completed shard, same atomic
// temp+rename persistence as the matrix checkpoint. Records re-serialize
// from the canonical aggregate encoding on every flush, so a resumed
// checkpoint file converges to exactly what an uninterrupted run writes.

namespace {

class CampaignCheckpoint {
 public:
  CampaignCheckpoint(std::string path, const CampaignSpec& spec,
                     std::size_t shards, int flush_every)
      : path_{std::move(path)},
        spec_hash_{campaign_spec_hash_hex(spec)},
        clients_{spec.clients},
        shards_{shards},
        flush_every_{flush_every < 1 ? 1 : flush_every} {}

  void preload(std::size_t shard, CampaignAggregate state) {
    std::lock_guard<std::mutex> lock{mu_};
    records_.insert_or_assign(shard, std::move(state));
  }

  void add(std::size_t shard, const CampaignAggregate& state) {
    std::string contents;
    {
      std::lock_guard<std::mutex> lock{mu_};
      records_.insert_or_assign(shard, state);
      if (++unflushed_ < flush_every_) return;
      unflushed_ = 0;
      contents = render_locked();
    }
    write(contents);
  }

  bool flush() {
    std::string contents;
    {
      std::lock_guard<std::mutex> lock{mu_};
      unflushed_ = 0;
      contents = render_locked();
    }
    return write(contents);
  }

 private:
  std::string render_locked() const {
    Value v = Value::object();
    v.add("format", Value::string(kCampaignCheckpointFormat));
    v.add("version", Value::integer(kCampaignCheckpointVersion));
    v.add("spec_hash", Value::string(spec_hash_));
    v.add("clients", u64_json(clients_));
    v.add("shards", u64_json(shards_));
    Value records = Value::array();
    for (const auto& [shard, state] : records_) {
      Value r = Value::object();
      r.add("shard", u64_json(shard));
      r.add("state", state.to_json());
      records.push(std::move(r));
    }
    v.add("records", std::move(records));
    return v.dump();
  }

  bool write(const std::string& contents) {
    BNM_PROF_SCOPE("campaign.checkpoint_flush");
    if (!write_file_atomic(path_, contents)) return false;
    checkpoint_flushes_counter().add();
    return true;
  }

  std::string path_;
  std::string spec_hash_;
  std::uint64_t clients_;
  std::size_t shards_;
  int flush_every_;
  mutable std::mutex mu_;
  int unflushed_ = 0;
  std::map<std::size_t, CampaignAggregate> records_;  ///< by shard index
};

/// Load a campaign checkpoint and return per-shard aggregates. Forgiving
/// like CheckpointReader: anything unusable degrades to "no records".
std::map<std::size_t, CampaignAggregate> load_campaign_checkpoint(
    const std::string& path, const CampaignSpec& spec, std::size_t shards,
    std::size_t profile_count) {
  std::map<std::size_t, CampaignAggregate> out;
  const std::optional<std::string> text = read_file_contents(path);
  if (!text) return out;
  const std::optional<Value> doc = obs::json::parse(*text);
  if (!doc || !doc->is_object()) return out;
  const Value* format = doc->find("format");
  const Value* version = doc->find("version");
  const Value* hash = doc->find("spec_hash");
  const Value* clients = doc->find("clients");
  const Value* shards_v = doc->find("shards");
  const Value* records = doc->find("records");
  if (!format || !format->is_string() ||
      format->as_string() != kCampaignCheckpointFormat || !version ||
      !version->is_int() || version->as_int() != kCampaignCheckpointVersion ||
      !hash || !hash->is_string() ||
      hash->as_string() != campaign_spec_hash_hex(spec) || !clients ||
      !clients->is_int() ||
      clients->as_int() != static_cast<std::int64_t>(spec.clients) ||
      !shards_v || !shards_v->is_int() ||
      shards_v->as_int() != static_cast<std::int64_t>(shards) || !records ||
      !records->is_array()) {
    return out;
  }
  for (const Value& r : records->items()) {
    if (!r.is_object()) continue;
    const Value* shard = r.find("shard");
    const Value* state = r.find("state");
    if (!shard || !shard->is_int() || shard->as_int() < 0 ||
        shard->as_int() >= static_cast<std::int64_t>(shards) || !state) {
      continue;
    }
    CampaignAggregate agg{spec.grid, profile_count};
    if (!CampaignAggregate::from_json(*state, &agg)) continue;
    out.insert_or_assign(static_cast<std::size_t>(shard->as_int()),
                         std::move(agg));
  }
  return out;
}

/// Shared completion state for the serial and pooled paths.
struct CampaignState {
  std::mutex mu;
  CampaignResult* result = nullptr;
  const CampaignOptions* options = nullptr;
  CampaignCheckpoint* checkpoint = nullptr;  ///< nullptr = off
  std::size_t done = 0;
  std::chrono::steady_clock::time_point started;
};

/// Simulate clients [first, last) into a fresh aggregate. Runs with an
/// arena scope active; the arena is rewound wholesale after every client
/// (the testbed dies with run_experiment; the aggregate uses the global
/// allocator).
CampaignAggregate run_shard_clients(const CampaignSampler& sampler,
                                    const CampaignSpec& spec,
                                    std::uint64_t first, std::uint64_t last,
                                    sim::Arena& arena) {
  CampaignAggregate agg{spec.grid, sampler.profile_count()};
  for (std::uint64_t client = first; client < last; ++client) {
    std::size_t profile_index = 0;
    ExperimentConfig cfg = sampler.client_config(client, &profile_index);
    try {
      const OverheadSeries series = run_experiment(std::move(cfg));
      agg.fold(series, profile_index, spec.min_rtt_window);
    } catch (const std::exception&) {
      ++agg.failed_clients;  // poisoned client, not a poisoned campaign
      client_failures_counter().add();
    }
    arena.reset();
  }
  return agg;
}

/// Fold one executed shard into the result: merge, checkpoint, metrics,
/// trace span, then the guarded progress callback — checkpoint strictly
/// before progress so a --kill-after harness that dies inside the callback
/// finds the shard durable on resume.
void finish_shard(CampaignState& st, std::size_t shard,
                  const CampaignAggregate& agg,
                  std::chrono::steady_clock::time_point shard_start) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock{st.mu};
  st.result->aggregate.merge(agg);
  ++st.result->shards_run;
  shards_completed_counter().add();
  clients_simulated_counter().add(agg.clients);
  samples_counter().add(agg.samples);
  if (st.checkpoint) st.checkpoint->add(shard, agg);
  if (st.options->trace) {
    const auto since = [&](std::chrono::steady_clock::time_point t) {
      return sim::Duration::nanos(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t - st.started)
              .count());
    };
    st.options->trace->emit_span(
        sim::TimePoint::epoch() + since(shard_start), since(now) - since(shard_start),
        "campaign", "shard",
        {{"shard", static_cast<std::int64_t>(shard)},
         {"clients", static_cast<std::int64_t>(agg.clients)},
         {"samples", static_cast<std::int64_t>(agg.samples)},
         {"failed_clients", static_cast<std::int64_t>(agg.failed_clients)}});
  }
  ++st.done;
  if (st.options->progress) {
    try {
      st.options->progress(st.done, st.result->shards);
    } catch (...) {
      ++st.result->progress_errors;
      progress_errors_counter().add();
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// run_campaign.

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  BNM_PROF_SCOPE("campaign.run");
  CampaignSampler sampler{spec};

  std::size_t shards = spec.shards < 1 ? 1 : static_cast<std::size_t>(spec.shards);
  if (spec.clients > 0 && shards > spec.clients) {
    shards = static_cast<std::size_t>(spec.clients);
  }
  if (spec.clients == 0) shards = 1;

  CampaignResult result;
  result.aggregate = CampaignAggregate{spec.grid, sampler.profile_count()};
  result.profile_labels = sampler.profile_labels();
  result.shards = shards;

  std::unique_ptr<CampaignCheckpoint> checkpoint;
  std::vector<bool> resumed(shards, false);
  if (!options.checkpoint.empty()) {
    checkpoint = std::make_unique<CampaignCheckpoint>(
        options.checkpoint, spec, shards, options.flush_every);
    if (options.resume) {
      std::map<std::size_t, CampaignAggregate> stored =
          load_campaign_checkpoint(options.checkpoint, spec, shards,
                                   sampler.profile_count());
      for (auto& [shard, agg] : stored) {
        result.aggregate.merge(agg);
        resumed[shard] = true;
        ++result.shards_resumed;
        shards_resumed_counter().add();
        checkpoint->preload(shard, std::move(agg));
      }
    }
  }

  CampaignState st;
  st.result = &result;
  st.options = &options;
  st.checkpoint = checkpoint.get();
  st.done = result.shards_resumed;
  st.started = std::chrono::steady_clock::now();

  const auto shard_range = [&](std::size_t shard) {
    const std::uint64_t first = spec.clients * shard / shards;
    const std::uint64_t last = spec.clients * (shard + 1) / shards;
    return std::pair<std::uint64_t, std::uint64_t>{first, last};
  };
  const auto cancel_requested = [&] {
    return options.cancel &&
           options.cancel->load(std::memory_order_acquire);
  };

  const int jobs = resolve_jobs(options.jobs, shards);
  if (jobs == 1) {
    sim::Arena arena;
    sim::ArenaScope scope{&arena};
    for (std::size_t shard = 0; shard < shards; ++shard) {
      if (resumed[shard]) continue;
      if (cancel_requested()) {
        result.cancelled = true;
        break;
      }
      const auto [first, last] = shard_range(shard);
      const auto t0 = std::chrono::steady_clock::now();
      const CampaignAggregate agg =
          run_shard_clients(sampler, spec, first, last, arena);
      finish_shard(st, shard, agg, t0);
    }
  } else {
    ThreadPool pool{jobs};
    for (std::size_t shard = 0; shard < shards; ++shard) {
      if (resumed[shard]) continue;
      pool.submit([&, shard] {
        if (cancel_requested()) {
          std::lock_guard<std::mutex> lock{st.mu};
          result.cancelled = true;
          return;  // graceful drain: in-flight shards finish
        }
        thread_local sim::Arena worker_arena;
        sim::ArenaScope scope{&worker_arena};
        const auto [first, last] = shard_range(shard);
        const auto t0 = std::chrono::steady_clock::now();
        const CampaignAggregate agg =
            run_shard_clients(sampler, spec, first, last, worker_arena);
        finish_shard(st, shard, agg, t0);
      });
    }
    pool.wait_idle();
  }

  if (checkpoint && !result.cancelled && result.shards_run > 0) {
    checkpoint->flush();  // final rewrite covers any flush_every remainder
  }
  return result;
}

// ---------------------------------------------------------------------------
// Report.

namespace {

/// Quantile summary of one sketch. Finite numbers only (NaN is not JSON):
/// an empty sketch reports zeros alongside its count of 0.
Value sketch_summary_json(const stats::QuantileSketch& s) {
  const bool some = s.count() > 0;
  const auto num = [&](double v) { return Value::number(some ? v : 0.0); };
  Value v = Value::object();
  v.add("count", u64_json(s.count()));
  v.add("min_ms", num(s.min()));
  v.add("max_ms", num(s.max()));
  v.add("mean_ms", num(s.mean()));
  v.add("p25_ms", num(s.quantile(0.25)));
  v.add("p50_ms", num(s.quantile(0.50)));
  v.add("p75_ms", num(s.quantile(0.75)));
  v.add("p90_ms", num(s.quantile(0.90)));
  v.add("p99_ms", num(s.quantile(0.99)));
  return v;
}

}  // namespace

std::string campaign_report_json(const CampaignSpec& spec,
                                 const CampaignResult& result) {
  Value v = Value::object();
  v.add("format", Value::string(kCampaignReportFormat));
  v.add("version", Value::integer(kCampaignReportVersion));
  v.add("spec_hash", Value::string(campaign_spec_hash_hex(spec)));
  // Population echo only — no shard count, no jobs, no resume provenance:
  // the report must be byte-identical across execution layouts.
  Value sp = Value::object();
  sp.add("seed", u64_json(spec.seed));
  sp.add("clients", u64_json(spec.clients));
  sp.add("runs_per_client", Value::integer(spec.runs_per_client));
  sp.add("min_rtt_window", Value::integer(spec.min_rtt_window));
  sp.add("rtt_median_ms", Value::number(spec.rtt_ms.median_ms()));
  sp.add("lossy_fraction", Value::number(spec.lossy_fraction));
  sp.add("loss_probability", Value::number(spec.loss_probability));
  v.add("spec", std::move(sp));

  const CampaignAggregate& agg = result.aggregate;
  Value totals = Value::object();
  totals.add("clients", u64_json(agg.clients));
  totals.add("samples", u64_json(agg.samples));
  totals.add("failed_clients", u64_json(agg.failed_clients));
  v.add("totals", std::move(totals));

  Value methods = Value::array();
  for (std::size_t i = 0; i < agg.methods.size(); ++i) {
    const MethodAggregate& m = agg.methods[i];
    Value mv = Value::object();
    mv.add("kind", Value::string(browser::probe_kind_name(
                       static_cast<methods::ProbeKind>(i))));
    mv.add("clients", u64_json(m.clients));
    mv.add("samples", u64_json(m.samples));
    mv.add("timeouts", u64_json(m.timeouts));
    mv.add("transport_errors", u64_json(m.transport_errors));
    mv.add("degraded", u64_json(m.degraded));
    mv.add("http_retries", u64_json(m.http_retries));
    mv.add("http_timeouts", u64_json(m.http_timeouts));
    mv.add("d1", sketch_summary_json(m.d1));
    mv.add("d2", sketch_summary_json(m.d2));
    Value hist = Value::object();
    Value bounds = Value::array();
    for (std::uint64_t b : kOverheadBucketBoundsUs) bounds.push(u64_json(b));
    hist.add("bounds_us", std::move(bounds));
    Value buckets = Value::array();
    for (std::uint64_t b : m.overhead_us) buckets.push(u64_json(b));
    hist.add("buckets", std::move(buckets));
    mv.add("overhead_us", std::move(hist));
    methods.push(std::move(mv));
  }
  v.add("methods", std::move(methods));

  Value profiles = Value::array();
  for (std::size_t i = 0; i < agg.profiles.size(); ++i) {
    const ProfileAggregate& p = agg.profiles[i];
    Value pv = Value::object();
    pv.add("case", Value::string(i < result.profile_labels.size()
                                     ? result.profile_labels[i]
                                     : std::string{"?"}));
    pv.add("clients", u64_json(p.clients));
    pv.add("samples", u64_json(p.samples));
    pv.add("d", sketch_summary_json(p.d));
    profiles.push(std::move(pv));
  }
  v.add("profiles", std::move(profiles));

  v.add("net_rtt", sketch_summary_json(agg.net_rtt));
  v.add("rtt_inflation", sketch_summary_json(agg.rtt_inflation));
  return v.dump() + "\n";
}

bool write_campaign_report(const std::string& path, const CampaignSpec& spec,
                           const CampaignResult& result) {
  return write_file_atomic(path, campaign_report_json(spec, result));
}

}  // namespace bnm::core
