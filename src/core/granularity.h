// Figure 5 reproduction: probe the *actual* granularity of a timing API by
// busy-polling it until the returned value changes (the paper's Java
// snippet), and sample that granularity over time to expose the Windows
// regime-switching the paper discovered.
#pragma once

#include <vector>

#include "browser/timing.h"
#include "sim/time.h"

namespace bnm::core {

struct GranularityProbe {
  sim::TimePoint at;         ///< when the probe started
  sim::Duration measured;    ///< end - start, per the paper's code
  std::uint64_t api_calls;   ///< loop iterations until the value changed
};

class GranularityProber {
 public:
  /// One execution of the paper's Figure 5 loop starting at `start`:
  /// busy-poll `clock` (each call advancing time by its call cost) until
  /// the returned value differs from the first reading.
  static GranularityProbe probe_once(browser::TimingApi& clock,
                                     sim::TimePoint start);

  /// Repeat probe_once at `interval` spacing, `count` times - long enough
  /// sampling exposes regime changes ("each possible value will last for a
  /// period of time and then change").
  static std::vector<GranularityProbe> probe_series(browser::TimingApi& clock,
                                                    sim::TimePoint start,
                                                    sim::Duration interval,
                                                    std::size_t count);

  /// Distinct granularity levels seen in a series (values within 10%
  /// cluster together), sorted ascending.
  static std::vector<sim::Duration> distinct_levels(
      const std::vector<GranularityProbe>& series);
};

}  // namespace bnm::core
