#include "core/experiment.h"

#include <cassert>
#include <utility>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "sim/arena.h"

namespace bnm::core {

namespace {

// Sample-outcome totals and RTT distributions ("experiment.*" in
// docs/OBSERVABILITY.md). Totals mirror the per-series SampleAccounting;
// the histograms are registry-only (there was no aggregate view of RTT
// shape before). Units are integer microseconds so merges stay exact.
struct ExperimentMetrics {
  obs::Counter runs;
  obs::Counter samples;
  obs::Counter timeouts;
  obs::Counter transport_errors;
  obs::Counter degraded;
  obs::Histogram net_rtt_us;
  obs::Histogram browser_overhead_us;

  static const ExperimentMetrics& get() {
    static const ExperimentMetrics m{
        obs::MetricsRegistry::instance().counter(
            "experiment.runs", "runs", "method repetitions attempted"),
        obs::MetricsRegistry::instance().counter(
            "experiment.samples", "samples",
            "repetitions yielding a valid overhead sample"),
        obs::MetricsRegistry::instance().counter(
            "experiment.timeouts", "runs",
            "repetitions abandoned at the sample deadline"),
        obs::MetricsRegistry::instance().counter(
            "experiment.transport_errors", "runs",
            "repetitions failed by the transport or method"),
        obs::MetricsRegistry::instance().counter(
            "experiment.degraded", "runs",
            "repetitions with no probe packets in the capture window"),
        obs::MetricsRegistry::instance().histogram(
            "experiment.net_rtt_us", "us",
            "network-level RTT of accepted samples (t_n_r - t_n_s)",
            {100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000,
             200000, 500000}),
        obs::MetricsRegistry::instance().histogram(
            "experiment.browser_overhead_us", "us",
            "browser-added delay of accepted samples (Eq. 1 delta-d)",
            {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000,
             50000}),
    };
    return m;
  }
};

std::uint64_t to_us_clamped(double ms) {
  if (ms <= 0) return 0;
  return static_cast<std::uint64_t>(ms * 1000.0);
}

}  // namespace

std::vector<double> OverheadSeries::d1() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.d1_ms);
  return out;
}

std::vector<double> OverheadSeries::d2() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.d2_ms);
  return out;
}

namespace {
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

Experiment::Experiment(ExperimentConfig config) : config_{std::move(config)} {
  config_.testbed.client_os = config_.os;
  // Each experiment is its own testbed session: derive an independent seed
  // from the case so no two experiments share stochastic state (notably the
  // machine's timer-regime schedule).
  std::uint64_t seed = config_.seed;
  seed = mix(seed, static_cast<std::uint64_t>(config_.browser));
  seed = mix(seed, static_cast<std::uint64_t>(config_.os));
  seed = mix(seed, static_cast<std::uint64_t>(config_.kind));
  seed = mix(seed, config_.java_use_nanotime ? 2 : 1);
  seed = mix(seed, config_.java_via_appletviewer ? 2 : 1);
  config_.testbed.seed = seed;
  testbed_ = std::make_unique<Testbed>(config_.testbed);
}

net::Port Experiment::probe_port() const {
  switch (config_.kind) {
    case methods::ProbeKind::kFlashSocket:
    case methods::ProbeKind::kJavaSocket:
      return config_.testbed.tcp_echo_port;
    case methods::ProbeKind::kJavaUdp:
      return config_.testbed.udp_echo_port;
    case methods::ProbeKind::kWebSocket:
      return config_.testbed.ws_port;
    default:
      return config_.testbed.http_port;
  }
}

Experiment::WindowTimes Experiment::network_rtt_in_window(
    sim::TimePoint from, sim::TimePoint to, net::Port port) const {
  // Records are time-ordered: binary-search the window start and stop at the
  // first record past the window instead of re-scanning the whole capture
  // for every run (the scan was O(records x runs) per experiment).
  const net::PacketCapture& capture = testbed_->client().capture();
  BNM_PROF_SCOPE("experiment.window_scan");
  WindowTimes out;
  std::optional<sim::TimePoint> t_n_s;
  std::optional<sim::TimePoint> t_n_r;
  const std::size_t n = capture.size();
  for (std::size_t i = capture.first_index_at_or_after(from);
       i < n && capture.true_time(i) <= to; ++i) {
    // Column scan: true_time/direction are packed arrays; the heavyweight
    // packet column is only dereferenced for rows inside the window.
    const net::Packet& p = capture.packet(i);
    const bool outbound =
        capture.direction(i) == net::CaptureDirection::kOutbound;
    if (outbound && p.protocol == net::Protocol::kTcp && p.flags.syn &&
        !p.flags.ack && p.dst.port == port) {
      ++out.connections_opened;
    }
    if (outbound && p.dst.port == port && p.carries_data()) {
      if (!t_n_s) t_n_s = capture.timestamp(i);  // first request packet
    }
    if (!outbound && p.src.port == port && p.carries_data()) {
      t_n_r = capture.timestamp(i);  // last response packet so far
    }
  }
  if (t_n_s && t_n_r && *t_n_r > *t_n_s) {
    out.net_rtt_ms = (*t_n_r - *t_n_s).ms_f();
  }
  return out;
}

OverheadSeries Experiment::run() {
  // Route the packet path through the simulation's bump arena unless an
  // outer scope (e.g. a run_matrix worker's private arena) is already
  // active. Everything arena-allocated below dies with testbed_, before the
  // arena is reset or destroyed.
  sim::ArenaScope arena_scope{
      sim::Arena::current() != nullptr ? nullptr : &testbed_->sim().arena()};
  // Pre-size the capture columns from the repetition plan: one repetition
  // records the handshake, the probe exchange and its ACKs — 256 rows
  // covers every method with slack, and clear() keeps the capacity across
  // repetitions, so recording never reallocates mid-run.
  if (config_.runs > 0) testbed_->client().capture().reserve(256);

  OverheadSeries series;
  series.config = config_;

  auto method = methods::make_method(config_.kind);
  series.method_name = method->info().name;

  browser::BrowserProfile profile =
      config_.custom_profile
          ? *config_.custom_profile
          : browser::make_profile(config_.browser, config_.os);
  series.case_label = config_.java_via_appletviewer
                          ? std::string{"appletviewer ("} +
                                browser::os_initial(config_.os) + ")"
                          : profile.label();

  sim::Scheduler& sched = testbed_->sim().scheduler();
  sim::Rng gap_rng = testbed_->sim().rng_for("experiment/gaps");
  const net::Port port = probe_port();

  // Sessions abandoned at the sample deadline are parked here instead of
  // being destroyed: their event loops may still hold queued callbacks, and
  // tearing the browser down under them would leave those firing into freed
  // state. The graveyard drains naturally as the simulation idles between
  // runs and is released when the experiment ends.
  std::vector<std::unique_ptr<browser::Browser>> graveyard;

  // Watchdog accounting: every simulated event this cell fires (from run()
  // entry on) counts against the budget, so runaway event loops anywhere in
  // the repetition protocol — not just the probe drive — are bounded.
  const std::uint64_t budget =
      watchdog_ != nullptr ? watchdog_->event_budget : 0;
  const std::uint64_t budget_start = sched.executed_events();
  const auto abort_cell = [&](methods::MeasurementMethod& m, const char* where,
                              int at_run) {
    m.cancel();  // tear the in-flight probe down so nothing calls back later
    throw CellAbortError{
        where, std::string{where} + " tripped at repetition " +
                   std::to_string(at_run) + "/" +
                   std::to_string(config_.runs)};
  };

  const ExperimentMetrics& metrics = ExperimentMetrics::get();
  for (int run = 0; run < config_.runs; ++run) {
    BNM_PROF_SCOPE("experiment.repetition");
    metrics.runs.add(1);
    auto browser = testbed_->launch_browser(profile,
                                            static_cast<std::uint64_t>(run));
    if (!config_.http_request_timeout.is_zero()) {
      browser->http().set_default_timeout(config_.http_request_timeout);
    }
    if (config_.http_max_retries > 0) {
      browser->http().set_default_retries(config_.http_max_retries,
                                          config_.http_retry_backoff);
    }

    methods::MethodContext ctx;
    ctx.browser = browser.get();
    ctx.http_server = testbed_->http_endpoint();
    ctx.tcp_echo = testbed_->tcp_echo_endpoint();
    ctx.udp_echo = testbed_->udp_echo_endpoint();
    ctx.ws_server = testbed_->ws_endpoint();
    ctx.java_use_nanotime = config_.java_use_nanotime;
    ctx.java_via_appletviewer = config_.java_via_appletviewer;
    ctx.js_use_performance_now = config_.js_use_performance_now;
    ctx.probe_timeout = config_.probe_timeout;

    // The result slot is shared with the completion callback: if a run is
    // abandoned at the deadline, a straggler callback must land in heap
    // memory that outlives this loop iteration, not a dead stack frame.
    auto result = std::make_shared<std::optional<methods::MethodRunResult>>();
    auto done = std::make_shared<bool>(false);
    method->run(ctx, [result, done](methods::MethodRunResult r) {
      *result = std::move(r);
      *done = true;
    });
    // Drive the simulation until the method completes. A drained queue
    // with no result surfaces a deadlock; the deadline guards against
    // perpetual event sources (cross traffic) masking one. With a watchdog
    // attached, the drive additionally honours the runner's wall-clock
    // abort flag and the cell's remaining simulated-event budget.
    const sim::TimePoint deadline =
        testbed_->sim().now() + config_.sample_deadline;
    sim::Scheduler::RunLimits limits;
    const sim::Scheduler::RunLimits* limits_ptr = nullptr;
    if (watchdog_ != nullptr) {
      limits.abort = &watchdog_->wall_expired;
      if (budget != 0) {
        const std::uint64_t used = sched.executed_events() - budget_start;
        if (used >= budget) abort_cell(*method, "watchdog.event_budget", run);
        limits.max_events = budget - used;
      }
      limits_ptr = &limits;
    }
    sched.run_while(*done, deadline, limits_ptr);
    if (watchdog_ != nullptr) {
      if (watchdog_->wall_expired.load(std::memory_order_acquire)) {
        abort_cell(*method, "watchdog.wall_clock", run);
      }
      if (budget != 0 && !*done &&
          sched.executed_events() - budget_start >= budget) {
        abort_cell(*method, "watchdog.event_budget", run);
      }
    }

    if (!*result) {
      // Deadline expired (or the queue drained without completion): tear
      // the run-state down so nothing calls back later, and record the
      // repetition as a timeout sample.
      method->cancel();
      ++series.failures;
      ++series.accounting.timeouts;
      metrics.timeouts.add(1);
      if (series.first_error.empty()) {
        series.first_error = "sample deadline exceeded";
      }
    } else if (!(*result)->ok) {
      ++series.failures;
      ++series.accounting.transport_errors;
      metrics.transport_errors.add(1);
      if (series.first_error.empty()) {
        series.first_error = (*result)->error.empty() ? "method failed"
                                                      : (*result)->error;
      }
    } else {
      OverheadSample s;
      const methods::MethodRunResult& r = **result;
      const auto w1 =
          network_rtt_in_window(r.m1.true_send, r.m1.true_recv, port);
      const auto w2 =
          network_rtt_in_window(r.m2.true_send, r.m2.true_recv, port);
      if (w1.net_rtt_ms && w2.net_rtt_ms) {
        s.browser_rtt1_ms = r.m1.browser_rtt().ms_f();
        s.browser_rtt2_ms = r.m2.browser_rtt().ms_f();
        s.net_rtt1_ms = *w1.net_rtt_ms;
        s.net_rtt2_ms = *w2.net_rtt_ms;
        s.d1_ms = s.browser_rtt1_ms - s.net_rtt1_ms;
        s.d2_ms = s.browser_rtt2_ms - s.net_rtt2_ms;
        s.connections_opened1 = w1.connections_opened;
        s.connections_opened2 = w2.connections_opened;
        series.samples.push_back(s);
        metrics.samples.add(1);
        metrics.net_rtt_us.observe(to_us_clamped(s.net_rtt1_ms));
        metrics.net_rtt_us.observe(to_us_clamped(s.net_rtt2_ms));
        metrics.browser_overhead_us.observe(to_us_clamped(s.d1_ms));
        metrics.browser_overhead_us.observe(to_us_clamped(s.d2_ms));
        sim::Trace& trace = testbed_->sim().trace();
        if (trace.enabled()) {
          // Method-layer spans bracket each probe's true send/receive in
          // simulated time — the rows Perfetto shows above the scheduler
          // and link spans for a sample.
          trace.emit_span(
              r.m1.true_send, r.m1.true_recv - r.m1.true_send, "method",
              series.method_name + " m1",
              {{"run", static_cast<std::int64_t>(run)},
               {"browser_rtt_ms", s.browser_rtt1_ms},
               {"net_rtt_ms", s.net_rtt1_ms}});
          trace.emit_span(
              r.m2.true_send, r.m2.true_recv - r.m2.true_send, "method",
              series.method_name + " m2",
              {{"run", static_cast<std::int64_t>(run)},
               {"browser_rtt_ms", s.browser_rtt2_ms},
               {"net_rtt_ms", s.net_rtt2_ms}});
        }
      } else {
        ++series.failures;
        ++series.accounting.degraded;
        metrics.degraded.add(1);
        if (series.first_error.empty()) {
          series.first_error = "no probe packets in capture window";
        }
      }
    }

    series.accounting.http_retries += browser->http().request_retries();
    series.accounting.http_timeouts += browser->http().request_timeouts();

    // Tear the session down and idle until the next repetition. A session
    // whose run timed out is parked instead: queued callbacks may still
    // reference it, and all of them are no-ops once the run is cancelled.
    if (*result) {
      browser.reset();
    } else {
      graveyard.push_back(std::move(browser));
    }
    testbed_->client().capture().clear();
    const sim::Duration gap = gap_rng.uniform_ms(
        config_.inter_run_gap_min.ms_f(), config_.inter_run_gap_max.ms_f());
    sched.run_until(testbed_->sim().now() + gap);
  }
  return series;
}

OverheadSeries run_experiment(ExperimentConfig config) {
  Experiment e{std::move(config)};
  return e.run();
}

OverheadSeries run_experiment_watched(ExperimentConfig config,
                                      CellWatchdog* watchdog) {
  Experiment e{std::move(config)};
  e.set_watchdog(watchdog);
  return e.run();
}

}  // namespace bnm::core
