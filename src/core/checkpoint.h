// Crash-safe matrix execution: checkpoint/resume for run_matrix.
//
// A long matrix run (the paper's 88 cells x 50 reps; the ROADMAP's
// million-client campaigns) must survive being killed. The contract here:
//
//   * One record per completed cell, keyed by the cell's index and a stable
//     hash over every behaviour-affecting field of its config (the same
//     fields that derive the testbed seed, plus the testbed/fault knobs).
//     A resumed run skips a cell only when both match, so editing the
//     matrix definition between runs silently re-runs what changed.
//   * Atomic persistence: the writer rewrites the whole checkpoint to
//     `<path>.tmp` and rename(2)s it over `<path>`. A crash at any instant
//     leaves either the previous complete checkpoint or the new one —
//     never a torn file.
//   * Bit-identity: cell results are deterministic, and the JSON encoding
//     (obs/json.h, %.17g doubles) round-trips every finite double exactly,
//     so a killed-and-resumed run produces a final matrix report that is
//     byte-identical to an uninterrupted run's. tools/chaos_matrix and
//     scripts/check.sh gate this on every run.
//
// The reader is deliberately forgiving: a missing, truncated, or corrupt
// checkpoint degrades to "no records" (the run starts over) instead of
// failing — a half-written file must never wedge the campaign it was meant
// to protect.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/json.h"

namespace bnm::core {

inline constexpr const char* kCheckpointFormat = "bnm-matrix-checkpoint";
inline constexpr int kCheckpointVersion = 1;

/// Stable 64-bit FNV-1a hash over every config field that can change a
/// cell's results: the seed-deriving case fields, repetition plan, timing
/// knobs, and the full testbed config including fault plans. custom_profile
/// is hashed shallowly (presence, label, capability flags) — byte-for-byte
/// profile identity is the caller's responsibility when overriding it.
std::uint64_t cell_config_hash(const ExperimentConfig& config);

/// Write `contents` to `path` via the atomic temp-file + rename(2) protocol
/// every persistence path in this module uses. Shared with the campaign
/// layer (core/campaign.h), whose checkpoints carry shard aggregates rather
/// than cell series. Returns false (old file intact) on I/O failure.
bool write_file_atomic(const std::string& path, const std::string& contents);

/// Slurp a file; nullopt when it cannot be read. The forgiving-reader
/// counterpart of write_file_atomic for resume paths.
std::optional<std::string> read_file_contents(const std::string& path);

/// cell_config_hash as fixed-width lowercase hex (the on-disk key).
std::string cell_config_hash_hex(const ExperimentConfig& config);

/// Serialize one completed series (samples, accounting, labels — not the
/// config, which the resuming run supplies from its own matrix).
obs::json::Value series_to_json(const OverheadSeries& series);

/// Rebuild a series from its JSON form. nullopt on any shape mismatch.
/// The returned series has a default-constructed config.
std::optional<OverheadSeries> series_from_json(const obs::json::Value& v);

struct CheckpointRecord {
  std::size_t cell = 0;      ///< index into the matrix, in input order
  std::string config_hash;   ///< cell_config_hash_hex at completion time
  OverheadSeries series;
};

/// Accumulates completed-cell records and persists them atomically.
/// Thread-safe: matrix pool workers call add() concurrently.
class CheckpointWriter {
 public:
  /// `flush_every` completed cells trigger one atomic rewrite (1 = after
  /// every cell, the crash-safest and the chaos-gate default).
  CheckpointWriter(std::string path, std::size_t total_cells,
                   int flush_every = 1);

  /// Record a completed cell and flush if the cadence says so.
  void add(std::size_t cell, const ExperimentConfig& config,
           const OverheadSeries& series);

  /// Seed a record taken from a prior checkpoint (resume path) without
  /// triggering the flush cadence or the cells_written metric — the record
  /// keeps its original hash and survives the next rewrite verbatim.
  void preload(std::size_t cell, std::string config_hash,
               OverheadSeries series);

  /// Unconditional atomic rewrite (write <path>.tmp, rename over <path>).
  /// Returns false (and keeps the old file intact) on I/O failure.
  bool flush();

  const std::string& path() const { return path_; }
  std::size_t records() const;

 private:
  std::string render_locked() const;  ///< caller holds mu_

  mutable std::mutex mu_;
  std::string path_;
  std::size_t total_cells_;
  int flush_every_;
  int unflushed_ = 0;
  std::map<std::size_t, CheckpointRecord> records_;
};

/// Parsed checkpoint with hash-checked record lookup.
class CheckpointReader {
 public:
  /// Parse `path`. nullopt when the file is absent, unparsable, or not a
  /// checkpoint (detail in *error when given) — resuming from nothing is
  /// always safe, so corruption degrades to a fresh run, never a failure.
  static std::optional<CheckpointReader> load(const std::string& path,
                                              std::string* error = nullptr);

  std::size_t total_cells() const { return total_cells_; }
  std::size_t records() const { return records_.size(); }

  /// The stored series for `cell`, iff a record exists and its hash matches
  /// `config` (a mismatch means the matrix changed: re-run the cell).
  const OverheadSeries* lookup(std::size_t cell,
                               const ExperimentConfig& config) const;

 private:
  std::size_t total_cells_ = 0;
  std::map<std::size_t, CheckpointRecord> records_;
};

/// Canonical deterministic report over a full matrix run: one entry per
/// cell, in input order, using the same series encoding as the checkpoint.
/// Two runs of the same matrix — interrupted-and-resumed or not — must
/// produce byte-identical report strings (the chaos gate's contract).
std::string matrix_report_json(const std::vector<ExperimentConfig>& cells,
                               const std::vector<OverheadSeries>& results);

/// matrix_report_json straight to a file (atomic temp+rename). False on
/// I/O failure.
bool write_matrix_report(const std::string& path,
                         const std::vector<ExperimentConfig>& cells,
                         const std::vector<OverheadSeries>& results);

}  // namespace bnm::core
