// Calibration: can a tool subtract its own overhead?
//
// Section 4 of the paper: "If the overheads are dependent on specific
// browsers and systems, it will make the calibration very difficult." This
// module makes that operational: learn a per-(case, method) correction
// from one experiment, apply it to later measurements, and evaluate the
// residual error. Consistent methods (DOM, WebSocket, Java+nanoTime)
// calibrate to near zero; Flash HTTP does not.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace bnm::core {

struct CalibrationRecord {
  std::string case_label;            ///< "C (U)", "MobSaf", ...
  methods::ProbeKind kind = methods::ProbeKind::kXhrGet;
  double median_overhead_ms = 0;     ///< the correction to subtract
  double iqr_ms = 0;                 ///< spread at learning time
  int samples = 0;
};

class CalibrationTable {
 public:
  /// Learn (or replace) the correction for a series' (case, method).
  void learn(const OverheadSeries& series);
  void add(CalibrationRecord record);

  std::optional<CalibrationRecord> lookup(const std::string& case_label,
                                          methods::ProbeKind kind) const;

  /// Apply the learned correction to a raw browser-level RTT; returns the
  /// input unchanged when no record exists.
  double corrected_rtt_ms(const std::string& case_label,
                          methods::ProbeKind kind,
                          double measured_rtt_ms) const;

  std::size_t size() const { return records_.size(); }

  /// Residual overhead of a *fresh* series after applying this table's
  /// correction: median |Δd2 - correction|. The paper's calibratability
  /// criterion in one number.
  double residual_ms(const OverheadSeries& fresh) const;

  // --- persistence (CSV, one record per line) ---
  std::string to_csv() const;
  static CalibrationTable from_csv(const std::string& csv);

 private:
  static std::string key(const std::string& label, methods::ProbeKind kind);
  std::map<std::string, CalibrationRecord> records_;
};

}  // namespace bnm::core
