// The delay-overhead experiment runner: the paper's Eq. (1) pipeline.
//
// For one (browser, OS, method) case it repeats the two-phase protocol N
// times (default 50). Each repetition launches a fresh browser session,
// runs the method's two back-to-back measurements, and computes
//
//     Δd = (tB_r - tB_s) - (tN_r - tN_s)
//
// where tB come from the method's own timing API and tN from the client
// packet capture (first outbound data packet / last inbound data packet to
// the probe port within the measurement window).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "browser/profile.h"
#include "core/testbed.h"
#include "methods/method.h"
#include "methods/registry.h"
#include "stats/boxplot.h"
#include "stats/ci.h"

namespace bnm::core {

struct ExperimentConfig {
  browser::BrowserId browser = browser::BrowserId::kChrome;
  browser::OsId os = browser::OsId::kUbuntu;
  methods::ProbeKind kind = methods::ProbeKind::kXhrGet;
  int runs = 50;
  std::uint64_t seed = 42;

  bool java_use_nanotime = false;     ///< Table 4 variant
  bool java_via_appletviewer = false; ///< Figure 4(b) variant
  bool js_use_performance_now = false; ///< High Resolution Time variant

  /// Override the Table-2 profile entirely (mobile platforms, custom
  /// calibrations). When set, `browser`/`os` still choose the machine
  /// clock behaviour and the RNG case label.
  std::optional<browser::BrowserProfile> custom_profile;

  /// Idle gap between repetitions (browser launch, page load, automation
  /// script overhead). 50 runs at 5-9 s apart span ~6 minutes, so the
  /// Windows timer-granularity regime flips within one experiment - the
  /// mechanism behind Fig. 4's discrete Δd levels.
  sim::Duration inter_run_gap_min = sim::Duration::seconds(5);
  sim::Duration inter_run_gap_max = sim::Duration::seconds(9);

  /// Per-repetition wall-clock budget. A run that has not settled by then
  /// (e.g. the server is blackholed and nothing ever times out underneath)
  /// is cancelled and recorded as a timeout sample - the experiment never
  /// hangs on one repetition.
  sim::Duration sample_deadline = sim::Duration::seconds(30);

  /// Robustness knobs for the browser's HTTP client. Zero/negative keep the
  /// defaults (no request timeout, no retries), so a fault-free experiment
  /// schedules no extra events and stays bit-identical to older builds.
  sim::Duration http_request_timeout = sim::Duration::zero();
  int http_max_retries = 0;
  sim::Duration http_retry_backoff = sim::Duration::millis(200);

  /// SO_TIMEOUT-style bound for reply-less probes (Java UDP). Zero = off.
  sim::Duration probe_timeout = sim::Duration::zero();

  Testbed::Config testbed{};  ///< client_os is overridden from `os`
};

/// One repetition's outcome.
struct OverheadSample {
  double d1_ms = 0;  ///< Δd1: first measurement, fresh object
  double d2_ms = 0;  ///< Δd2: second measurement, object reused
  double browser_rtt1_ms = 0, browser_rtt2_ms = 0;
  double net_rtt1_ms = 0, net_rtt2_ms = 0;
  /// TCP connections opened during each measurement window (0 = reused).
  int connections_opened1 = 0, connections_opened2 = 0;
};

/// How an experiment's repetitions degraded under faults. All-zero on a
/// healthy testbed; under injected faults these separate "the run hung and
/// hit the sample deadline" from "the transport surfaced an error" from
/// "the probe finished but its capture window was unusable".
struct SampleAccounting {
  int timeouts = 0;          ///< runs cancelled at the sample deadline
  int transport_errors = 0;  ///< runs settled with an error (reset, SO_TIMEOUT, ...)
  int degraded = 0;          ///< completed runs with an incomplete capture window
  std::uint64_t http_retries = 0;   ///< HTTP request retries across all runs
  std::uint64_t http_timeouts = 0;  ///< HTTP per-request timeouts across all runs
  int total() const { return timeouts + transport_errors + degraded; }
};

/// A full experiment's results plus summary statistics.
struct OverheadSeries {
  ExperimentConfig config;
  std::string case_label;    ///< "C (U)", "appletviewer (W)", ...
  std::string method_name;   ///< "XHR GET", ...
  std::vector<OverheadSample> samples;
  int failures = 0;          ///< == accounting.total()
  std::string first_error;
  SampleAccounting accounting;

  std::vector<double> d1() const;
  std::vector<double> d2() const;
  stats::BoxStats d1_box() const { return stats::box_stats(d1()); }
  stats::BoxStats d2_box() const { return stats::box_stats(d2()); }
  stats::ConfidenceInterval d1_ci() const { return stats::mean_ci(d1()); }
  stats::ConfidenceInterval d2_ci() const { return stats::mean_ci(d2()); }
};

/// Run-level watchdog context for one cell attempt, shared between the
/// matrix runner (which owns it, and whose watchdog thread sets
/// `wall_expired` when the cell's real-time deadline passes) and the
/// Experiment running on a worker (which polls the flag between simulated
/// events and charges every fired event against `event_budget`). A cell
/// with no watchdog attached behaves exactly as before — the flag is never
/// loaded on that path.
struct CellWatchdog {
  std::atomic<bool> wall_expired{false};
  std::uint64_t event_budget = 0;  ///< total simulated events (0 = unlimited)
};

/// Thrown by Experiment::run when its watchdog trips. The run is cancelled
/// cleanly first (method cancel + browser teardown via RAII); the matrix
/// runner catches this, retries the cell with backoff, and quarantines it
/// with a structured CellError after the attempt limit.
class CellAbortError : public std::runtime_error {
 public:
  CellAbortError(std::string where, const std::string& what)
      : std::runtime_error{what}, where_{std::move(where)} {}
  /// Which guard fired: "watchdog.wall_clock" or "watchdog.event_budget".
  const std::string& where() const { return where_; }

 private:
  std::string where_;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  /// Run all repetitions to completion (drains the simulation between
  /// runs) and return the collected series.
  OverheadSeries run();

  /// Attach a runner-owned watchdog before run(). When its wall-clock flag
  /// is set or the event budget runs dry mid-repetition, the active method
  /// is cancelled and run() throws CellAbortError.
  void set_watchdog(CellWatchdog* watchdog) { watchdog_ = watchdog; }

  /// Testbed access after run() - e.g. to dump the capture to a pcap file.
  Testbed& testbed() { return *testbed_; }

 private:
  struct WindowTimes {
    std::optional<double> net_rtt_ms;
    int connections_opened = 0;
  };
  WindowTimes network_rtt_in_window(sim::TimePoint from, sim::TimePoint to,
                                    net::Port probe_port) const;
  net::Port probe_port() const;

  ExperimentConfig config_;
  std::unique_ptr<Testbed> testbed_;
  CellWatchdog* watchdog_ = nullptr;
};

/// Convenience: run one case end to end.
OverheadSeries run_experiment(ExperimentConfig config);

/// run_experiment with a watchdog attached — the default cell runner of the
/// resilient matrix engine (parallel_runner.h). `watchdog` may be nullptr.
OverheadSeries run_experiment_watched(ExperimentConfig config,
                                      CellWatchdog* watchdog);

}  // namespace bnm::core
