// Loss and reordering measurement through the browser (the Java UDP
// method's domain, Table 1), and the check behind the paper's Section 2
// claim: delay overheads inflate RTT and jitter, but "we do not anticipate
// such impact on packet loss and reordering measurement."
//
// The experiment sends a train of sequence-numbered UDP probes from the
// applet, the server echoes them, and two observers count:
//   - the measurement code (browser level): echoes received before the
//     deadline, out-of-order arrivals by sequence number;
//   - the packet capture (ground truth): echoed datagrams on the wire.
#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "browser/profile.h"
#include "core/testbed.h"

namespace bnm::core {

struct LossReorderingResult {
  int probes_sent = 0;

  // Browser-level (what the tool reports).
  int browser_received = 0;
  int browser_reordered = 0;  ///< arrivals with seq < a previously seen seq
  double browser_loss_rate() const {
    return probes_sent == 0
               ? 0.0
               : 1.0 - static_cast<double>(browser_received) / probes_sent;
  }

  /// Echoes dispatched to the applet only after the drain deadline: present
  /// on the wire but already written off as lost by the measurement code.
  /// Any browser-vs-net loss-rate disagreement is explained by these
  /// (loss_rate_error() ~= late_arrivals / probes_sent).
  int late_arrivals = 0;

  // Capture-level (ground truth at the NIC).
  int net_received = 0;
  int net_reordered = 0;
  double net_loss_rate() const {
    return probes_sent == 0
               ? 0.0
               : 1.0 - static_cast<double>(net_received) / probes_sent;
  }

  /// |browser - net| loss-rate disagreement: ~0 per the paper's claim.
  double loss_rate_error() const {
    return std::abs(browser_loss_rate() - net_loss_rate());
  }
};

class LossReorderingExperiment {
 public:
  struct Config {
    browser::BrowserId browser = browser::BrowserId::kChrome;
    browser::OsId os = browser::OsId::kWindows7;
    int probes = 200;
    sim::Duration probe_interval = sim::Duration::millis(20);
    /// Wait after the last probe before declaring stragglers lost.
    sim::Duration drain_timeout = sim::Duration::millis(500);
    std::uint64_t seed = 42;
    Testbed::Config testbed{};  ///< set link_loss_probability / reordering
  };

  explicit LossReorderingExperiment(Config config);

  LossReorderingResult run();

  Testbed& testbed() { return *testbed_; }

 private:
  Config config_;
  std::unique_ptr<Testbed> testbed_;
};

}  // namespace bnm::core
