// Accuracy appraisal: turns raw overhead series into the paper's verdicts.
//
// Following ISO 5725 (as the paper does), accuracy combines *trueness* (how
// close the median overhead is to zero) and *precision* (how tightly the
// overhead repeats). A third axis the paper stresses is *consistency*
// across browsers/OSes: a method whose overhead depends on the platform is
// very hard to calibrate away. Section 5's practical recommendations are
// codified in `recommend()`.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "browser/profile.h"
#include "core/experiment.h"

namespace bnm::core {

/// Aggregated accuracy verdict for one method across a set of cases.
struct MethodAppraisal {
  methods::ProbeKind kind = methods::ProbeKind::kXhrGet;
  std::string method_name;

  double median_abs_overhead_ms = 0;  ///< trueness: |median Δd2| across cases
  double mean_iqr_ms = 0;             ///< precision: average IQR of Δd2
  double cross_case_spread_ms = 0;    ///< consistency: spread of per-case medians
  double worst_case_median_ms = 0;    ///< worst per-case |median Δd2|
  /// Statistical consistency: the smallest pairwise two-sample KS p-value
  /// across cases. Near 0 means at least two platforms produce
  /// distinguishably different overhead distributions (Flash's problem);
  /// large means the method behaves the same everywhere.
  double min_pairwise_ks_p = 1.0;

  /// Resilience: how the method's runs behaved under whatever faults the
  /// testbed injected, summed across cases. All zero in a healthy testbed.
  int total_samples = 0;
  SampleAccounting resilience;

  /// Composite score: lower is better. Weighted sum of the three axes.
  double score() const {
    return median_abs_overhead_ms + mean_iqr_ms + 0.5 * cross_case_spread_ms;
  }
};

/// Appraise one method from its per-case series (uses Δd2 - the steady
/// state overhead once the handshake/first-use effects are excluded).
MethodAppraisal appraise_method(
    methods::ProbeKind kind,
    const std::vector<OverheadSeries>& per_case_series);

/// Rank methods best-first by composite score.
std::vector<MethodAppraisal> rank_methods(
    const std::map<methods::ProbeKind, std::vector<OverheadSeries>>& results);

/// Render the per-method resilience counters (timeouts / transport errors /
/// degraded windows / HTTP retries) as an aligned text table - how each
/// method's repetitions fared under injected faults.
std::string resilience_report(const std::vector<MethodAppraisal>& appraisals);

/// Platform constraints for a recommendation (Section 5).
struct Platform {
  browser::OsId os = browser::OsId::kWindows7;
  bool plugins_available = true;   ///< Flash/Java installed (false on mobile)
  bool websocket_available = true;
  bool can_use_nanotime = true;    ///< the tool controls its Java timing code
};

struct Recommendation {
  methods::ProbeKind method = methods::ProbeKind::kWebSocket;
  browser::BrowserId preferred_browser = browser::BrowserId::kFirefox;
  std::vector<std::string> cautions;
  std::string rationale;
};

/// Codified Section 5: Java socket + nanoTime when plugins are usable,
/// WebSocket otherwise; DOM as the HTTP fallback; never Flash GET/POST;
/// Firefox on Windows, Chrome on Ubuntu; avoid Safari's stock Java plugin.
Recommendation recommend(const Platform& platform);

}  // namespace bnm::core
