#include "core/appraisal.h"

#include <algorithm>
#include <cmath>

#include "report/table.h"
#include "stats/descriptive.h"
#include "stats/kstest.h"

namespace bnm::core {

MethodAppraisal appraise_method(
    methods::ProbeKind kind,
    const std::vector<OverheadSeries>& per_case_series) {
  MethodAppraisal a;
  a.kind = kind;

  std::vector<double> medians;
  std::vector<double> iqrs;
  std::vector<std::vector<double>> d2_samples;
  for (const auto& series : per_case_series) {
    a.total_samples += static_cast<int>(series.samples.size());
    a.resilience.timeouts += series.accounting.timeouts;
    a.resilience.transport_errors += series.accounting.transport_errors;
    a.resilience.degraded += series.accounting.degraded;
    a.resilience.http_retries += series.accounting.http_retries;
    a.resilience.http_timeouts += series.accounting.http_timeouts;
    if (series.samples.empty()) continue;
    if (a.method_name.empty()) a.method_name = series.method_name;
    const auto box = series.d2_box();
    medians.push_back(box.median);
    iqrs.push_back(box.iqr());
    d2_samples.push_back(series.d2());
  }
  for (std::size_t i = 0; i < d2_samples.size(); ++i) {
    for (std::size_t j = i + 1; j < d2_samples.size(); ++j) {
      const auto ks = stats::ks_two_sample(d2_samples[i], d2_samples[j]);
      a.min_pairwise_ks_p = std::min(a.min_pairwise_ks_p, ks.p_value);
    }
  }
  if (medians.empty()) {
    a.method_name = probe_kind_name(kind);
    return a;
  }

  std::vector<double> abs_medians;
  abs_medians.reserve(medians.size());
  for (double m : medians) abs_medians.push_back(std::fabs(m));

  a.median_abs_overhead_ms = stats::median(abs_medians);
  a.worst_case_median_ms = stats::max(abs_medians);
  a.mean_iqr_ms = stats::mean(iqrs);
  a.cross_case_spread_ms = stats::max(medians) - stats::min(medians);
  return a;
}

std::vector<MethodAppraisal> rank_methods(
    const std::map<methods::ProbeKind, std::vector<OverheadSeries>>& results) {
  std::vector<MethodAppraisal> out;
  out.reserve(results.size());
  for (const auto& [kind, series] : results) {
    out.push_back(appraise_method(kind, series));
  }
  std::sort(out.begin(), out.end(),
            [](const MethodAppraisal& x, const MethodAppraisal& y) {
              return x.score() < y.score();
            });
  return out;
}

std::string resilience_report(const std::vector<MethodAppraisal>& appraisals) {
  report::TextTable table({"Method", "Samples", "Timeouts", "Errors",
                           "Degraded", "HTTP retries", "HTTP timeouts"});
  for (const auto& a : appraisals) {
    table.add_row({a.method_name, std::to_string(a.total_samples),
                   std::to_string(a.resilience.timeouts),
                   std::to_string(a.resilience.transport_errors),
                   std::to_string(a.resilience.degraded),
                   std::to_string(a.resilience.http_retries),
                   std::to_string(a.resilience.http_timeouts)});
  }
  return table.render();
}

Recommendation recommend(const Platform& platform) {
  Recommendation r;
  r.preferred_browser = platform.os == browser::OsId::kWindows7
                            ? browser::BrowserId::kFirefox
                            : browser::BrowserId::kChrome;

  if (platform.plugins_available && platform.can_use_nanotime) {
    r.method = methods::ProbeKind::kJavaSocket;
    r.rationale =
        "Java applet socket with System.nanoTime() approaches packet-capture "
        "accuracy (Table 4): sub-0.1 ms overhead with ~0 variation.";
    r.cautions.push_back(
        "Never time with Date.getTime()/currentTimeMillis(): Windows "
        "granularity flips between 1 ms and ~15.6 ms (Section 4.2).");
    r.cautions.push_back(
        "Avoid Safari's stock Java interface (JavaPlugin.jar); force the "
        "Oracle JRE or results inflate (Section 5).");
  } else if (platform.websocket_available) {
    r.method = methods::ProbeKind::kWebSocket;
    r.rationale =
        "WebSocket gives the most accurate and consistent RTTs available to "
        "plain JavaScript, and is the only socket option without plug-ins "
        "(mobile platforms included).";
  } else {
    r.method = methods::ProbeKind::kDom;
    r.rationale =
        "Without sockets, DOM element timing has the smallest and most "
        "consistent overhead of the HTTP methods (mostly < 5 ms medians).";
    r.cautions.push_back(
        "HTTP overheads are platform-dependent; calibrate per browser/OS.");
  }

  r.cautions.push_back(
      "Never measure with Flash GET/POST: overhead medians run 20-100 ms and "
      "vary wildly across browsers; some plugins fold a TCP handshake into "
      "the measurement (Table 3).");
  r.cautions.push_back(
      "If a method opens a fresh connection per probe, subtract one network "
      "RTT or the measurement includes TCP connection setup (Section 4.1).");
  return r;
}

}  // namespace bnm::core
