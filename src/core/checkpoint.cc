#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/prof.h"

namespace bnm::core {
namespace {

using obs::json::Value;

// ---------------------------------------------------------------------------
// Config hashing: FNV-1a over the bit patterns of every behaviour-affecting
// field. Doubles are hashed by bit pattern (memcpy), not by value, so any
// representable change — including the sign of zero — changes the hash.

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

class Fnv {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kFnvPrime;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u64(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void dur(sim::Duration d) { i64(d.ns()); }
  void tp(sim::TimePoint t) { i64(t.ns_since_epoch()); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

void hash_fault_plan(Fnv& h, const std::optional<net::FaultPlan>& plan) {
  h.b(plan.has_value());
  if (!plan) return;
  h.str(plan->name);
  h.f64(plan->loss_probability);
  h.b(plan->bursty_loss.has_value());
  if (plan->bursty_loss) {
    h.f64(plan->bursty_loss->p_good_to_bad);
    h.f64(plan->bursty_loss->p_bad_to_good);
    h.f64(plan->bursty_loss->loss_good);
    h.f64(plan->bursty_loss->loss_bad);
  }
  h.f64(plan->corrupt_probability);
  h.f64(plan->duplicate_probability);
  h.u64(plan->blackholes.size());
  for (const net::TimeWindow& w : plan->blackholes) {
    h.tp(w.begin);
    h.tp(w.end);
  }
  h.u64(plan->flaps.size());
  for (const net::TimeWindow& w : plan->flaps) {
    h.tp(w.begin);
    h.tp(w.end);
  }
  h.u64(plan->drop_data_segments.size());
  for (std::uint64_t n : plan->drop_data_segments) h.u64(n);
  h.u64(plan->max_events);
}

void hash_testbed(Fnv& h, const Testbed::Config& t) {
  h.u64(t.seed);
  h.dur(t.server_delay);
  h.f64(t.bandwidth_bps);
  h.dur(t.link_propagation);
  h.dur(t.capture_jitter);
  h.u64(static_cast<std::uint64_t>(t.client_os));
  h.u64(t.http_port);
  h.u64(t.tcp_echo_port);
  h.u64(t.udp_echo_port);
  h.u64(t.ws_port);
  h.f64(t.link_loss_probability);
  h.dur(t.server_jitter);
  h.b(t.allow_reorder);
  h.f64(t.cross_traffic_mbps);
  const net::TcpConfig& tcp = t.tcp;
  h.u64(tcp.mss);
  h.u64(tcp.send_window);
  h.dur(tcp.delayed_ack);
  h.dur(tcp.rto_initial);
  h.dur(tcp.rto_max);
  h.u64(tcp.max_retransmissions);
  h.u64(tcp.dupack_threshold);
  h.b(tcp.congestion_control);
  h.u64(tcp.initial_cwnd_segments);
  h.dur(tcp.time_wait);
  hash_fault_plan(h, t.faults_to_server);
  hash_fault_plan(h, t.faults_from_server);
}

// ---------------------------------------------------------------------------
// JSON helpers.

/// Accept both number encodings: dump() writes an integral-valued double as
/// "3" (%.17g), which parses back as kInt — both must read as the same value.
bool read_number(const Value* v, double* out) {
  if (!v) return false;
  if (v->type() == Value::Type::kDouble) {
    *out = v->as_double();
    return true;
  }
  if (v->type() == Value::Type::kInt) {
    *out = static_cast<double>(v->as_int());
    return true;
  }
  return false;
}

bool read_int(const Value* v, std::int64_t* out) {
  if (!v || v->type() != Value::Type::kInt) return false;
  *out = v->as_int();
  return true;
}

bool read_string(const Value* v, std::string* out) {
  if (!v || v->type() != Value::Type::kString) return false;
  *out = v->as_string();
  return true;
}

/// Error strings pass through escape() -> parse_string_raw(); the parser's
/// \u decoding is lossy, so control characters would break the byte-identity
/// contract. Sanitize them once at serialization time — both the clean run's
/// report and the resumed run's then agree byte for byte.
std::string printable(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (static_cast<unsigned char>(c) < 0x20) c = ' ';
  }
  return out;
}

Value sample_to_json(const OverheadSample& s) {
  Value a = Value::array();
  a.push(Value::number(s.d1_ms));
  a.push(Value::number(s.d2_ms));
  a.push(Value::number(s.browser_rtt1_ms));
  a.push(Value::number(s.browser_rtt2_ms));
  a.push(Value::number(s.net_rtt1_ms));
  a.push(Value::number(s.net_rtt2_ms));
  a.push(Value::integer(s.connections_opened1));
  a.push(Value::integer(s.connections_opened2));
  return a;
}

bool sample_from_json(const Value& v, OverheadSample* out) {
  if (v.type() != Value::Type::kArray || v.items().size() != 8) return false;
  const auto& it = v.items();
  std::int64_t co1 = 0, co2 = 0;
  if (!read_number(&it[0], &out->d1_ms) || !read_number(&it[1], &out->d2_ms) ||
      !read_number(&it[2], &out->browser_rtt1_ms) ||
      !read_number(&it[3], &out->browser_rtt2_ms) ||
      !read_number(&it[4], &out->net_rtt1_ms) ||
      !read_number(&it[5], &out->net_rtt2_ms) || !read_int(&it[6], &co1) ||
      !read_int(&it[7], &co2)) {
    return false;
  }
  out->connections_opened1 = static_cast<int>(co1);
  out->connections_opened2 = static_cast<int>(co2);
  return true;
}

bool write_atomically(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool write_ok = n == contents.size() && std::fclose(f) == 0;
  if (!write_ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string out;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return std::nullopt;
  return out;
}

// --- metrics (docs/OBSERVABILITY.md catalog) -------------------------------

const obs::Counter& cells_written_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "checkpoint.cells_written", "cells",
      "completed cells recorded by CheckpointWriter::add");
  return c;
}

const obs::Counter& flushes_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "checkpoint.flushes", "flushes",
      "atomic checkpoint rewrites (temp file + rename)");
  return c;
}

const obs::Counter& bytes_written_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "checkpoint.bytes_written", "bytes",
      "checkpoint JSON bytes persisted across all flushes");
  return c;
}

}  // namespace

bool write_file_atomic(const std::string& path, const std::string& contents) {
  return write_atomically(path, contents);
}

std::optional<std::string> read_file_contents(const std::string& path) {
  return read_file(path);
}

std::uint64_t cell_config_hash(const ExperimentConfig& config) {
  Fnv h;
  h.u64(static_cast<std::uint64_t>(config.browser));
  h.u64(static_cast<std::uint64_t>(config.os));
  h.u64(static_cast<std::uint64_t>(config.kind));
  h.i64(config.runs);
  h.u64(config.seed);
  h.b(config.java_use_nanotime);
  h.b(config.java_via_appletviewer);
  h.b(config.js_use_performance_now);
  // custom_profile is hashed shallowly: presence, label, capability flags.
  // The numeric overhead tables inside are calibration data; callers that
  // swap them between runs must also change the label (see checkpoint.h).
  h.b(config.custom_profile.has_value());
  if (config.custom_profile) {
    const browser::BrowserProfile& p = *config.custom_profile;
    h.str(p.label());
    h.b(p.supports_websocket);
    h.b(p.supports_flash);
    h.b(p.supports_java);
    h.b(p.supports_performance_now);
    h.str(p.flash_version);
    h.str(p.java_version);
    h.str(p.browser_version);
  }
  h.dur(config.inter_run_gap_min);
  h.dur(config.inter_run_gap_max);
  h.dur(config.sample_deadline);
  h.dur(config.http_request_timeout);
  h.i64(config.http_max_retries);
  h.dur(config.http_retry_backoff);
  h.dur(config.probe_timeout);
  hash_testbed(h, config.testbed);
  return h.value();
}

std::string cell_config_hash_hex(const ExperimentConfig& config) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(cell_config_hash(config)));
  return buf;
}

obs::json::Value series_to_json(const OverheadSeries& series) {
  Value v = Value::object();
  v.add("case_label", Value::string(series.case_label));
  v.add("method_name", Value::string(series.method_name));
  v.add("failures", Value::integer(series.failures));
  v.add("first_error", Value::string(printable(series.first_error)));
  Value acc = Value::object();
  acc.add("timeouts", Value::integer(series.accounting.timeouts));
  acc.add("transport_errors",
          Value::integer(series.accounting.transport_errors));
  acc.add("degraded", Value::integer(series.accounting.degraded));
  acc.add("http_retries",
          Value::integer(static_cast<std::int64_t>(
              series.accounting.http_retries)));
  acc.add("http_timeouts",
          Value::integer(static_cast<std::int64_t>(
              series.accounting.http_timeouts)));
  v.add("accounting", std::move(acc));
  Value samples = Value::array();
  for (const OverheadSample& s : series.samples) {
    samples.push(sample_to_json(s));
  }
  v.add("samples", std::move(samples));
  return v;
}

std::optional<OverheadSeries> series_from_json(const obs::json::Value& v) {
  if (v.type() != Value::Type::kObject) return std::nullopt;
  OverheadSeries out;
  std::int64_t failures = 0;
  if (!read_string(v.find("case_label"), &out.case_label) ||
      !read_string(v.find("method_name"), &out.method_name) ||
      !read_int(v.find("failures"), &failures) ||
      !read_string(v.find("first_error"), &out.first_error)) {
    return std::nullopt;
  }
  out.failures = static_cast<int>(failures);
  const Value* acc = v.find("accounting");
  if (!acc || acc->type() != Value::Type::kObject) return std::nullopt;
  std::int64_t timeouts = 0, transport = 0, degraded = 0, retries = 0,
               http_timeouts = 0;
  if (!read_int(acc->find("timeouts"), &timeouts) ||
      !read_int(acc->find("transport_errors"), &transport) ||
      !read_int(acc->find("degraded"), &degraded) ||
      !read_int(acc->find("http_retries"), &retries) ||
      !read_int(acc->find("http_timeouts"), &http_timeouts)) {
    return std::nullopt;
  }
  out.accounting.timeouts = static_cast<int>(timeouts);
  out.accounting.transport_errors = static_cast<int>(transport);
  out.accounting.degraded = static_cast<int>(degraded);
  out.accounting.http_retries = static_cast<std::uint64_t>(retries);
  out.accounting.http_timeouts = static_cast<std::uint64_t>(http_timeouts);
  const Value* samples = v.find("samples");
  if (!samples || samples->type() != Value::Type::kArray) return std::nullopt;
  out.samples.reserve(samples->items().size());
  for (const Value& s : samples->items()) {
    OverheadSample sample;
    if (!sample_from_json(s, &sample)) return std::nullopt;
    out.samples.push_back(sample);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Writer.

CheckpointWriter::CheckpointWriter(std::string path, std::size_t total_cells,
                                   int flush_every)
    : path_{std::move(path)},
      total_cells_{total_cells},
      flush_every_{flush_every < 1 ? 1 : flush_every} {}

void CheckpointWriter::add(std::size_t cell, const ExperimentConfig& config,
                           const OverheadSeries& series) {
  bool do_flush = false;
  {
    std::lock_guard<std::mutex> lock{mu_};
    CheckpointRecord& rec = records_[cell];
    rec.cell = cell;
    rec.config_hash = cell_config_hash_hex(config);
    rec.series = series;
    if (++unflushed_ >= flush_every_) {
      unflushed_ = 0;
      do_flush = true;
    }
  }
  cells_written_counter().add();
  if (do_flush) flush();
}

void CheckpointWriter::preload(std::size_t cell, std::string config_hash,
                               OverheadSeries series) {
  std::lock_guard<std::mutex> lock{mu_};
  CheckpointRecord& rec = records_[cell];
  rec.cell = cell;
  rec.config_hash = std::move(config_hash);
  rec.series = std::move(series);
}

std::size_t CheckpointWriter::records() const {
  std::lock_guard<std::mutex> lock{mu_};
  return records_.size();
}

std::string CheckpointWriter::render_locked() const {
  Value root = Value::object();
  root.add("format", Value::string(kCheckpointFormat));
  root.add("version", Value::integer(kCheckpointVersion));
  root.add("cells", Value::integer(static_cast<std::int64_t>(total_cells_)));
  Value records = Value::array();
  for (const auto& [cell, rec] : records_) {  // std::map: sorted by cell
    Value r = Value::object();
    r.add("cell", Value::integer(static_cast<std::int64_t>(cell)));
    r.add("config_hash", Value::string(rec.config_hash));
    r.add("series", series_to_json(rec.series));
    records.push(std::move(r));
  }
  root.add("records", std::move(records));
  std::string out = root.dump();
  out += '\n';
  return out;
}

bool CheckpointWriter::flush() {
  BNM_PROF_SCOPE("checkpoint.flush");
  std::string contents;
  {
    std::lock_guard<std::mutex> lock{mu_};
    contents = render_locked();
  }
  if (!write_atomically(path_, contents)) return false;
  flushes_counter().add();
  bytes_written_counter().add(contents.size());
  return true;
}

// ---------------------------------------------------------------------------
// Reader.

std::optional<CheckpointReader> CheckpointReader::load(const std::string& path,
                                                       std::string* error) {
  const auto set_error = [&](const std::string& what) {
    if (error) *error = what;
  };
  std::optional<std::string> text = read_file(path);
  if (!text) {
    set_error("cannot read " + path);
    return std::nullopt;
  }
  std::string parse_error;
  std::optional<Value> doc = obs::json::parse(*text, &parse_error);
  if (!doc || doc->type() != Value::Type::kObject) {
    set_error("not a JSON object: " + parse_error);
    return std::nullopt;
  }
  std::string format;
  std::int64_t version = 0, cells = 0;
  if (!read_string(doc->find("format"), &format) ||
      format != kCheckpointFormat) {
    set_error("missing/unknown format marker");
    return std::nullopt;
  }
  if (!read_int(doc->find("version"), &version) ||
      version != kCheckpointVersion) {
    set_error("unsupported checkpoint version");
    return std::nullopt;
  }
  if (!read_int(doc->find("cells"), &cells) || cells < 0) {
    set_error("missing cell count");
    return std::nullopt;
  }
  const Value* records = doc->find("records");
  if (!records || records->type() != Value::Type::kArray) {
    set_error("missing records array");
    return std::nullopt;
  }
  CheckpointReader reader;
  reader.total_cells_ = static_cast<std::size_t>(cells);
  for (const Value& r : records->items()) {
    if (r.type() != Value::Type::kObject) {
      set_error("malformed record");
      return std::nullopt;
    }
    std::int64_t cell = 0;
    CheckpointRecord rec;
    const Value* series = r.find("series");
    if (!read_int(r.find("cell"), &cell) || cell < 0 ||
        !read_string(r.find("config_hash"), &rec.config_hash) || !series) {
      set_error("malformed record");
      return std::nullopt;
    }
    std::optional<OverheadSeries> parsed = series_from_json(*series);
    if (!parsed) {
      set_error("malformed series in record");
      return std::nullopt;
    }
    rec.cell = static_cast<std::size_t>(cell);
    rec.series = std::move(*parsed);
    reader.records_[rec.cell] = std::move(rec);
  }
  return reader;
}

const OverheadSeries* CheckpointReader::lookup(
    std::size_t cell, const ExperimentConfig& config) const {
  auto it = records_.find(cell);
  if (it == records_.end()) return nullptr;
  if (it->second.config_hash != cell_config_hash_hex(config)) return nullptr;
  return &it->second.series;
}

// ---------------------------------------------------------------------------
// Canonical matrix report.

std::string matrix_report_json(const std::vector<ExperimentConfig>& cells,
                               const std::vector<OverheadSeries>& results) {
  Value root = Value::object();
  root.add("format", Value::string("bnm-matrix-report"));
  root.add("version", Value::integer(1));
  root.add("cells", Value::integer(static_cast<std::int64_t>(cells.size())));
  Value out = Value::array();
  const std::size_t n = cells.size() < results.size() ? cells.size()
                                                      : results.size();
  for (std::size_t i = 0; i < n; ++i) {
    Value r = Value::object();
    r.add("cell", Value::integer(static_cast<std::int64_t>(i)));
    r.add("config_hash", Value::string(cell_config_hash_hex(cells[i])));
    r.add("series", series_to_json(results[i]));
    out.push(std::move(r));
  }
  root.add("results", std::move(out));
  std::string text = root.dump();
  text += '\n';
  return text;
}

bool write_matrix_report(const std::string& path,
                         const std::vector<ExperimentConfig>& cells,
                         const std::vector<OverheadSeries>& results) {
  return write_atomically(path, matrix_report_json(cells, results));
}

}  // namespace bnm::core
