// Fleet-scale measurement campaigns over the crash-safe engine.
//
// A matrix run (parallel_runner.h) answers "what do these exact cells
// produce?" and keeps every sample. A *campaign* answers the population
// question the paper's §6 deployment implies — "across 100k heterogeneous
// clients, what delay accuracy does each method/profile deliver?" — and
// keeping every sample would cost O(clients · samples) memory. The campaign
// layer therefore aggregates as it goes:
//
//   * CampaignSpec samples a client population deterministically: a
//     (browser, OS) case mix, a probe-method mix filtered by each case's
//     capabilities, and per-client path conditions (log-normal RTT,
//     bandwidth choices, a lossy fraction). Client k's configuration is a
//     pure function of (spec, k) — never of the shard layout.
//   * Clients are partitioned into contiguous shards. Each shard folds its
//     clients into a CampaignAggregate: per-method and per-profile
//     stats::QuantileSketch grids, fixed-bucket overhead histograms (the
//     same bounds as the registry's experiment.browser_overhead_us), and
//     resilience counters. Aggregate state is a few hundred KB regardless
//     of client count, so campaign memory is O(shards), not
//     O(clients · samples).
//   * Shard aggregates merge with exact integer/extremum arithmetic —
//     commutative and associative — so the campaign report is byte-identical
//     whether the campaign ran on 1 shard serially or N shards on a pool,
//     and whether it ran straight through or was killed and resumed.
//     scripts/check.sh gates both identities on every run.
//   * Checkpoint/resume reuses core/checkpoint.h's atomic temp+rename
//     persistence: one record per completed shard, keyed by a stable hash
//     of every population-affecting spec field. tools/campaign --kill-after
//     exercises the crash path the same way tools/chaos_matrix does for
//     matrices.
//
// DESIGN.md §3h documents the architecture and the sketch's error bound;
// docs/BENCH_SCHEMAS.md documents the report and checkpoint formats.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "browser/profile.h"
#include "core/experiment.h"
#include "obs/json.h"
#include "stats/quantile_sketch.h"

namespace bnm::sim {
class Trace;
}

namespace bnm::core {

inline constexpr const char* kCampaignCheckpointFormat =
    "bnm-campaign-checkpoint";
inline constexpr int kCampaignCheckpointVersion = 1;
inline constexpr const char* kCampaignReportFormat = "bnm-campaign-report";
inline constexpr int kCampaignReportVersion = 1;

/// Number of ProbeKind values (methods are aggregated per kind).
inline constexpr std::size_t kCampaignMethodCount = 11;

/// Bucket bounds (µs) of the per-method overhead histograms — the same
/// bounds obs registers for experiment.browser_overhead_us, so campaign
/// reports and metric snapshots bin identically.
inline constexpr std::array<std::uint64_t, 12> kOverheadBucketBoundsUs = {
    10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000};

/// One weighted entry of the population's (browser, OS) case mix.
struct CaseWeight {
  browser::BrowserOsCase which;
  double weight = 1.0;
};

/// One weighted entry of the probe-method mix. Methods a sampled case
/// cannot run (no Flash/Java/WebSocket) are excluded from that client's
/// draw, renormalizing the remaining weights.
struct MethodWeight {
  methods::ProbeKind kind;
  double weight = 1.0;
};

struct CampaignSpec {
  std::uint64_t seed = 7;        ///< campaign seed; client k forks from it
  std::uint64_t clients = 10000;
  int shards = 64;               ///< contiguous client ranges; NOT hashed —
                                 ///< the report is shard-layout-independent
  int runs_per_client = 2;
  int min_rtt_window = 8;        ///< MovingMin window for the RTT baseline

  /// Population mixes. Empty = paper_cases() / all_probe_kinds(), uniform.
  std::vector<CaseWeight> cases;
  std::vector<MethodWeight> methods;

  /// Per-client path model.
  browser::DistSpec rtt_ms = browser::DistSpec::lognormal_med(40.0, 0.6);
  std::vector<double> bandwidth_mbps{10.0, 50.0, 100.0};
  double lossy_fraction = 0.1;    ///< clients with a lossy access link
  double loss_probability = 0.01; ///< per-packet loss for lossy clients

  /// Per-client experiment knobs, tightened from the single-cell defaults
  /// so a 100k-client campaign converges: short think gaps, a bounded
  /// sample deadline, and HTTP request timeouts + one retry.
  sim::Duration inter_run_gap_min = sim::Duration::millis(500);
  sim::Duration inter_run_gap_max = sim::Duration::millis(1500);
  sim::Duration sample_deadline = sim::Duration::seconds(20);
  sim::Duration http_request_timeout = sim::Duration::seconds(2);
  int http_max_retries = 1;

  /// Sketch resolution shared by every aggregate in the campaign.
  stats::QuantileSketch::Grid grid{};
};

/// Stable FNV-1a hash over every field that changes what the population
/// *is* (seed, client count, mixes, path model, experiment knobs, grid).
/// The shard count is deliberately excluded: it changes only the execution
/// layout, and the report must not depend on it.
std::uint64_t campaign_spec_hash(const CampaignSpec& spec);
std::string campaign_spec_hash_hex(const CampaignSpec& spec);

/// Resolves the spec's mixes once (profiles, capability-filtered method
/// lists) and deals deterministic per-client configurations from them.
class CampaignSampler {
 public:
  explicit CampaignSampler(const CampaignSpec& spec);

  /// Client k's full experiment configuration. A pure function of
  /// (spec, client): the same client index yields the same config whatever
  /// shard runs it. `profile_index` (optional) receives the index into
  /// profile_labels() of the sampled case.
  ExperimentConfig client_config(std::uint64_t client,
                                 std::size_t* profile_index = nullptr) const;

  /// Labels of the resolved case mix, in report order ("C (U)", ...).
  const std::vector<std::string>& profile_labels() const {
    return profile_labels_;
  }
  std::size_t profile_count() const { return profile_labels_.size(); }

 private:
  struct ResolvedCase {
    browser::BrowserOsCase which;
    double weight = 1.0;
    std::vector<methods::ProbeKind> kinds;  ///< capability-filtered mix
    std::vector<double> kind_weights;       ///< parallel to `kinds`
    double kind_weight_total = 0;
  };

  const CampaignSpec& spec_;
  std::vector<ResolvedCase> cases_;
  double case_weight_total_ = 0;
  std::vector<std::string> profile_labels_;
};

/// Per-method streaming aggregate: sketches + integer tallies only, so
/// merge() is exact, commutative and associative.
struct MethodAggregate {
  std::uint64_t clients = 0;
  std::uint64_t samples = 0;  ///< accepted (Δd1, Δd2) pairs
  std::uint64_t timeouts = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t degraded = 0;
  std::uint64_t http_retries = 0;
  std::uint64_t http_timeouts = 0;
  stats::QuantileSketch d1, d2;
  /// |Δd| in µs, binned like obs' experiment.browser_overhead_us: bucket i
  /// holds samples <= bounds[i]; the 13th bucket is overflow.
  std::array<std::uint64_t, kOverheadBucketBoundsUs.size() + 1> overhead_us{};
};

/// Per-(browser, OS)-case aggregate over both measurements.
struct ProfileAggregate {
  std::uint64_t clients = 0;
  std::uint64_t samples = 0;
  stats::QuantileSketch d;  ///< Δd1 and Δd2 combined
};

/// Everything one shard (or the whole campaign) accumulates. All state is
/// integer counts, i64 fixed-point sums, or order-free extrema — the basis
/// of the layer's byte-identity guarantees.
struct CampaignAggregate {
  CampaignAggregate() = default;
  CampaignAggregate(const stats::QuantileSketch::Grid& grid,
                    std::size_t profiles);

  std::uint64_t clients = 0;
  std::uint64_t samples = 0;
  std::uint64_t failed_clients = 0;  ///< run_experiment threw; client skipped
  std::vector<MethodAggregate> methods;    ///< indexed by ProbeKind
  std::vector<ProfileAggregate> profiles;  ///< sampler's profile order
  stats::QuantileSketch net_rtt;           ///< network-level RTTs (ms)
  stats::QuantileSketch rtt_inflation;     ///< RTT − MovingMin baseline (ms)

  /// Fold one client's finished series in. `profile_index` is the
  /// sampler's index for the client's case; `min_rtt_window` sizes the
  /// MovingMin baseline for the inflation sketch.
  void fold(const OverheadSeries& series, std::size_t profile_index,
            int min_rtt_window);

  /// Exact merge; both sides must share grid and profile count.
  void merge(const CampaignAggregate& other);

  /// Bytes this aggregate holds live (sketch buckets dominate).
  std::size_t memory_bytes() const;

  obs::json::Value to_json() const;
  /// Rebuild from JSON. `out` supplies the expected shape (grid + profile
  /// count, from the spec); any mismatch fails.
  static bool from_json(const obs::json::Value& v, CampaignAggregate* out);
};

/// Shard-level completion callback: (shards done, shards total). Same
/// guarded contract as MatrixProgress: a throwing callback is absorbed and
/// counted, never wedges the campaign.
using CampaignProgress =
    std::function<void(std::size_t done, std::size_t total)>;

struct CampaignOptions {
  int jobs = 0;  ///< <= 0 = hardware concurrency, clamped to [1, shards]
  CampaignProgress progress;
  std::string checkpoint;  ///< empty = checkpointing off
  bool resume = false;     ///< load `checkpoint` and skip stored shards
  int flush_every = 1;     ///< completed shards per atomic rewrite
  const std::atomic<bool>* cancel = nullptr;
  /// Optional span sink: one "campaign" span per executed shard (wall time
  /// mapped onto the trace's epoch). The trace must outlive run_campaign.
  sim::Trace* trace = nullptr;
};

struct CampaignResult {
  CampaignAggregate aggregate;
  std::vector<std::string> profile_labels;  ///< report order
  std::size_t shards = 0;          ///< resolved shard count (>=1, <=clients)
  std::size_t shards_run = 0;      ///< executed this invocation
  std::size_t shards_resumed = 0;  ///< taken from the checkpoint
  std::size_t progress_errors = 0;
  bool cancelled = false;
};

/// Run the campaign: sample the population, execute shards (serial when
/// resolved jobs == 1, ThreadPool otherwise), checkpoint completed shards,
/// and merge everything into one aggregate.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

/// Canonical deterministic report. Derived solely from the spec's
/// population fields and the merged aggregate, so any two runs of the same
/// spec — different shard counts, different jobs, killed-and-resumed or
/// not — produce byte-identical report strings.
std::string campaign_report_json(const CampaignSpec& spec,
                                 const CampaignResult& result);

/// campaign_report_json straight to a file (atomic temp+rename).
bool write_campaign_report(const std::string& path, const CampaignSpec& spec,
                           const CampaignResult& result);

}  // namespace bnm::core
