// IPPM-style dedicated-host measurement (RFC 2330/2681): the "traditional"
// baseline the paper's introduction contrasts browser tools against -
// network performance sampled by a Poisson process from a dedicated host
// with careful resource management, i.e. raw sockets and a precise clock,
// no rendering engine in the way.
//
// PoissonRttStream implements Type-P-Round-trip-Delay sampling: probe send
// times form a Poisson process (exponential inter-arrival gaps), probes are
// single UDP datagrams, and timestamps come straight from the host with
// only the stack's own cost. Against the same testbed, its delay overhead
// is the floor any browser-based method should be compared to.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/testbed.h"

namespace bnm::core {

struct IppmSample {
  int seq = 0;
  double rtt_ms = 0;        ///< application-level RTT on the dedicated host
  double net_rtt_ms = 0;    ///< capture-level RTT for the same probe
  double overhead_ms() const { return rtt_ms - net_rtt_ms; }
};

class PoissonRttStream {
 public:
  struct Config {
    /// Mean probe rate (Poisson lambda), probes per second.
    double rate_per_second = 2.0;
    int probes = 50;
    sim::Duration drain_timeout = sim::Duration::millis(500);
    std::uint64_t seed = 42;
    Testbed::Config testbed{};
  };

  explicit PoissonRttStream(Config config);

  /// Run the stream to completion; lost probes yield no sample.
  std::vector<IppmSample> run();

  /// RFC 2681 statistic helpers over collected samples.
  static double min_rtt_ms(const std::vector<IppmSample>& samples);
  static double median_rtt_ms(const std::vector<IppmSample>& samples);

  Testbed& testbed() { return *testbed_; }

 private:
  Config config_;
  std::unique_ptr<Testbed> testbed_;
};

}  // namespace bnm::core
