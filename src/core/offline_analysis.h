// Offline capture analysis: compute request/response RTTs from a pcap file
// or an in-memory record list - the WinDump/tcpdump post-processing step of
// the paper's methodology, packaged so it also works on captures taken
// outside the simulator.
#pragma once

#include <string>
#include <vector>

#include "net/pcap_reader.h"
#include "stats/descriptive.h"

namespace bnm::core {

struct OfflineRtt {
  sim::TimePoint request_at;  ///< outbound data packet timestamp
  sim::TimePoint response_at; ///< matched inbound data packet timestamp
  double rtt_ms = 0;
  std::size_t request_bytes = 0;
  std::size_t response_bytes = 0;
};

class OfflineAnalyzer {
 public:
  /// Pair each outbound data packet from `client_ip` to `server_port`
  /// with the next inbound data packet from that port (before the
  /// following request). Pure ACKs, SYN/FIN and unrelated flows are
  /// ignored - the same filter discipline the experiments use.
  static std::vector<OfflineRtt> request_response_rtts(
      const std::vector<net::PcapRecord>& records, net::IpAddress client_ip,
      net::Port server_port);

  /// Convenience: read `path` and analyze. Throws std::runtime_error when
  /// the file cannot be parsed.
  static std::vector<OfflineRtt> analyze_file(const std::string& path,
                                              net::IpAddress client_ip,
                                              net::Port server_port);

  struct Summary {
    std::size_t exchanges = 0;
    double min_rtt_ms = 0;
    double median_rtt_ms = 0;
    double max_rtt_ms = 0;
  };
  static Summary summarize(const std::vector<OfflineRtt>& rtts);
};

}  // namespace bnm::core
