#include "core/ippm.h"

#include <cstdio>
#include <map>
#include <utility>

#include "stats/descriptive.h"

namespace bnm::core {

PoissonRttStream::PoissonRttStream(Config config) : config_{std::move(config)} {
  config_.testbed.seed = config_.seed;
  testbed_ = std::make_unique<Testbed>(config_.testbed);
}

namespace {
std::string probe_payload(int seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "IPPMPROBE-%06d", seq);
  return buf;
}

int probe_seq(const std::string& payload) {
  if (payload.rfind("IPPMPROBE-", 0) != 0) return -1;
  return std::atoi(payload.c_str() + 10);
}
}  // namespace

std::vector<IppmSample> PoissonRttStream::run() {
  sim::Scheduler& sched = testbed_->sim().scheduler();
  sim::Rng rng = testbed_->sim().rng_for("ippm");

  struct Pending {
    sim::TimePoint sent;
    std::optional<sim::TimePoint> received;
  };
  std::map<int, Pending> pending;

  auto socket = testbed_->client().udp_open(
      [&](net::Endpoint, const net::Payload& payload) {
        const int seq = probe_seq(net::to_string(payload));
        const auto it = pending.find(seq);
        if (it != pending.end() && !it->second.received) {
          it->second.received = testbed_->sim().now();
        }
      });

  // Poisson schedule: exponential gaps with mean 1/lambda.
  sim::TimePoint at = testbed_->sim().now();
  for (int i = 0; i < config_.probes; ++i) {
    at += rng.exponential_ms(1000.0 / config_.rate_per_second);
    sched.schedule_at(at, [this, &socket, &pending, i] {
      pending[i].sent = testbed_->sim().now();
      socket->send_to(testbed_->udp_echo_endpoint(),
                      net::to_bytes(probe_payload(i)));
    });
  }
  sched.run_until(at + config_.drain_timeout);

  // Match capture records per sequence number for the ground truth.
  std::map<int, sim::TimePoint> net_sent, net_recv;
  const net::PacketCapture& cap = testbed_->client().capture();
  for (std::size_t i = 0; i < cap.size(); ++i) {
    const net::Packet& pkt = cap.packet(i);
    if (pkt.protocol != net::Protocol::kUdp) continue;
    const int seq = probe_seq(net::to_string(pkt.payload));
    if (seq < 0) continue;
    if (cap.direction(i) == net::CaptureDirection::kOutbound &&
        !net_sent.count(seq)) {
      net_sent[seq] = cap.timestamp(i);
    }
    if (cap.direction(i) == net::CaptureDirection::kInbound &&
        !net_recv.count(seq)) {
      net_recv[seq] = cap.timestamp(i);
    }
  }

  std::vector<IppmSample> samples;
  for (const auto& [seq, p] : pending) {
    if (!p.received || !net_sent.count(seq) || !net_recv.count(seq)) continue;
    IppmSample s;
    s.seq = seq;
    s.rtt_ms = (*p.received - p.sent).ms_f();
    s.net_rtt_ms = (net_recv[seq] - net_sent[seq]).ms_f();
    samples.push_back(s);
  }
  return samples;
}

double PoissonRttStream::min_rtt_ms(const std::vector<IppmSample>& samples) {
  std::vector<double> rtts;
  rtts.reserve(samples.size());
  for (const auto& s : samples) rtts.push_back(s.rtt_ms);
  return rtts.empty() ? 0.0 : stats::min(rtts);
}

double PoissonRttStream::median_rtt_ms(const std::vector<IppmSample>& samples) {
  std::vector<double> rtts;
  rtts.reserve(samples.size());
  for (const auto& s : samples) rtts.push_back(s.rtt_ms);
  return rtts.empty() ? 0.0 : stats::median(rtts);
}

}  // namespace bnm::core
