#include "core/granularity.h"

#include <algorithm>

namespace bnm::core {

GranularityProbe GranularityProber::probe_once(browser::TimingApi& clock,
                                               sim::TimePoint start) {
  GranularityProbe out;
  out.at = start;

  sim::TimePoint cursor = start;
  const sim::TimePoint first = clock.read(cursor);
  out.api_calls = 1;
  // Safety bound: no sane clock granule exceeds one second of spinning.
  const sim::TimePoint deadline = start + sim::Duration::seconds(1);
  for (;;) {
    cursor += clock.call_cost();
    const sim::TimePoint current = clock.read(cursor);
    ++out.api_calls;
    if (current != first) {
      out.measured = current - first;
      break;
    }
    if (cursor > deadline) {
      out.measured = sim::Duration::zero();
      break;
    }
  }
  return out;
}

std::vector<GranularityProbe> GranularityProber::probe_series(
    browser::TimingApi& clock, sim::TimePoint start, sim::Duration interval,
    std::size_t count) {
  std::vector<GranularityProbe> out;
  out.reserve(count);
  sim::TimePoint at = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(probe_once(clock, at));
    at += interval;
  }
  return out;
}

std::vector<sim::Duration> GranularityProber::distinct_levels(
    const std::vector<GranularityProbe>& series) {
  std::vector<sim::Duration> values;
  values.reserve(series.size());
  for (const auto& p : series) values.push_back(p.measured);
  std::sort(values.begin(), values.end());

  std::vector<sim::Duration> levels;
  for (const auto& v : values) {
    if (levels.empty() ||
        static_cast<double>(v.ns()) >
            static_cast<double>(levels.back().ns()) * 1.10) {
      levels.push_back(v);
    }
  }
  return levels;
}

}  // namespace bnm::core
