// Parallel experiment matrix runner.
//
// The paper's results are a matrix of (browser x OS x method x config)
// cells, each repeated 50 times. Every Experiment owns an independent
// Testbed whose seed is derived from its config alone (experiment.cc), so
// cells share no mutable state and shard cleanly across worker threads:
// run_matrix(cells, jobs) produces byte-identical results to running the
// same cells serially, in input order, in 1/jobs the wall-clock time.
//
// Two entry points share the per-cell machinery:
//
//   * run_matrix / run_matrix_with — the minimal fast path: no watchdogs,
//     no persistence, exceptions folded into the cell's series. This is the
//     baseline the resilient engine is benchmarked against (bench/
//     perf_matrix gates the disabled-features overhead of the engine at
//     <1% versus this path).
//   * run_matrix_checked — the crash-safe engine: per-cell watchdogs
//     (wall-clock deadline + simulated-event budget), retry with
//     exponential backoff, quarantine with a structured CellError after the
//     attempt limit, checkpoint/resume with bit-identical reports, and
//     cooperative cancellation that drains gracefully. tools/chaos_matrix
//     and scripts/check.sh kill and resume it on every CI run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"

namespace bnm::core {

/// One swallowed task exception, in submission order. Replaces the old
/// opaque tasks_failed() counter: a wedged matrix run can now say *which*
/// task died and why instead of just how many.
struct TaskFailure {
  std::size_t task_id = 0;  ///< submission ordinal (0-based)
  std::string what;
};

/// Fixed-size worker pool. Tasks are plain closures; a task that throws is
/// recorded (failures()) and the pool keeps serving — one poisoned cell
/// must never wedge a matrix run.
class ThreadPool {
 public:
  /// jobs <= 0 selects std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int jobs() const { return jobs_; }

  void submit(std::function<void()> task);
  /// Block until every submitted task has finished.
  void wait_idle();

  /// Graceful drain-on-cancel: discard tasks still queued (returns how
  /// many); tasks already running finish normally. The pool stays usable.
  std::size_t cancel();

  /// Structured record of every task whose exception the pool swallowed,
  /// in completion order.
  std::vector<TaskFailure> failures() const;

 private:
  struct QueuedTask {
    std::size_t id;
    std::function<void()> fn;
  };

  void worker_loop();

  int jobs_ = 1;
  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<QueuedTask> queue_;
  std::vector<std::thread> workers_;
  std::size_t next_task_id_ = 0;
  std::size_t in_flight_ = 0;
  std::vector<TaskFailure> failures_;
  bool stopping_ = false;
};

/// Per-cell completion callback: (cells finished so far, total cells).
/// Invoked under a lock, in completion (not input) order. A progress
/// callback that throws cannot wedge the run: the exception is caught,
/// counted (runner.progress_errors), and the matrix keeps draining.
using MatrixProgress = std::function<void(std::size_t done, std::size_t total)>;

/// The function a worker applies to one cell. run_matrix() uses
/// run_experiment; tests inject faulty runners through run_matrix_with.
using CellRunner = std::function<OverheadSeries(const ExperimentConfig&)>;

/// Cell runner for the resilient engine: receives the attempt's watchdog
/// (nullptr when no watchdog is configured) so the cell can be cancelled
/// mid-flight. run_matrix_checked() defaults to run_experiment_watched.
using WatchedCellRunner =
    std::function<OverheadSeries(const ExperimentConfig&, CellWatchdog*)>;

/// Resolve a jobs request: <= 0 means hardware concurrency, and the answer
/// is clamped to [1, cells] so a small matrix never spawns idle workers.
int resolve_jobs(int jobs, std::size_t cells);

/// Run every cell and return the series in input order. jobs == 1 (or a
/// single cell) degenerates to a plain serial loop on the calling thread.
/// A cell whose runner throws yields a series with failures == runs and
/// first_error describing the exception; the remaining cells still run.
std::vector<OverheadSeries> run_matrix(const std::vector<ExperimentConfig>& cells,
                                       int jobs = 0,
                                       MatrixProgress progress = nullptr);

/// run_matrix with an injectable cell runner (exception-handling tests,
/// cached/memoized runners, ...).
std::vector<OverheadSeries> run_matrix_with(
    const std::vector<ExperimentConfig>& cells, int jobs,
    const CellRunner& cell, MatrixProgress progress = nullptr);

// ---------------------------------------------------------------------------
// The crash-safe engine.

/// Why a cell ended up quarantined after exhausting its attempts.
struct CellError {
  std::size_t cell = 0;  ///< index into the input matrix
  std::string what;      ///< last attempt's exception message
  /// Which guard gave up: "watchdog.wall_clock", "watchdog.event_budget",
  /// or "cell" (the cell itself threw).
  std::string where;
  int attempts = 0;  ///< attempts consumed before quarantine
};

/// Per-cell watchdog and retry policy. Default-constructed = all guards
/// off, one attempt, no retries — behaviourally identical to run_matrix.
struct WatchdogPolicy {
  /// Real-time budget per cell attempt; zero = no wall-clock watchdog.
  std::chrono::milliseconds wall_limit{0};
  /// Simulated-event budget per cell attempt; zero = unlimited.
  std::uint64_t event_budget = 0;
  /// Total attempts before quarantine (1 = no retries).
  int max_attempts = 3;
  /// Backoff before attempt k+1 is backoff_base * 2^(k-1).
  std::chrono::milliseconds backoff_base{10};
};

/// Checkpoint persistence policy. Empty path = checkpointing off.
struct CheckpointPolicy {
  std::string path;
  bool resume = false;  ///< load `path` first and skip hash-matching cells
  int flush_every = 1;  ///< completed cells per atomic rewrite
};

struct MatrixOptions {
  int jobs = 0;  ///< as run_matrix: <= 0 means hardware concurrency
  MatrixProgress progress;
  WatchdogPolicy watchdog;
  CheckpointPolicy checkpoint;
  /// Cooperative cancellation: when set, cells not yet started are skipped
  /// and the engine drains gracefully (result.cancelled = true).
  const std::atomic<bool>* cancel = nullptr;
};

struct MatrixResult {
  /// One series per input cell, in input order. Quarantined cells carry
  /// failures == runs and first_error; resumed cells carry the stored
  /// series, bit-identical to what an uninterrupted run would produce.
  std::vector<OverheadSeries> series;
  std::vector<CellError> quarantined;  ///< sorted by cell index
  std::size_t cells_resumed = 0;       ///< taken from the checkpoint
  std::size_t cells_run = 0;           ///< executed this invocation
  std::uint64_t retries = 0;           ///< extra attempts across all cells
  std::size_t progress_errors = 0;     ///< progress-callback throws absorbed
  std::string progress_error;          ///< first progress exception message
  bool cancelled = false;              ///< stopped early via options.cancel

  bool ok() const { return quarantined.empty() && !cancelled; }
};

/// Run the matrix under the crash-safe engine: watchdogs, retry/backoff,
/// quarantine, checkpoint/resume, cancellation. With default options the
/// results are byte-identical to run_matrix(cells) — and the disabled
/// machinery costs <1% (gated in bench/perf_matrix).
MatrixResult run_matrix_checked(const std::vector<ExperimentConfig>& cells,
                                const MatrixOptions& options = {},
                                const WatchedCellRunner& runner = nullptr);

}  // namespace bnm::core
