// Parallel experiment matrix runner.
//
// The paper's results are a matrix of (browser x OS x method x config)
// cells, each repeated 50 times. Every Experiment owns an independent
// Testbed whose seed is derived from its config alone (experiment.cc), so
// cells share no mutable state and shard cleanly across worker threads:
// run_matrix(cells, jobs) produces byte-identical results to running the
// same cells serially, in input order, in 1/jobs the wall-clock time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/experiment.h"

namespace bnm::core {

/// Fixed-size worker pool. Tasks are plain closures; a task that throws is
/// counted (tasks_failed()) and the pool keeps serving — one poisoned cell
/// must never wedge a matrix run.
class ThreadPool {
 public:
  /// jobs <= 0 selects std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int jobs() const { return jobs_; }

  void submit(std::function<void()> task);
  /// Block until every submitted task has finished.
  void wait_idle();

  /// Tasks whose exceptions the pool swallowed.
  std::size_t tasks_failed() const;

 private:
  void worker_loop();

  int jobs_ = 1;
  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  std::size_t failed_ = 0;
  bool stopping_ = false;
};

/// Per-cell completion callback: (cells finished so far, total cells).
/// Invoked under a lock, in completion (not input) order.
using MatrixProgress = std::function<void(std::size_t done, std::size_t total)>;

/// The function a worker applies to one cell. run_matrix() uses
/// run_experiment; tests inject faulty runners through run_matrix_with.
using CellRunner = std::function<OverheadSeries(const ExperimentConfig&)>;

/// Resolve a jobs request: <= 0 means hardware concurrency, and the answer
/// is clamped to [1, cells] so a small matrix never spawns idle workers.
int resolve_jobs(int jobs, std::size_t cells);

/// Run every cell and return the series in input order. jobs == 1 (or a
/// single cell) degenerates to a plain serial loop on the calling thread.
/// A cell whose runner throws yields a series with failures == runs and
/// first_error describing the exception; the remaining cells still run.
std::vector<OverheadSeries> run_matrix(const std::vector<ExperimentConfig>& cells,
                                       int jobs = 0,
                                       MatrixProgress progress = nullptr);

/// run_matrix with an injectable cell runner (exception-handling tests,
/// cached/memoized runners, ...).
std::vector<OverheadSeries> run_matrix_with(
    const std::vector<ExperimentConfig>& cells, int jobs,
    const CellRunner& cell, MatrixProgress progress = nullptr);

}  // namespace bnm::core
