#include "core/loss_experiment.h"

#include <cstdio>
#include <set>
#include <utility>

#include "browser/java_applet.h"

namespace bnm::core {

LossReorderingExperiment::LossReorderingExperiment(Config config)
    : config_{std::move(config)} {
  config_.testbed.client_os = config_.os;
  config_.testbed.seed = config_.seed;
  testbed_ = std::make_unique<Testbed>(config_.testbed);
}

namespace {
/// Probe payload: fixed prefix + zero-padded sequence number.
std::string probe_payload(int seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "LOSSPROBE-%06d", seq);
  return buf;
}

int probe_seq(const std::string& payload) {
  if (payload.rfind("LOSSPROBE-", 0) != 0) return -1;
  return std::atoi(payload.c_str() + 10);
}
}  // namespace

LossReorderingResult LossReorderingExperiment::run() {
  LossReorderingResult result;
  result.probes_sent = config_.probes;

  auto browser = testbed_->launch_browser(
      browser::make_profile(config_.browser, config_.os), 0);
  browser::JavaAppletRuntime java{*browser, {}};
  browser::JavaAppletRuntime::DatagramSocket socket{java};

  // Browser-level accounting: the measurement code sees echoes through the
  // applet's receive path (dispatch overhead and all).
  int highest_seen = -1;
  bool deadline_passed = false;
  std::set<int> seen;
  socket.set_on_receive([&](net::Endpoint, const std::string& payload) {
    const int seq = probe_seq(payload);
    if (seq < 0 || seen.count(seq)) return;
    seen.insert(seq);
    if (deadline_passed) {
      ++result.late_arrivals;
      return;
    }
    ++result.browser_received;
    if (seq < highest_seen) ++result.browser_reordered;
    highest_seen = std::max(highest_seen, seq);
  });

  // Paced probe train.
  sim::Scheduler& sched = testbed_->sim().scheduler();
  for (int i = 0; i < config_.probes; ++i) {
    sched.schedule_after(config_.probe_interval * i, [&socket, this, i] {
      socket.send_to(testbed_->udp_echo_endpoint(), probe_payload(i));
    });
  }
  const sim::Duration total =
      config_.probe_interval * config_.probes + config_.drain_timeout;
  sched.run_until(testbed_->sim().now() + total);

  // Grace window: keep listening past the tool's deadline so stragglers the
  // wire did deliver are counted as late arrivals rather than vanishing.
  deadline_passed = true;
  sched.run_until(testbed_->sim().now() + config_.drain_timeout);

  // Ground truth from the client capture: inbound echoes on the UDP port.
  int net_highest = -1;
  std::set<int> net_seen;
  const net::PacketCapture& cap = testbed_->client().capture();
  for (std::size_t i = 0; i < cap.size(); ++i) {
    if (cap.direction(i) != net::CaptureDirection::kInbound) continue;
    if (cap.packet(i).src.port != config_.testbed.udp_echo_port) continue;
    const int seq = probe_seq(net::to_string(cap.packet(i).payload));
    if (seq < 0 || net_seen.count(seq)) continue;
    net_seen.insert(seq);
    ++result.net_received;
    if (seq < net_highest) ++result.net_reordered;
    net_highest = std::max(net_highest, seq);
  }

  socket.close();
  sched.run_until(testbed_->sim().now() + sim::Duration::millis(10));
  return result;
}

}  // namespace bnm::core
