#include "core/calibration.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "stats/descriptive.h"

namespace bnm::core {

std::string CalibrationTable::key(const std::string& label,
                                  methods::ProbeKind kind) {
  return label + "|" + std::to_string(static_cast<int>(kind));
}

void CalibrationTable::learn(const OverheadSeries& series) {
  if (series.samples.empty()) return;
  CalibrationRecord rec;
  rec.case_label = series.case_label;
  rec.kind = series.config.kind;
  const auto box = series.d2_box();
  rec.median_overhead_ms = box.median;
  rec.iqr_ms = box.iqr();
  rec.samples = static_cast<int>(series.samples.size());
  add(std::move(rec));
}

void CalibrationTable::add(CalibrationRecord record) {
  records_[key(record.case_label, record.kind)] = std::move(record);
}

std::optional<CalibrationRecord> CalibrationTable::lookup(
    const std::string& case_label, methods::ProbeKind kind) const {
  const auto it = records_.find(key(case_label, kind));
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

double CalibrationTable::corrected_rtt_ms(const std::string& case_label,
                                          methods::ProbeKind kind,
                                          double measured_rtt_ms) const {
  const auto rec = lookup(case_label, kind);
  if (!rec) return measured_rtt_ms;
  return measured_rtt_ms - rec->median_overhead_ms;
}

double CalibrationTable::residual_ms(const OverheadSeries& fresh) const {
  const auto rec = lookup(fresh.case_label, fresh.config.kind);
  if (!rec || fresh.samples.empty()) return 0;
  std::vector<double> residuals;
  residuals.reserve(fresh.samples.size());
  for (const auto& s : fresh.samples) {
    residuals.push_back(std::fabs(s.d2_ms - rec->median_overhead_ms));
  }
  return stats::median(residuals);
}

std::string CalibrationTable::to_csv() const {
  std::string out = "case,kind,median_overhead_ms,iqr_ms,samples\n";
  char line[256];
  for (const auto& [k, rec] : records_) {
    std::snprintf(line, sizeof line, "\"%s\",%d,%.6f,%.6f,%d\n",
                  rec.case_label.c_str(), static_cast<int>(rec.kind),
                  rec.median_overhead_ms, rec.iqr_ms, rec.samples);
    out += line;
  }
  return out;
}

CalibrationTable CalibrationTable::from_csv(const std::string& csv) {
  CalibrationTable table;
  std::istringstream in{csv};
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // "label",kind,median,iqr,samples
    if (line.front() != '"') continue;
    const auto end_quote = line.find('"', 1);
    if (end_quote == std::string::npos) continue;
    CalibrationRecord rec;
    rec.case_label = line.substr(1, end_quote - 1);
    int kind = 0;
    if (std::sscanf(line.c_str() + end_quote + 1, ",%d,%lf,%lf,%d", &kind,
                    &rec.median_overhead_ms, &rec.iqr_ms,
                    &rec.samples) == 4) {
      rec.kind = static_cast<methods::ProbeKind>(kind);
      table.add(std::move(rec));
    }
  }
  return table;
}

}  // namespace bnm::core
