// The paper's Figure 2 testbed: client and server machines joined by a
// 100 Mbps switched Ethernet, +50 ms netem delay on the server's egress,
// WinDump/tcpdump-equivalent capture at the client NIC, and the server-side
// services every measurement method needs (Apache-like web server, TCP
// echo, UDP echo, WebSocket echo).
#pragma once

#include <memory>
#include <string>

#include "browser/browser.h"
#include "browser/clock_set.h"
#include "http/server.h"
#include "net/host.h"
#include "net/link.h"
#include "net/cross_traffic.h"
#include "net/switch_fabric.h"
#include "sim/simulation.h"
#include "ws/endpoint.h"

namespace bnm::core {

class Testbed {
 public:
  struct Config {
    std::uint64_t seed = 42;
    /// netem delay added on the server side ("to simulate the Internet
    /// environment"; also the knob behind Table 3's handshake inflation).
    sim::Duration server_delay = sim::Duration::millis(50);
    double bandwidth_bps = 100e6;  ///< Fast Ethernet (Fig. 2)
    sim::Duration link_propagation = sim::Duration::micros(5);
    /// Client capture timestamping error (software capture, <= ~0.3 ms).
    sim::Duration capture_jitter = sim::Duration::micros(50);
    /// Also arm the server NIC's capture tap (same jitter). Off by default —
    /// the paper captures on the client — but the passive estimator can sit
    /// at either end, so far-end scenarios switch this on.
    bool capture_at_server = false;
    browser::OsId client_os = browser::OsId::kWindows7;
    net::Port http_port = 80;
    net::Port tcp_echo_port = 9000;
    net::Port udp_echo_port = 9001;
    net::Port ws_port = 8088;

    // --- impairment & contention knobs (ablations / loss experiments) ---
    /// Random loss on the switch<->server link (both directions).
    double link_loss_probability = 0.0;
    /// netem jitter on the server egress; with allow_reorder, packets may
    /// overtake (the reordering experiments' mechanism).
    sim::Duration server_jitter = sim::Duration::zero();
    bool allow_reorder = false;
    /// Background cross traffic (bystander host -> server) in Mbps;
    /// 0 keeps the paper's "free of cross traffic" condition.
    double cross_traffic_mbps = 0.0;
    /// Client (and server) TCP stack knobs - e.g. enable slow start for
    /// realistic bulk-transfer dynamics.
    net::TcpConfig tcp{};

    // --- fault injection (robustness experiments) ---
    /// Fault stage on the path toward the server (client->server packets,
    /// applied just before the server NIC).
    std::optional<net::FaultPlan> faults_to_server;
    /// Fault stage on the path away from the server (server->client
    /// packets, applied after the server's egress netem).
    std::optional<net::FaultPlan> faults_from_server;
  };

  explicit Testbed(Config config);

  sim::Simulation& sim() { return sim_; }
  net::Host& client() { return *client_; }
  net::Host& server() { return *server_; }
  browser::ClockSet& clocks() { return *clocks_; }
  http::WebServer& web_server() { return *web_; }
  const Config& config() const { return config_; }

  net::Endpoint http_endpoint() const;
  net::Endpoint tcp_echo_endpoint() const;
  net::Endpoint udp_echo_endpoint() const;
  net::Endpoint ws_endpoint() const;

  /// Launch a fresh browser session (one page-load lifetime). The machine's
  /// clocks persist across sessions - OS timer regimes are machine state.
  std::unique_ptr<browser::Browser> launch_browser(
      const browser::BrowserProfile& profile, std::uint64_t session_id);

  /// The cross-traffic generator, if configured (cross_traffic_mbps > 0).
  net::CrossTrafficGenerator* cross_traffic() { return cross_traffic_.get(); }

  /// Fault injectors, if configured (nullptr otherwise).
  net::FaultInjector* faults_to_server() { return server_->ingress_faults(); }
  net::FaultInjector* faults_from_server() { return server_->egress_faults(); }

 private:
  void start_services();

  Config config_;
  sim::Simulation sim_;
  std::unique_ptr<net::Host> client_;
  std::unique_ptr<net::Host> server_;
  std::unique_ptr<net::Link> client_link_;
  std::unique_ptr<net::Link> server_link_;
  std::unique_ptr<net::SwitchFabric> switch_;
  std::unique_ptr<browser::ClockSet> clocks_;
  std::unique_ptr<http::WebServer> web_;
  std::unique_ptr<ws::WebSocketServer> ws_echo_;
  std::shared_ptr<net::UdpSocket> udp_echo_;

  // Optional contention plumbing (bystander host on a third switch port).
  std::unique_ptr<net::Host> bystander_;
  std::unique_ptr<net::Link> bystander_link_;
  std::unique_ptr<net::CrossTrafficGenerator> cross_traffic_;
  std::shared_ptr<net::UdpSocket> traffic_sink_;
};

}  // namespace bnm::core
