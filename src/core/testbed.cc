#include "core/testbed.h"

#include <utility>

namespace bnm::core {

namespace {
const net::IpAddress kClientIp{10, 0, 0, 1};
const net::IpAddress kServerIp{10, 0, 0, 2};
const net::IpAddress kBystanderIp{10, 0, 0, 3};
constexpr net::Port kTrafficSinkPort = 7;  // discard
}  // namespace

Testbed::Testbed(Config config) : config_{config}, sim_{config.seed} {
  // Client machine: capture tap (WinDump/tcpdump) with realistic
  // timestamping jitter.
  net::Host::Config cc;
  cc.name = "client";
  cc.ip = kClientIp;
  cc.capture.timestamp_jitter = config_.capture_jitter;
  cc.capture.name = "client/pcap";
  cc.tcp = config_.tcp;
  client_ = std::make_unique<net::Host>(sim_, cc);

  // Server machine: +50 ms egress delay via netem (Fig. 2 setup).
  net::Host::Config sc;
  sc.name = "server";
  sc.ip = kServerIp;
  // The paper captures on the client; far-end passive taps opt in.
  sc.capture.enabled = config_.capture_at_server;
  sc.capture.timestamp_jitter = config_.capture_jitter;
  sc.capture.name = "server/pcap";
  net::DelayEmulator::Config nm;
  nm.delay = config_.server_delay;
  nm.jitter = config_.server_jitter;
  nm.allow_reorder = config_.allow_reorder;
  nm.name = "server/netem";
  sc.egress_netem = nm;
  sc.tcp = config_.tcp;
  if (config_.faults_to_server) {
    auto plan = *config_.faults_to_server;
    if (plan.name == "faults") plan.name = "faults/to-server";
    sc.ingress_faults = std::move(plan);
  }
  if (config_.faults_from_server) {
    auto plan = *config_.faults_from_server;
    if (plan.name == "faults") plan.name = "faults/from-server";
    sc.egress_faults = std::move(plan);
  }
  server_ = std::make_unique<net::Host>(sim_, sc);

  // 100 Mbps links through a store-and-forward switch.
  net::Link::Config lc;
  lc.bandwidth_bps = config_.bandwidth_bps;
  lc.propagation = config_.link_propagation;
  lc.name = "link/client-switch";
  client_link_ = std::make_unique<net::Link>(sim_, lc);
  lc.name = "link/switch-server";
  lc.loss_probability = config_.link_loss_probability;
  server_link_ = std::make_unique<net::Link>(sim_, lc);
  lc.loss_probability = 0.0;

  switch_ = std::make_unique<net::SwitchFabric>(sim_);
  client_->attach_link(client_link_.get(), net::Link::Side::kA);
  const std::size_t p0 = switch_->add_port(client_link_.get(), net::Link::Side::kB);
  server_->attach_link(server_link_.get(), net::Link::Side::kB);
  const std::size_t p1 = switch_->add_port(server_link_.get(), net::Link::Side::kA);
  switch_->learn(kClientIp, p0);
  switch_->learn(kServerIp, p1);

  clocks_ = std::make_unique<browser::ClockSet>(config_.client_os,
                                                sim_.rng_for("client-clocks"));

  if (config_.cross_traffic_mbps > 0.0) {
    net::Host::Config bc;
    bc.name = "bystander";
    bc.ip = kBystanderIp;
    bc.capture.enabled = false;
    bystander_ = std::make_unique<net::Host>(sim_, bc);
    net::Link::Config blc;
    // A faster access link (GigE bystander on the Fast Ethernet LAN):
    // bursts arrive at the switch quicker than the server link drains
    // them, so contention actually queues on the measurement path.
    blc.bandwidth_bps = config_.bandwidth_bps * 10;
    blc.propagation = config_.link_propagation;
    blc.name = "link/bystander-switch";
    bystander_link_ = std::make_unique<net::Link>(sim_, blc);
    bystander_->attach_link(bystander_link_.get(), net::Link::Side::kA);
    const std::size_t pb =
        switch_->add_port(bystander_link_.get(), net::Link::Side::kB);
    switch_->learn(kBystanderIp, pb);

    net::CrossTrafficGenerator::Config tc;
    tc.average_mbps = config_.cross_traffic_mbps;
    tc.destination_port = kTrafficSinkPort;
    cross_traffic_ = std::make_unique<net::CrossTrafficGenerator>(
        sim_, *bystander_, net::Endpoint{kServerIp, kTrafficSinkPort}, tc);
    cross_traffic_->start();
  }

  start_services();
}

void Testbed::start_services() {
  http::WebServer::Config wc;
  wc.port = config_.http_port;
  web_ = std::make_unique<http::WebServer>(*server_, wc);

  // Raw TCP echo (the socket methods' probe target).
  server_->tcp_listen(config_.tcp_echo_port,
                      [](std::shared_ptr<net::TcpConnection> conn) {
                        net::TcpCallbacks cbs;
                        auto weak = std::weak_ptr<net::TcpConnection>(conn);
                        cbs.on_data = [weak](const net::Payload& d) {
                          if (auto c = weak.lock()) c->send(d);
                        };
                        cbs.on_close = [weak] {
                          if (auto c = weak.lock()) c->close();
                        };
                        conn->set_callbacks(std::move(cbs));
                      });

  // UDP echo.
  udp_echo_ = server_->udp_open(
      config_.udp_echo_port,
      [this](net::Endpoint src, const net::Payload& d) {
        udp_echo_->send_to(src, d);
      });

  // Discard sink for cross traffic.
  if (config_.cross_traffic_mbps > 0.0) {
    traffic_sink_ = server_->udp_open(
        kTrafficSinkPort,
        [](net::Endpoint, const net::Payload&) {});
  }

  // WebSocket echo.
  ws_echo_ = std::make_unique<ws::WebSocketServer>(
      *server_, config_.ws_port,
      [](std::shared_ptr<ws::WebSocketConnection> conn) {
        ws::WebSocketConnection::Callbacks cbs;
        auto weak = std::weak_ptr<ws::WebSocketConnection>(conn);
        cbs.on_message = [weak](const ws::MessageAssembler::Message& msg) {
          auto c = weak.lock();
          if (!c) return;
          const std::string text = net::to_string(msg.data);
          // "PULL:<n>" requests an n-byte binary payload (throughput
          // probes); everything else echoes back unchanged.
          if (text.rfind("PULL:", 0) == 0) {
            const auto n = static_cast<std::size_t>(
                std::strtoull(text.c_str() + 5, nullptr, 10));
            c->send_binary(std::vector<std::uint8_t>(n, 0x42));
            return;
          }
          if (msg.type == ws::Opcode::kText) {
            c->send_text(text);
          } else {
            c->send_binary(msg.data);
          }
        };
        conn->set_callbacks(std::move(cbs));
      });
}

net::Endpoint Testbed::http_endpoint() const {
  return {kServerIp, config_.http_port};
}
net::Endpoint Testbed::tcp_echo_endpoint() const {
  return {kServerIp, config_.tcp_echo_port};
}
net::Endpoint Testbed::udp_echo_endpoint() const {
  return {kServerIp, config_.udp_echo_port};
}
net::Endpoint Testbed::ws_endpoint() const {
  return {kServerIp, config_.ws_port};
}

std::unique_ptr<browser::Browser> Testbed::launch_browser(
    const browser::BrowserProfile& profile, std::uint64_t session_id) {
  return std::make_unique<browser::Browser>(*client_, *clocks_, profile,
                                            http_endpoint(), session_id);
}

}  // namespace bnm::core
