#include "core/parallel_runner.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "obs/prof.h"
#include "sim/arena.h"

namespace bnm::core {

ThreadPool::ThreadPool(int jobs) {
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs_ = std::max(jobs, 1);
  workers_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock{mu_};
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock{mu_};
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock{mu_};
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::tasks_failed() const {
  std::lock_guard<std::mutex> lock{mu_};
  return failed_;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock{mu_};
  for (;;) {
    task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    try {
      task();
    } catch (...) {
      lock.lock();
      ++failed_;
      lock.unlock();
    }
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

int resolve_jobs(int jobs, std::size_t cells) {
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs = std::max(jobs, 1);
  if (cells > 0) {
    jobs = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs), cells));
  }
  return jobs;
}

namespace {

OverheadSeries run_cell_guarded(const ExperimentConfig& config,
                                const CellRunner& cell) {
  BNM_PROF_SCOPE("matrix.cell");
  try {
    return cell(config);
  } catch (const std::exception& e) {
    OverheadSeries failed;
    failed.config = config;
    failed.failures = config.runs;
    failed.first_error = std::string{"uncaught exception: "} + e.what();
    return failed;
  } catch (...) {
    OverheadSeries failed;
    failed.config = config;
    failed.failures = config.runs;
    failed.first_error = "uncaught exception (non-standard)";
    return failed;
  }
}

}  // namespace

std::vector<OverheadSeries> run_matrix_with(
    const std::vector<ExperimentConfig>& cells, int jobs,
    const CellRunner& cell, MatrixProgress progress) {
  std::vector<OverheadSeries> results(cells.size());
  if (cells.empty()) return results;

  jobs = resolve_jobs(jobs, cells.size());
  if (jobs == 1) {
    // Degenerate serial path: same per-cell computation on the calling
    // thread — the reference the parallel path must match byte for byte.
    // One arena serves every cell, rewound wholesale between cells (the
    // cell's testbed — and with it everything arena-allocated — is gone by
    // the time run_cell_guarded returns; the result series itself uses the
    // global allocator).
    sim::Arena arena;
    sim::ArenaScope scope{&arena};
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results[i] = run_cell_guarded(cells[i], cell);
      arena.reset();
      if (progress) progress(i + 1, cells.size());
    }
    return results;
  }

  ThreadPool pool{jobs};
  std::mutex progress_mu;
  std::size_t done = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    pool.submit([&, i] {
      // Each worker thread keeps a private arena: matrix shards bump their
      // own slabs instead of contending on the global allocator, and a
      // wholesale reset between cells replaces per-packet frees.
      thread_local sim::Arena worker_arena;
      sim::ArenaScope scope{&worker_arena};
      results[i] = run_cell_guarded(cells[i], cell);
      worker_arena.reset();
      if (progress) {
        std::lock_guard<std::mutex> lock{progress_mu};
        progress(++done, cells.size());
      } else {
        std::lock_guard<std::mutex> lock{progress_mu};
        ++done;
      }
    });
  }
  pool.wait_idle();
  return results;
}

std::vector<OverheadSeries> run_matrix(const std::vector<ExperimentConfig>& cells,
                                       int jobs, MatrixProgress progress) {
  return run_matrix_with(
      cells, jobs,
      [](const ExperimentConfig& config) { return run_experiment(config); },
      std::move(progress));
}

}  // namespace bnm::core
