#include "core/parallel_runner.h"

#include <algorithm>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "sim/arena.h"

namespace bnm::core {
namespace {

// --- metrics (docs/OBSERVABILITY.md catalog) -------------------------------

struct RunnerMetrics {
  obs::Counter retries;
  obs::Counter quarantined;
  obs::Counter watchdog_wall_trips;
  obs::Counter watchdog_budget_trips;
  obs::Counter progress_errors;
  obs::Counter cells_resumed;

  static const RunnerMetrics& get() {
    static const RunnerMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      return RunnerMetrics{
          reg.counter("runner.retries", "attempts",
                      "cell attempts retried after a failure or watchdog trip"),
          reg.counter("runner.quarantined", "cells",
                      "cells quarantined after exhausting their attempts"),
          reg.counter("runner.watchdog_wall_trips", "trips",
                      "cell attempts cancelled by the wall-clock watchdog"),
          reg.counter("runner.watchdog_budget_trips", "trips",
                      "cell attempts cancelled by the simulated-event budget"),
          reg.counter("runner.progress_errors", "throws",
                      "progress-callback exceptions absorbed by the runner"),
          reg.counter("runner.cells_resumed", "cells",
                      "cells restored from a checkpoint instead of re-run"),
      };
    }();
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int jobs) {
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs_ = std::max(jobs, 1);
  workers_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock{mu_};
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock{mu_};
    queue_.push_back(QueuedTask{next_task_id_++, std::move(task)});
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock{mu_};
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::cancel() {
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock{mu_};
    dropped = queue_.size();
    queue_.clear();
    if (in_flight_ == 0) idle_.notify_all();
  }
  return dropped;
}

std::vector<TaskFailure> ThreadPool::failures() const {
  std::lock_guard<std::mutex> lock{mu_};
  return failures_;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock{mu_};
  for (;;) {
    task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    QueuedTask task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    try {
      task.fn();
    } catch (const std::exception& e) {
      lock.lock();
      failures_.push_back(TaskFailure{task.id, e.what()});
      lock.unlock();
    } catch (...) {
      lock.lock();
      failures_.push_back(TaskFailure{task.id, "non-standard exception"});
      lock.unlock();
    }
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

int resolve_jobs(int jobs, std::size_t cells) {
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs = std::max(jobs, 1);
  if (cells > 0) {
    jobs = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs), cells));
  }
  return jobs;
}

namespace {

OverheadSeries run_cell_guarded(const ExperimentConfig& config,
                                const CellRunner& cell) {
  BNM_PROF_SCOPE("matrix.cell");
  try {
    return cell(config);
  } catch (const std::exception& e) {
    OverheadSeries failed;
    failed.config = config;
    failed.failures = config.runs;
    failed.first_error = std::string{"uncaught exception: "} + e.what();
    return failed;
  } catch (...) {
    OverheadSeries failed;
    failed.config = config;
    failed.failures = config.runs;
    failed.first_error = "uncaught exception (non-standard)";
    return failed;
  }
}

/// Invoke the user's progress callback without letting it take the run
/// down: the exception is counted and (optionally) recorded, and the
/// matrix keeps draining. Caller already holds whatever lock serializes
/// progress invocations.
void call_progress_guarded(const MatrixProgress& progress, std::size_t done,
                           std::size_t total,
                           std::size_t* error_count = nullptr,
                           std::string* first_error = nullptr) {
  if (!progress) return;
  try {
    progress(done, total);
  } catch (const std::exception& e) {
    RunnerMetrics::get().progress_errors.add();
    if (error_count) ++*error_count;
    if (first_error && first_error->empty()) *first_error = e.what();
  } catch (...) {
    RunnerMetrics::get().progress_errors.add();
    if (error_count) ++*error_count;
    if (first_error && first_error->empty()) {
      *first_error = "non-standard exception";
    }
  }
}

}  // namespace

std::vector<OverheadSeries> run_matrix_with(
    const std::vector<ExperimentConfig>& cells, int jobs,
    const CellRunner& cell, MatrixProgress progress) {
  std::vector<OverheadSeries> results(cells.size());
  if (cells.empty()) return results;

  jobs = resolve_jobs(jobs, cells.size());
  if (jobs == 1) {
    // Degenerate serial path: same per-cell computation on the calling
    // thread — the reference the parallel path must match byte for byte.
    // One arena serves every cell, rewound wholesale between cells (the
    // cell's testbed — and with it everything arena-allocated — is gone by
    // the time run_cell_guarded returns; the result series itself uses the
    // global allocator).
    sim::Arena arena;
    sim::ArenaScope scope{&arena};
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results[i] = run_cell_guarded(cells[i], cell);
      arena.reset();
      call_progress_guarded(progress, i + 1, cells.size());
    }
    return results;
  }

  ThreadPool pool{jobs};
  std::mutex progress_mu;
  std::size_t done = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    pool.submit([&, i] {
      // Each worker thread keeps a private arena: matrix shards bump their
      // own slabs instead of contending on the global allocator, and a
      // wholesale reset between cells replaces per-packet frees.
      thread_local sim::Arena worker_arena;
      sim::ArenaScope scope{&worker_arena};
      results[i] = run_cell_guarded(cells[i], cell);
      worker_arena.reset();
      std::lock_guard<std::mutex> lock{progress_mu};
      call_progress_guarded(progress, ++done, cells.size());
    });
  }
  pool.wait_idle();
  return results;
}

std::vector<OverheadSeries> run_matrix(const std::vector<ExperimentConfig>& cells,
                                       int jobs, MatrixProgress progress) {
  return run_matrix_with(
      cells, jobs,
      [](const ExperimentConfig& config) { return run_experiment(config); },
      std::move(progress));
}

// ---------------------------------------------------------------------------
// The crash-safe engine.

namespace {

/// One shared deadline thread per run_matrix_checked invocation: workers
/// arm their attempt's CellWatchdog with a steady-clock deadline; the host
/// wakes at the earliest one and sets wall_expired (one-shot). Lazy — a run
/// with no wall limit never spawns the thread.
class WatchdogHost {
 public:
  ~WatchdogHost() {
    {
      std::lock_guard<std::mutex> lock{mu_};
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  std::uint64_t arm(CellWatchdog* watchdog,
                    std::chrono::steady_clock::time_point deadline) {
    std::uint64_t token = 0;
    {
      std::lock_guard<std::mutex> lock{mu_};
      token = next_token_++;
      armed_[token] = Entry{watchdog, deadline};
      if (!thread_.joinable()) {
        thread_ = std::thread{[this] { loop(); }};
      }
    }
    cv_.notify_all();
    return token;
  }

  void disarm(std::uint64_t token) {
    std::lock_guard<std::mutex> lock{mu_};
    armed_.erase(token);
  }

 private:
  struct Entry {
    CellWatchdog* watchdog = nullptr;
    std::chrono::steady_clock::time_point deadline;
  };

  void loop() {
    std::unique_lock<std::mutex> lock{mu_};
    while (!stop_) {
      if (armed_.empty()) {
        cv_.wait(lock, [this] { return stop_ || !armed_.empty(); });
        continue;
      }
      auto next = std::chrono::steady_clock::time_point::max();
      for (const auto& [token, e] : armed_) {
        next = std::min(next, e.deadline);
      }
      if (cv_.wait_until(lock, next,
                         [this] { return stop_; })) {
        return;
      }
      const auto now = std::chrono::steady_clock::now();
      for (auto it = armed_.begin(); it != armed_.end();) {
        if (it->second.deadline <= now) {
          it->second.watchdog->wall_expired.store(true,
                                                  std::memory_order_release);
          it = armed_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> armed_;
  std::uint64_t next_token_ = 0;
  std::thread thread_;
  bool stop_ = false;
};

/// Shared mutable state of one engine invocation.
struct EngineState {
  const std::vector<ExperimentConfig>* cells = nullptr;
  const MatrixOptions* options = nullptr;
  const WatchedCellRunner* runner = nullptr;
  MatrixResult* result = nullptr;
  CheckpointWriter* writer = nullptr;  ///< nullptr = checkpointing off
  WatchdogHost* host = nullptr;        ///< nullptr = no wall watchdog

  std::mutex mu;  ///< guards result->quarantined/retries/..., done
  std::size_t done = 0;
};

bool cancel_requested(const EngineState& st) {
  return st.options->cancel != nullptr &&
         st.options->cancel->load(std::memory_order_acquire);
}

/// Run one cell under the attempt/retry/quarantine policy. Called on a
/// worker (or the calling thread when jobs == 1) with an arena scope
/// already active.
void run_cell_checked(EngineState& st, std::size_t i) {
  const ExperimentConfig& config = (*st.cells)[i];
  const WatchdogPolicy& wd = st.options->watchdog;
  const int max_attempts = std::max(wd.max_attempts, 1);
  const bool watched = wd.wall_limit.count() > 0 || wd.event_budget > 0;
  const RunnerMetrics& metrics = RunnerMetrics::get();

  std::string last_what;
  std::string last_where;
  bool completed = false;

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    CellWatchdog watchdog;
    watchdog.event_budget = wd.event_budget;
    std::uint64_t token = 0;
    const bool armed = st.host != nullptr && wd.wall_limit.count() > 0;
    if (armed) {
      token = st.host->arm(&watchdog,
                           std::chrono::steady_clock::now() + wd.wall_limit);
    }
    try {
      BNM_PROF_SCOPE("matrix.cell");
      OverheadSeries series =
          (*st.runner)(config, watched ? &watchdog : nullptr);
      if (armed) st.host->disarm(token);
      st.result->series[i] = std::move(series);
      completed = true;
      break;
    } catch (const CellAbortError& e) {
      if (armed) st.host->disarm(token);
      last_what = e.what();
      last_where = e.where();
      if (last_where == "watchdog.wall_clock") {
        metrics.watchdog_wall_trips.add();
      } else if (last_where == "watchdog.event_budget") {
        metrics.watchdog_budget_trips.add();
      }
    } catch (const std::exception& e) {
      if (armed) st.host->disarm(token);
      last_what = e.what();
      last_where = "cell";
    } catch (...) {
      if (armed) st.host->disarm(token);
      last_what = "non-standard exception";
      last_where = "cell";
    }
    if (attempt < max_attempts) {
      metrics.retries.add();
      {
        std::lock_guard<std::mutex> lock{st.mu};
        ++st.result->retries;
      }
      if (wd.backoff_base.count() > 0) {
        std::this_thread::sleep_for(wd.backoff_base * (1 << (attempt - 1)));
      }
    }
  }

  if (completed) {
    // Persist before announcing: a crash inside the progress callback (the
    // chaos harness's hard-kill point) must find the cell already on disk.
    if (st.writer != nullptr) st.writer->add(i, config, st.result->series[i]);
  } else {
    OverheadSeries failed;
    failed.config = config;
    failed.failures = config.runs;
    // Same first_error shape as run_matrix's run_cell_guarded for a plain
    // throw, so the engine with watchdogs off stays byte-identical to the
    // legacy path even on deterministically-failing cells; watchdog trips
    // name the guard instead.
    if (last_where == "cell") {
      failed.first_error = last_what == "non-standard exception"
                               ? "uncaught exception (non-standard)"
                               : "uncaught exception: " + last_what;
    } else {
      failed.first_error = last_where + ": " + last_what;
    }
    st.result->series[i] = std::move(failed);
    metrics.quarantined.add();
    std::lock_guard<std::mutex> lock{st.mu};
    st.result->quarantined.push_back(
        CellError{i, last_what, last_where, max_attempts});
    // Quarantined cells are deliberately NOT checkpointed: a resumed run
    // gets a fresh set of attempts at them.
  }

  std::lock_guard<std::mutex> lock{st.mu};
  ++st.result->cells_run;
  call_progress_guarded(st.options->progress, ++st.done, st.cells->size(),
                        &st.result->progress_errors,
                        &st.result->progress_error);
}

}  // namespace

MatrixResult run_matrix_checked(const std::vector<ExperimentConfig>& cells,
                                const MatrixOptions& options,
                                const WatchedCellRunner& runner) {
  MatrixResult result;
  result.series.resize(cells.size());
  if (cells.empty()) return result;

  const WatchedCellRunner default_runner =
      [](const ExperimentConfig& config, CellWatchdog* watchdog) {
        return run_experiment_watched(config, watchdog);
      };
  const WatchedCellRunner& cell = runner ? runner : default_runner;

  // Resume: restore hash-matching cells, then keep their records alive in
  // the writer so every rewrite of the checkpoint file stays complete.
  std::unique_ptr<CheckpointWriter> writer;
  std::vector<char> resumed(cells.size(), 0);
  if (!options.checkpoint.path.empty()) {
    writer = std::make_unique<CheckpointWriter>(options.checkpoint.path,
                                                cells.size(),
                                                options.checkpoint.flush_every);
    if (options.checkpoint.resume) {
      std::optional<CheckpointReader> reader =
          CheckpointReader::load(options.checkpoint.path);
      if (reader) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
          const OverheadSeries* stored = reader->lookup(i, cells[i]);
          if (stored == nullptr) continue;
          result.series[i] = *stored;
          result.series[i].config = cells[i];
          resumed[i] = 1;
          ++result.cells_resumed;
          writer->preload(i, cell_config_hash_hex(cells[i]), *stored);
        }
        RunnerMetrics::get().cells_resumed.add(result.cells_resumed);
      }
    }
  }

  WatchdogHost host;
  EngineState st;
  st.cells = &cells;
  st.options = &options;
  st.runner = &cell;
  st.result = &result;
  st.writer = writer.get();
  st.host = options.watchdog.wall_limit.count() > 0 ? &host : nullptr;
  st.done = result.cells_resumed;

  const int jobs = resolve_jobs(options.jobs, cells.size());
  if (jobs == 1) {
    sim::Arena arena;
    sim::ArenaScope scope{&arena};
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (resumed[i]) continue;
      if (cancel_requested(st)) {
        result.cancelled = true;
        break;
      }
      run_cell_checked(st, i);
      arena.reset();
    }
  } else {
    ThreadPool pool{jobs};
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (resumed[i]) continue;
      pool.submit([&st, i] {
        if (cancel_requested(st)) {
          std::lock_guard<std::mutex> lock{st.mu};
          st.result->cancelled = true;
          return;  // graceful drain: skip, let in-flight cells finish
        }
        thread_local sim::Arena worker_arena;
        sim::ArenaScope scope{&worker_arena};
        run_cell_checked(st, i);
        worker_arena.reset();
      });
    }
    pool.wait_idle();
  }

  std::sort(result.quarantined.begin(), result.quarantined.end(),
            [](const CellError& a, const CellError& b) {
              return a.cell < b.cell;
            });
  if (writer) writer->flush();
  return result;
}

}  // namespace bnm::core
