#include "core/knockon.h"

#include <cmath>
#include <optional>
#include <utility>

#include "browser/websocket_api.h"
#include "browser/xhr.h"
#include "stats/descriptive.h"

namespace bnm::core {

namespace {
double mean_abs_diff(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  double acc = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    acc += std::fabs(xs[i] - xs[i - 1]);
  }
  return acc / static_cast<double>(xs.size() - 1);
}

struct RunTimes {
  std::optional<sim::TimePoint> true_send, true_recv;
  sim::TimePoint t_b_s, t_b_r;
};
}  // namespace

JitterReport jitter_report(const OverheadSeries& series) {
  std::vector<double> browser_rtt, net_rtt;
  browser_rtt.reserve(series.samples.size());
  net_rtt.reserve(series.samples.size());
  for (const auto& s : series.samples) {
    browser_rtt.push_back(s.browser_rtt2_ms);
    net_rtt.push_back(s.net_rtt2_ms);
  }
  JitterReport r;
  r.browser_jitter_ms = mean_abs_diff(browser_rtt);
  r.net_jitter_ms = mean_abs_diff(net_rtt);
  return r;
}

ThroughputExperiment::ThroughputExperiment(Config config)
    : config_{std::move(config)} {
  config_.testbed.client_os = config_.os;
  config_.testbed.seed = config_.seed;
  testbed_ = std::make_unique<Testbed>(config_.testbed);
}

std::vector<ThroughputSample> ThroughputExperiment::run() {
  std::vector<ThroughputSample> out;
  const browser::BrowserProfile profile =
      browser::make_profile(config_.browser, config_.os);
  sim::Scheduler& sched = testbed_->sim().scheduler();
  const net::Port probe_port = config_.via == Via::kXhr
                                   ? config_.testbed.http_port
                                   : config_.testbed.ws_port;
  std::uint64_t session = 0;

  for (const std::size_t size : config_.payload_sizes) {
    std::vector<double> browser_ms, net_ms;

    for (int run = 0; run < config_.runs_per_size; ++run) {
      auto b = testbed_->launch_browser(profile, session++);
      RunTimes times;

      browser::XmlHttpRequest xhr{*b};
      std::unique_ptr<browser::BrowserWebSocket> ws;

      if (config_.via == Via::kXhr) {
        b->load_container_page(browser::ProbeKind::kXhrGet, [&] {
          browser::TimingApi& clock = b->clock(browser::ClockKind::kJsDate);
          xhr.set_onreadystatechange([&] {
            if (xhr.ready_state() !=
                browser::XmlHttpRequest::ReadyState::kDone) {
              return;
            }
            times.true_recv = testbed_->sim().now();
            times.t_b_r = clock.read(*times.true_recv);
          });
          xhr.open("GET", "/payload?size=" + std::to_string(size));
          times.true_send = testbed_->sim().now();
          times.t_b_s = clock.read(*times.true_send);
          xhr.send();
        });
      } else {
        b->load_container_page(browser::ProbeKind::kWebSocket, [&] {
          browser::TimingApi& clock = b->clock(browser::ClockKind::kJsDate);
          ws = std::make_unique<browser::BrowserWebSocket>(
              *b, testbed_->ws_endpoint(), "/ws");
          ws->set_onmessage([&](const std::string& data) {
            if (data.size() < size) return;  // stray echo
            times.true_recv = testbed_->sim().now();
            times.t_b_r = clock.read(*times.true_recv);
          });
          ws->set_onopen([&, sizes = size] {
            times.true_send = testbed_->sim().now();
            times.t_b_s = clock.read(*times.true_send);
            ws->send("PULL:" + std::to_string(sizes));
          });
        });
      }
      sched.run();

      if (times.true_send && times.true_recv) {
        // Packet-level duration: first request byte out to last response
        // byte in, within the measurement window.
        std::optional<sim::TimePoint> t_n_s, t_n_r;
        const net::PacketCapture& cap = testbed_->client().capture();
        for (std::size_t i = cap.first_index_at_or_after(*times.true_send);
             i < cap.size() && cap.true_time(i) <= *times.true_recv; ++i) {
          const net::Packet& pkt = cap.packet(i);
          const bool outbound =
              cap.direction(i) == net::CaptureDirection::kOutbound;
          if (outbound && pkt.dst.port == probe_port && pkt.carries_data() &&
              !t_n_s) {
            t_n_s = cap.timestamp(i);
          }
          if (!outbound && pkt.src.port == probe_port &&
              pkt.carries_data()) {
            t_n_r = cap.timestamp(i);
          }
        }
        if (t_n_s && t_n_r && *t_n_r > *t_n_s) {
          browser_ms.push_back((times.t_b_r - times.t_b_s).ms_f());
          net_ms.push_back((*t_n_r - *t_n_s).ms_f());
        }
      }

      ws.reset();
      b.reset();
      testbed_->client().capture().clear();
      sched.run_until(testbed_->sim().now() + sim::Duration::seconds(1));
    }

    if (browser_ms.empty()) continue;
    ThroughputSample s;
    s.payload_bytes = size;
    s.browser_ms = stats::median(browser_ms);
    s.net_ms = stats::median(net_ms);
    const double bits = static_cast<double>(size) * 8.0;
    s.browser_tput_mbps = bits / (s.browser_ms / 1e3) / 1e6;
    s.net_tput_mbps = bits / (s.net_ms / 1e3) / 1e6;
    out.push_back(s);
  }
  return out;
}

}  // namespace bnm::core
