#include "core/offline_analysis.h"

#include <stdexcept>

namespace bnm::core {

std::vector<OfflineRtt> OfflineAnalyzer::request_response_rtts(
    const std::vector<net::PcapRecord>& records, net::IpAddress client_ip,
    net::Port server_port) {
  std::vector<OfflineRtt> out;
  bool awaiting_response = false;
  OfflineRtt current;

  for (const auto& rec : records) {
    const net::Packet& p = rec.packet;
    if (!p.carries_data()) continue;

    const bool outbound_request =
        p.src.ip == client_ip && p.dst.port == server_port;
    const bool inbound_response =
        p.dst.ip == client_ip && p.src.port == server_port;

    if (outbound_request) {
      if (awaiting_response) {
        // Previous request never answered; drop it and start fresh.
        awaiting_response = false;
      }
      current = OfflineRtt{};
      current.request_at = rec.timestamp;
      current.request_bytes = p.payload_size();
      awaiting_response = true;
    } else if (inbound_response && awaiting_response) {
      current.response_at = rec.timestamp;
      current.response_bytes = p.payload_size();
      current.rtt_ms = (current.response_at - current.request_at).ms_f();
      if (current.rtt_ms > 0) out.push_back(current);
      awaiting_response = false;
    }
  }
  return out;
}

std::vector<OfflineRtt> OfflineAnalyzer::analyze_file(const std::string& path,
                                                      net::IpAddress client_ip,
                                                      net::Port server_port) {
  const auto result = net::PcapReader::read_file(path);
  if (!result.ok()) {
    throw std::runtime_error("cannot parse pcap: " + path);
  }
  return request_response_rtts(result.records, client_ip, server_port);
}

OfflineAnalyzer::Summary OfflineAnalyzer::summarize(
    const std::vector<OfflineRtt>& rtts) {
  Summary s;
  s.exchanges = rtts.size();
  if (rtts.empty()) return s;
  std::vector<double> values;
  values.reserve(rtts.size());
  for (const auto& r : rtts) values.push_back(r.rtt_ms);
  s.min_rtt_ms = stats::min(values);
  s.median_rtt_ms = stats::median(values);
  s.max_rtt_ms = stats::max(values);
  return s;
}

}  // namespace bnm::core
