#include "browser/websocket_api.h"

#include <utility>

namespace bnm::browser {

BrowserWebSocket::BrowserWebSocket(Browser& browser, net::Endpoint server,
                                   const std::string& path)
    : browser_{browser} {
  if (!browser_.profile().supports_websocket) {
    browser_.sim().scheduler().schedule_after(
        sim::Duration::millis(1), [this, alive = alive_] {
          if (!*alive) return;
          if (onerror_) onerror_("WebSocket is not supported by this browser");
        });
    return;
  }
  client_ = std::make_unique<ws::WebSocketClient>(browser_.host());
  client_->set_error_callback([this, alive = alive_](const std::string& err) {
    if (!*alive) return;
    if (onerror_) onerror_(err);
  });
  client_->connect(
      server, path,
      [this, alive = alive_](std::shared_ptr<ws::WebSocketConnection> conn) {
        if (!*alive) {
          conn->close();
          return;
        }
        conn_ = std::move(conn);
        ws::WebSocketConnection::Callbacks cbs;
        cbs.on_message = [this,
                          alive](const ws::MessageAssembler::Message& msg) {
          const sim::Duration dispatch = browser_.sample_recv_dispatch(
              ProbeKind::kWebSocket, current_is_first_);
          browser_.event_loop().post(
              dispatch, [this, alive, data = net::to_string(msg.data)] {
                if (!*alive) return;
                if (onmessage_) onmessage_(data);
              });
        };
        cbs.on_close = [this, alive](std::uint16_t code) {
          if (!*alive) return;
          if (onclose_) onclose_(code);
        };
        conn_->set_callbacks(std::move(cbs));
        browser_.event_loop().post(sim::Duration::micros(100),
                                   [this, alive] {
                                     if (!*alive) return;
                                     if (onopen_) onopen_();
                                   });
      });
}

BrowserWebSocket::~BrowserWebSocket() {
  *alive_ = false;
  if (conn_) {
    conn_->set_callbacks({});
    if (conn_->open()) conn_->close();
  }
}

void BrowserWebSocket::send(const std::string& data) {
  if (!conn_ || !conn_->open()) {
    if (onerror_) onerror_("send on closed WebSocket");
    return;
  }
  current_is_first_ = !used_before_;
  used_before_ = true;
  const sim::Duration pre =
      browser_.sample_pre_send(ProbeKind::kWebSocket, current_is_first_);
  browser_.sim().scheduler().schedule_after(pre, [this, alive = alive_, data] {
    if (!*alive || !conn_ || !conn_->open()) return;
    conn_->send_binary(net::to_bytes(data));
  });
}

void BrowserWebSocket::close() {
  if (conn_) conn_->close();
}

}  // namespace bnm::browser
