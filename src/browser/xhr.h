// XMLHttpRequest shim: the JavaScript-native HTTP measurement object
// (Table 1, rows "XHR GET/POST"). Subject to the same-origin policy.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "browser/browser.h"
#include "browser/url.h"

namespace bnm::browser {

class XmlHttpRequest {
 public:
  enum class ReadyState { kUnsent = 0, kOpened = 1, kHeadersReceived = 2,
                          kLoading = 3, kDone = 4 };

  explicit XmlHttpRequest(Browser& browser) : browser_{browser} {}

  /// In-flight completion callbacks check the alive flag, so destroying an
  /// XHR mid-request (a cancelled measurement run) orphans them safely.
  ~XmlHttpRequest() { *alive_ = false; }

  /// Configure the request. Relative URLs resolve against the origin.
  /// Returns false on a malformed URL.
  bool open(const std::string& method, const std::string& url);

  void set_onreadystatechange(std::function<void()> cb) {
    onreadystatechange_ = std::move(cb);
  }
  void set_onerror(std::function<void(const std::string&)> cb) {
    onerror_ = std::move(cb);
  }

  /// Dispatch the request. Fails (onerror, returns false) if the target
  /// violates the same-origin policy.
  bool send(const std::string& body = "");

  ReadyState ready_state() const { return state_; }
  int status() const { return status_; }
  const std::string& response_text() const { return response_text_; }

 private:
  void change_state(ReadyState s);

  Browser& browser_;
  ReadyState state_ = ReadyState::kUnsent;
  std::string method_ = "GET";
  ParsedUrl url_;
  bool used_before_ = false;
  int status_ = 0;
  std::string response_text_;
  std::function<void()> onreadystatechange_;
  std::function<void(const std::string&)> onerror_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace bnm::browser
