#include "browser/xhr.h"

#include <utility>

namespace bnm::browser {

bool XmlHttpRequest::open(const std::string& method, const std::string& url) {
  const auto parsed = parse_url(url, browser_.origin());
  if (!parsed) return false;
  method_ = method;
  url_ = *parsed;
  change_state(ReadyState::kOpened);
  return true;
}

void XmlHttpRequest::change_state(ReadyState s) {
  state_ = s;
  if (onreadystatechange_) onreadystatechange_();
}

bool XmlHttpRequest::send(const std::string& body) {
  if (state_ != ReadyState::kOpened && state_ != ReadyState::kDone) {
    if (onerror_) onerror_("InvalidStateError");
    return false;
  }
  if (!browser_.same_origin(url_.endpoint)) {
    if (onerror_) onerror_("same-origin policy violation");
    return false;
  }

  const ProbeKind kind =
      method_ == "POST" ? ProbeKind::kXhrPost : ProbeKind::kXhrGet;
  const bool first = !used_before_;
  used_before_ = true;

  http::HttpRequest req;
  req.method = method_;
  req.target = url_.path;
  req.headers.set("Host", url_.endpoint.to_string());
  req.body = body;

  const sim::Duration pre = browser_.sample_pre_send(kind, first);
  browser_.sim().scheduler().schedule_after(pre, [this, kind, first,
                                                  req = std::move(req)] {
    browser_.http().request(
        url_.endpoint, req,
        [this, kind, first](http::HttpResponse resp,
                            http::HttpClient::TransferInfo) {
          const sim::Duration dispatch =
              browser_.sample_recv_dispatch(kind, first);
          browser_.event_loop().post(dispatch, [this, resp = std::move(resp)] {
            status_ = resp.status;
            response_text_ = resp.body;
            change_state(ReadyState::kDone);
          });
        });
  });
  return true;
}

}  // namespace bnm::browser
