#include "browser/xhr.h"

#include <utility>

namespace bnm::browser {

bool XmlHttpRequest::open(const std::string& method, const std::string& url) {
  const auto parsed = parse_url(url, browser_.origin());
  if (!parsed) return false;
  method_ = method;
  url_ = *parsed;
  change_state(ReadyState::kOpened);
  return true;
}

void XmlHttpRequest::change_state(ReadyState s) {
  state_ = s;
  if (onreadystatechange_) onreadystatechange_();
}

bool XmlHttpRequest::send(const std::string& body) {
  if (state_ != ReadyState::kOpened && state_ != ReadyState::kDone) {
    if (onerror_) onerror_("InvalidStateError");
    return false;
  }
  if (!browser_.same_origin(url_.endpoint)) {
    if (onerror_) onerror_("same-origin policy violation");
    return false;
  }

  const ProbeKind kind =
      method_ == "POST" ? ProbeKind::kXhrPost : ProbeKind::kXhrGet;
  const bool first = !used_before_;
  used_before_ = true;

  http::HttpRequest req;
  req.method = method_;
  req.target = url_.path;
  req.headers.set("Host", url_.endpoint.to_string());
  req.body = body;

  const sim::Duration pre = browser_.sample_pre_send(kind, first);
  browser_.sim().scheduler().schedule_after(pre, [this, alive = alive_, kind,
                                                  first,
                                                  req = std::move(req)] {
    if (!*alive) return;
    browser_.http().request(
        url_.endpoint, req,
        [this, alive, kind, first](http::HttpResponse resp,
                                   http::HttpClient::TransferInfo) {
          if (!*alive) return;
          const sim::Duration dispatch =
              browser_.sample_recv_dispatch(kind, first);
          browser_.event_loop().post(
              dispatch, [this, alive, resp = std::move(resp)] {
                if (!*alive) return;
                status_ = resp.status;
                response_text_ = resp.body;
                change_state(ReadyState::kDone);
                // Browsers signal a network error as readyState 4 with
                // status 0, then fire onerror.
                if (status_ == 0 && onerror_) onerror_("network error");
              });
        });
  });
  return true;
}

}  // namespace bnm::browser
