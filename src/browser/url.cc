#include "browser/url.h"

#include <cstdlib>

namespace bnm::browser {

std::optional<ParsedUrl> parse_url(const std::string& url,
                                   net::Endpoint origin) {
  ParsedUrl out;
  if (url.rfind("http://", 0) == 0) {
    out.absolute = true;
    const std::string rest = url.substr(7);
    const auto slash = rest.find('/');
    const std::string hostport =
        slash == std::string::npos ? rest : rest.substr(0, slash);
    out.path = slash == std::string::npos ? "/" : rest.substr(slash);
    const auto colon = hostport.find(':');
    try {
      if (colon == std::string::npos) {
        out.endpoint.ip = net::IpAddress::parse(hostport);
        out.endpoint.port = 80;
      } else {
        out.endpoint.ip = net::IpAddress::parse(hostport.substr(0, colon));
        out.endpoint.port = static_cast<net::Port>(
            std::strtoul(hostport.substr(colon + 1).c_str(), nullptr, 10));
      }
    } catch (...) {
      return std::nullopt;
    }
    return out;
  }
  if (!url.empty() && url.front() == '/') {
    out.absolute = false;
    out.endpoint = origin;
    out.path = url;
    return out;
  }
  return std::nullopt;
}

}  // namespace bnm::browser
