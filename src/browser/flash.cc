#include "browser/flash.h"

#include <utility>

namespace bnm::browser {

void FlashRuntime::fetch_policy(net::IpAddress host,
                                std::function<void(bool)> done) {
  if (policy_loaded(host)) {
    done(true);
    return;
  }
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/crossdomain.xml";
  const net::Endpoint target{host, 80};
  browser_.http().request(
      target, std::move(req),
      [this, alive = alive_, host, done = std::move(done)](
          http::HttpResponse resp, http::HttpClient::TransferInfo) {
        if (!*alive) return;
        const bool ok = resp.status == 200 &&
                        resp.body.find("cross-domain-policy") != std::string::npos;
        if (ok) policy_hosts_.insert(host);
        done(ok);
      });
}

bool FlashRuntime::URLLoader::load(const std::string& method,
                                   const std::string& url,
                                   const std::string& body) {
  Browser& b = runtime_.browser();
  const auto parsed = parse_url(url, b.origin());
  if (!parsed) {
    if (on_error_) on_error_("malformed URL");
    return false;
  }

  const ProbeKind kind =
      method == "POST" ? ProbeKind::kFlashPost : ProbeKind::kFlashGet;
  const bool first_obj_use = !used_before_;
  used_before_ = true;

  // Section 4.1 policies: some plugins bypass the browser's connection
  // pool - the measurement then swallows a TCP handshake.
  const ConnectionPolicy& policy = b.profile().policy;
  bool reuse = true;
  if (policy.flash_first_request_new_connection && !runtime_.made_http_request()) {
    reuse = false;
  }
  if (policy.flash_post_always_new_connection && method == "POST") {
    reuse = false;
  }
  runtime_.note_http_request();

  http::HttpRequest req;
  req.method = method;
  req.target = parsed->path;
  req.headers.set("Host", parsed->endpoint.to_string());
  req.body = body;

  http::HttpClient::Options opts;
  opts.reuse_pooled = reuse;
  opts.pool_after_use = true;

  const sim::Duration pre = b.sample_pre_send(kind, first_obj_use);
  b.sim().scheduler().schedule_after(
      pre, [this, alive = alive_, &b, kind, first_obj_use,
            target = parsed->endpoint, req = std::move(req), opts] {
        if (!*alive) return;
        b.http().request(
            target, req,
            [this, alive, &b, kind, first_obj_use](
                http::HttpResponse resp, http::HttpClient::TransferInfo) {
              if (!*alive) return;
              const sim::Duration dispatch =
                  b.sample_recv_dispatch(kind, first_obj_use);
              b.event_loop().post(
                  dispatch, [this, alive, resp = std::move(resp)] {
                    if (!*alive) return;
                    // Network failure surfaces as IOErrorEvent, not
                    // Event.COMPLETE with a bogus status.
                    if (resp.status == 0) {
                      if (on_error_) on_error_("network error");
                      return;
                    }
                    if (on_complete_) on_complete_(resp.status, resp.body);
                  });
            },
            opts);
      });
  return true;
}

void FlashRuntime::Socket::connect(net::Endpoint target) {
  if (runtime_.policy_loaded(target.ip)) {
    do_connect(target);
    return;
  }
  runtime_.fetch_policy(target.ip, [this, alive = alive_, target](bool ok) {
    if (!*alive) return;
    if (!ok) {
      if (on_error_) on_error_("cross-domain policy rejected");
      return;
    }
    do_connect(target);
  });
}

void FlashRuntime::Socket::do_connect(net::Endpoint target) {
  Browser& b = runtime_.browser();
  net::TcpCallbacks cbs;
  cbs.on_connect = [this, &b] {
    b.event_loop().post(sim::Duration::micros(100), [this] {
      if (on_connect_) on_connect_();
    });
  };
  cbs.on_data = [this, &b](const net::Payload& bytes) {
    const sim::Duration dispatch =
        b.sample_recv_dispatch(ProbeKind::kFlashSocket, current_is_first_);
    b.event_loop().post(dispatch, [this, data = net::to_string(bytes)] {
      if (on_socket_data_) on_socket_data_(data);
    });
  };
  cbs.on_reset = [this] {
    if (on_error_) on_error_("connection reset");
  };
  conn_ = b.host().tcp_connect(target, std::move(cbs));
}

void FlashRuntime::Socket::write(const std::string& bytes) {
  if (!conn_ || !conn_->established()) {
    if (on_error_) on_error_("write on unconnected socket");
    return;
  }
  Browser& b = runtime_.browser();
  current_is_first_ = !used_before_;
  used_before_ = true;
  const sim::Duration pre =
      b.sample_pre_send(ProbeKind::kFlashSocket, current_is_first_);
  b.sim().scheduler().schedule_after(pre, [this, alive = alive_, bytes] {
    if (!*alive || !conn_) return;
    conn_->send(bytes);
  });
}

void FlashRuntime::Socket::close() {
  if (conn_) conn_->close();
}

FlashRuntime::Socket::~Socket() {
  *alive_ = false;
  if (conn_) {
    conn_->set_callbacks({});
    if (conn_->established()) conn_->close();
  }
}

}  // namespace bnm::browser
