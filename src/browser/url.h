// Minimal URL handling for the measurement shims: absolute
// "http://a.b.c.d:port/path" or origin-relative "/path".
#pragma once

#include <optional>
#include <string>

#include "net/address.h"

namespace bnm::browser {

struct ParsedUrl {
  bool absolute = false;       ///< had an explicit http://host part
  net::Endpoint endpoint;      ///< target server (origin if relative)
  std::string path = "/";      ///< path + query
};

/// Parse `url` against `origin`. Returns nullopt for malformed input.
/// Hosts must be numeric IPv4 (the simulated network has no DNS).
std::optional<ParsedUrl> parse_url(const std::string& url,
                                   net::Endpoint origin);

}  // namespace bnm::browser
