// DOM-element measurement shim: insert an <img>/<script> element whose
// src points at the probe URL, and time the onload event (Table 1 row
// "DOM"). Not subject to the same-origin policy.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "browser/browser.h"
#include "browser/url.h"

namespace bnm::browser {

class DomElementLoader {
 public:
  enum class Tag { kImg, kScript };

  DomElementLoader(Browser& browser, Tag tag = Tag::kImg)
      : browser_{browser}, tag_{tag} {}

  /// In-flight load callbacks check the alive flag, so destroying the
  /// loader mid-request (a cancelled measurement run) orphans them safely.
  ~DomElementLoader() { *alive_ = false; }

  void set_onload(std::function<void()> cb) { onload_ = std::move(cb); }
  void set_onerror(std::function<void(const std::string&)> cb) {
    onerror_ = std::move(cb);
  }

  /// Insert a fresh element pointing at `url` (relative or absolute; DOM
  /// loads may be cross-origin). Returns false on a malformed URL.
  bool load(const std::string& url);

  Tag tag() const { return tag_; }
  int loads_completed() const { return loads_completed_; }

 private:
  Browser& browser_;
  Tag tag_;
  bool used_before_ = false;
  int loads_completed_ = 0;
  std::function<void()> onload_;
  std::function<void(const std::string&)> onerror_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace bnm::browser
