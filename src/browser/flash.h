// Flash plugin runtime shim: URLLoader (HTTP) and Socket (TCP), with the
// plugin's connection-policy quirks (Section 4.1) and the cross-domain
// policy-file fetch that real Flash performs before socket use.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "browser/url.h"
#include "net/tcp.h"

namespace bnm::browser {

class FlashRuntime {
 public:
  explicit FlashRuntime(Browser& browser) : browser_{browser} {}

  /// Pending policy-file fetches check the alive flag, so destroying the
  /// runtime mid-fetch (a cancelled measurement run) orphans them safely.
  ~FlashRuntime() { *alive_ = false; }

  Browser& browser() { return browser_; }

  /// True once any HTTP request has been issued by this plugin instance;
  /// drives the "first request opens a new connection" Opera policy.
  bool made_http_request() const { return made_http_request_; }
  void note_http_request() { made_http_request_ = true; }

  /// Flash requires a socket policy before connecting a Socket to a host.
  /// The runtime fetches /crossdomain.xml over HTTP once per host.
  bool policy_loaded(net::IpAddress host) const {
    return policy_hosts_.count(host) > 0;
  }
  void fetch_policy(net::IpAddress host, std::function<void(bool)> done);

  // ------------------------------------------------------------- URLLoader
  class URLLoader {
   public:
    explicit URLLoader(FlashRuntime& runtime) : runtime_{runtime} {}
    ~URLLoader() { *alive_ = false; }

    void set_on_complete(std::function<void(int, const std::string&)> cb) {
      on_complete_ = std::move(cb);
    }
    void set_on_error(std::function<void(const std::string&)> cb) {
      on_error_ = std::move(cb);
    }

    /// Issue a GET/POST. Connection reuse follows the browser's Flash
    /// policy; returns false on a malformed URL.
    bool load(const std::string& method, const std::string& url,
              const std::string& body = "");

   private:
    FlashRuntime& runtime_;
    bool used_before_ = false;
    std::function<void(int, const std::string&)> on_complete_;
    std::function<void(const std::string&)> on_error_;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  };

  // ---------------------------------------------------------------- Socket
  class Socket {
   public:
    explicit Socket(FlashRuntime& runtime) : runtime_{runtime} {}
    ~Socket();

    void set_on_connect(std::function<void()> cb) { on_connect_ = std::move(cb); }
    void set_on_socket_data(std::function<void(const std::string&)> cb) {
      on_socket_data_ = std::move(cb);
    }
    void set_on_error(std::function<void(const std::string&)> cb) {
      on_error_ = std::move(cb);
    }

    /// Connect; transparently fetches the cross-domain policy file first
    /// if this runtime has not validated `target.ip` yet.
    void connect(net::Endpoint target);
    /// writeBytes + flush in the ActionScript API.
    void write(const std::string& bytes);
    void close();

    bool connected() const { return conn_ && conn_->established(); }

   private:
    void do_connect(net::Endpoint target);

    FlashRuntime& runtime_;
    std::shared_ptr<net::TcpConnection> conn_;
    bool used_before_ = false;
    bool current_is_first_ = true;
    std::function<void()> on_connect_;
    std::function<void(const std::string&)> on_socket_data_;
    std::function<void(const std::string&)> on_error_;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  };

 private:
  Browser& browser_;
  bool made_http_request_ = false;
  std::set<net::IpAddress> policy_hosts_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace bnm::browser
