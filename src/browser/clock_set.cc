#include "browser/clock_set.h"

namespace bnm::browser {

ClockSet::ClockSet(OsId os, sim::Rng rng) : os_{os} {
  QuantizedClock::Config ms1;
  ms1.granularities = {sim::Duration::millis(1)};

  QuantizedClock::Config java;
  if (os == OsId::kWindows7) {
    java.granularities = {sim::Duration::millis(1),
                          sim::Duration::from_millis_f(15.625)};
    java.epoch_min = sim::Duration::minutes(1);
    java.epoch_max = sim::Duration::minutes(4);
  } else {
    java.granularities = {sim::Duration::millis(1)};
  }

  js_date_ = std::make_unique<QuantizedClock>(ms1, rng.fork("js-date"));
  flash_date_ = std::make_unique<QuantizedClock>(ms1, rng.fork("flash-date"));
  java_date_ = std::make_unique<QuantizedClock>(java, rng.fork("java-date"));
  js_perf_ = std::make_unique<PerformanceNowClock>();
  java_nano_ = std::make_unique<NanoClock>();
  perfect_ = std::make_unique<PerfectClock>();
}

TimingApi& ClockSet::get(ClockKind kind) {
  switch (kind) {
    case ClockKind::kJsDate: return *js_date_;
    case ClockKind::kJsPerformanceNow: return *js_perf_;
    case ClockKind::kFlashDate: return *flash_date_;
    case ClockKind::kJavaDate: return *java_date_;
    case ClockKind::kJavaNano: return *java_nano_;
  }
  return *perfect_;
}

}  // namespace bnm::browser
