// The browser's WebSocket JavaScript API over the simulated RFC 6455 stack
// (Table 1 row "WebSocket"). Message-based, not subject to same-origin,
// native (no plugin) - the one socket option on plugin-less platforms.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "browser/browser.h"
#include "ws/endpoint.h"

namespace bnm::browser {

class BrowserWebSocket {
 public:
  /// Begins the opening handshake immediately (like `new WebSocket(url)`).
  /// If the browser lacks WebSocket support (IE9/Safari5, Table 2), the
  /// error callback fires asynchronously and the object stays closed.
  BrowserWebSocket(Browser& browser, net::Endpoint server,
                   const std::string& path = "/ws");

  /// Detaches connection callbacks so late frames touch nothing freed.
  ~BrowserWebSocket();

  void set_onopen(std::function<void()> cb) { onopen_ = std::move(cb); }
  void set_onmessage(std::function<void(const std::string&)> cb) {
    onmessage_ = std::move(cb);
  }
  void set_onclose(std::function<void(std::uint16_t)> cb) {
    onclose_ = std::move(cb);
  }
  void set_onerror(std::function<void(const std::string&)> cb) {
    onerror_ = std::move(cb);
  }

  /// Send a message (binary framing; the measurement payloads are opaque).
  void send(const std::string& data);
  void close();

  bool open() const { return conn_ && conn_->open(); }

 private:
  Browser& browser_;
  std::unique_ptr<ws::WebSocketClient> client_;
  std::shared_ptr<ws::WebSocketConnection> conn_;
  bool used_before_ = false;
  bool current_is_first_ = true;  ///< the in-flight round is the object's first
  std::function<void()> onopen_;
  std::function<void(const std::string&)> onmessage_;
  std::function<void(std::uint16_t)> onclose_;
  std::function<void(const std::string&)> onerror_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace bnm::browser
