// Browser/OS overhead profiles: the encoded shape of the paper's Figure 3.
//
// Each (browser, OS) pair carries, per measurement-probe kind, a model of
// the application-level overheads a real browser added in the paper's
// testbed: the delay between taking tB_s and the request reaching the
// network stack (pre_send), the delay between the response arriving at the
// stack and the completion event firing (recv_dispatch), and a first-use
// extra paid only by the first measurement on a fresh object (Δd1).
// Connection policies capture which technologies open a fresh TCP
// connection (and therefore swallow a handshake into the measured RTT).
//
// The numeric tables below are calibrated against the published box plots
// and tables; DESIGN.md §5 documents the mapping. They are data, not code:
// replace them to model a different browser generation.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "browser/timing.h"
#include "sim/random.h"
#include "sim/time.h"

namespace bnm::browser {

enum class BrowserId { kChrome, kFirefox, kIe, kOpera, kSafari };
enum class OsId { kWindows7, kUbuntu };

const char* browser_name(BrowserId b);
const char* browser_initial(BrowserId b);  // C, F, IE, O, S
const char* os_name(OsId os);
const char* os_initial(OsId os);  // W, U

/// One browser-on-OS case, e.g. "C (U)" in the figures.
struct BrowserOsCase {
  BrowserId browser;
  OsId os;
  std::string label() const;  ///< "C (U)", "IE (W)", ...
  bool operator==(const BrowserOsCase&) const = default;
};

/// The eight cases the paper evaluates (Table 2): five browsers on Windows,
/// three (no IE/Safari) on Ubuntu.
std::vector<BrowserOsCase> paper_cases();

/// The probe kinds whose overheads are profiled (Figure 3's ten methods
/// plus the Java UDP extension).
enum class ProbeKind {
  kXhrGet,
  kXhrPost,
  kDom,
  kFlashGet,
  kFlashPost,
  kFlashSocket,
  kJavaGet,
  kJavaPost,
  kJavaSocket,
  kJavaUdp,
  kWebSocket,
};
const char* probe_kind_name(ProbeKind k);
std::vector<ProbeKind> all_probe_kinds();

/// A small distribution specification, sampled per run.
struct DistSpec {
  enum class Kind { kConstant, kUniform, kNormal, kLognormalMed };
  Kind kind = Kind::kConstant;
  double a = 0;  ///< constant: value; uniform: lo; normal: mean; lognormal: median (all ms)
  double b = 0;  ///< uniform: hi; normal: stddev; lognormal: sigma

  static DistSpec constant(double ms) { return {Kind::kConstant, ms, 0}; }
  static DistSpec uniform(double lo_ms, double hi_ms) {
    return {Kind::kUniform, lo_ms, hi_ms};
  }
  static DistSpec normal(double mean_ms, double sd_ms) {
    return {Kind::kNormal, mean_ms, sd_ms};
  }
  static DistSpec lognormal_med(double median_ms, double sigma) {
    return {Kind::kLognormalMed, median_ms, sigma};
  }

  /// Sample a non-negative duration.
  sim::Duration sample(sim::Rng& rng) const;
  /// The distribution's median in ms (used by documentation tables).
  double median_ms() const;
};

/// Application-level overhead of one probe kind on one browser/OS.
struct OverheadModel {
  DistSpec pre_send;       ///< tB_s taken -> request at the network stack
  DistSpec recv_dispatch;  ///< response at the stack -> completion event
  DistSpec first_use;      ///< extra cost on a fresh object (Δd1 only)
};

/// Which timestamp source a probe kind reads in this browser.
enum class ClockKind {
  kJsDate,            ///< JavaScript Date.getTime()
  kJsPerformanceNow,  ///< window.performance.now() (high-resolution time)
  kFlashDate,         ///< ActionScript Date.getTime()
  kJavaDate,          ///< java.util.Date.getTime() -> currentTimeMillis()
  kJavaNano,          ///< System.nanoTime()
};

/// Connection-handling policy for plugin HTTP (Section 4.1).
struct ConnectionPolicy {
  /// Flash URLLoader: first request opens a fresh TCP connection instead of
  /// reusing the container page's (Opera behaviour).
  bool flash_first_request_new_connection = false;
  /// Flash URLLoader POST: every request opens a fresh connection (Opera).
  bool flash_post_always_new_connection = false;
};

struct BrowserProfile {
  BrowserOsCase which;
  /// Display label; overrides which.label() when set (mobile profiles,
  /// appletviewer sessions).
  std::string label_override;
  std::string label() const {
    return label_override.empty() ? which.label() : label_override;
  }
  bool supports_websocket = true;   ///< IE9 / Safari 5 lack it (Table 2)
  bool supports_flash = true;
  bool supports_java = true;
  std::string flash_version;
  std::string java_version;
  std::string browser_version;

  ConnectionPolicy policy;

  /// OS timer behaviour behind Date.getTime() in the Java plugin.
  QuantizedClock::Config java_date_clock;
  /// Date.getTime() as the JS engine / Flash expose it (browsers run their
  /// own 1 ms timer; the paper saw no Windows pathology outside Java).
  QuantizedClock::Config js_date_clock;

  /// Safari's stock Java interface (JavaPlugin.jar / npJavaPlugin.dll)
  /// "runs into problems easily" (§5): warm-path Date.getTime()
  /// measurements pick up continuous extra latency (Fig. 4a, S Δd2).
  /// Absent for healthy plugins; removed when the Oracle JRE is forced.
  std::optional<DistSpec> java_date_warm_noise;

  /// performance.now()/webkitNow() availability (Table 2 era: Chrome and
  /// Firefox shipped it; IE 9, Opera 12 and Safari 5 had not).
  bool supports_performance_now = false;

  OverheadModel overhead(ProbeKind kind) const;
  /// `js_use_performance_now` upgrades the JS-native kinds to the
  /// high-resolution timer when the browser has one.
  ClockKind clock_for(ProbeKind kind, bool java_use_nanotime,
                      bool js_use_performance_now = false) const;

  /// All per-kind models, indexed by ProbeKind (filled by make_profile).
  std::array<OverheadModel, 11> models{};
};

/// Build the calibrated profile for one case. Throws std::invalid_argument
/// for combinations outside Table 2 (IE/Safari on Ubuntu).
BrowserProfile make_profile(BrowserId browser, OsId os);

/// True if the case exists in the paper's Table 2 matrix.
bool case_supported(BrowserId browser, OsId os);

/// Mobile-platform extension (paper §7: "the methodology can be extended
/// to the mobile environment"). Mobile browsers of the era have no Flash
/// or Java plug-ins - WebSocket is the only socket-based option left
/// (Section 2.1) - and pay higher event-loop dispatch costs on phone-class
/// CPUs.
enum class MobilePlatform { kIosSafari, kAndroidChrome };
const char* mobile_platform_name(MobilePlatform p);
BrowserProfile make_mobile_profile(MobilePlatform platform);

}  // namespace bnm::browser
