// Browser main-thread model: a FIFO task queue with per-task dispatch
// latency. Completion events (onreadystatechange, onload, socket data)
// queue behind whatever the main thread is doing, which is where much of
// the HTTP methods' delay overhead comes from.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulation.h"

namespace bnm::browser {

class EventLoop {
 public:
  EventLoop(sim::Simulation& sim, std::string name);

  /// Queue `task` to become runnable after `dispatch_latency`; it executes
  /// once the main thread is free (non-preemptive, FIFO among ready
  /// tasks). A task only occupies the thread when it actually runs, so
  /// timers posted far into the future do not block earlier work.
  void post(sim::Duration dispatch_latency, std::function<void()> task);

  /// Cost charged to the main thread per executed task.
  void set_task_cost(sim::Duration cost) { task_cost_ = cost; }

  std::uint64_t tasks_run() const { return tasks_run_; }

 private:
  void try_run(const std::function<void()>& task);

  sim::Simulation& sim_;
  std::string name_;
  sim::TimePoint busy_until_;
  sim::Duration task_cost_ = sim::Duration::micros(20);
  std::uint64_t tasks_run_ = 0;
};

}  // namespace bnm::browser
