#include "browser/java_applet.h"

#include <utility>

namespace bnm::browser {

sim::Duration JavaAppletRuntime::pre_send(ProbeKind kind, bool first_use) {
  if (options_.via_appletviewer) {
    // No browser plugin between the applet and the stack: only the JRE's
    // own call costs remain.
    sim::Duration d = browser_.rng().uniform_ms(0.02, 0.08);
    if (first_use) d += browser_.rng().uniform_ms(0.02, 0.10);
    return d;
  }
  return browser_.sample_pre_send(kind, first_use);
}

sim::Duration JavaAppletRuntime::recv_dispatch(ProbeKind kind, bool first_use) {
  if (options_.via_appletviewer) {
    return browser_.rng().uniform_ms(0.05, 0.15);
  }
  return browser_.sample_recv_dispatch(kind, first_use,
                                       /*java_date_path=*/!options_.use_nanotime);
}

bool JavaAppletRuntime::UrlConnection::load(const std::string& method,
                                            const std::string& url,
                                            const std::string& body) {
  Browser& b = runtime_.browser();
  const auto parsed = parse_url(url, b.origin());
  if (!parsed) {
    if (on_error_) on_error_("malformed URL");
    return false;
  }
  const ProbeKind kind =
      method == "POST" ? ProbeKind::kJavaPost : ProbeKind::kJavaGet;
  const bool first = !used_before_;
  used_before_ = true;

  http::HttpRequest req;
  req.method = method;
  req.target = parsed->path;
  req.headers.set("Host", parsed->endpoint.to_string());
  req.body = body;

  const sim::Duration pre = runtime_.pre_send(kind, first);
  b.sim().scheduler().schedule_after(
      pre, [this, &b, kind, first, target = parsed->endpoint,
            req = std::move(req)] {
        b.http().request(
            target, req,
            [this, &b, kind, first](http::HttpResponse resp,
                                    http::HttpClient::TransferInfo) {
              // Completion is detected by reading the content; the JRE
              // still charges a dispatch delay for the read to return.
              const sim::Duration dispatch = runtime_.recv_dispatch(kind, first);
              b.sim().scheduler().schedule_after(
                  dispatch, [this, resp = std::move(resp)] {
                    if (on_complete_) on_complete_(resp.status, resp.body);
                  });
            });
      });
  return true;
}

void JavaAppletRuntime::Socket::connect(net::Endpoint target) {
  Browser& b = runtime_.browser();
  net::TcpCallbacks cbs;
  cbs.on_connect = [this, &b] {
    b.sim().scheduler().schedule_after(sim::Duration::micros(100), [this] {
      if (on_connect_) on_connect_();
    });
  };
  cbs.on_data = [this, &b](const net::Payload& bytes) {
    const sim::Duration dispatch =
        runtime_.recv_dispatch(ProbeKind::kJavaSocket, current_is_first_);
    b.sim().scheduler().schedule_after(
        dispatch, [this, data = net::to_string(bytes)] {
          if (on_data_) on_data_(data);
        });
  };
  conn_ = b.host().tcp_connect(target, std::move(cbs));
}

void JavaAppletRuntime::Socket::write(const std::string& bytes) {
  if (!conn_ || !conn_->established()) return;
  current_is_first_ = !used_before_;
  used_before_ = true;
  const sim::Duration pre =
      runtime_.pre_send(ProbeKind::kJavaSocket, current_is_first_);
  runtime_.browser().sim().scheduler().schedule_after(
      pre, [this, bytes] { conn_->send(bytes); });
}

void JavaAppletRuntime::Socket::close() {
  if (conn_) conn_->close();
}

JavaAppletRuntime::Socket::~Socket() {
  if (conn_) {
    conn_->set_callbacks({});
    if (conn_->established()) conn_->close();
  }
}

JavaAppletRuntime::DatagramSocket::DatagramSocket(JavaAppletRuntime& runtime)
    : runtime_{runtime} {
  Browser& b = runtime_.browser();
  sock_ = b.host().udp_open([this, &b](net::Endpoint src,
                                       const net::Payload& bytes) {
    const sim::Duration dispatch =
        runtime_.recv_dispatch(ProbeKind::kJavaUdp, current_is_first_);
    b.sim().scheduler().schedule_after(
        dispatch, [this, src, data = net::to_string(bytes)] {
          if (on_receive_) on_receive_(src, data);
        });
  });
}

void JavaAppletRuntime::DatagramSocket::send_to(net::Endpoint target,
                                                const std::string& bytes) {
  current_is_first_ = !used_before_;
  used_before_ = true;
  const sim::Duration pre =
      runtime_.pre_send(ProbeKind::kJavaUdp, current_is_first_);
  runtime_.browser().sim().scheduler().schedule_after(
      pre, [this, target, bytes] { sock_->send_to(target, net::to_bytes(bytes)); });
}

void JavaAppletRuntime::DatagramSocket::close() {
  if (sock_) {
    runtime_.browser().host().udp_close(sock_->local_port());
    sock_.reset();
  }
}

}  // namespace bnm::browser
