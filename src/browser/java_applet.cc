#include "browser/java_applet.h"

#include <utility>

namespace bnm::browser {

sim::Duration JavaAppletRuntime::pre_send(ProbeKind kind, bool first_use) {
  if (options_.via_appletviewer) {
    // No browser plugin between the applet and the stack: only the JRE's
    // own call costs remain.
    sim::Duration d = browser_.rng().uniform_ms(0.02, 0.08);
    if (first_use) d += browser_.rng().uniform_ms(0.02, 0.10);
    return d;
  }
  return browser_.sample_pre_send(kind, first_use);
}

sim::Duration JavaAppletRuntime::recv_dispatch(ProbeKind kind, bool first_use) {
  if (options_.via_appletviewer) {
    return browser_.rng().uniform_ms(0.05, 0.15);
  }
  return browser_.sample_recv_dispatch(kind, first_use,
                                       /*java_date_path=*/!options_.use_nanotime);
}

bool JavaAppletRuntime::UrlConnection::load(const std::string& method,
                                            const std::string& url,
                                            const std::string& body) {
  Browser& b = runtime_.browser();
  const auto parsed = parse_url(url, b.origin());
  if (!parsed) {
    if (on_error_) on_error_("malformed URL");
    return false;
  }
  const ProbeKind kind =
      method == "POST" ? ProbeKind::kJavaPost : ProbeKind::kJavaGet;
  const bool first = !used_before_;
  used_before_ = true;

  http::HttpRequest req;
  req.method = method;
  req.target = parsed->path;
  req.headers.set("Host", parsed->endpoint.to_string());
  req.body = body;

  const sim::Duration pre = runtime_.pre_send(kind, first);
  b.sim().scheduler().schedule_after(
      pre, [this, alive = alive_, &b, kind, first, target = parsed->endpoint,
            req = std::move(req)] {
        if (!*alive) return;
        b.http().request(
            target, req,
            [this, alive, &b, kind, first](http::HttpResponse resp,
                                           http::HttpClient::TransferInfo) {
              if (!*alive) return;
              // Completion is detected by reading the content; the JRE
              // still charges a dispatch delay for the read to return.
              const sim::Duration dispatch = runtime_.recv_dispatch(kind, first);
              b.sim().scheduler().schedule_after(
                  dispatch, [this, alive, resp = std::move(resp)] {
                    if (!*alive) return;
                    // A dead transport throws IOException from the read.
                    if (resp.status == 0) {
                      if (on_error_) on_error_("network error");
                      return;
                    }
                    if (on_complete_) on_complete_(resp.status, resp.body);
                  });
            });
      });
  return true;
}

void JavaAppletRuntime::Socket::connect(net::Endpoint target) {
  Browser& b = runtime_.browser();
  net::TcpCallbacks cbs;
  cbs.on_connect = [this, alive = alive_, &b] {
    b.sim().scheduler().schedule_after(sim::Duration::micros(100),
                                       [this, alive] {
                                         if (!*alive) return;
                                         if (on_connect_) on_connect_();
                                       });
  };
  cbs.on_data = [this, alive = alive_, &b](const net::Payload& bytes) {
    const sim::Duration dispatch =
        runtime_.recv_dispatch(ProbeKind::kJavaSocket, current_is_first_);
    b.sim().scheduler().schedule_after(
        dispatch, [this, alive, data = net::to_string(bytes)] {
          if (!*alive) return;
          if (on_data_) on_data_(data);
        });
  };
  cbs.on_reset = [this, alive = alive_] {
    if (!*alive) return;
    // java.net.SocketException: Connection reset.
    if (on_error_) on_error_("connection reset");
  };
  conn_ = b.host().tcp_connect(target, std::move(cbs));
}

void JavaAppletRuntime::Socket::write(const std::string& bytes) {
  if (!conn_ || !conn_->established()) return;
  current_is_first_ = !used_before_;
  used_before_ = true;
  const sim::Duration pre =
      runtime_.pre_send(ProbeKind::kJavaSocket, current_is_first_);
  runtime_.browser().sim().scheduler().schedule_after(
      pre, [this, alive = alive_, bytes] {
        if (!*alive || !conn_) return;
        conn_->send(bytes);
      });
}

void JavaAppletRuntime::Socket::close() {
  if (conn_) conn_->close();
}

JavaAppletRuntime::Socket::~Socket() {
  *alive_ = false;
  if (conn_) {
    conn_->set_callbacks({});
    if (conn_->established()) conn_->close();
  }
}

JavaAppletRuntime::DatagramSocket::DatagramSocket(JavaAppletRuntime& runtime)
    : runtime_{runtime} {
  Browser& b = runtime_.browser();
  sock_ = b.host().udp_open([this, alive = alive_, &b](
                                net::Endpoint src, const net::Payload& bytes) {
    if (!*alive) return;
    receive_deadline_.cancel();  // the blocked receive() returned
    const sim::Duration dispatch =
        runtime_.recv_dispatch(ProbeKind::kJavaUdp, current_is_first_);
    b.sim().scheduler().schedule_after(
        dispatch, [this, alive, src, data = net::to_string(bytes)] {
          if (!*alive) return;
          if (on_receive_) on_receive_(src, data);
        });
  });
}

JavaAppletRuntime::DatagramSocket::~DatagramSocket() {
  *alive_ = false;
  receive_deadline_.cancel();
  close();
}

void JavaAppletRuntime::DatagramSocket::send_to(net::Endpoint target,
                                                const std::string& bytes) {
  current_is_first_ = !used_before_;
  used_before_ = true;
  const sim::Duration pre =
      runtime_.pre_send(ProbeKind::kJavaUdp, current_is_first_);
  runtime_.browser().sim().scheduler().schedule_after(
      pre, [this, alive = alive_, target, bytes] {
        if (!*alive || !sock_) return;
        sock_->send_to(target, net::to_bytes(bytes));
      });
  if (!so_timeout_.is_zero()) {
    // The applet blocks in receive() after sending; SO_TIMEOUT bounds that
    // wait. Re-arm per send (each probe is one send+receive pair).
    receive_deadline_.cancel();
    receive_deadline_ = runtime_.browser().sim().scheduler().schedule_after(
        pre + so_timeout_, [this, alive = alive_] {
          if (!*alive) return;
          if (on_timeout_) on_timeout_();
        });
  }
}

void JavaAppletRuntime::DatagramSocket::close() {
  if (sock_) {
    runtime_.browser().host().udp_close(sock_->local_port());
    sock_.reset();
  }
}

}  // namespace bnm::browser
