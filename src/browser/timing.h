// Timing APIs as browsers and plugin runtimes expose them.
//
// The paper's key §4.2 finding: Java's Date.getTime() /
// System.currentTimeMillis() claims 1 ms *resolution* but its *granularity*
// follows the underlying OS timer, and on Windows 7 that granularity is not
// even constant - it flips between 1 ms and ~15.6 ms, each regime lasting
// minutes. QuantizedClock reproduces that regime-switching process;
// NanoClock models System.nanoTime(); PerfectClock is the packet capturer's
// reference clock.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace bnm::browser {

/// Interface of a timestamp source available to measurement code.
class TimingApi {
 public:
  virtual ~TimingApi() = default;

  /// The timestamp the API reports when called at true instant `true_now`.
  virtual sim::TimePoint read(sim::TimePoint true_now) = 0;

  /// How long one call to the API costs (busy-wait loops spin at this rate).
  virtual sim::Duration call_cost() const { return sim::Duration::nanos(200); }

  /// Nominal resolution of the returned value (what the docs promise).
  virtual sim::Duration resolution() const = 0;

  virtual std::string name() const = 0;
};

/// Exact clock: what WinDump/tcpdump effectively timestamps against.
class PerfectClock : public TimingApi {
 public:
  sim::TimePoint read(sim::TimePoint true_now) override { return true_now; }
  sim::Duration call_cost() const override { return sim::Duration::nanos(50); }
  sim::Duration resolution() const override { return sim::Duration::nanos(1); }
  std::string name() const override { return "perfect"; }
};

/// Date.getTime() / System.currentTimeMillis(): millisecond values quantized
/// to the OS timer granularity, which switches between regimes over time.
class QuantizedClock : public TimingApi {
 public:
  struct Config {
    /// The granularities the OS timer flips between. Windows 7 exhibits
    /// {1 ms, ~15.625 ms} (64 Hz timer); Ubuntu stays at {1 ms}.
    std::vector<sim::Duration> granularities{sim::Duration::millis(1)};
    /// Regime epoch duration range ("several minutes" in the paper).
    sim::Duration epoch_min = sim::Duration::minutes(1);
    sim::Duration epoch_max = sim::Duration::minutes(4);
    /// Cost of one API call (Date.getTime() through JNI is not free).
    sim::Duration call_cost = sim::Duration::nanos(400);
    /// Extra uniform [0, read_noise) subtracted from the instant being
    /// quantized; models a plugin layer that serves stale time (the
    /// Safari JavaPlugin pathology from §5).
    sim::Duration read_noise = sim::Duration::zero();
  };

  QuantizedClock(Config config, sim::Rng rng);

  sim::TimePoint read(sim::TimePoint true_now) override;
  sim::Duration call_cost() const override { return config_.call_cost; }
  /// Nominal (documented) resolution: 1 ms, regardless of true granularity.
  sim::Duration resolution() const override { return sim::Duration::millis(1); }
  std::string name() const override { return "Date.getTime"; }

  /// The granularity in effect at `t` (drives the Figure 5 experiment).
  sim::Duration granularity_at(sim::TimePoint t);

 private:
  struct Epoch {
    sim::TimePoint start;
    sim::Duration granularity;
  };
  void extend_epochs(sim::TimePoint until);

  Config config_;
  sim::Rng rng_;
  std::vector<Epoch> epochs_;
  sim::TimePoint epochs_end_;
  sim::Duration phase_;  ///< quantization boundary offset
};

/// window.performance.now(): the W3C High Resolution Time API that began
/// shipping (often prefixed) in the paper's browser generation. Microsecond
/// granularity, monotonic - the JavaScript-side answer to the
/// Date.getTime() problem, just as nanoTime() is the Java-side one.
class PerformanceNowClock : public TimingApi {
 public:
  explicit PerformanceNowClock(sim::Duration granule = sim::Duration::micros(1))
      : granule_{granule} {}

  sim::TimePoint read(sim::TimePoint true_now) override {
    return true_now.quantized_floor(granule_);
  }
  sim::Duration call_cost() const override { return sim::Duration::nanos(250); }
  sim::Duration resolution() const override { return granule_; }
  std::string name() const override { return "performance.now"; }

 private:
  sim::Duration granule_;
};

/// System.nanoTime(): high-resolution monotonic counter.
class NanoClock : public TimingApi {
 public:
  explicit NanoClock(sim::Duration call_cost = sim::Duration::nanos(300))
      : call_cost_{call_cost} {}

  sim::TimePoint read(sim::TimePoint true_now) override { return true_now; }
  sim::Duration call_cost() const override { return call_cost_; }
  sim::Duration resolution() const override { return sim::Duration::nanos(1); }
  std::string name() const override { return "System.nanoTime"; }

 private:
  sim::Duration call_cost_;
};

}  // namespace bnm::browser
