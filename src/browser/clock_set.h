// The client machine's clocks. OS timer state (granularity regimes) is
// machine-wide: it must persist across browser launches within one
// experiment, so the clock set lives with the testbed's client host, not
// with any single Browser instance.
#pragma once

#include <memory>

#include "browser/profile.h"
#include "browser/timing.h"

namespace bnm::browser {

class ClockSet {
 public:
  /// Build the standard clocks for an OS. `safari_plugin_broken` selects
  /// whether the Safari Java-plugin read-noise pathology is present on the
  /// java Date path used by Safari (it reads through the plugin).
  ClockSet(OsId os, sim::Rng rng);

  TimingApi& get(ClockKind kind);
  QuantizedClock& java_date() { return *java_date_; }
  QuantizedClock& js_date() { return *js_date_; }
  PerformanceNowClock& js_performance_now() { return *js_perf_; }
  NanoClock& java_nano() { return *java_nano_; }
  PerfectClock& perfect() { return *perfect_; }

  OsId os() const { return os_; }

 private:
  OsId os_;
  std::unique_ptr<QuantizedClock> js_date_;
  std::unique_ptr<PerformanceNowClock> js_perf_;
  std::unique_ptr<QuantizedClock> flash_date_;
  std::unique_ptr<QuantizedClock> java_date_;
  std::unique_ptr<NanoClock> java_nano_;
  std::unique_ptr<PerfectClock> perfect_;
};

}  // namespace bnm::browser
