#include "browser/dom.h"

#include <utility>

namespace bnm::browser {

bool DomElementLoader::load(const std::string& url) {
  const auto parsed = parse_url(url, browser_.origin());
  if (!parsed) {
    if (onerror_) onerror_("malformed URL");
    return false;
  }
  const bool first = !used_before_;
  used_before_ = true;

  http::HttpRequest req;
  req.method = "GET";
  req.target = parsed->path;
  req.headers.set("Host", parsed->endpoint.to_string());

  const sim::Duration pre = browser_.sample_pre_send(ProbeKind::kDom, first);
  browser_.sim().scheduler().schedule_after(
      pre, [this, alive = alive_, first, target = parsed->endpoint,
            req = std::move(req)] {
        if (!*alive) return;
        browser_.http().request(
            target, req,
            [this, alive, first](http::HttpResponse resp,
                                 http::HttpClient::TransferInfo) {
              if (!*alive) return;
              const sim::Duration dispatch =
                  browser_.sample_recv_dispatch(ProbeKind::kDom, first);
              browser_.event_loop().post(
                  dispatch, [this, alive, status = resp.status] {
                    if (!*alive) return;
                    ++loads_completed_;
                    if (status >= 200 && status < 400) {
                      if (onload_) onload_();
                    } else if (onerror_) {
                      onerror_("load failed: " + std::to_string(status));
                    }
                  });
            });
      });
  return true;
}

}  // namespace bnm::browser
