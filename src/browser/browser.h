// Browser session facade: one launched browser with a rendering engine
// (event loop), an HTTP stack with a keep-alive pool, plugin runtimes, and
// access to the machine's clocks. Measurement-API shims (XHR, DOM,
// WebSocket, Flash, Java applet) hang off this object.
//
// A Browser corresponds to one page-load session in the paper's protocol:
// the automation script launches the browser, it fetches the container
// page (preparation phase), runs two measurements, and exits.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "browser/clock_set.h"
#include "browser/event_loop.h"
#include "browser/profile.h"
#include "http/client.h"
#include "net/host.h"

namespace bnm::browser {

class Browser {
 public:
  /// `clocks` outlives the browser (machine state). `origin` is the web
  /// server hosting the container page; the same-origin policy is enforced
  /// against it.
  Browser(net::Host& host, ClockSet& clocks, BrowserProfile profile,
          net::Endpoint origin, std::uint64_t session_id = 0);

  /// Preparation phase: fetch the container page for `kind` over the HTTP
  /// stack (establishing the pooled connection browsers later reuse).
  void load_container_page(ProbeKind kind, std::function<void()> on_loaded);

  // ---- services used by the API shims ----
  TimingApi& clock(ClockKind kind) { return clocks_.get(kind); }
  const BrowserProfile& profile() const { return profile_; }
  net::Endpoint origin() const { return origin_; }
  net::Host& host() { return host_; }
  http::HttpClient& http() { return http_; }
  EventLoop& event_loop() { return loop_; }
  sim::Simulation& sim() { return host_.sim(); }
  sim::Rng& rng() { return rng_; }

  /// Overhead samples. `first_use` adds (or, for Java, applies a signed)
  /// first-use delta on the pre-send side; totals clamp at >= 5 us.
  sim::Duration sample_pre_send(ProbeKind kind, bool first_use);
  /// `java_date_path`: the caller will read Date.getTime() through the Java
  /// plugin for this event (triggers the Safari plugin pathology; a
  /// nanoTime path stays clean, matching Table 4).
  sim::Duration sample_recv_dispatch(ProbeKind kind, bool first_use,
                                     bool java_date_path = false);

  /// Same-origin check for XHR (DOM, WebSocket and signed applets bypass
  /// it; Flash bypasses via crossdomain.xml).
  bool same_origin(net::Endpoint target) const { return target == origin_; }

  bool container_loaded() const { return container_loaded_; }

 private:
  net::Host& host_;
  ClockSet& clocks_;
  BrowserProfile profile_;
  net::Endpoint origin_;
  http::HttpClient http_;
  EventLoop loop_;
  sim::Rng rng_;
  bool container_loaded_ = false;
};

}  // namespace bnm::browser
