#include "browser/browser.h"

#include <algorithm>
#include <utility>

namespace bnm::browser {

Browser::Browser(net::Host& host, ClockSet& clocks, BrowserProfile profile,
                 net::Endpoint origin, std::uint64_t session_id)
    : host_{host},
      clocks_{clocks},
      profile_{std::move(profile)},
      origin_{origin},
      http_{host},
      loop_{host.sim(), profile_.label()},
      rng_{host.sim()
               .rng_for("browser/" + profile_.label())
               .fork("session-" + std::to_string(session_id))} {}

void Browser::load_container_page(ProbeKind kind,
                                  std::function<void()> on_loaded) {
  http::HttpRequest req;
  req.method = "GET";
  req.target = std::string{"/?method="} + probe_kind_name(kind);
  req.headers.set("Host", origin_.to_string());
  req.headers.set("User-Agent", std::string{browser_name(profile_.which.browser)} +
                                    "/" + profile_.browser_version);
  http_.request(origin_, std::move(req),
                [this, on_loaded = std::move(on_loaded)](
                    http::HttpResponse resp, http::HttpClient::TransferInfo) {
                  (void)resp;
                  // Parsing/rendering the page costs the engine a moment.
                  loop_.post(rng_.uniform_ms(1.0, 5.0), [this, on_loaded] {
                    container_loaded_ = true;
                    on_loaded();
                  });
                });
}

sim::Duration Browser::sample_pre_send(ProbeKind kind, bool first_use) {
  const OverheadModel m = profile_.overhead(kind);
  sim::Duration d = m.pre_send.sample(rng_);
  if (first_use) d += m.first_use.sample(rng_);
  return std::max(d, sim::Duration::micros(5));
}

sim::Duration Browser::sample_recv_dispatch(ProbeKind kind, bool first_use,
                                            bool java_date_path) {
  const OverheadModel m = profile_.overhead(kind);
  sim::Duration d = m.recv_dispatch.sample(rng_);
  // Safari's broken Java plugin adds continuous extra latency on warm
  // Date-clock paths (§5 / Fig 4a); the nanoTime path is unaffected.
  if (!first_use && java_date_path && profile_.java_date_warm_noise) {
    d += profile_.java_date_warm_noise->sample(rng_);
  }
  return std::max(d, sim::Duration::micros(5));
}

}  // namespace bnm::browser
