// Java applet runtime shim: URL (HTTP), Socket (TCP) and DatagramSocket
// (UDP) as a measurement applet uses them, with a selectable timing
// function - Date.getTime() (the accuracy trap of §4.2) or
// System.nanoTime() (the fix of Table 4).
//
// An applet runs inside the JRE, not the browser; launching it with
// `appletviewer` (Fig. 4b) removes the browser/plugin dispatch overheads
// but keeps the JRE clock behaviour - exactly how the paper separated the
// two effects.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "browser/url.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace bnm::browser {

class JavaAppletRuntime {
 public:
  struct Options {
    /// Use System.nanoTime() instead of Date.getTime().
    bool use_nanotime = false;
    /// Launched via the JDK appletviewer instead of a browser plugin.
    bool via_appletviewer = false;
  };

  JavaAppletRuntime(Browser& browser, Options options)
      : browser_{browser}, options_{options} {}

  Browser& browser() { return browser_; }
  const Options& options() const { return options_; }

  /// The timing API the applet's measurement code reads.
  TimingApi& timing() {
    return browser_.clock(options_.use_nanotime ? ClockKind::kJavaNano
                                                : ClockKind::kJavaDate);
  }

  /// Overhead sampling: browser-plugin path uses the calibrated profile;
  /// the appletviewer path has only the JRE's own (small) costs.
  sim::Duration pre_send(ProbeKind kind, bool first_use);
  sim::Duration recv_dispatch(ProbeKind kind, bool first_use);

  // ------------------------------------------------------------------ URL
  /// java.net.URL / URLConnection: HTTP request, completion detected by
  /// reading the response content (no event listener in the applet API).
  class UrlConnection {
   public:
    explicit UrlConnection(JavaAppletRuntime& runtime) : runtime_{runtime} {}
    ~UrlConnection() { *alive_ = false; }

    void set_on_complete(std::function<void(int, const std::string&)> cb) {
      on_complete_ = std::move(cb);
    }
    void set_on_error(std::function<void(const std::string&)> cb) {
      on_error_ = std::move(cb);
    }

    bool load(const std::string& method, const std::string& url,
              const std::string& body = "");

   private:
    JavaAppletRuntime& runtime_;
    bool used_before_ = false;
    std::function<void(int, const std::string&)> on_complete_;
    std::function<void(const std::string&)> on_error_;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  };

  // --------------------------------------------------------------- Socket
  class Socket {
   public:
    explicit Socket(JavaAppletRuntime& runtime) : runtime_{runtime} {}
    ~Socket();

    void set_on_connect(std::function<void()> cb) { on_connect_ = std::move(cb); }
    void set_on_data(std::function<void(const std::string&)> cb) {
      on_data_ = std::move(cb);
    }
    /// SocketException surface: connection reset / aborted by the stack.
    void set_on_error(std::function<void(const std::string&)> cb) {
      on_error_ = std::move(cb);
    }
    void connect(net::Endpoint target);
    void write(const std::string& bytes);
    void close();
    bool connected() const { return conn_ && conn_->established(); }

   private:
    JavaAppletRuntime& runtime_;
    std::shared_ptr<net::TcpConnection> conn_;
    bool used_before_ = false;
    bool current_is_first_ = true;
    std::function<void()> on_connect_;
    std::function<void(const std::string&)> on_data_;
    std::function<void(const std::string&)> on_error_;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  };

  // ------------------------------------------------------- DatagramSocket
  class DatagramSocket {
   public:
    explicit DatagramSocket(JavaAppletRuntime& runtime);
    ~DatagramSocket();

    void set_on_receive(
        std::function<void(net::Endpoint, const std::string&)> cb) {
      on_receive_ = std::move(cb);
    }
    /// java.net.DatagramSocket#setSoTimeout: after each send_to, if no
    /// datagram arrives within `timeout`, on_timeout fires (the shim's
    /// SocketTimeoutException). zero disables (the default: block forever).
    void set_so_timeout(sim::Duration timeout) { so_timeout_ = timeout; }
    void set_on_timeout(std::function<void()> cb) {
      on_timeout_ = std::move(cb);
    }
    void send_to(net::Endpoint target, const std::string& bytes);
    void close();

   private:
    JavaAppletRuntime& runtime_;
    std::shared_ptr<net::UdpSocket> sock_;
    bool used_before_ = false;
    bool current_is_first_ = true;
    std::function<void(net::Endpoint, const std::string&)> on_receive_;
    std::function<void()> on_timeout_;
    sim::Duration so_timeout_ = sim::Duration::zero();
    sim::EventHandle receive_deadline_;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  };

 private:
  Browser& browser_;
  Options options_;
};

}  // namespace bnm::browser
