#include "browser/event_loop.h"

#include <algorithm>
#include <utility>

namespace bnm::browser {

EventLoop::EventLoop(sim::Simulation& sim, std::string name)
    : sim_{sim}, name_{std::move(name)} {}

void EventLoop::post(sim::Duration dispatch_latency, std::function<void()> task) {
  if (dispatch_latency.is_negative()) dispatch_latency = sim::Duration::zero();
  sim_.scheduler().schedule_after(
      dispatch_latency,
      [this, task = std::move(task)] { try_run(task); });
}

void EventLoop::try_run(const std::function<void()>& task) {
  if (sim_.now() < busy_until_) {
    // Main thread occupied: wait for the running task to finish. Scheduler
    // sequence numbers keep ready tasks FIFO.
    sim_.scheduler().schedule_at(busy_until_,
                                 [this, task] { try_run(task); });
    return;
  }
  busy_until_ = sim_.now() + task_cost_;
  ++tasks_run_;
  task();
}

}  // namespace bnm::browser
