#include "browser/profile.h"

#include <cmath>
#include <stdexcept>

namespace bnm::browser {

const char* browser_name(BrowserId b) {
  switch (b) {
    case BrowserId::kChrome: return "Chrome";
    case BrowserId::kFirefox: return "Firefox";
    case BrowserId::kIe: return "IE";
    case BrowserId::kOpera: return "Opera";
    case BrowserId::kSafari: return "Safari";
  }
  return "?";
}

const char* browser_initial(BrowserId b) {
  switch (b) {
    case BrowserId::kChrome: return "C";
    case BrowserId::kFirefox: return "F";
    case BrowserId::kIe: return "IE";
    case BrowserId::kOpera: return "O";
    case BrowserId::kSafari: return "S";
  }
  return "?";
}

const char* os_name(OsId os) {
  return os == OsId::kWindows7 ? "Windows 7" : "Ubuntu 12.04";
}

const char* os_initial(OsId os) { return os == OsId::kWindows7 ? "W" : "U"; }

std::string BrowserOsCase::label() const {
  return std::string{browser_initial(browser)} + " (" + os_initial(os) + ")";
}

std::vector<BrowserOsCase> paper_cases() {
  using B = BrowserId;
  using O = OsId;
  return {
      {B::kChrome, O::kUbuntu},   {B::kFirefox, O::kUbuntu},
      {B::kOpera, O::kUbuntu},    {B::kChrome, O::kWindows7},
      {B::kFirefox, O::kWindows7}, {B::kIe, O::kWindows7},
      {B::kOpera, O::kWindows7},  {B::kSafari, O::kWindows7},
  };
}

const char* probe_kind_name(ProbeKind k) {
  switch (k) {
    case ProbeKind::kXhrGet: return "XHR GET";
    case ProbeKind::kXhrPost: return "XHR POST";
    case ProbeKind::kDom: return "DOM";
    case ProbeKind::kFlashGet: return "Flash GET";
    case ProbeKind::kFlashPost: return "Flash POST";
    case ProbeKind::kFlashSocket: return "Flash TCP socket";
    case ProbeKind::kJavaGet: return "Java applet GET";
    case ProbeKind::kJavaPost: return "Java applet POST";
    case ProbeKind::kJavaSocket: return "Java applet TCP socket";
    case ProbeKind::kJavaUdp: return "Java applet UDP socket";
    case ProbeKind::kWebSocket: return "WebSocket";
  }
  return "?";
}

std::vector<ProbeKind> all_probe_kinds() {
  return {ProbeKind::kXhrGet,      ProbeKind::kXhrPost,  ProbeKind::kDom,
          ProbeKind::kFlashGet,    ProbeKind::kFlashPost, ProbeKind::kFlashSocket,
          ProbeKind::kJavaGet,     ProbeKind::kJavaPost, ProbeKind::kJavaSocket,
          ProbeKind::kJavaUdp,     ProbeKind::kWebSocket};
}

sim::Duration DistSpec::sample(sim::Rng& rng) const {
  double ms = 0;
  switch (kind) {
    case Kind::kConstant: ms = a; break;
    case Kind::kUniform: ms = rng.uniform(a, b); break;
    case Kind::kNormal: ms = rng.normal(a, b); break;
    case Kind::kLognormalMed: ms = rng.lognormal_med(a, b); break;
  }
  // Normal deltas may legitimately be negative (first-use deltas); other
  // kinds model latencies and clamp at zero.
  if (kind != Kind::kNormal && ms < 0) ms = 0;
  return sim::Duration::from_millis_f(ms);
}

double DistSpec::median_ms() const {
  switch (kind) {
    case Kind::kConstant: return a;
    case Kind::kUniform: return (a + b) / 2;
    case Kind::kNormal: return a;
    case Kind::kLognormalMed: return a;
  }
  return 0;
}

OverheadModel BrowserProfile::overhead(ProbeKind kind) const {
  return models[static_cast<std::size_t>(kind)];
}

ClockKind BrowserProfile::clock_for(ProbeKind kind, bool java_use_nanotime,
                                    bool js_use_performance_now) const {
  switch (kind) {
    case ProbeKind::kXhrGet:
    case ProbeKind::kXhrPost:
    case ProbeKind::kDom:
    case ProbeKind::kWebSocket:
      return js_use_performance_now && supports_performance_now
                 ? ClockKind::kJsPerformanceNow
                 : ClockKind::kJsDate;
    case ProbeKind::kFlashGet:
    case ProbeKind::kFlashPost:
    case ProbeKind::kFlashSocket:
      return ClockKind::kFlashDate;
    case ProbeKind::kJavaGet:
    case ProbeKind::kJavaPost:
    case ProbeKind::kJavaSocket:
    case ProbeKind::kJavaUdp:
      return java_use_nanotime ? ClockKind::kJavaNano : ClockKind::kJavaDate;
  }
  return ClockKind::kJsDate;
}

bool case_supported(BrowserId browser, OsId os) {
  if (os == OsId::kUbuntu) {
    return browser == BrowserId::kChrome || browser == BrowserId::kFirefox ||
           browser == BrowserId::kOpera;
  }
  return true;
}

namespace {

// Shorthand for the calibration table below.
using D = DistSpec;

void set(BrowserProfile& p, ProbeKind k, OverheadModel m) {
  p.models[static_cast<std::size_t>(k)] = m;
}

/// Split a warm-path median across pre-send (40%) and receive-dispatch
/// (60%): event-loop dispatch after the response dominates in practice.
OverheadModel http_model(double warm_median_ms, double first_extra_ms,
                         double sigma) {
  return OverheadModel{
      D::lognormal_med(warm_median_ms * 0.4, sigma),
      D::lognormal_med(warm_median_ms * 0.6, sigma),
      D::lognormal_med(first_extra_ms, sigma),
  };
}

/// Java models reproduce Table 4: tight normal distributions, with a signed
/// first-use delta (the paper's Δd1 is *below* Δd2 for Java GET).
OverheadModel java_model(double warm_ms, double first_delta_ms, double sd) {
  return OverheadModel{
      D::normal(warm_ms * 0.4, sd * 0.5),
      D::normal(warm_ms * 0.6, sd * 0.5),
      D::normal(first_delta_ms, sd),
  };
}

struct HttpRow {
  double xhr_get, xhr_post, dom, flash_get, flash_post, flash_socket, ws;
};

// Warm-path medians (ms) per case, calibrated to Figure 3 (DESIGN.md §5).
//                         xhrG  xhrP   dom  flaG  flaP  flaS    ws
const HttpRow kChromeU =  { 4.0,  5.5,  1.5, 25.0, 28.0, 0.50, 0.25};
const HttpRow kFirefoxU = { 8.0, 11.0,  2.0, 40.0, 45.0, 0.70, 0.35};
const HttpRow kOperaU =   {12.0, 16.0,  2.5, 20.0, 20.0, 0.80, 0.45};
const HttpRow kChromeW =  { 6.0,  8.0,  3.0, 30.0, 34.0, 0.80, 0.35};
const HttpRow kFirefoxW = { 5.0,  7.0,  2.5, 35.0, 40.0, 0.90, 0.45};
const HttpRow kIeW =      {15.0, 20.0,  5.0, 60.0, 68.0, 2.00, 0.00};
const HttpRow kOperaW =   {10.0, 13.5,  4.0, 20.0, 20.0, 1.00, 0.55};
const HttpRow kSafariW =  {18.0, 24.0,  6.0, 80.0, 90.0, 3.00, 0.00};

const HttpRow& http_row(BrowserId b, OsId os) {
  if (os == OsId::kUbuntu) {
    switch (b) {
      case BrowserId::kChrome: return kChromeU;
      case BrowserId::kFirefox: return kFirefoxU;
      case BrowserId::kOpera: return kOperaU;
      default: break;
    }
    throw std::invalid_argument("case outside Table 2");
  }
  switch (b) {
    case BrowserId::kChrome: return kChromeW;
    case BrowserId::kFirefox: return kFirefoxW;
    case BrowserId::kIe: return kIeW;
    case BrowserId::kOpera: return kOperaW;
    case BrowserId::kSafari: return kSafariW;
  }
  throw std::invalid_argument("unknown browser");
}

struct JavaRow {
  // warm medians and signed first-use deltas (ms), plus noise sd
  double get_warm, get_first, post_warm, post_first, sock_warm, sock_first, sd;
};

// Windows rows reproduce Table 4 (nanoTime ground truth); Ubuntu rows match
// the small consistent overheads of Figure 3(h)-(j) U cases.
const JavaRow kJavaChromeU =  {2.0, 0.6, 1.6, 0.5, 0.06, 0.02, 0.10};
const JavaRow kJavaFirefoxU = {2.5, 0.7, 1.9, 0.6, 0.07, 0.02, 0.12};
const JavaRow kJavaOperaU =   {3.0, 0.8, 2.2, 0.7, 0.08, 0.03, 0.14};
const JavaRow kJavaChromeW =  {4.80, -1.84, 1.84, 0.87, 0.07, -0.06, 0.18};
const JavaRow kJavaFirefoxW = {4.38, -1.65, 1.49, 0.92, 0.07, -0.07, 0.20};
const JavaRow kJavaIeW =      {4.56, -1.83, 1.49, 1.08, 0.06, -0.04, 0.22};
const JavaRow kJavaOperaW =   {4.46, -1.63, 1.57, 0.94, 0.06, -0.05, 0.18};
const JavaRow kJavaSafariW =  {1.52, 0.36, 1.42, 0.20, 0.13, -0.06, 0.25};

const JavaRow& java_row(BrowserId b, OsId os) {
  if (os == OsId::kUbuntu) {
    switch (b) {
      case BrowserId::kChrome: return kJavaChromeU;
      case BrowserId::kFirefox: return kJavaFirefoxU;
      case BrowserId::kOpera: return kJavaOperaU;
      default: break;
    }
    throw std::invalid_argument("case outside Table 2");
  }
  switch (b) {
    case BrowserId::kChrome: return kJavaChromeW;
    case BrowserId::kFirefox: return kJavaFirefoxW;
    case BrowserId::kIe: return kJavaIeW;
    case BrowserId::kOpera: return kJavaOperaW;
    case BrowserId::kSafari: return kJavaSafariW;
  }
  throw std::invalid_argument("unknown browser");
}

}  // namespace

BrowserProfile make_profile(BrowserId browser, OsId os) {
  if (!case_supported(browser, os)) {
    throw std::invalid_argument(std::string{browser_name(browser)} +
                                " is not in the Table 2 matrix for " +
                                os_name(os));
  }

  BrowserProfile p;
  p.which = BrowserOsCase{browser, os};

  // Table 2: versions and WebSocket support.
  if (os == OsId::kWindows7) {
    p.supports_websocket =
        browser != BrowserId::kIe && browser != BrowserId::kSafari;
    p.java_version = "1.7.0";
    switch (browser) {
      case BrowserId::kChrome:
        p.browser_version = "23.0";
        p.flash_version = "11.7.700";
        break;
      case BrowserId::kFirefox:
        p.browser_version = "17.0";
        p.flash_version = "11.5.502";
        break;
      case BrowserId::kIe:
        p.browser_version = "9.0.8";
        p.flash_version = "11.5.502";
        break;
      case BrowserId::kOpera:
        p.browser_version = "12.11";
        p.flash_version = "11.5.502";
        break;
      case BrowserId::kSafari:
        p.browser_version = "5.1.7";
        p.flash_version = "11.5.502";
        break;
    }
  } else {
    p.supports_websocket = true;
    p.java_version = "1.6.0";
    switch (browser) {
      case BrowserId::kChrome:
        p.browser_version = "23.0";
        p.flash_version = "11.5.31";
        break;
      case BrowserId::kFirefox:
        p.browser_version = "17.0";
        p.flash_version = "11.2.202";
        break;
      default:
        p.browser_version = "12.11";
        p.flash_version = "11.2.202";
        break;
    }
  }

  // High Resolution Time API of the era: Chrome (webkitNow) and Firefox 15+
  // shipped it; IE 9, Opera 12 and Safari 5 had not.
  p.supports_performance_now =
      browser == BrowserId::kChrome || browser == BrowserId::kFirefox;

  // Section 4.1: Opera's Flash plugin opens a new TCP connection for the
  // first HTTP request, and for *every* POST.
  if (browser == BrowserId::kOpera) {
    p.policy.flash_first_request_new_connection = true;
    p.policy.flash_post_always_new_connection = true;
  }

  // Clock behaviour (Section 4.2): the Windows timer behind the Java
  // plugin's currentTimeMillis() flips between 1 ms and 15.625 ms regimes.
  p.js_date_clock.granularities = {sim::Duration::millis(1)};
  if (os == OsId::kWindows7) {
    p.java_date_clock.granularities = {
        sim::Duration::millis(1),
        sim::Duration::from_millis_f(15.625),
    };
    p.java_date_clock.epoch_min = sim::Duration::minutes(1);
    p.java_date_clock.epoch_max = sim::Duration::minutes(4);
  } else {
    p.java_date_clock.granularities = {sim::Duration::millis(1)};
  }

  // --- Overhead calibration (DESIGN.md §5) ---
  const HttpRow& h = http_row(browser, os);
  const double sig = os == OsId::kUbuntu ? 0.35 : 0.45;
  const double flash_sig = 0.45;  // "extremely high" variability (Fig 3e/f)

  set(p, ProbeKind::kXhrGet, http_model(h.xhr_get, h.xhr_get * 0.6, sig));
  set(p, ProbeKind::kXhrPost, http_model(h.xhr_post, h.xhr_post * 0.6, sig));
  set(p, ProbeKind::kDom,
      http_model(h.dom, h.dom * 0.5, os == OsId::kUbuntu ? 0.20 : 0.35));

  // Opera's Flash first-use extra is large and *tight* (Table 3 medians /
  // Fig 3e: O(W) Δd1 never drops below ~100 ms = handshake + warm + ~26 ms
  // of object instantiation). Other browsers' first use costs ~40% of a
  // warm request extra.
  const OverheadModel flash_get_model{
      D::lognormal_med(h.flash_get * 0.4, flash_sig),
      D::lognormal_med(h.flash_get * 0.6, flash_sig),
      browser == BrowserId::kOpera
          ? D::lognormal_med(26.0, 0.15)
          : D::lognormal_med(h.flash_get * 0.4, flash_sig)};
  const OverheadModel flash_post_model{
      D::lognormal_med(h.flash_post * 0.4, flash_sig),
      D::lognormal_med(h.flash_post * 0.6, flash_sig),
      browser == BrowserId::kOpera
          ? D::lognormal_med(26.0, 0.15)
          : D::lognormal_med(h.flash_post * 0.4, flash_sig)};
  set(p, ProbeKind::kFlashGet, flash_get_model);
  set(p, ProbeKind::kFlashPost, flash_post_model);
  set(p, ProbeKind::kFlashSocket,
      OverheadModel{D::lognormal_med(h.flash_socket * 0.4, 0.45),
                    D::lognormal_med(h.flash_socket * 0.6, 0.45),
                    D::lognormal_med(h.flash_socket * 1.5, 0.5)});

  if (p.supports_websocket) {
    const double ws_first = (browser == BrowserId::kOpera && os == OsId::kWindows7)
                                ? 12.0   // the Opera (W) Δd1 outlier (Fig 3d)
                                : h.ws * 0.5;
    set(p, ProbeKind::kWebSocket,
        OverheadModel{D::lognormal_med(h.ws * 0.3, 0.40),
                      D::lognormal_med(h.ws * 0.7, 0.40),
                      D::lognormal_med(ws_first, 0.45)});
  }

  if (browser == BrowserId::kSafari && os == OsId::kWindows7) {
    p.java_date_warm_noise = D::uniform(0.0, 12.0);
  }

  const JavaRow& j = java_row(browser, os);
  set(p, ProbeKind::kJavaGet, java_model(j.get_warm, j.get_first, j.sd));
  set(p, ProbeKind::kJavaPost, java_model(j.post_warm, j.post_first, j.sd));
  set(p, ProbeKind::kJavaSocket, java_model(j.sock_warm, j.sock_first, j.sd * 0.3));
  set(p, ProbeKind::kJavaUdp,
      java_model(j.sock_warm * 1.1, j.sock_first, j.sd * 0.3));

  return p;
}

const char* mobile_platform_name(MobilePlatform p) {
  switch (p) {
    case MobilePlatform::kIosSafari: return "Mobile Safari (iOS 6)";
    case MobilePlatform::kAndroidChrome: return "Chrome Mobile (Android 4)";
  }
  return "?";
}

BrowserProfile make_mobile_profile(MobilePlatform platform) {
  BrowserProfile p;
  // Base on the closest desktop engine for clock behaviour and policies;
  // `which` keeps a plausible engine family for rng labels.
  p.which = BrowserOsCase{platform == MobilePlatform::kIosSafari
                              ? BrowserId::kSafari
                              : BrowserId::kChrome,
                          OsId::kUbuntu};
  p.label_override = platform == MobilePlatform::kIosSafari ? "MobSaf" : "MobChr";
  p.browser_version =
      platform == MobilePlatform::kIosSafari ? "6.0 (iOS)" : "18.0 (Android)";

  // No third-party plug-ins on mobile (Section 2.1) - WebSocket is the
  // only socket option.
  p.supports_flash = false;
  p.supports_java = false;
  p.supports_websocket = true;
  p.flash_version = "-";
  p.java_version = "-";

  // Both mobile OSes keep a steady 1 ms Date.getTime() granularity.
  p.js_date_clock.granularities = {sim::Duration::millis(1)};
  p.java_date_clock.granularities = {sim::Duration::millis(1)};

  // Phone-class CPUs: 2-4x the desktop dispatch overheads of the engine's
  // desktop sibling.
  const bool ios = platform == MobilePlatform::kIosSafari;
  const double xhr = ios ? 28.0 : 16.0;
  const double dom = ios ? 9.0 : 5.0;
  const double ws = ios ? 1.2 : 0.8;
  set(p, ProbeKind::kXhrGet, http_model(xhr, xhr * 0.6, 0.5));
  set(p, ProbeKind::kXhrPost, http_model(xhr * 1.35, xhr * 0.6, 0.5));
  set(p, ProbeKind::kDom, http_model(dom, dom * 0.5, 0.4));
  set(p, ProbeKind::kWebSocket,
      OverheadModel{DistSpec::lognormal_med(ws * 0.3, 0.45),
                    DistSpec::lognormal_med(ws * 0.7, 0.45),
                    DistSpec::lognormal_med(ws * 0.8, 0.5)});
  return p;
}

}  // namespace bnm::browser
