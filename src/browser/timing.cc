#include "browser/timing.h"

#include <cassert>
#include <utility>

namespace bnm::browser {

QuantizedClock::QuantizedClock(Config config, sim::Rng rng)
    : config_{std::move(config)}, rng_{rng} {
  assert(!config_.granularities.empty());
  // Random phase so quantization boundaries are not aligned with t = 0.
  phase_ = rng_.uniform_ms(0.0, config_.granularities.front().ms_f());
  epochs_end_ = sim::TimePoint::epoch();
}

void QuantizedClock::extend_epochs(sim::TimePoint until) {
  while (epochs_end_ <= until) {
    Epoch e;
    e.start = epochs_end_;
    if (config_.granularities.size() == 1) {
      e.granularity = config_.granularities.front();
    } else {
      // Pick a granularity different from the previous epoch's, so each
      // epoch boundary is a real regime change.
      const sim::Duration prev =
          epochs_.empty() ? sim::Duration::zero() : epochs_.back().granularity;
      sim::Duration next;
      do {
        const auto idx = static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(config_.granularities.size()) - 1));
        next = config_.granularities[idx];
      } while (next == prev);
      e.granularity = next;
    }
    epochs_.push_back(e);
    const sim::Duration span = rng_.uniform_ms(config_.epoch_min.ms_f(),
                                               config_.epoch_max.ms_f());
    epochs_end_ = epochs_end_ + span;
  }
}

sim::Duration QuantizedClock::granularity_at(sim::TimePoint t) {
  extend_epochs(t);
  // Epochs are sorted by start; find the last one starting at or before t.
  const Epoch* best = &epochs_.front();
  for (const auto& e : epochs_) {
    if (e.start <= t) {
      best = &e;
    } else {
      break;
    }
  }
  return best->granularity;
}

sim::TimePoint QuantizedClock::read(sim::TimePoint true_now) {
  sim::TimePoint instant = true_now;
  if (!config_.read_noise.is_zero()) {
    instant = instant - rng_.uniform_ms(0.0, config_.read_noise.ms_f());
  }
  const sim::Duration g = granularity_at(instant);
  return (instant + phase_).quantized_floor(g) - phase_;
}

}  // namespace bnm::browser
