#include "http/server.h"

#include <cstdlib>
#include <utility>

namespace bnm::http {

WebServer::WebServer(net::Host& host, Config config)
    : host_{host}, config_{std::move(config)} {
  install_default_routes();
  host_.tcp_listen(config_.port, [this](std::shared_ptr<net::TcpConnection> c) {
    on_accept(std::move(c));
  });
}

void WebServer::route(const std::string& method, const std::string& path,
                      Handler handler) {
  routes_[method + " " + path] = std::move(handler);
}

std::string WebServer::path_of(const std::string& target) {
  const auto q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::unordered_map<std::string, std::string> WebServer::parse_query(
    const std::string& target) {
  std::unordered_map<std::string, std::string> out;
  const auto q = target.find('?');
  if (q == std::string::npos) return out;
  std::string rest = target.substr(q + 1);
  std::size_t pos = 0;
  while (pos < rest.size()) {
    auto amp = rest.find('&', pos);
    if (amp == std::string::npos) amp = rest.size();
    const std::string kv = rest.substr(pos, amp - pos);
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      out[kv] = "";
    } else {
      out[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return out;
}

std::string WebServer::container_page(const std::string& method) {
  // Mirrors the paper's PHP/HTML container pages: a page embedding the
  // measurement code for one method. The body content is representative,
  // not executable - the simulated browser runtime interprets the method
  // name, just as a real rendering engine would interpret the script.
  return "<!DOCTYPE html>\n"
         "<html><head><title>bnm delay measurement: " + method + "</title>\n"
         "<script type=\"text/javascript\" src=\"/measure/" + method + ".js\">"
         "</script></head>\n"
         "<body onload=\"runMeasurement('" + method + "')\">\n"
         "<div id=\"status\">measuring with " + method + "...</div>\n"
         "<div id=\"result\"></div>\n"
         "</body></html>\n";
}

void WebServer::install_default_routes() {
  route("GET", "/", [](const HttpRequest& req) {
    const auto params = parse_query(req.target);
    const auto it = params.find("method");
    return HttpResponse::make(
        200, container_page(it == params.end() ? "xhr_get" : it->second),
        "text/html");
  });
  route("GET", "/echo", [](const HttpRequest&) {
    return HttpResponse::make(200, "pong");
  });
  route("POST", "/sink", [](const HttpRequest& req) {
    return HttpResponse::make(200, "got " + std::to_string(req.body.size()));
  });
  route("GET", "/payload", [](const HttpRequest& req) {
    const auto params = parse_query(req.target);
    std::size_t size = 1024;
    if (const auto it = params.find("size"); it != params.end()) {
      size = static_cast<std::size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
    }
    std::string body(size, 'x');
    return HttpResponse::make(200, std::move(body),
                              "application/octet-stream");
  });
  route("GET", "/redirect", [](const HttpRequest& req) {
    const auto params = parse_query(req.target);
    const auto it = params.find("to");
    HttpResponse r = HttpResponse::make(302, "");
    r.headers.set("Location", it == params.end() ? "/echo" : it->second);
    return r;
  });
  route("GET", "/crossdomain.xml", [](const HttpRequest&) {
    return HttpResponse::make(
        200,
        "<?xml version=\"1.0\"?>\n<cross-domain-policy>\n"
        "  <allow-access-from domain=\"*\" to-ports=\"*\"/>\n"
        "</cross-domain-policy>\n",
        "text/x-cross-domain-policy");
  });
}

void WebServer::on_accept(std::shared_ptr<net::TcpConnection> conn) {
  ++connections_accepted_;
  auto state = std::make_shared<ConnState>();
  state->conn = std::move(conn);
  net::TcpCallbacks cbs;
  cbs.on_data = [this, state](const net::Payload& bytes) {
    on_data(state, bytes);
  };
  cbs.on_close = [state] {
    // Peer closed; finish our side.
    state->conn->close();
  };
  state->conn->set_callbacks(std::move(cbs));
}

void WebServer::on_data(const std::shared_ptr<ConnState>& state,
                        const net::Payload& bytes) {
  if (state->closing) return;
  state->parser.feed(bytes);
  if (state->parser.failed()) {
    HttpResponse bad = HttpResponse::make(400, "bad request");
    bad.headers.set("Connection", "close");
    state->conn->send(bad.serialize());
    state->conn->close();
    state->closing = true;
    return;
  }
  while (auto request = state->parser.take()) {
    dispatch(state, std::move(*request));
  }
}

void WebServer::dispatch(const std::shared_ptr<ConnState>& state,
                         HttpRequest request) {
  host_.sim().scheduler().schedule_after(
      config_.think_time, [this, state, req = std::move(request)] {
        if (state->closing) return;
        HttpResponse resp = handle(req);
        resp.headers.set("Server", config_.server_header);
        const bool keep = req.wants_keep_alive();
        if (!keep) resp.headers.set("Connection", "close");
        ++requests_served_;
        state->conn->send(resp.serialize());
        if (!keep) {
          state->conn->close();
          state->closing = true;
        }
      });
}

HttpResponse WebServer::handle(const HttpRequest& request) {
  const std::string key = request.method + " " + path_of(request.target);
  if (const auto it = routes_.find(key); it != routes_.end()) {
    return it->second(request);
  }
  // Method mismatch on a known path?
  for (const auto& [k, v] : routes_) {
    if (k.substr(k.find(' ') + 1) == path_of(request.target)) {
      return HttpResponse::make(405, "method not allowed");
    }
  }
  return HttpResponse::make(404, "not found");
}

}  // namespace bnm::http
