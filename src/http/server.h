// Simulated web server (the testbed's Apache): routes, keep-alive handling,
// per-request application think time, and the endpoints the measurement
// container pages use.
//
// Built-in routes:
//   GET  /               container page for a measurement method (?method=)
//   GET  /echo           tiny response ("pong"), the RTT probe target
//   GET  /payload?size=N N bytes of data (throughput experiments)
//   POST /sink           accepts any body, tiny response
//   GET  /crossdomain.xml  Flash cross-domain policy (Section 2.1)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "http/message.h"
#include "http/parser.h"
#include "net/host.h"

namespace bnm::http {

class WebServer {
 public:
  struct Config {
    net::Port port = 80;
    /// Application-level processing time per request (distinct from the
    /// testbed's 50 ms netem delay, which lives on the host's egress).
    sim::Duration think_time = sim::Duration::micros(200);
    std::string server_header = "Apache/2.2 (Ubuntu) [simulated]";
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  WebServer(net::Host& host, Config config);

  /// Install or replace a route. Exact path match on the part before '?'.
  void route(const std::string& method, const std::string& path, Handler handler);

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t connections_accepted() const { return connections_accepted_; }

  net::Host& host() { return host_; }
  const Config& config() const { return config_; }

  /// Container page HTML for a measurement method name (what the browser
  /// downloads in the preparation phase).
  static std::string container_page(const std::string& method);

  /// Parse "?k=v&k2=v2" query parameters from a target.
  static std::unordered_map<std::string, std::string> parse_query(
      const std::string& target);
  static std::string path_of(const std::string& target);

 private:
  struct ConnState {
    std::shared_ptr<net::TcpConnection> conn;
    RequestParser parser;
    bool closing = false;
  };

  void install_default_routes();
  void on_accept(std::shared_ptr<net::TcpConnection> conn);
  void on_data(const std::shared_ptr<ConnState>& state,
               const net::Payload& bytes);
  void dispatch(const std::shared_ptr<ConnState>& state, HttpRequest request);
  HttpResponse handle(const HttpRequest& request);

  net::Host& host_;
  Config config_;
  std::unordered_map<std::string, Handler> routes_;  // "METHOD path"
  std::uint64_t requests_served_ = 0;
  std::uint64_t connections_accepted_ = 0;
};

}  // namespace bnm::http
