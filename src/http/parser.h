// Incremental HTTP/1.1 parser.
//
// Bytes arrive from TCP in arbitrary slices; feed() consumes them and emits
// complete messages. Framing: Content-Length, chunked transfer coding, or
// (responses only) connection-close delimiting. One parser instance handles
// a whole persistent connection: it resets itself after each message.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "http/message.h"
#include "net/payload.h"

namespace bnm::http {

enum class ParseError {
  kNone,
  kBadStartLine,
  kBadHeader,
  kBadChunk,
  kBodyTooLarge,
};

/// Common machinery for request/response parsing.
class MessageParser {
 public:
  virtual ~MessageParser() = default;

  /// Append bytes to the internal buffer. Call done()/take_*() afterwards.
  void feed(const std::string& bytes);
  /// Same, straight from a payload view (no intermediate string copy).
  void feed(const net::Payload& bytes);

  bool failed() const { return error_ != ParseError::kNone; }
  ParseError error() const { return error_; }

  /// Maximum allowed body size (default 64 MiB) — a parse error beyond it.
  void set_body_limit(std::size_t bytes) { body_limit_ = bytes; }

 protected:
  enum class Phase { kStartLine, kHeaders, kBody, kChunkSize, kChunkData,
                     kChunkTrailer, kComplete };

  void advance();
  virtual bool parse_start_line(const std::string& line) = 0;
  virtual Headers& headers_ref() = 0;
  virtual std::string& body_ref() = 0;
  /// Response parsers may treat a missing length as read-until-close.
  virtual bool length_required() const = 0;
  virtual void reset_message() = 0;

  void finish_headers();
  bool take_line(std::string& line);
  void mark_complete() { phase_ = Phase::kComplete; }
  void fail(ParseError e) { error_ = e; }

  std::string buffer_;
  Phase phase_ = Phase::kStartLine;
  ParseError error_ = ParseError::kNone;
  std::size_t body_limit_ = 64 * 1024 * 1024;
  std::size_t content_length_ = 0;
  bool has_content_length_ = false;
  bool chunked_ = false;
  std::size_t chunk_remaining_ = 0;
  bool complete_ = false;
};

class RequestParser : public MessageParser {
 public:
  /// Complete request, if one is ready. Resets for the next message.
  std::optional<HttpRequest> take();

 private:
  bool parse_start_line(const std::string& line) override;
  Headers& headers_ref() override { return current_.headers; }
  std::string& body_ref() override { return current_.body; }
  bool length_required() const override { return true; }
  void reset_message() override { current_ = HttpRequest{}; }

  HttpRequest current_;
};

class ResponseParser : public MessageParser {
 public:
  std::optional<HttpResponse> take();

  /// Signal TCP FIN: a close-delimited body (no framing headers) completes.
  void on_connection_closed();

 private:
  bool parse_start_line(const std::string& line) override;
  Headers& headers_ref() override { return current_.headers; }
  std::string& body_ref() override { return current_.body; }
  bool length_required() const override { return false; }
  void reset_message() override { current_ = HttpResponse{}; }

  HttpResponse current_;
  bool close_delimited_ = false;
};

}  // namespace bnm::http
