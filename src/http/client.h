// HTTP/1.1 client with a keep-alive connection pool.
//
// The pool is what makes the paper's Section 4.1 observable: a request that
// finds an idle pooled connection costs only the network RTT, while a
// client (or plugin policy) that bypasses the pool pays a TCP handshake
// first. Browser technologies toggle the pool per request through Options.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "http/message.h"
#include "http/parser.h"
#include "net/host.h"

namespace bnm::http {

class HttpClient {
 public:
  struct Options {
    bool reuse_pooled = true;    ///< try an idle pooled connection first
    bool pool_after_use = true;  ///< return the connection to the pool
    /// Follow 301/302 responses up to this many hops (0 = deliver the
    /// redirect to the caller). Each hop costs a full round trip - a
    /// classic hidden RTT-inflation source for measurement pages.
    int max_redirects = 0;
  };

  /// Browsers of the paper's era open at most ~6 parallel connections per
  /// host; further requests queue. Configurable per client.
  void set_max_connections_per_host(std::size_t n) { max_per_host_ = n; }
  std::size_t max_connections_per_host() const { return max_per_host_; }

  /// Application-visible transfer milestones (simulated instants).
  struct TransferInfo {
    bool opened_new_connection = false;
    sim::TimePoint started;            ///< request() call
    sim::TimePoint connect_complete;   ///< handshake done (== started if pooled)
    sim::TimePoint response_complete;  ///< full response parsed
    sim::Duration handshake_cost() const { return connect_complete - started; }
  };

  using ResponseCallback = std::function<void(HttpResponse, TransferInfo)>;
  using ErrorCallback = std::function<void(const std::string&)>;

  explicit HttpClient(net::Host& host);

  /// Closes every tracked connection and detaches their callbacks, so TCP
  /// events arriving after the client dies touch nothing freed.
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  void request(net::Endpoint server, HttpRequest req, ResponseCallback cb) {
    request(server, std::move(req), std::move(cb), Options{});
  }
  void request(net::Endpoint server, HttpRequest req, ResponseCallback cb,
               Options opts);

  void set_error_callback(ErrorCallback cb) { on_error_ = std::move(cb); }

  /// Idle connections currently pooled for `server`.
  std::size_t pooled_connections(net::Endpoint server) const;
  /// Live (pooled or in-use) connections toward `server`.
  std::size_t live_connections(net::Endpoint server) const;
  /// Requests waiting for a connection slot toward `server`.
  std::size_t queued_requests(net::Endpoint server) const;
  /// Total TCP connections this client has opened.
  std::uint64_t connections_opened() const { return connections_opened_; }

  /// Close every pooled connection (end of a measurement session).
  void close_all();

  net::Host& host() { return host_; }

 private:
  struct PoolEntry : std::enable_shared_from_this<PoolEntry> {
    std::shared_ptr<net::TcpConnection> conn;
    ResponseParser parser;
    bool busy = false;
    bool alive = true;
    bool counted = true;  ///< still held against the per-host limit
  };

  struct QueuedRequest {
    HttpRequest req;
    ResponseCallback cb;
    Options opts;
    TransferInfo info;  ///< started stamped at queue time
  };

  void start_on(const std::shared_ptr<PoolEntry>& entry, net::Endpoint server,
                const HttpRequest& req, ResponseCallback cb, Options opts,
                TransferInfo info);
  void open_and_start(net::Endpoint server, HttpRequest req,
                      ResponseCallback cb, Options opts, TransferInfo info);
  void finish(const std::shared_ptr<PoolEntry>& entry, net::Endpoint server,
              HttpResponse response, const ResponseCallback& cb, Options opts,
              TransferInfo info);
  std::shared_ptr<PoolEntry> take_idle(net::Endpoint server);
  /// Drop a dead entry from the per-host count and unblock queued work.
  void release_slot(net::Endpoint server, PoolEntry& entry);
  /// Start queued requests while slots or idle connections allow.
  void pump_queue(net::Endpoint server);

  net::Host& host_;
  std::unordered_map<net::Endpoint, std::vector<std::shared_ptr<PoolEntry>>> pool_;
  std::unordered_map<net::Endpoint, std::size_t> live_count_;
  std::unordered_map<net::Endpoint, std::deque<QueuedRequest>> queue_;
  ErrorCallback on_error_;
  std::uint64_t connections_opened_ = 0;
  std::size_t max_per_host_ = 6;
};

}  // namespace bnm::http
