// HTTP/1.1 client with a keep-alive connection pool.
//
// The pool is what makes the paper's Section 4.1 observable: a request that
// finds an idle pooled connection costs only the network RTT, while a
// client (or plugin policy) that bypasses the pool pays a TCP handshake
// first. Browser technologies toggle the pool per request through Options.
//
// Robustness: each request may carry a per-attempt timeout and a bounded
// retry budget with exponential backoff. A request that exhausts its budget
// (timeout, connection reset, parse error, close mid-response) is *always*
// answered: the caller's ResponseCallback receives a synthetic response with
// status == 0 (the same sentinel browsers hand XHR on a network error), so
// no caller ever hangs waiting for a reply that cannot come.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "http/message.h"
#include "http/parser.h"
#include "net/host.h"

namespace bnm::http {

class HttpClient {
 public:
  struct Options {
    bool reuse_pooled = true;    ///< try an idle pooled connection first
    bool pool_after_use = true;  ///< return the connection to the pool
    /// Follow 301/302 responses up to this many hops (0 = deliver the
    /// redirect to the caller). Each hop costs a full round trip - a
    /// classic hidden RTT-inflation source for measurement pages.
    int max_redirects = 0;
    /// Per-attempt deadline covering queue wait + connect + response.
    /// zero = no timeout (and no timer is armed). When zero, the client's
    /// default_timeout applies.
    sim::Duration request_timeout = sim::Duration::zero();
    /// Failed attempts (timeout/reset/parse error) are retried on a fresh
    /// attempt up to this many times, with exponentially growing backoff.
    /// Negative = use the client's default_retries.
    int max_retries = -1;
    /// Backoff before the first retry; doubles per subsequent retry.
    sim::Duration retry_backoff = sim::Duration::millis(200);
  };

  /// Browsers of the paper's era open at most ~6 parallel connections per
  /// host; further requests queue. Configurable per client.
  void set_max_connections_per_host(std::size_t n) { max_per_host_ = n; }
  std::size_t max_connections_per_host() const { return max_per_host_; }

  /// Client-wide defaults applied to requests that don't set their own
  /// timeout/retry knobs (the browser shims issue plain requests, so this
  /// is how an experiment arms the whole stack at once).
  void set_default_timeout(sim::Duration timeout) {
    default_timeout_ = timeout;
  }
  void set_default_retries(int retries, sim::Duration backoff) {
    default_retries_ = retries;
    default_backoff_ = backoff;
  }

  /// Application-visible transfer milestones (simulated instants).
  struct TransferInfo {
    bool opened_new_connection = false;
    sim::TimePoint started;            ///< request() call
    sim::TimePoint connect_complete;   ///< handshake done (== started if pooled)
    sim::TimePoint response_complete;  ///< full response parsed
    int retries = 0;                   ///< failed attempts before this reply
    sim::Duration handshake_cost() const { return connect_complete - started; }
  };

  using ResponseCallback = std::function<void(HttpResponse, TransferInfo)>;
  using ErrorCallback = std::function<void(const std::string&)>;

  explicit HttpClient(net::Host& host);

  /// Closes every tracked connection and detaches their callbacks, so TCP
  /// events arriving after the client dies touch nothing freed. Pending
  /// timeout/retry timers are cancelled.
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  void request(net::Endpoint server, HttpRequest req, ResponseCallback cb) {
    request(server, std::move(req), std::move(cb), Options{});
  }
  void request(net::Endpoint server, HttpRequest req, ResponseCallback cb,
               Options opts);

  void set_error_callback(ErrorCallback cb) { on_error_ = std::move(cb); }

  /// Idle connections currently pooled for `server`.
  std::size_t pooled_connections(net::Endpoint server) const;
  /// Live (pooled or in-use) connections toward `server`.
  std::size_t live_connections(net::Endpoint server) const;
  /// Requests waiting for a connection slot toward `server`.
  std::size_t queued_requests(net::Endpoint server) const;
  /// Total TCP connections this client has opened.
  std::uint64_t connections_opened() const { return connections_opened_; }

  // Resilience counters (cumulative over the client's lifetime).
  std::uint64_t request_timeouts() const { return timeouts_; }
  std::uint64_t request_retries() const { return retries_; }
  /// Requests that exhausted their retry budget (answered with status 0).
  std::uint64_t request_failures() const { return failures_; }

  /// Close every pooled connection (end of a measurement session).
  void close_all();

  net::Host& host() { return host_; }

 private:
  struct PoolEntry : std::enable_shared_from_this<PoolEntry> {
    std::shared_ptr<net::TcpConnection> conn;
    ResponseParser parser;
    bool busy = false;
    bool alive = true;
    bool counted = true;  ///< still held against the per-host limit
  };

  /// One logical request: survives across retries until settled.
  struct RequestState : std::enable_shared_from_this<RequestState> {
    net::Endpoint server;
    HttpRequest req;
    ResponseCallback cb;
    Options opts;
    TransferInfo info;
    int retries_left = 0;
    sim::Duration backoff;
    /// Bumped whenever an attempt is abandoned; stale failure signals from
    /// the old attempt's connection compare ids and become no-ops.
    std::uint64_t attempt = 0;
    bool settled = false;
    std::weak_ptr<PoolEntry> entry;  ///< the attempt's connection, if any
    sim::EventHandle timeout_timer;
    sim::EventHandle retry_timer;
  };

  struct QueuedRequest {
    std::shared_ptr<RequestState> state;
    std::uint64_t attempt = 0;  ///< stale if != state->attempt
  };

  /// Start (or queue) one attempt for `state`.
  void dispatch(const std::shared_ptr<RequestState>& state);
  void start_on(const std::shared_ptr<PoolEntry>& entry,
                const std::shared_ptr<RequestState>& state);
  void open_and_start(const std::shared_ptr<RequestState>& state);
  void finish(const std::shared_ptr<PoolEntry>& entry,
              const std::shared_ptr<RequestState>& state,
              HttpResponse response);
  /// Attempt `attempt` of `state` failed. Retries if budget remains,
  /// otherwise settles the request with a synthetic status-0 response.
  void fail_attempt(const std::shared_ptr<RequestState>& state,
                    std::uint64_t attempt, const std::string& reason);
  void settle(const std::shared_ptr<RequestState>& state,
              HttpResponse response);
  void arm_timeout(const std::shared_ptr<RequestState>& state);
  std::shared_ptr<PoolEntry> take_idle(net::Endpoint server);
  /// Drop a dead entry from the per-host count and unblock queued work.
  void release_slot(net::Endpoint server, PoolEntry& entry);
  /// Start queued requests while slots or idle connections allow.
  void pump_queue(net::Endpoint server);
  /// Kill the attempt's connection so it cannot be pooled or call back.
  void abandon_entry(const std::shared_ptr<RequestState>& state);

  net::Host& host_;
  std::unordered_map<net::Endpoint, std::vector<std::shared_ptr<PoolEntry>>> pool_;
  std::unordered_map<net::Endpoint, std::size_t> live_count_;
  std::unordered_map<net::Endpoint, std::deque<QueuedRequest>> queue_;
  /// Unsettled requests, so the dtor can cancel their timers.
  std::unordered_map<RequestState*, std::shared_ptr<RequestState>> inflight_;
  ErrorCallback on_error_;
  std::uint64_t connections_opened_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failures_ = 0;
  std::size_t max_per_host_ = 6;
  sim::Duration default_timeout_ = sim::Duration::zero();
  int default_retries_ = 0;
  sim::Duration default_backoff_ = sim::Duration::millis(200);
};

}  // namespace bnm::http
