#include "http/message.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace bnm::http {

bool Headers::iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void Headers::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

void Headers::set(std::string name, std::string value) {
  remove(name);
  add(std::move(name), std::move(value));
}

std::optional<std::string> Headers::get(const std::string& name) const {
  for (const auto& [n, v] : entries_) {
    if (iequals(n, name)) return v;
  }
  return std::nullopt;
}

bool Headers::contains(const std::string& name) const {
  return get(name).has_value();
}

void Headers::remove(const std::string& name) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const auto& e) {
                                  return iequals(e.first, name);
                                }),
                 entries_.end());
}

namespace {
bool keep_alive_from(const Headers& headers, const std::string& version) {
  if (const auto c = headers.get("Connection")) {
    std::string lower = *c;
    std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char ch) {
      return static_cast<char>(std::tolower(ch));
    });
    if (lower.find("close") != std::string::npos) return false;
    if (lower.find("keep-alive") != std::string::npos) return true;
  }
  return version == "HTTP/1.1";  // 1.1 defaults to persistent
}

void serialize_headers(std::string& out, const Headers& headers,
                       std::size_t body_size, bool has_framing) {
  for (const auto& [n, v] : headers.entries()) {
    out += n;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  if (!has_framing && body_size > 0) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}
}  // namespace

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  const bool framed = headers.contains("Content-Length") ||
                      headers.contains("Transfer-Encoding");
  serialize_headers(out, headers, body.size(), framed);
  out += body;
  return out;
}

bool HttpRequest::wants_keep_alive() const {
  return keep_alive_from(headers, version);
}

std::string HttpResponse::serialize() const {
  std::string out = version + " " + std::to_string(status) + " " + reason + "\r\n";
  const bool framed = headers.contains("Content-Length") ||
                      headers.contains("Transfer-Encoding");
  for (const auto& [n, v] : headers.entries()) {
    out += n + ": " + v + "\r\n";
  }
  // Responses always carry explicit framing so keep-alive works, even for
  // empty bodies.
  if (!framed) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

bool HttpResponse::wants_keep_alive() const {
  return keep_alive_from(headers, version);
}

HttpResponse HttpResponse::make(int status, std::string body,
                                std::string content_type) {
  HttpResponse r;
  r.status = status;
  r.reason = reason_phrase(status);
  r.headers.set("Content-Type", std::move(content_type));
  r.body = std::move(body);
  return r;
}

std::string reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 101: return "Switching Protocols";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    default: return "Unknown";
  }
}

std::string chunked_encode(const std::string& body, std::size_t chunk_size) {
  std::string out;
  std::size_t pos = 0;
  char size_line[32];
  while (pos < body.size()) {
    const std::size_t n = std::min(chunk_size, body.size() - pos);
    std::snprintf(size_line, sizeof size_line, "%zx\r\n", n);
    out += size_line;
    out.append(body, pos, n);
    out += "\r\n";
    pos += n;
  }
  out += "0\r\n\r\n";
  return out;
}

}  // namespace bnm::http
