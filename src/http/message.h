// HTTP/1.1 message model: requests, responses, header multimap with
// case-insensitive names, and wire serialization (RFC 7230 subset:
// Content-Length and chunked framing, no trailers).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace bnm::http {

/// Ordered header list with case-insensitive name lookup (HTTP header names
/// are case-insensitive; order is preserved for faithful serialization).
class Headers {
 public:
  void add(std::string name, std::string value);
  /// Replace all occurrences of `name` with a single header.
  void set(std::string name, std::string value);
  /// First value of `name`, if present.
  std::optional<std::string> get(const std::string& name) const;
  bool contains(const std::string& name) const;
  void remove(const std::string& name);
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// Case-insensitive ASCII comparison, exposed for the parser.
  static bool iequals(const std::string& a, const std::string& b);

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  /// Serialize with correct framing: adds Content-Length when a body is
  /// present and no framing header was set.
  std::string serialize() const;

  bool wants_keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  std::string serialize() const;
  bool wants_keep_alive() const;

  static HttpResponse make(int status, std::string body,
                           std::string content_type = "text/plain");
};

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
std::string reason_phrase(int status);

/// Encode `body` as a single chunked-transfer-encoded payload.
std::string chunked_encode(const std::string& body, std::size_t chunk_size = 4096);

}  // namespace bnm::http
