#include "http/client.h"

#include <utility>

namespace bnm::http {

HttpClient::HttpClient(net::Host& host) : host_{host} {}

HttpClient::~HttpClient() {
  queue_.clear();
  for (auto& [server, vec] : pool_) {
    for (auto& e : vec) {
      if (e->conn) {
        e->conn->set_callbacks({});
        if (e->alive) e->conn->close();
      }
      e->alive = false;
    }
  }
}

std::shared_ptr<HttpClient::PoolEntry> HttpClient::take_idle(
    net::Endpoint server) {
  auto it = pool_.find(server);
  if (it == pool_.end()) return nullptr;
  auto& vec = it->second;
  while (!vec.empty()) {
    auto entry = vec.back();
    vec.pop_back();
    if (entry->alive && !entry->busy && entry->conn->established()) {
      return entry;
    }
  }
  return nullptr;
}

void HttpClient::release_slot(net::Endpoint server, PoolEntry& entry) {
  if (!entry.counted) return;
  entry.counted = false;
  auto it = live_count_.find(server);
  if (it != live_count_.end() && it->second > 0) --it->second;
  pump_queue(server);
}

void HttpClient::pump_queue(net::Endpoint server) {
  auto qit = queue_.find(server);
  if (qit == queue_.end()) return;
  auto& q = qit->second;
  while (!q.empty()) {
    // Prefer an idle pooled connection; otherwise open one if a slot is
    // free; otherwise keep waiting.
    if (auto entry = take_idle(server)) {
      QueuedRequest item = std::move(q.front());
      q.pop_front();
      item.info.opened_new_connection = false;
      item.info.connect_complete = host_.sim().now();
      start_on(entry, server, item.req, std::move(item.cb), item.opts,
               item.info);
      continue;
    }
    if (live_count_[server] < max_per_host_) {
      QueuedRequest item = std::move(q.front());
      q.pop_front();
      open_and_start(server, std::move(item.req), std::move(item.cb),
                     item.opts, item.info);
      continue;
    }
    break;
  }
}

void HttpClient::request(net::Endpoint server, HttpRequest req,
                         ResponseCallback cb, Options opts) {
  TransferInfo info;
  info.started = host_.sim().now();

  if (opts.reuse_pooled) {
    if (auto entry = take_idle(server)) {
      info.opened_new_connection = false;
      info.connect_complete = info.started;
      start_on(entry, server, req, std::move(cb), opts, info);
      return;
    }
  }

  if (live_count_[server] >= max_per_host_) {
    // At the per-host parallel-connection limit: queue like a browser.
    queue_[server].push_back(
        QueuedRequest{std::move(req), std::move(cb), opts, info});
    return;
  }
  open_and_start(server, std::move(req), std::move(cb), opts, info);
}

void HttpClient::open_and_start(net::Endpoint server, HttpRequest req,
                                ResponseCallback cb, Options opts,
                                TransferInfo info) {
  info.opened_new_connection = true;
  ++connections_opened_;
  ++live_count_[server];
  auto entry = std::make_shared<PoolEntry>();
  entry->busy = true;
  net::TcpCallbacks cbs;
  auto self = this;
  cbs.on_connect = [self, entry, server, req = std::move(req),
                    cb = std::move(cb), opts, info]() mutable {
    info.connect_complete = self->host_.sim().now();
    self->start_on(entry, server, req, std::move(cb), opts, info);
  };
  cbs.on_reset = [self, entry, server] {
    entry->alive = false;
    self->release_slot(server, *entry);
    if (self->on_error_) self->on_error_("connect failed: connection reset");
  };
  entry->conn = host_.tcp_connect(server, std::move(cbs));
}

void HttpClient::start_on(const std::shared_ptr<PoolEntry>& entry,
                          net::Endpoint server, const HttpRequest& req,
                          ResponseCallback cb, Options opts, TransferInfo info) {
  entry->busy = true;
  net::TcpCallbacks cbs;
  auto self = this;
  auto cb_shared = std::make_shared<ResponseCallback>(std::move(cb));
  cbs.on_data = [self, entry, server, cb_shared, opts,
                 info](const net::Payload& bytes) mutable {
    entry->parser.feed(bytes);
    if (entry->parser.failed()) {
      entry->alive = false;
      self->release_slot(server, *entry);
      entry->conn->abort();
      if (self->on_error_) self->on_error_("response parse error");
      return;
    }
    if (auto resp = entry->parser.take()) {
      info.response_complete = self->host_.sim().now();
      self->finish(entry, server, std::move(*resp), *cb_shared, opts, info);
    }
  };
  cbs.on_close = [self, entry, server, cb_shared, opts, info]() mutable {
    entry->alive = false;
    self->release_slot(server, *entry);
    entry->parser.on_connection_closed();
    if (auto resp = entry->parser.take()) {
      info.response_complete = self->host_.sim().now();
      self->finish(entry, server, std::move(*resp), *cb_shared, opts, info);
    } else if (entry->busy && self->on_error_) {
      self->on_error_("connection closed mid-response");
    }
  };
  cbs.on_reset = [self, entry, server] {
    entry->alive = false;
    self->release_slot(server, *entry);
    if (entry->busy && self->on_error_) self->on_error_("connection reset");
  };
  entry->conn->set_callbacks(std::move(cbs));
  entry->conn->send(req.serialize());
}

namespace {
/// Parse a Location header: "/path" (same server) or
/// "http://a.b.c.d[:port]/path". Returns false on anything else.
bool parse_location(const std::string& location, net::Endpoint same_server,
                    net::Endpoint& out_server, std::string& out_path) {
  if (!location.empty() && location.front() == '/') {
    out_server = same_server;
    out_path = location;
    return true;
  }
  if (location.rfind("http://", 0) != 0) return false;
  const std::string rest = location.substr(7);
  const auto slash = rest.find('/');
  const std::string hostport =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  out_path = slash == std::string::npos ? "/" : rest.substr(slash);
  const auto colon = hostport.find(':');
  try {
    if (colon == std::string::npos) {
      out_server.ip = net::IpAddress::parse(hostport);
      out_server.port = 80;
    } else {
      out_server.ip = net::IpAddress::parse(hostport.substr(0, colon));
      out_server.port = static_cast<net::Port>(
          std::strtoul(hostport.substr(colon + 1).c_str(), nullptr, 10));
    }
  } catch (...) {
    return false;
  }
  return true;
}
}  // namespace

void HttpClient::finish(const std::shared_ptr<PoolEntry>& entry,
                        net::Endpoint server, HttpResponse response,
                        const ResponseCallback& cb, Options opts,
                        TransferInfo info) {
  entry->busy = false;
  const bool keep = response.wants_keep_alive() && entry->alive;
  if (keep && opts.pool_after_use) {
    pool_[server].push_back(entry);
  } else if (entry->alive) {
    entry->alive = false;
    release_slot(server, *entry);
    entry->conn->close();
  }

  // Follow redirects transparently; each hop is a fresh GET and a fresh
  // round trip charged to the same TransferInfo.started.
  if ((response.status == 301 || response.status == 302) &&
      opts.max_redirects > 0) {
    if (const auto location = response.headers.get("Location")) {
      net::Endpoint next_server;
      std::string next_path;
      if (parse_location(*location, server, next_server, next_path)) {
        HttpRequest next;
        next.method = "GET";
        next.target = next_path;
        next.headers.set("Host", next_server.to_string());
        Options next_opts = opts;
        --next_opts.max_redirects;
        ResponseCallback chain =
            [cb, first_started = info.started](HttpResponse r,
                                               TransferInfo hop_info) {
              hop_info.started = first_started;  // whole chain's duration
              cb(std::move(r), hop_info);
            };
        pump_queue(server);
        request(next_server, std::move(next), std::move(chain), next_opts);
        return;
      }
    }
  }

  cb(std::move(response), info);
  // The entry may now be idle (or a slot freed): unblock queued requests.
  pump_queue(server);
}

std::size_t HttpClient::pooled_connections(net::Endpoint server) const {
  const auto it = pool_.find(server);
  if (it == pool_.end()) return 0;
  std::size_t n = 0;
  for (const auto& e : it->second) {
    if (e->alive && !e->busy) ++n;
  }
  return n;
}

std::size_t HttpClient::live_connections(net::Endpoint server) const {
  const auto it = live_count_.find(server);
  return it == live_count_.end() ? 0 : it->second;
}

std::size_t HttpClient::queued_requests(net::Endpoint server) const {
  const auto it = queue_.find(server);
  return it == queue_.end() ? 0 : it->second.size();
}

void HttpClient::close_all() {
  queue_.clear();
  for (auto& [server, vec] : pool_) {
    for (auto& e : vec) {
      if (e->alive) {
        e->alive = false;
        if (e->counted) {
          e->counted = false;
          auto it = live_count_.find(server);
          if (it != live_count_.end() && it->second > 0) --it->second;
        }
        e->conn->close();
      }
    }
    vec.clear();
  }
  pool_.clear();
}

}  // namespace bnm::http
