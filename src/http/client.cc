#include "http/client.h"

#include <utility>

#include "obs/metrics.h"

namespace {

// Process-wide HTTP resilience totals ("http.*" in docs/OBSERVABILITY.md);
// the per-client members stay the public accessors.
const bnm::obs::Counter& timeouts_total() {
  static const bnm::obs::Counter c =
      bnm::obs::MetricsRegistry::instance().counter(
          "http.request_timeouts", "requests", "request attempts timed out");
  return c;
}
const bnm::obs::Counter& retries_total() {
  static const bnm::obs::Counter c =
      bnm::obs::MetricsRegistry::instance().counter(
          "http.request_retries", "requests", "request attempts retried");
  return c;
}
const bnm::obs::Counter& failures_total() {
  static const bnm::obs::Counter c =
      bnm::obs::MetricsRegistry::instance().counter(
          "http.request_failures", "requests",
          "requests settled with synthetic status 0");
  return c;
}
const bnm::obs::Counter& connections_total() {
  static const bnm::obs::Counter c =
      bnm::obs::MetricsRegistry::instance().counter(
          "http.connections_opened", "connections",
          "TCP connections opened by clients");
  return c;
}

}  // namespace

namespace bnm::http {

HttpClient::HttpClient(net::Host& host) : host_{host} {}

HttpClient::~HttpClient() {
  queue_.clear();
  for (auto& [ptr, state] : inflight_) {
    state->timeout_timer.cancel();
    state->retry_timer.cancel();
    state->settled = true;
  }
  inflight_.clear();
  for (auto& [server, vec] : pool_) {
    for (auto& e : vec) {
      if (e->conn) {
        e->conn->set_callbacks({});
        if (e->alive) e->conn->close();
      }
      e->alive = false;
    }
  }
}

std::shared_ptr<HttpClient::PoolEntry> HttpClient::take_idle(
    net::Endpoint server) {
  auto it = pool_.find(server);
  if (it == pool_.end()) return nullptr;
  auto& vec = it->second;
  while (!vec.empty()) {
    auto entry = vec.back();
    vec.pop_back();
    if (entry->alive && !entry->busy && entry->conn->established()) {
      return entry;
    }
  }
  return nullptr;
}

void HttpClient::release_slot(net::Endpoint server, PoolEntry& entry) {
  if (!entry.counted) return;
  entry.counted = false;
  auto it = live_count_.find(server);
  if (it != live_count_.end() && it->second > 0) --it->second;
  pump_queue(server);
}

void HttpClient::pump_queue(net::Endpoint server) {
  auto qit = queue_.find(server);
  if (qit == queue_.end()) return;
  auto& q = qit->second;
  while (!q.empty()) {
    // Skip requests whose attempt was abandoned (timed out while queued).
    if (q.front().state->settled ||
        q.front().attempt != q.front().state->attempt) {
      q.pop_front();
      continue;
    }
    // Prefer an idle pooled connection; otherwise open one if a slot is
    // free; otherwise keep waiting.
    if (auto entry = take_idle(server)) {
      auto state = std::move(q.front().state);
      q.pop_front();
      state->info.opened_new_connection = false;
      state->info.connect_complete = host_.sim().now();
      start_on(entry, state);
      continue;
    }
    if (live_count_[server] < max_per_host_) {
      auto state = std::move(q.front().state);
      q.pop_front();
      open_and_start(state);
      continue;
    }
    break;
  }
}

void HttpClient::request(net::Endpoint server, HttpRequest req,
                         ResponseCallback cb, Options opts) {
  if (opts.request_timeout.is_zero()) opts.request_timeout = default_timeout_;
  if (opts.max_retries < 0) {
    opts.max_retries = default_retries_;
    opts.retry_backoff = default_backoff_;
  }

  auto state = std::make_shared<RequestState>();
  state->server = server;
  state->req = std::move(req);
  state->cb = std::move(cb);
  state->opts = opts;
  state->info.started = host_.sim().now();
  state->retries_left = opts.max_retries;
  state->backoff = opts.retry_backoff;
  inflight_.emplace(state.get(), state);
  dispatch(state);
}

void HttpClient::arm_timeout(const std::shared_ptr<RequestState>& state) {
  if (state->opts.request_timeout.is_zero()) return;
  const std::uint64_t attempt = state->attempt;
  state->timeout_timer = host_.sim().scheduler().schedule_after(
      state->opts.request_timeout, [this, state, attempt] {
        if (state->settled || attempt != state->attempt) return;
        ++timeouts_;
        timeouts_total().add(1);
        fail_attempt(state, attempt, "request timeout");
      });
}

void HttpClient::dispatch(const std::shared_ptr<RequestState>& state) {
  arm_timeout(state);

  if (state->opts.reuse_pooled) {
    if (auto entry = take_idle(state->server)) {
      state->info.opened_new_connection = false;
      state->info.connect_complete = host_.sim().now();
      start_on(entry, state);
      return;
    }
  }

  if (live_count_[state->server] >= max_per_host_) {
    // At the per-host parallel-connection limit: queue like a browser.
    queue_[state->server].push_back(QueuedRequest{state, state->attempt});
    return;
  }
  open_and_start(state);
}

void HttpClient::open_and_start(const std::shared_ptr<RequestState>& state) {
  state->info.opened_new_connection = true;
  ++connections_opened_;
  connections_total().add(1);
  ++live_count_[state->server];
  auto entry = std::make_shared<PoolEntry>();
  entry->busy = true;
  state->entry = entry;
  const std::uint64_t attempt = state->attempt;
  net::TcpCallbacks cbs;
  cbs.on_connect = [this, entry, state, attempt] {
    if (state->settled || attempt != state->attempt) {
      // Attempt abandoned while connecting: don't keep the connection.
      entry->alive = false;
      release_slot(state->server, *entry);
      entry->conn->close();
      return;
    }
    state->info.connect_complete = host_.sim().now();
    start_on(entry, state);
  };
  cbs.on_reset = [this, entry, state, attempt] {
    entry->alive = false;
    release_slot(state->server, *entry);
    fail_attempt(state, attempt, "connect failed: connection reset");
  };
  entry->conn = host_.tcp_connect(state->server, std::move(cbs));
}

void HttpClient::start_on(const std::shared_ptr<PoolEntry>& entry,
                          const std::shared_ptr<RequestState>& state) {
  entry->busy = true;
  state->entry = entry;
  const std::uint64_t attempt = state->attempt;
  net::TcpCallbacks cbs;
  cbs.on_data = [this, entry, state, attempt](const net::Payload& bytes) {
    entry->parser.feed(bytes);
    if (entry->parser.failed()) {
      entry->alive = false;
      release_slot(state->server, *entry);
      entry->conn->abort();
      fail_attempt(state, attempt, "response parse error");
      return;
    }
    if (auto resp = entry->parser.take()) {
      if (state->settled || attempt != state->attempt) return;
      state->info.response_complete = host_.sim().now();
      finish(entry, state, std::move(*resp));
    }
  };
  cbs.on_close = [this, entry, state, attempt] {
    entry->alive = false;
    release_slot(state->server, *entry);
    entry->parser.on_connection_closed();
    if (auto resp = entry->parser.take()) {
      if (state->settled || attempt != state->attempt) return;
      state->info.response_complete = host_.sim().now();
      finish(entry, state, std::move(*resp));
    } else if (entry->busy) {
      fail_attempt(state, attempt, "connection closed mid-response");
    }
  };
  cbs.on_reset = [this, entry, state, attempt] {
    entry->alive = false;
    release_slot(state->server, *entry);
    if (entry->busy) fail_attempt(state, attempt, "connection reset");
  };
  entry->conn->set_callbacks(std::move(cbs));
  entry->conn->send(state->req.serialize());
}

void HttpClient::abandon_entry(const std::shared_ptr<RequestState>& state) {
  if (auto entry = state->entry.lock()) {
    if (entry->conn) entry->conn->set_callbacks({});
    if (entry->alive) {
      entry->alive = false;
      release_slot(state->server, *entry);
      if (entry->conn) entry->conn->abort();
    }
  }
  state->entry.reset();
}

void HttpClient::fail_attempt(const std::shared_ptr<RequestState>& state,
                              std::uint64_t attempt,
                              const std::string& reason) {
  if (state->settled || attempt != state->attempt) return;
  ++state->attempt;  // invalidate every other signal from this attempt
  state->timeout_timer.cancel();
  abandon_entry(state);

  if (state->retries_left > 0) {
    --state->retries_left;
    ++retries_;
    retries_total().add(1);
    ++state->info.retries;
    const sim::Duration backoff = state->backoff;
    state->backoff = state->backoff * 2;
    if (host_.sim().trace().enabled()) {
      host_.sim().trace().emit(host_.sim().now(), "http",
                               "retry after " + backoff.to_string() + " (" +
                                   reason + ")");
    }
    state->retry_timer = host_.sim().scheduler().schedule_after(
        backoff, [this, state] {
          if (state->settled) return;
          dispatch(state);
        });
    return;
  }

  ++failures_;
  failures_total().add(1);
  if (on_error_) on_error_(reason);
  // Always answer: a synthetic network-error response (status 0), so no
  // caller is left waiting on a request that can never complete.
  HttpResponse failure;
  failure.status = 0;
  failure.reason = reason;
  state->info.response_complete = host_.sim().now();
  settle(state, std::move(failure));
}

void HttpClient::settle(const std::shared_ptr<RequestState>& state,
                        HttpResponse response) {
  if (state->settled) return;
  state->settled = true;
  state->timeout_timer.cancel();
  state->retry_timer.cancel();
  inflight_.erase(state.get());
  state->cb(std::move(response), state->info);
}

namespace {
/// Parse a Location header: "/path" (same server) or
/// "http://a.b.c.d[:port]/path". Returns false on anything else.
bool parse_location(const std::string& location, net::Endpoint same_server,
                    net::Endpoint& out_server, std::string& out_path) {
  if (!location.empty() && location.front() == '/') {
    out_server = same_server;
    out_path = location;
    return true;
  }
  if (location.rfind("http://", 0) != 0) return false;
  const std::string rest = location.substr(7);
  const auto slash = rest.find('/');
  const std::string hostport =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  out_path = slash == std::string::npos ? "/" : rest.substr(slash);
  const auto colon = hostport.find(':');
  try {
    if (colon == std::string::npos) {
      out_server.ip = net::IpAddress::parse(hostport);
      out_server.port = 80;
    } else {
      out_server.ip = net::IpAddress::parse(hostport.substr(0, colon));
      out_server.port = static_cast<net::Port>(
          std::strtoul(hostport.substr(colon + 1).c_str(), nullptr, 10));
    }
  } catch (...) {
    return false;
  }
  return true;
}
}  // namespace

void HttpClient::finish(const std::shared_ptr<PoolEntry>& entry,
                        const std::shared_ptr<RequestState>& state,
                        HttpResponse response) {
  state->timeout_timer.cancel();
  entry->busy = false;
  const net::Endpoint server = state->server;
  const bool keep = response.wants_keep_alive() && entry->alive;
  if (keep && state->opts.pool_after_use) {
    pool_[server].push_back(entry);
  } else if (entry->alive) {
    entry->alive = false;
    release_slot(server, *entry);
    entry->conn->close();
  }
  state->entry.reset();

  // Follow redirects transparently; each hop is a fresh GET and a fresh
  // round trip charged to the same TransferInfo.started.
  if ((response.status == 301 || response.status == 302) &&
      state->opts.max_redirects > 0) {
    if (const auto location = response.headers.get("Location")) {
      net::Endpoint next_server;
      std::string next_path;
      if (parse_location(*location, server, next_server, next_path)) {
        HttpRequest next;
        next.method = "GET";
        next.target = next_path;
        next.headers.set("Host", next_server.to_string());
        Options next_opts = state->opts;
        --next_opts.max_redirects;
        ResponseCallback chain =
            [cb = state->cb, first_started = state->info.started,
             prior_retries = state->info.retries](HttpResponse r,
                                                  TransferInfo hop_info) {
              hop_info.started = first_started;  // whole chain's duration
              hop_info.retries += prior_retries;
              cb(std::move(r), hop_info);
            };
        state->settled = true;
        state->retry_timer.cancel();
        inflight_.erase(state.get());
        pump_queue(server);
        request(next_server, std::move(next), std::move(chain), next_opts);
        return;
      }
    }
  }

  settle(state, std::move(response));
  // The entry may now be idle (or a slot freed): unblock queued requests.
  pump_queue(server);
}

std::size_t HttpClient::pooled_connections(net::Endpoint server) const {
  const auto it = pool_.find(server);
  if (it == pool_.end()) return 0;
  std::size_t n = 0;
  for (const auto& e : it->second) {
    if (e->alive && !e->busy) ++n;
  }
  return n;
}

std::size_t HttpClient::live_connections(net::Endpoint server) const {
  const auto it = live_count_.find(server);
  return it == live_count_.end() ? 0 : it->second;
}

std::size_t HttpClient::queued_requests(net::Endpoint server) const {
  const auto it = queue_.find(server);
  return it == queue_.end() ? 0 : it->second.size();
}

void HttpClient::close_all() {
  queue_.clear();
  for (auto& [server, vec] : pool_) {
    for (auto& e : vec) {
      if (e->alive) {
        e->alive = false;
        if (e->counted) {
          e->counted = false;
          auto it = live_count_.find(server);
          if (it != live_count_.end() && it->second > 0) --it->second;
        }
        e->conn->close();
      }
    }
    vec.clear();
  }
  pool_.clear();
}

}  // namespace bnm::http
