#include "http/parser.h"

#include <cctype>
#include <cstdlib>

namespace bnm::http {

namespace {
// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

void MessageParser::feed(const std::string& bytes) {
  if (failed()) return;
  buffer_ += bytes;
  advance();
}

void MessageParser::feed(const net::Payload& bytes) {
  if (failed()) return;
  buffer_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  advance();
}

bool MessageParser::take_line(std::string& line) {
  const auto pos = buffer_.find("\r\n");
  if (pos == std::string::npos) return false;
  line = buffer_.substr(0, pos);
  buffer_.erase(0, pos + 2);
  return true;
}

void MessageParser::finish_headers() {
  has_content_length_ = false;
  chunked_ = false;
  content_length_ = 0;

  const Headers& h = headers_ref();
  if (const auto te = h.get("Transfer-Encoding")) {
    std::string lower = *te;
    for (auto& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lower.find("chunked") != std::string::npos) chunked_ = true;
  }
  if (!chunked_) {
    if (const auto cl = h.get("Content-Length")) {
      has_content_length_ = true;
      content_length_ = static_cast<std::size_t>(std::strtoull(cl->c_str(), nullptr, 10));
      if (content_length_ > body_limit_) {
        fail(ParseError::kBodyTooLarge);
        return;
      }
    }
  }

  if (chunked_) {
    phase_ = Phase::kChunkSize;
  } else if (has_content_length_) {
    phase_ = content_length_ == 0 ? Phase::kComplete : Phase::kBody;
  } else if (length_required()) {
    // Requests without framing have no body (GET and friends).
    phase_ = Phase::kComplete;
  } else {
    // Close-delimited response body.
    phase_ = Phase::kBody;
  }
}

void MessageParser::advance() {
  for (;;) {
    switch (phase_) {
      case Phase::kStartLine: {
        std::string line;
        if (!take_line(line)) return;
        if (line.empty()) continue;  // tolerate leading blank lines
        if (!parse_start_line(line)) {
          fail(ParseError::kBadStartLine);
          return;
        }
        phase_ = Phase::kHeaders;
        continue;
      }
      case Phase::kHeaders: {
        std::string line;
        if (!take_line(line)) return;
        if (line.empty()) {
          finish_headers();
          if (failed()) return;
          continue;
        }
        const auto colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
          fail(ParseError::kBadHeader);
          return;
        }
        headers_ref().add(trim(line.substr(0, colon)),
                          trim(line.substr(colon + 1)));
        continue;
      }
      case Phase::kBody: {
        if (has_content_length_) {
          const std::size_t need = content_length_ - body_ref().size();
          const std::size_t take = std::min(need, buffer_.size());
          body_ref().append(buffer_, 0, take);
          buffer_.erase(0, take);
          if (body_ref().size() == content_length_) {
            phase_ = Phase::kComplete;
            continue;
          }
          return;  // need more bytes
        }
        // Close-delimited: absorb everything until on_connection_closed().
        body_ref() += buffer_;
        buffer_.clear();
        if (body_ref().size() > body_limit_) fail(ParseError::kBodyTooLarge);
        return;
      }
      case Phase::kChunkSize: {
        std::string line;
        if (!take_line(line)) return;
        char* end = nullptr;
        const unsigned long long n = std::strtoull(line.c_str(), &end, 16);
        if (end == line.c_str()) {
          fail(ParseError::kBadChunk);
          return;
        }
        chunk_remaining_ = static_cast<std::size_t>(n);
        if (body_ref().size() + chunk_remaining_ > body_limit_) {
          fail(ParseError::kBodyTooLarge);
          return;
        }
        phase_ = chunk_remaining_ == 0 ? Phase::kChunkTrailer : Phase::kChunkData;
        continue;
      }
      case Phase::kChunkData: {
        const std::size_t take = std::min(chunk_remaining_, buffer_.size());
        body_ref().append(buffer_, 0, take);
        buffer_.erase(0, take);
        chunk_remaining_ -= take;
        if (chunk_remaining_ > 0) return;
        // Consume the CRLF after the chunk.
        if (buffer_.size() < 2) return;
        if (buffer_[0] != '\r' || buffer_[1] != '\n') {
          fail(ParseError::kBadChunk);
          return;
        }
        buffer_.erase(0, 2);
        phase_ = Phase::kChunkSize;
        continue;
      }
      case Phase::kChunkTrailer: {
        std::string line;
        if (!take_line(line)) return;
        if (line.empty()) {
          phase_ = Phase::kComplete;
          continue;
        }
        continue;  // trailer headers ignored
      }
      case Phase::kComplete:
        return;
    }
  }
}

std::optional<HttpRequest> RequestParser::take() {
  if (failed() || phase_ != Phase::kComplete) return std::nullopt;
  HttpRequest out = std::move(current_);
  reset_message();
  phase_ = Phase::kStartLine;
  advance();  // a pipelined next message may already be buffered
  return out;
}

bool RequestParser::parse_start_line(const std::string& line) {
  const auto sp1 = line.find(' ');
  const auto sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return false;
  current_.method = line.substr(0, sp1);
  current_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  current_.version = line.substr(sp2 + 1);
  return !current_.method.empty() && !current_.target.empty() &&
         current_.version.rfind("HTTP/", 0) == 0;
}

std::optional<HttpResponse> ResponseParser::take() {
  if (failed()) return std::nullopt;
  if (phase_ != Phase::kComplete) {
    if (!(close_delimited_ && phase_ == Phase::kBody)) return std::nullopt;
  }
  HttpResponse out = std::move(current_);
  reset_message();
  close_delimited_ = false;
  phase_ = Phase::kStartLine;
  advance();
  return out;
}

void ResponseParser::on_connection_closed() {
  // Only a close-delimited body (no framing headers) completes on FIN.
  if (phase_ == Phase::kBody && !has_content_length_ && !chunked_) {
    close_delimited_ = true;
  }
}

bool ResponseParser::parse_start_line(const std::string& line) {
  const auto sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  current_.version = line.substr(0, sp1);
  if (current_.version.rfind("HTTP/", 0) != 0) return false;
  const auto sp2 = line.find(' ', sp1 + 1);
  const std::string code =
      sp2 == std::string::npos ? line.substr(sp1 + 1) : line.substr(sp1 + 1, sp2 - sp1 - 1);
  current_.status = std::atoi(code.c_str());
  current_.reason = sp2 == std::string::npos ? "" : line.substr(sp2 + 1);
  return current_.status >= 100 && current_.status <= 599;
}

}  // namespace bnm::http
