#include "methods/java_methods.h"

#include <memory>
#include <utility>

#include "browser/java_applet.h"

namespace bnm::methods {

// -------------------------------------------------------------- Java HTTP

JavaHttpMethod::JavaHttpMethod(bool post) : post_{post} {
  info_.kind = post ? ProbeKind::kJavaPost : ProbeKind::kJavaGet;
  info_.name = post ? "Java applet POST" : "Java applet GET";
  info_.approach = "HTTP-based";
  info_.technology = "Java applet";
  info_.availability = "Plug-in";
  info_.verb = post ? "POST" : "GET";
  info_.same_origin = MethodInfo::SameOrigin::kYesBypassable;
  info_.example_tools = {};
}

namespace {
struct HttpRunState {
  std::unique_ptr<browser::JavaAppletRuntime> runtime;
  std::unique_ptr<browser::JavaAppletRuntime::UrlConnection> url;
  std::shared_ptr<std::function<void()>> measure;
  MethodRunResult result;
  std::function<void(MethodRunResult)> done;
  int measurement = 0;
  bool cancelled = false;
  bool settled = false;

  void cleanup() {
    url.reset();
    runtime.reset();
    measure.reset();
  }
};
}  // namespace

void JavaHttpMethod::run(const MethodContext& ctx,
                         std::function<void(MethodRunResult)> done) {
  browser::Browser& b = *ctx.browser;
  auto state = std::make_shared<HttpRunState>();
  state->done = std::move(done);

  if (!b.profile().supports_java) {
    state->result.error = "Java not available";
    finish_run(b.sim(), state);
    return;
  }

  arm_cancel([w = std::weak_ptr<HttpRunState>(state)] {
    if (auto s = w.lock()) {
      s->cancelled = true;
      s->cleanup();
    }
  });

  const ProbeKind kind = info_.kind;
  b.load_container_page(kind, [this, &b, state, ctx] {
    if (state->cancelled) return;
    state->runtime = std::make_unique<browser::JavaAppletRuntime>(
        b, browser::JavaAppletRuntime::Options{ctx.java_use_nanotime,
                                               ctx.java_via_appletviewer});
    browser::TimingApi& clock = state->runtime->timing();
    state->url = std::make_unique<browser::JavaAppletRuntime::UrlConnection>(
        *state->runtime);
    auto* url = state->url.get();

    state->measure = std::make_shared<std::function<void()>>();
    auto* measure = state->measure.get();
    *measure = [this, &b, state, url, &clock, measure] {
      ++state->measurement;
      ProbeTimestamps& ts =
          state->measurement == 1 ? state->result.m1 : state->result.m2;
      url->set_on_complete([&b, state, &clock, measure, &ts](
                               int, const std::string&) {
        stamp(clock, b.sim(), ts.t_b_r, ts.true_recv);
        if (state->measurement == 1) {
          (*measure)();
        } else {
          state->result.ok = true;
          finish_run(b.sim(), state);
        }
      });
      url->set_on_error([&b, state](const std::string& err) {
        state->result.error = err;
        finish_run(b.sim(), state);
      });
      stamp(clock, b.sim(), ts.t_b_s, ts.true_send);
      url->load(post_ ? "POST" : "GET", post_ ? "/sink" : "/echo",
                post_ ? "x" : "");
    };
    (*measure)();
  });
}

// ------------------------------------------------------------ Java socket

JavaSocketMethod::JavaSocketMethod(bool udp) : udp_{udp} {
  info_.kind = udp ? ProbeKind::kJavaUdp : ProbeKind::kJavaSocket;
  info_.name = udp ? "Java applet UDP socket" : "Java applet TCP socket";
  info_.approach = "Socket-based";
  info_.technology = "Java applet";
  info_.availability = "Plug-in";
  info_.verb = udp ? "UDP" : "TCP";
  info_.same_origin = MethodInfo::SameOrigin::kNo;
  info_.measures_loss = udp;
  info_.example_tools = {"Netalyzr", "HMN", "JavaNws", "Pingtest.net", "NDT",
                         "AuditMyPC (Java)"};
}

namespace {
struct SocketRunState {
  std::unique_ptr<browser::JavaAppletRuntime> runtime;
  std::unique_ptr<browser::JavaAppletRuntime::Socket> tcp;
  std::unique_ptr<browser::JavaAppletRuntime::DatagramSocket> udp;
  std::shared_ptr<std::function<void()>> measure;
  MethodRunResult result;
  std::function<void(MethodRunResult)> done;
  int measurement = 0;
  bool cancelled = false;
  bool settled = false;

  void cleanup() {
    tcp.reset();
    udp.reset();
    runtime.reset();
    measure.reset();
  }
};
}  // namespace

void JavaSocketMethod::run(const MethodContext& ctx,
                           std::function<void(MethodRunResult)> done) {
  browser::Browser& b = *ctx.browser;
  auto state = std::make_shared<SocketRunState>();
  state->done = std::move(done);

  if (!b.profile().supports_java) {
    state->result.error = "Java not available";
    finish_run(b.sim(), state);
    return;
  }

  arm_cancel([w = std::weak_ptr<SocketRunState>(state)] {
    if (auto s = w.lock()) {
      s->cancelled = true;
      s->cleanup();
    }
  });

  b.load_container_page(info_.kind, [this, &b, state, ctx] {
    if (state->cancelled) return;
    state->runtime = std::make_unique<browser::JavaAppletRuntime>(
        b, browser::JavaAppletRuntime::Options{ctx.java_use_nanotime,
                                               ctx.java_via_appletviewer});
    browser::TimingApi& clock = state->runtime->timing();

    state->measure = std::make_shared<std::function<void()>>();
    auto* measure = state->measure.get();

    if (udp_) {
      state->udp =
          std::make_unique<browser::JavaAppletRuntime::DatagramSocket>(
              *state->runtime);
      auto* sock = state->udp.get();
      if (!ctx.probe_timeout.is_zero()) {
        // UDP has no failure signal: a lost probe or reply would block the
        // applet's receive() forever without SO_TIMEOUT.
        sock->set_so_timeout(ctx.probe_timeout);
        sock->set_on_timeout([&b, state, sock] {
          if (state->result.ok || state->cancelled) return;
          state->result.error = "receive timed out";
          sock->close();
          finish_run(b.sim(), state);
        });
      }
      *measure = [&b, state, sock, &clock, measure, ctx] {
        ++state->measurement;
        ProbeTimestamps& ts =
            state->measurement == 1 ? state->result.m1 : state->result.m2;
        sock->set_on_receive([&b, state, sock, &clock, measure, &ts](
                                 net::Endpoint, const std::string&) {
          stamp(clock, b.sim(), ts.t_b_r, ts.true_recv);
          if (state->measurement == 1) {
            (*measure)();
          } else {
            state->result.ok = true;
            sock->close();
            finish_run(b.sim(), state);
          }
        });
        stamp(clock, b.sim(), ts.t_b_s, ts.true_send);
        sock->send_to(ctx.udp_echo, "PROBE-RTT-16byte");
      };
      (*measure)();
      return;
    }

    state->tcp =
        std::make_unique<browser::JavaAppletRuntime::Socket>(*state->runtime);
    auto* sock = state->tcp.get();
    *measure = [&b, state, sock, &clock, measure] {
      ++state->measurement;
      ProbeTimestamps& ts =
          state->measurement == 1 ? state->result.m1 : state->result.m2;
      sock->set_on_data([&b, state, sock, &clock, measure, &ts](
                            const std::string&) {
        stamp(clock, b.sim(), ts.t_b_r, ts.true_recv);
        if (state->measurement == 1) {
          (*measure)();
        } else {
          state->result.ok = true;
          sock->close();
          finish_run(b.sim(), state);
        }
      });
      stamp(clock, b.sim(), ts.t_b_s, ts.true_send);
      sock->write("PROBE-RTT-16byte");
    };
    sock->set_on_error([&b, state, sock](const std::string& err) {
      if (state->result.ok || state->cancelled) return;
      state->result.error = err;
      sock->close();
      finish_run(b.sim(), state);
    });
    sock->set_on_connect([measure] { (*measure)(); });
    sock->connect(ctx.tcp_echo);
  });
}

}  // namespace bnm::methods
