// DOM-element measurement method: insert an <img> tag, time onload.
#pragma once

#include "methods/method.h"

namespace bnm::methods {

class DomMethod : public MeasurementMethod {
 public:
  DomMethod();

  const MethodInfo& info() const override { return info_; }
  void run(const MethodContext& ctx,
           std::function<void(MethodRunResult)> done) override;

 private:
  MethodInfo info_;
};

}  // namespace bnm::methods
