// Flash plugin methods: URLLoader GET/POST and the Flash TCP socket.
#pragma once

#include "methods/method.h"

namespace bnm::methods {

class FlashHttpMethod : public MeasurementMethod {
 public:
  explicit FlashHttpMethod(bool post);

  const MethodInfo& info() const override { return info_; }
  void run(const MethodContext& ctx,
           std::function<void(MethodRunResult)> done) override;

 private:
  bool post_;
  MethodInfo info_;
};

class FlashSocketMethod : public MeasurementMethod {
 public:
  FlashSocketMethod();

  const MethodInfo& info() const override { return info_; }
  void run(const MethodContext& ctx,
           std::function<void(MethodRunResult)> done) override;

 private:
  MethodInfo info_;
};

}  // namespace bnm::methods
