#include "methods/flash_methods.h"

#include <memory>
#include <utility>

#include "browser/flash.h"

namespace bnm::methods {

// ------------------------------------------------------------- Flash HTTP

FlashHttpMethod::FlashHttpMethod(bool post) : post_{post} {
  info_.kind = post ? ProbeKind::kFlashPost : ProbeKind::kFlashGet;
  info_.name = post ? "Flash POST" : "Flash GET";
  info_.approach = "HTTP-based";
  info_.technology = "Flash";
  info_.availability = "Plug-in";
  info_.verb = post ? "POST" : "GET";
  info_.same_origin = MethodInfo::SameOrigin::kYesBypassable;
  info_.example_tools =
      post ? std::vector<std::string>{"Speedtest.net", "InternetFrog"}
           : std::vector<std::string>{"Speedtest.net", "AuditMyPC",
                                      "Speedchecker", "Bandwidth Meter"};
}

namespace {
struct HttpRunState {
  std::unique_ptr<browser::FlashRuntime> runtime;
  std::unique_ptr<browser::FlashRuntime::URLLoader> loader;
  std::shared_ptr<std::function<void()>> measure;
  MethodRunResult result;
  std::function<void(MethodRunResult)> done;
  int measurement = 0;
  bool cancelled = false;
  bool settled = false;

  void cleanup() {
    loader.reset();
    runtime.reset();
    measure.reset();
  }
};
}  // namespace

void FlashHttpMethod::run(const MethodContext& ctx,
                          std::function<void(MethodRunResult)> done) {
  browser::Browser& b = *ctx.browser;
  auto state = std::make_shared<HttpRunState>();
  state->done = std::move(done);

  if (!b.profile().supports_flash) {
    state->result.error = "Flash not available";
    finish_run(b.sim(), state);
    return;
  }

  arm_cancel([w = std::weak_ptr<HttpRunState>(state)] {
    if (auto s = w.lock()) {
      s->cancelled = true;
      s->cleanup();
    }
  });

  const ProbeKind kind = info_.kind;
  b.load_container_page(kind, [this, &b, state, kind] {
    if (state->cancelled) return;
    browser::TimingApi& clock = b.clock(b.profile().clock_for(kind, false));
    state->runtime = std::make_unique<browser::FlashRuntime>(b);
    state->loader =
        std::make_unique<browser::FlashRuntime::URLLoader>(*state->runtime);
    auto* loader = state->loader.get();

    state->measure = std::make_shared<std::function<void()>>();
    auto* measure = state->measure.get();
    *measure = [this, &b, state, loader, &clock, measure] {
      ++state->measurement;
      ProbeTimestamps& ts =
          state->measurement == 1 ? state->result.m1 : state->result.m2;
      loader->set_on_complete([&b, state, &clock, measure, &ts](
                                  int, const std::string&) {
        stamp(clock, b.sim(), ts.t_b_r, ts.true_recv);
        if (state->measurement == 1) {
          (*measure)();
        } else {
          state->result.ok = true;
          finish_run(b.sim(), state);
        }
      });
      loader->set_on_error([&b, state](const std::string& err) {
        state->result.error = err;
        finish_run(b.sim(), state);
      });
      stamp(clock, b.sim(), ts.t_b_s, ts.true_send);
      loader->load(post_ ? "POST" : "GET", post_ ? "/sink" : "/echo",
                   post_ ? "x" : "");
    };
    (*measure)();
  });
}

// ----------------------------------------------------------- Flash socket

FlashSocketMethod::FlashSocketMethod() {
  info_.kind = ProbeKind::kFlashSocket;
  info_.name = "Flash TCP socket";
  info_.approach = "Socket-based";
  info_.technology = "Flash";
  info_.availability = "Plug-in";
  info_.verb = "TCP";
  info_.same_origin = MethodInfo::SameOrigin::kYesBypassable;
  info_.example_tools = {"Speedtest.net"};
}

namespace {
struct SocketRunState {
  std::unique_ptr<browser::FlashRuntime> runtime;
  std::unique_ptr<browser::FlashRuntime::Socket> socket;
  std::shared_ptr<std::function<void()>> measure;
  MethodRunResult result;
  std::function<void(MethodRunResult)> done;
  int measurement = 0;
  bool cancelled = false;
  bool settled = false;

  void cleanup() {
    socket.reset();
    runtime.reset();
    measure.reset();
  }
};
}  // namespace

void FlashSocketMethod::run(const MethodContext& ctx,
                            std::function<void(MethodRunResult)> done) {
  browser::Browser& b = *ctx.browser;
  auto state = std::make_shared<SocketRunState>();
  state->done = std::move(done);

  if (!b.profile().supports_flash) {
    state->result.error = "Flash not available";
    finish_run(b.sim(), state);
    return;
  }

  arm_cancel([w = std::weak_ptr<SocketRunState>(state)] {
    if (auto s = w.lock()) {
      s->cancelled = true;
      s->cleanup();
    }
  });

  b.load_container_page(ProbeKind::kFlashSocket, [&b, state, ctx] {
    if (state->cancelled) return;
    browser::TimingApi& clock =
        b.clock(b.profile().clock_for(ProbeKind::kFlashSocket, false));
    state->runtime = std::make_unique<browser::FlashRuntime>(b);
    state->socket =
        std::make_unique<browser::FlashRuntime::Socket>(*state->runtime);
    auto* sock = state->socket.get();

    state->measure = std::make_shared<std::function<void()>>();
    auto* measure = state->measure.get();
    *measure = [&b, state, sock, &clock, measure] {
      ++state->measurement;
      ProbeTimestamps& ts =
          state->measurement == 1 ? state->result.m1 : state->result.m2;
      sock->set_on_socket_data([&b, state, sock, &clock, measure, &ts](
                                   const std::string&) {
        stamp(clock, b.sim(), ts.t_b_r, ts.true_recv);
        if (state->measurement == 1) {
          (*measure)();
        } else {
          state->result.ok = true;
          sock->close();
          finish_run(b.sim(), state);
        }
      });
      stamp(clock, b.sim(), ts.t_b_s, ts.true_send);
      sock->write("PROBE-RTT-16byte");
    };

    sock->set_on_error([&b, state](const std::string& err) {
      state->result.error = err;
      finish_run(b.sim(), state);
    });
    // Preparation: cross-domain policy fetch + TCP connect both happen
    // before the first probe, so the measurement excludes them.
    sock->set_on_connect([measure] { (*measure)(); });
    sock->connect(ctx.tcp_echo);
  });
}

}  // namespace bnm::methods
