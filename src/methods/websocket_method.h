// WebSocket measurement method: message-based socket probes, native in the
// browser - the paper's most accurate/consistent DOM-context option.
#pragma once

#include "methods/method.h"

namespace bnm::methods {

class WebSocketMethod : public MeasurementMethod {
 public:
  WebSocketMethod();

  const MethodInfo& info() const override { return info_; }
  void run(const MethodContext& ctx,
           std::function<void(MethodRunResult)> done) override;

 private:
  MethodInfo info_;
};

}  // namespace bnm::methods
