// Java applet methods: URL GET/POST, TCP socket, and UDP socket (the UDP
// method appears in Table 1 but was excluded from the paper's runs; we
// implement it as an extension).
#pragma once

#include "methods/method.h"

namespace bnm::methods {

class JavaHttpMethod : public MeasurementMethod {
 public:
  explicit JavaHttpMethod(bool post);

  const MethodInfo& info() const override { return info_; }
  void run(const MethodContext& ctx,
           std::function<void(MethodRunResult)> done) override;

 private:
  bool post_;
  MethodInfo info_;
};

class JavaSocketMethod : public MeasurementMethod {
 public:
  explicit JavaSocketMethod(bool udp);

  const MethodInfo& info() const override { return info_; }
  void run(const MethodContext& ctx,
           std::function<void(MethodRunResult)> done) override;

 private:
  bool udp_;
  MethodInfo info_;
};

}  // namespace bnm::methods
