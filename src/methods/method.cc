#include "methods/method.h"

namespace bnm::methods {

std::string MethodInfo::same_origin_text() const {
  switch (same_origin) {
    case SameOrigin::kYes: return "Yes";
    case SameOrigin::kYesBypassable: return "Yes*";
    case SameOrigin::kNo: return "No";
  }
  return "?";
}

std::string MethodInfo::metrics_text() const {
  std::string out;
  if (measures_rtt) out += "RTT";
  if (measures_tput) out += out.empty() ? "Tput" : ", Tput";
  if (measures_loss) out += out.empty() ? "Loss" : ", Loss";
  return out;
}

}  // namespace bnm::methods
