#include "methods/xhr_methods.h"

#include <memory>
#include <utility>

#include "browser/xhr.h"

namespace bnm::methods {

XhrMethod::XhrMethod(bool post) : post_{post} {
  info_.kind = post ? ProbeKind::kXhrPost : ProbeKind::kXhrGet;
  info_.name = post ? "XHR POST" : "XHR GET";
  info_.approach = "HTTP-based";
  info_.technology = "XHR";
  info_.availability = "Native";
  info_.verb = post ? "POST" : "GET";
  info_.same_origin = MethodInfo::SameOrigin::kYes;
  info_.example_tools = post
                            ? std::vector<std::string>{"Janc's methods"}
                            : std::vector<std::string>{"Speedof.me",
                                                       "BandwidthPlace",
                                                       "Janc's methods"};
}

namespace {
struct RunState {
  std::unique_ptr<browser::XmlHttpRequest> xhr;
  std::shared_ptr<std::function<void()>> measure;
  MethodRunResult result;
  std::function<void(MethodRunResult)> done;
  int measurement = 0;  // 1 or 2
  bool cancelled = false;
  bool settled = false;

  void cleanup() {
    xhr.reset();
    measure.reset();
  }
};
}  // namespace

void XhrMethod::run(const MethodContext& ctx,
                    std::function<void(MethodRunResult)> done) {
  browser::Browser& b = *ctx.browser;
  auto state = std::make_shared<RunState>();
  state->done = std::move(done);
  arm_cancel([w = std::weak_ptr<RunState>(state)] {
    if (auto s = w.lock()) {
      s->cancelled = true;
      s->cleanup();
    }
  });

  const ProbeKind kind = info_.kind;
  const bool perf_now = ctx.js_use_performance_now;
  b.load_container_page(kind, [this, &b, state, kind, perf_now] {
    if (state->cancelled) return;
    browser::TimingApi& clock =
        b.clock(b.profile().clock_for(kind, /*java_use_nanotime=*/false,
                                      perf_now));

    // The measurement code: instantiate the object once, use it twice.
    state->xhr = std::make_unique<browser::XmlHttpRequest>(b);
    auto* xhr = state->xhr.get();
    xhr->set_onerror([&b, state](const std::string& err) {
      if (state->result.ok || state->cancelled) return;
      state->result.error = err;
      finish_run(b.sim(), state);
    });

    state->measure = std::make_shared<std::function<void()>>();
    auto* measure = state->measure.get();
    *measure = [this, &b, state, xhr, &clock, measure] {
      ++state->measurement;
      ProbeTimestamps& ts = state->measurement == 1 ? state->result.m1
                                                    : state->result.m2;
      if (!xhr->open(post_ ? "POST" : "GET", post_ ? "/sink" : "/echo")) {
        state->result.error = "open failed";
        finish_run(b.sim(), state);
        return;
      }
      xhr->set_onreadystatechange([this, &b, state, xhr, &clock, measure, &ts] {
        if (xhr->ready_state() != browser::XmlHttpRequest::ReadyState::kDone) {
          return;
        }
        if (xhr->status() == 0) return;  // network error; onerror settles
        stamp(clock, b.sim(), ts.t_b_r, ts.true_recv);
        if (state->measurement == 1) {
          (*measure)();  // second probe immediately, reusing the object
        } else {
          state->result.ok = true;
          finish_run(b.sim(), state);
        }
      });
      // tB_s just before sending the request (Figure 1 protocol).
      stamp(clock, b.sim(), ts.t_b_s, ts.true_send);
      if (!xhr->send(post_ ? "x" : "")) {
        state->result.error = "send failed";
        finish_run(b.sim(), state);
      }
    };
    (*measure)();
  });
}

}  // namespace bnm::methods
