#include "methods/registry.h"

#include <stdexcept>

#include "methods/dom_method.h"
#include "methods/flash_methods.h"
#include "methods/java_methods.h"
#include "methods/websocket_method.h"
#include "methods/xhr_methods.h"

namespace bnm::methods {

std::unique_ptr<MeasurementMethod> make_method(ProbeKind kind) {
  switch (kind) {
    case ProbeKind::kXhrGet: return std::make_unique<XhrMethod>(false);
    case ProbeKind::kXhrPost: return std::make_unique<XhrMethod>(true);
    case ProbeKind::kDom: return std::make_unique<DomMethod>();
    case ProbeKind::kFlashGet: return std::make_unique<FlashHttpMethod>(false);
    case ProbeKind::kFlashPost: return std::make_unique<FlashHttpMethod>(true);
    case ProbeKind::kFlashSocket: return std::make_unique<FlashSocketMethod>();
    case ProbeKind::kJavaGet: return std::make_unique<JavaHttpMethod>(false);
    case ProbeKind::kJavaPost: return std::make_unique<JavaHttpMethod>(true);
    case ProbeKind::kJavaSocket: return std::make_unique<JavaSocketMethod>(false);
    case ProbeKind::kJavaUdp: return std::make_unique<JavaSocketMethod>(true);
    case ProbeKind::kWebSocket: return std::make_unique<WebSocketMethod>();
  }
  throw std::invalid_argument("unknown ProbeKind");
}

std::vector<std::unique_ptr<MeasurementMethod>> paper_methods() {
  std::vector<std::unique_ptr<MeasurementMethod>> out;
  for (ProbeKind k : {ProbeKind::kXhrGet, ProbeKind::kXhrPost, ProbeKind::kDom,
                      ProbeKind::kWebSocket, ProbeKind::kFlashGet,
                      ProbeKind::kFlashPost, ProbeKind::kFlashSocket,
                      ProbeKind::kJavaGet, ProbeKind::kJavaPost,
                      ProbeKind::kJavaSocket}) {
    out.push_back(make_method(k));
  }
  return out;
}

std::vector<std::unique_ptr<MeasurementMethod>> all_methods() {
  auto out = paper_methods();
  out.push_back(make_method(ProbeKind::kJavaUdp));
  return out;
}

}  // namespace bnm::methods
