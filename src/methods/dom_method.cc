#include "methods/dom_method.h"

#include <memory>
#include <utility>

#include "browser/dom.h"

namespace bnm::methods {

DomMethod::DomMethod() {
  info_.kind = ProbeKind::kDom;
  info_.name = "DOM";
  info_.approach = "HTTP-based";
  info_.technology = "DOM";
  info_.availability = "Native";
  info_.verb = "GET";
  info_.same_origin = MethodInfo::SameOrigin::kNo;
  info_.example_tools = {"Janc's methods", "BandwidthPlace", "Wang's method"};
}

namespace {
struct RunState {
  std::unique_ptr<browser::DomElementLoader> loader;
  std::shared_ptr<std::function<void()>> measure;
  MethodRunResult result;
  std::function<void(MethodRunResult)> done;
  int measurement = 0;
  bool cancelled = false;
  bool settled = false;

  void cleanup() {
    loader.reset();
    measure.reset();
  }
};
}  // namespace

void DomMethod::run(const MethodContext& ctx,
                    std::function<void(MethodRunResult)> done) {
  browser::Browser& b = *ctx.browser;
  auto state = std::make_shared<RunState>();
  state->done = std::move(done);
  arm_cancel([w = std::weak_ptr<RunState>(state)] {
    if (auto s = w.lock()) {
      s->cancelled = true;
      s->cleanup();
    }
  });

  const bool perf_now = ctx.js_use_performance_now;
  b.load_container_page(ProbeKind::kDom, [&b, state, perf_now] {
    if (state->cancelled) return;
    browser::TimingApi& clock =
        b.clock(b.profile().clock_for(ProbeKind::kDom, false, perf_now));
    state->loader = std::make_unique<browser::DomElementLoader>(
        b, browser::DomElementLoader::Tag::kImg);
    auto* loader = state->loader.get();

    state->measure = std::make_shared<std::function<void()>>();
    auto* measure = state->measure.get();
    *measure = [&b, state, loader, &clock, measure] {
      ++state->measurement;
      ProbeTimestamps& ts =
          state->measurement == 1 ? state->result.m1 : state->result.m2;
      loader->set_onload([&b, state, &clock, measure, &ts] {
        stamp(clock, b.sim(), ts.t_b_r, ts.true_recv);
        if (state->measurement == 1) {
          (*measure)();
        } else {
          state->result.ok = true;
          finish_run(b.sim(), state);
        }
      });
      loader->set_onerror([&b, state](const std::string& err) {
        state->result.error = err;
        finish_run(b.sim(), state);
      });
      stamp(clock, b.sim(), ts.t_b_s, ts.true_send);
      // Cache-bust so the second insertion fetches over the network.
      loader->load("/echo?r=" + std::to_string(state->measurement));
    };
    (*measure)();
  });
}

}  // namespace bnm::methods
