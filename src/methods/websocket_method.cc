#include "methods/websocket_method.h"

#include <memory>
#include <utility>

#include "browser/websocket_api.h"

namespace bnm::methods {

WebSocketMethod::WebSocketMethod() {
  info_.kind = ProbeKind::kWebSocket;
  info_.name = "WebSocket";
  info_.approach = "Socket-based";
  info_.technology = "WebSocket";
  info_.availability = "Native";
  info_.verb = "TCP";
  info_.same_origin = MethodInfo::SameOrigin::kNo;
  info_.example_tools = {};
}

namespace {
struct RunState {
  std::unique_ptr<browser::BrowserWebSocket> ws;
  std::shared_ptr<std::function<void()>> measure;
  MethodRunResult result;
  std::function<void(MethodRunResult)> done;
  int measurement = 0;
  bool cancelled = false;
  bool settled = false;

  void cleanup() {
    ws.reset();
    measure.reset();
  }
};
}  // namespace

void WebSocketMethod::run(const MethodContext& ctx,
                          std::function<void(MethodRunResult)> done) {
  browser::Browser& b = *ctx.browser;
  auto state = std::make_shared<RunState>();
  state->done = std::move(done);

  if (!b.profile().supports_websocket) {
    state->result.error = "WebSocket not supported (Table 2)";
    finish_run(b.sim(), state);
    return;
  }

  arm_cancel([w = std::weak_ptr<RunState>(state)] {
    if (auto s = w.lock()) {
      s->cancelled = true;
      s->cleanup();
    }
  });

  b.load_container_page(ProbeKind::kWebSocket, [&b, state, ctx] {
    if (state->cancelled) return;
    browser::TimingApi& clock = b.clock(b.profile().clock_for(
        ProbeKind::kWebSocket, false, ctx.js_use_performance_now));
    // Preparation: the WebSocket handshake completes before any probe, so
    // the measurement never includes connection setup.
    state->ws = std::make_unique<browser::BrowserWebSocket>(b, ctx.ws_server,
                                                            ctx.ws_path);
    auto* sock = state->ws.get();

    state->measure = std::make_shared<std::function<void()>>();
    auto* measure = state->measure.get();
    *measure = [&b, state, sock, &clock, measure] {
      ++state->measurement;
      ProbeTimestamps& ts =
          state->measurement == 1 ? state->result.m1 : state->result.m2;
      sock->set_onmessage([&b, state, sock, &clock, measure, &ts](
                              const std::string&) {
        stamp(clock, b.sim(), ts.t_b_r, ts.true_recv);
        if (state->measurement == 1) {
          (*measure)();
        } else {
          state->result.ok = true;
          sock->close();
          finish_run(b.sim(), state);
        }
      });
      stamp(clock, b.sim(), ts.t_b_s, ts.true_send);
      sock->send("PROBE-RTT-16byte");
    };

    sock->set_onerror([&b, state](const std::string& err) {
      if (state->result.ok || state->cancelled) return;
      state->result.error = err;
      finish_run(b.sim(), state);
    });
    sock->set_onclose([&b, state](std::uint16_t code) {
      // An abnormal close (1006: transport died) before the second probe
      // completes means the run cannot finish - surface it as an error.
      if (state->result.ok || state->cancelled) return;
      state->result.error = "connection closed (" + std::to_string(code) + ")";
      finish_run(b.sim(), state);
    });
    sock->set_onopen([measure] { (*measure)(); });
  });
}

}  // namespace bnm::methods
