// XHR GET / XHR POST measurement methods (JavaScript-native HTTP).
#pragma once

#include "methods/method.h"

namespace bnm::methods {

class XhrMethod : public MeasurementMethod {
 public:
  explicit XhrMethod(bool post);

  const MethodInfo& info() const override { return info_; }
  void run(const MethodContext& ctx,
           std::function<void(MethodRunResult)> done) override;

 private:
  bool post_;
  MethodInfo info_;
};

}  // namespace bnm::methods
