// MeasurementMethod: one row of the paper's Table 1.
//
// A method knows how to execute the two-phase protocol of Figure 1 inside a
// Browser session: preparation (load the container page, set up objects /
// sockets) and measurement (two back-to-back RTT probes, the second reusing
// the object created for the first - Δd1 and Δd2 in the paper).
//
// Methods record only *browser-level* timestamps, read through the timing
// API the real implementation would use. Ground truth comes from the packet
// capture, outside the method's reach - exactly the separation the paper
// enforces.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "browser/profile.h"
#include "obs/prof.h"

namespace bnm::methods {

using browser::ProbeKind;

/// Static description (Table 1 row).
struct MethodInfo {
  ProbeKind kind = ProbeKind::kXhrGet;
  std::string name;        ///< "XHR GET"
  std::string approach;    ///< "HTTP-based" or "Socket-based"
  std::string technology;  ///< "XHR", "DOM", "Flash", "Java applet", "WebSocket"
  std::string availability;  ///< "Native" or "Plug-in"
  std::string verb;          ///< "GET", "POST", "TCP", "UDP"

  enum class SameOrigin { kYes, kYesBypassable, kNo };
  SameOrigin same_origin = SameOrigin::kYes;

  bool measures_rtt = true;
  bool measures_tput = true;
  bool measures_loss = false;

  std::vector<std::string> example_tools;  ///< services in the Table 1 cell

  std::string same_origin_text() const;
  std::string metrics_text() const;
};

/// One browser-level probe: timestamps as the measurement code saw them,
/// plus the true instants those reads happened (used only to window the
/// packet capture, the way the paper lines up browser logs with pcaps).
struct ProbeTimestamps {
  sim::TimePoint t_b_s;       ///< browser clock at send
  sim::TimePoint t_b_r;       ///< browser clock at receive
  sim::TimePoint true_send;   ///< true instant of the tB_s read
  sim::TimePoint true_recv;   ///< true instant of the tB_r read

  sim::Duration browser_rtt() const { return t_b_r - t_b_s; }
};

struct MethodRunResult {
  bool ok = false;
  std::string error;
  ProbeTimestamps m1;  ///< first measurement (fresh object) -> Δd1
  ProbeTimestamps m2;  ///< second measurement (object reused) -> Δd2
};

/// Everything a method needs from the testbed.
struct MethodContext {
  browser::Browser* browser = nullptr;
  net::Endpoint http_server;  ///< container page + HTTP probes (port 80)
  net::Endpoint tcp_echo;     ///< raw TCP echo service
  net::Endpoint udp_echo;     ///< UDP echo service
  net::Endpoint ws_server;    ///< WebSocket echo endpoint
  std::string ws_path = "/ws";

  /// Java applet options (§4.2 / Table 4 / Fig. 4b).
  bool java_use_nanotime = false;
  bool java_via_appletviewer = false;
  /// Read JS timestamps via performance.now() where the browser has it.
  bool js_use_performance_now = false;

  /// Per-probe wait bound for methods that block on a reply with no
  /// transport-level failure signal (Java UDP SO_TIMEOUT). Zero = wait
  /// forever (the Experiment's sample deadline is then the only bound).
  sim::Duration probe_timeout = sim::Duration::zero();
};

class MeasurementMethod {
 public:
  virtual ~MeasurementMethod() = default;

  virtual const MethodInfo& info() const = 0;

  /// Execute preparation + both measurements. `done` fires exactly once on
  /// success or error; it may fire synchronously on setup failure.
  virtual void run(const MethodContext& ctx,
                   std::function<void(MethodRunResult)> done) = 0;

  /// Abandon the in-flight run without delivering a result: tears down the
  /// run-state registered via arm_cancel() (sockets, plugin objects, the
  /// self-referential continuation), so a deadline-expired run cannot leak
  /// or call back later. Safe to call when no run is active.
  void cancel() {
    if (!cancel_) return;
    auto teardown = std::move(cancel_);
    cancel_ = nullptr;
    teardown();
  }

 protected:
  /// Implementations register their teardown at the start of run(); it is
  /// disarmed automatically when the run finishes normally.
  void arm_cancel(std::function<void()> teardown) {
    cancel_ = std::move(teardown);
  }
  void disarm_cancel() { cancel_ = nullptr; }

 private:
  std::function<void()> cancel_;
};

/// Helper shared by implementations: read a timing API now. Every method's
/// probe send and receive path stamps through here, so the profiling scope
/// counts (and times) both sides of every probe.
inline void stamp(browser::TimingApi& clock, sim::Simulation& sim,
                  sim::TimePoint& api_value, sim::TimePoint& true_value) {
  BNM_PROF_SCOPE("method.stamp");
  true_value = sim.now();
  api_value = clock.read(true_value);
}

/// Deliver the result and break the run-state's reference cycles.
///
/// Method run-states hold measurement objects whose callbacks capture the
/// run-state (and a self-referential `measure` continuation); without an
/// explicit break the state would keep itself alive forever. Cleanup is
/// deferred one event so it never destroys a callback that is still
/// executing.
/// Idempotent: under faults several failure signals can race for the same
/// run (transport error, close, SO_TIMEOUT) - only the first one wins.
template <typename State>
void finish_run(sim::Simulation& sim, const std::shared_ptr<State>& state) {
  if (state->settled) return;
  state->settled = true;
  state->done(state->result);
  sim.scheduler().schedule_after(sim::Duration::zero(),
                                 [state] { state->cleanup(); });
}

}  // namespace bnm::methods
