// Method registry: construct any method by ProbeKind, enumerate the paper's
// ten methods (Table 1 minus Java UDP), or all eleven.
#pragma once

#include <memory>
#include <vector>

#include "methods/method.h"

namespace bnm::methods {

/// Factory for a single method.
std::unique_ptr<MeasurementMethod> make_method(ProbeKind kind);

/// The ten methods the paper evaluates, in Figure 3's (a)-(j) order:
/// XHR GET, XHR POST, DOM, WebSocket, Flash GET, Flash POST, Flash socket,
/// Java GET, Java POST, Java socket.
std::vector<std::unique_ptr<MeasurementMethod>> paper_methods();

/// All eleven (adds Java UDP).
std::vector<std::unique_ptr<MeasurementMethod>> all_methods();

}  // namespace bnm::methods
