#include "stats/boxplot.h"

#include <algorithm>
#include <cassert>

#include "stats/descriptive.h"

namespace bnm::stats {

BoxStats box_stats(std::vector<double> xs) {
  assert(!xs.empty());
  std::sort(xs.begin(), xs.end());

  BoxStats b;
  b.n = xs.size();
  b.q1 = quantile_sorted(xs, 0.25);
  b.median = quantile_sorted(xs, 0.5);
  b.q3 = quantile_sorted(xs, 0.75);

  const double fence_lo = b.q1 - 1.5 * b.iqr();
  const double fence_hi = b.q3 + 1.5 * b.iqr();

  b.whisker_lo = b.q1;  // fallbacks if everything on a side is an outlier
  b.whisker_hi = b.q3;
  bool saw_inlier = false;
  for (double x : xs) {
    if (x < fence_lo) {
      b.outliers_lo.push_back(x);
    } else if (x > fence_hi) {
      b.outliers_hi.push_back(x);
    } else {
      if (!saw_inlier) {
        b.whisker_lo = x;
        saw_inlier = true;
      }
      b.whisker_hi = x;  // xs is sorted; last inlier wins
    }
  }
  return b;
}

}  // namespace bnm::stats
