#include "stats/boxplot.h"

#include <algorithm>
#include <cassert>

#include "stats/descriptive.h"

namespace bnm::stats {

namespace {

// Whiskers and outliers for quantiles already in `b`; `first`/`last` bound
// the scan order so the sorted path keeps its ascending outlier output and
// the unsorted path can run over raw data (outliers sorted afterwards).
template <typename It>
void scan_whiskers(BoxStats& b, It first, It last) {
  const double fence_lo = b.q1 - 1.5 * b.iqr();
  const double fence_hi = b.q3 + 1.5 * b.iqr();

  b.whisker_lo = b.q1;  // fallbacks if everything on a side is an outlier
  b.whisker_hi = b.q3;
  bool saw_inlier = false;
  for (It it = first; it != last; ++it) {
    const double x = *it;
    if (x < fence_lo) {
      b.outliers_lo.push_back(x);
    } else if (x > fence_hi) {
      b.outliers_hi.push_back(x);
    } else if (!saw_inlier) {
      b.whisker_lo = x;
      b.whisker_hi = x;
      saw_inlier = true;
    } else {
      b.whisker_lo = std::min(b.whisker_lo, x);
      b.whisker_hi = std::max(b.whisker_hi, x);
    }
  }
}

}  // namespace

BoxStats box_stats(std::vector<double> xs) {
  assert(!xs.empty());

  BoxStats b;
  b.n = xs.size();
  // Three selections on one scratch buffer instead of a full sort: the box
  // needs only Q1/median/Q3, and the whisker scan below is order-free.
  quartiles_select(xs, &b.q1, &b.median, &b.q3);

  scan_whiskers(b, xs.begin(), xs.end());
  std::sort(b.outliers_lo.begin(), b.outliers_lo.end());
  std::sort(b.outliers_hi.begin(), b.outliers_hi.end());
  return b;
}

BoxStats box_stats_sorted(const std::vector<double>& sorted) {
  assert(!sorted.empty());
  assert(std::is_sorted(sorted.begin(), sorted.end()));

  BoxStats b;
  b.n = sorted.size();
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.5);
  b.q3 = quantile_sorted(sorted, 0.75);
  scan_whiskers(b, sorted.begin(), sorted.end());  // outliers come out sorted
  return b;
}

}  // namespace bnm::stats
