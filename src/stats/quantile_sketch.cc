#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bnm::stats {

namespace {
double nan_value() { return std::numeric_limits<double>::quiet_NaN(); }
}  // namespace

QuantileSketch::QuantileSketch(Grid grid) : grid_{grid} {
  assert(grid_.lo > 0 && grid_.hi > grid_.lo && grid_.cells > 0);
  log_lo_ = std::log(grid_.lo);
  step_ = std::log(grid_.hi / grid_.lo) / grid_.cells;
  inv_step_ = 1.0 / step_;
  ratio_ = std::exp(step_);
  buckets_.assign(2 * static_cast<std::size_t>(grid_.cells) + 1, 0);
}

std::size_t QuantileSketch::cell_for(double value_ms) const {
  const std::size_t zero = static_cast<std::size_t>(grid_.cells);
  const double mag = std::fabs(value_ms);
  if (!(mag >= grid_.lo)) return zero;  // |v| < lo and NaN both land here
  auto k = static_cast<long>((std::log(mag) - log_lo_) * inv_step_);
  k = std::clamp(k, 0L, static_cast<long>(grid_.cells) - 1);
  return value_ms < 0 ? zero - 1 - static_cast<std::size_t>(k)
                      : zero + 1 + static_cast<std::size_t>(k);
}

void QuantileSketch::cell_edges(std::size_t cell, double* lower,
                                double* upper) const {
  const std::size_t zero = static_cast<std::size_t>(grid_.cells);
  if (cell == zero) {
    *lower = -grid_.lo;
    *upper = grid_.lo;
    return;
  }
  const std::size_t k = cell > zero ? cell - zero - 1 : zero - 1 - cell;
  const double near = grid_.lo * std::exp(step_ * static_cast<double>(k));
  const double far = near * ratio_;
  if (cell > zero) {
    *lower = near;
    *upper = far;
  } else {
    *lower = -far;
    *upper = -near;
  }
}

void QuantileSketch::insert(double value_ms) {
  if (std::isnan(value_ms)) return;  // no defined rank; drop, don't poison
  ++buckets_[cell_for(value_ms)];
  if (count_ == 0) {
    min_ = max_ = value_ms;
  } else {
    min_ = std::min(min_, value_ms);
    max_ = std::max(max_, value_ms);
  }
  ++count_;
  sum_ns_ += std::llround(value_ms * 1e6);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  assert(grid_ == other.grid_);
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double QuantileSketch::min() const { return count_ ? min_ : nan_value(); }
double QuantileSketch::max() const { return count_ ? max_ : nan_value(); }

double QuantileSketch::mean() const {
  if (count_ == 0) return nan_value();
  return static_cast<double>(sum_ns_) / 1e6 / static_cast<double>(count_);
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return nan_value();
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Type-7-style fractional rank over the grouped counts: find the cell
  // holding rank `pos`, interpolate linearly inside it, and clamp to the
  // exact extremes so the answer never leaves the observed range.
  const double pos = q * static_cast<double>(count_ - 1);
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t m = buckets_[i];
    if (m == 0) continue;
    if (pos < static_cast<double>(before + m)) {
      double lower = 0, upper = 0;
      cell_edges(i, &lower, &upper);
      const double f = (pos - static_cast<double>(before)) /
                       static_cast<double>(m);
      return std::clamp(lower + f * (upper - lower), min_, max_);
    }
    before += m;
  }
  return max_;  // pos == count_ - 1 exactly (fp edge)
}

std::size_t QuantileSketch::memory_bytes() const {
  return sizeof(*this) + buckets_.capacity() * sizeof(std::uint64_t);
}

obs::json::Value QuantileSketch::to_json() const {
  using obs::json::Value;
  Value v = Value::object();
  v.add("lo", Value::number(grid_.lo));
  v.add("hi", Value::number(grid_.hi));
  v.add("cells", Value::integer(grid_.cells));
  v.add("count", Value::integer(static_cast<std::int64_t>(count_)));
  v.add("min", Value::number(count_ ? min_ : 0.0));
  v.add("max", Value::number(count_ ? max_ : 0.0));
  v.add("sum_ns", Value::integer(sum_ns_));
  Value buckets = Value::array();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    Value pair = Value::array();
    pair.push(Value::integer(static_cast<std::int64_t>(i)));
    pair.push(Value::integer(static_cast<std::int64_t>(buckets_[i])));
    buckets.push(std::move(pair));
  }
  v.add("buckets", std::move(buckets));
  return v;
}

bool QuantileSketch::from_json(const obs::json::Value& v, QuantileSketch* out) {
  using obs::json::Value;
  if (!v.is_object()) return false;
  const Value* lo = v.find("lo");
  const Value* hi = v.find("hi");
  const Value* cells = v.find("cells");
  const Value* count = v.find("count");
  const Value* min_v = v.find("min");
  const Value* max_v = v.find("max");
  const Value* sum = v.find("sum_ns");
  const Value* buckets = v.find("buckets");
  if (!lo || !lo->is_number() || !hi || !hi->is_number() || !cells ||
      !cells->is_int() || !count || !count->is_int() || !min_v ||
      !min_v->is_number() || !max_v || !max_v->is_number() || !sum ||
      !sum->is_int() || !buckets || !buckets->is_array()) {
    return false;
  }
  Grid grid;
  grid.lo = lo->as_double();
  grid.hi = hi->as_double();
  grid.cells = static_cast<int>(cells->as_int());
  if (!(grid.lo > 0) || !(grid.hi > grid.lo) || grid.cells < 1 ||
      grid.cells > (1 << 20) || count->as_int() < 0) {
    return false;
  }
  QuantileSketch sketch{grid};
  sketch.count_ = static_cast<std::uint64_t>(count->as_int());
  sketch.min_ = min_v->as_double();
  sketch.max_ = max_v->as_double();
  sketch.sum_ns_ = sum->as_int();
  std::uint64_t total = 0;
  for (const Value& pair : buckets->items()) {
    if (!pair.is_array() || pair.items().size() != 2 ||
        !pair.items()[0].is_int() || !pair.items()[1].is_int()) {
      return false;
    }
    const std::int64_t idx = pair.items()[0].as_int();
    const std::int64_t n = pair.items()[1].as_int();
    if (idx < 0 || static_cast<std::size_t>(idx) >= sketch.buckets_.size() ||
        n < 1) {
      return false;
    }
    sketch.buckets_[static_cast<std::size_t>(idx)] =
        static_cast<std::uint64_t>(n);
    total += static_cast<std::uint64_t>(n);
  }
  if (total != sketch.count_) return false;
  *out = std::move(sketch);
  return true;
}

}  // namespace bnm::stats
