// Descriptive statistics used throughout the appraisal pipeline.
//
// All functions take samples as a vector of doubles (the experiment layer
// converts Durations to milliseconds before summarizing, matching the
// paper's reporting units).
#pragma once

#include <cstddef>
#include <vector>

namespace bnm::stats {

double mean(const std::vector<double>& xs);
/// Sample variance (n-1 denominator). Returns 0 for n < 2.
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
/// Empty input returns quiet NaN (a defined sentinel in every build mode —
/// the old assert-only guard compiled out in Release and read past the end).
double min(const std::vector<double>& xs);
double max(const std::vector<double>& xs);

/// Linear-interpolation quantile (type 7, the R/NumPy default).
/// `q` in [0, 1]. Input need not be sorted. Empty input returns quiet NaN.
/// Selection-based (std::nth_element): O(n), no full sort.
double quantile(std::vector<double> xs, double q);
/// Quantile of an already ascending-sorted vector (no copy).
/// Empty input returns quiet NaN.
double quantile_sorted(const std::vector<double>& sorted, double q);
/// In-place selection quantile over a scratch buffer the caller owns;
/// partially reorders `xs`. Lets one buffer serve several quantiles
/// without a copy per call (boxplot, iqr). Empty input returns quiet NaN.
double quantile_select(std::vector<double>& xs, double q);

/// Q1/median/Q3 with three selections over one caller-owned scratch buffer
/// (partially reorders `xs`; no sort, no copy). The shared quartile path of
/// summarize() and box_stats(). Empty input sets all three to quiet NaN.
void quartiles_select(std::vector<double>& xs, double* q1, double* median,
                      double* q3);

double median(const std::vector<double>& xs);

/// Median absolute deviation (robust spread).
double mad(const std::vector<double>& xs);

/// Interquartile range (Q3 - Q1).
double iqr(const std::vector<double>& xs);

/// Five-number summary + mean. Computed by selection (no full sort):
/// three nth_element quartiles plus one linear min/max/mean/variance pass.
struct Summary {
  std::size_t n = 0;
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  double mean = 0, stddev = 0;
};
/// In-place over a caller-owned scratch buffer (partially reorders `xs`);
/// large per-shard summaries stop paying an O(n log n) sort per call.
Summary summarize_select(std::vector<double>& xs);
/// Convenience copy-in wrapper around summarize_select.
Summary summarize(std::vector<double> xs);

}  // namespace bnm::stats
