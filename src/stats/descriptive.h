// Descriptive statistics used throughout the appraisal pipeline.
//
// All functions take samples as a vector of doubles (the experiment layer
// converts Durations to milliseconds before summarizing, matching the
// paper's reporting units).
#pragma once

#include <cstddef>
#include <vector>

namespace bnm::stats {

double mean(const std::vector<double>& xs);
/// Sample variance (n-1 denominator). Returns 0 for n < 2.
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double min(const std::vector<double>& xs);
double max(const std::vector<double>& xs);

/// Linear-interpolation quantile (type 7, the R/NumPy default).
/// `q` in [0, 1]. Input need not be sorted. Undefined for empty input.
/// Selection-based (std::nth_element): O(n), no full sort.
double quantile(std::vector<double> xs, double q);
/// Quantile of an already ascending-sorted vector (no copy).
double quantile_sorted(const std::vector<double>& sorted, double q);
/// In-place selection quantile over a scratch buffer the caller owns;
/// partially reorders `xs`. Lets one buffer serve several quantiles
/// without a copy per call (boxplot, iqr).
double quantile_select(std::vector<double>& xs, double q);

double median(const std::vector<double>& xs);

/// Median absolute deviation (robust spread).
double mad(const std::vector<double>& xs);

/// Interquartile range (Q3 - Q1).
double iqr(const std::vector<double>& xs);

/// Five-number summary + mean in one pass over a sorted copy.
struct Summary {
  std::size_t n = 0;
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  double mean = 0, stddev = 0;
};
Summary summarize(std::vector<double> xs);

}  // namespace bnm::stats
