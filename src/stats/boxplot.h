// Box-and-whisker statistics with the paper's outlier rule.
//
// The paper (Section 4): "The top and bottom of the box are given by the
// 75th percentile and 25th percentile, and the mark inside is the median.
// The upper and lower whiskers are the maximum and minimum, respectively,
// after excluding the outliers. The outliers above the upper whiskers are
// those exceeding 1.5 of the upper quartile, and those below the minimum
// are less than 1.5 of the lower quartile."
//
// That is the standard Tukey rule: a point x is an outlier iff
//   x > Q3 + 1.5 * IQR  or  x < Q1 - 1.5 * IQR.
#pragma once

#include <vector>

namespace bnm::stats {

struct BoxStats {
  std::size_t n = 0;
  double q1 = 0;          ///< 25th percentile (bottom of the box)
  double median = 0;      ///< mark inside the box
  double q3 = 0;          ///< 75th percentile (top of the box)
  double whisker_lo = 0;  ///< min after excluding outliers
  double whisker_hi = 0;  ///< max after excluding outliers
  std::vector<double> outliers_lo;  ///< points below Q1 - 1.5*IQR, ascending
  std::vector<double> outliers_hi;  ///< points above Q3 + 1.5*IQR, ascending

  double iqr() const { return q3 - q1; }
  std::size_t outlier_count() const {
    return outliers_lo.size() + outliers_hi.size();
  }
};

/// Compute box statistics with the Tukey 1.5*IQR fence. Undefined for empty
/// input (asserts in debug builds). Selection-based: O(n) quantiles plus a
/// linear whisker/outlier scan; only the (small) outlier lists are sorted.
BoxStats box_stats(std::vector<double> xs);

/// Same statistics from an already ascending-sorted sample — the sorted
/// whisker-scan path for callers that keep sorted data around (CDFs).
BoxStats box_stats_sorted(const std::vector<double>& sorted);

}  // namespace bnm::stats
