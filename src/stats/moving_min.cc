#include "stats/moving_min.h"

#include <limits>

namespace bnm::stats {

MovingMin::MovingMin(std::size_t window) : window_{window ? window : 1} {}

double MovingMin::push(double value) {
  const std::uint64_t index = pushes_++;
  // Evict entries that fell out of the window.
  while (!deque_.empty() && deque_.front().index + window_ <= index) {
    deque_.pop_front();
  }
  // Pop dominated entries: anything >= value can never be the minimum
  // again while `value` is in the window.
  while (!deque_.empty() && deque_.back().value >= value) {
    deque_.pop_back();
  }
  deque_.push_back(Entry{index, value});
  return deque_.front().value;
}

double MovingMin::min() const {
  if (deque_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return deque_.front().value;
}

void MovingMin::reset() {
  deque_.clear();
  pushes_ = 0;
}

}  // namespace bnm::stats
