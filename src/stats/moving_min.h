// Sliding-window minimum tracker (à la pollere/DlyLoc's movingmin.hpp).
//
// Delay-measurement pipelines use the minimum of recent RTT samples as the
// propagation-delay baseline: queueing and scheduling noise only ever add
// delay, so min-filtering recovers the floor. The campaign layer
// (core/campaign.h) runs one MovingMin per client over its per-run network
// RTTs and aggregates `sample - window_min` ("RTT inflation") into a
// campaign-wide sketch — the same front-door move continuous host-stack
// latency monitors make.
//
// Implementation: the classic monotonic deque. Each push evicts entries
// older than the window and pops dominated entries from the back, so min()
// is O(1) and push() is amortized O(1) with at most `window` entries live.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace bnm::stats {

class MovingMin {
 public:
  /// `window` = number of most recent push() calls the minimum covers
  /// (>= 1; 0 is clamped to 1).
  explicit MovingMin(std::size_t window = 16);

  /// Add a sample and return the window minimum including it.
  double push(double value);

  /// Minimum over the last `window` samples; NaN before the first push.
  double min() const;

  bool empty() const { return pushes_ == 0; }
  std::size_t window() const { return window_; }
  std::uint64_t pushes() const { return pushes_; }

  void reset();

 private:
  struct Entry {
    std::uint64_t index;
    double value;
  };

  std::size_t window_;
  std::uint64_t pushes_ = 0;
  std::deque<Entry> deque_;  ///< values ascending front-to-back
};

}  // namespace bnm::stats
