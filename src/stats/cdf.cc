#include "stats/cdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bnm::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_{std::move(samples)} {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::inverse(double p) const {
  assert(!sorted_.empty());
  assert(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  const auto idx = static_cast<std::size_t>(std::ceil(p * n)) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::sample_curve(
    double lo, double hi, std::size_t points) const {
  assert(points >= 2);
  std::vector<Point> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(Point{x, at(x)});
  }
  return out;
}

std::vector<double> EmpiricalCdf::mass_levels(double tol, double min_frac) const {
  std::vector<double> levels;
  if (sorted_.empty()) return levels;
  const auto n = static_cast<double>(sorted_.size());
  std::size_t i = 0;
  while (i < sorted_.size()) {
    // Grow a cluster of samples within `tol` of the cluster's first element.
    std::size_t j = i;
    while (j < sorted_.size() && sorted_[j] - sorted_[i] <= tol) ++j;
    const double frac = static_cast<double>(j - i) / n;
    if (frac >= min_frac) {
      double sum = 0.0;
      for (std::size_t k = i; k < j; ++k) sum += sorted_[k];
      levels.push_back(sum / static_cast<double>(j - i));
    }
    i = j;
  }
  return levels;
}

double EmpiricalCdf::ks_distance(const EmpiricalCdf& other) const {
  double d = 0.0;
  for (double x : sorted_) d = std::max(d, std::fabs(at(x) - other.at(x)));
  for (double x : other.sorted_) d = std::max(d, std::fabs(at(x) - other.at(x)));
  return d;
}

}  // namespace bnm::stats
