// Two-sample Kolmogorov-Smirnov test: are two overhead distributions the
// same? Makes the paper's cross-browser "consistency" comparisons rigorous
// instead of eyeballed: a method is platform-consistent when its per-case
// Δd samples are KS-indistinguishable.
#pragma once

#include <vector>

namespace bnm::stats {

struct KsResult {
  double statistic = 0;  ///< sup |F1 - F2|
  double p_value = 1;    ///< asymptotic (Kolmogorov distribution)
  /// Reject "same distribution" at the given alpha.
  bool reject(double alpha = 0.05) const { return p_value < alpha; }
};

/// Two-sample KS with the asymptotic p-value
/// Q_KS(sqrt(ne)+0.12+0.11/sqrt(ne)) * D), ne = n1*n2/(n1+n2)
/// (Numerical Recipes form; good for n >= ~8 per side).
KsResult ks_two_sample(std::vector<double> a, std::vector<double> b);

/// The Kolmogorov survival function Q_KS(lambda) = 2 sum (-1)^{j-1}
/// exp(-2 j^2 lambda^2). Exposed for tests.
double kolmogorov_q(double lambda);

}  // namespace bnm::stats
