#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace bnm::stats {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

namespace {
double empty_sentinel() { return std::numeric_limits<double>::quiet_NaN(); }
}  // namespace

double min(const std::vector<double>& xs) {
  if (xs.empty()) return empty_sentinel();
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  if (xs.empty()) return empty_sentinel();
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return empty_sentinel();
  assert(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile_select(std::vector<double>& xs, double q) {
  if (xs.empty()) return empty_sentinel();
  assert(q >= 0.0 && q <= 1.0);
  if (xs.size() == 1) return xs.front();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto nth = xs.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(xs.begin(), nth, xs.end());
  const double vlo = *nth;
  if (frac == 0.0 || lo + 1 >= xs.size()) return vlo;
  // The interpolation partner is the smallest element of the upper
  // partition — one linear pass instead of a second selection.
  const double vhi = *std::min_element(nth + 1, xs.end());
  return vlo + frac * (vhi - vlo);
}

double quantile(std::vector<double> xs, double q) {
  return quantile_select(xs, q);
}

double median(const std::vector<double>& xs) { return quantile(xs, 0.5); }

double mad(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double med = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return median(dev);
}

double iqr(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> scratch = xs;
  const double q1 = quantile_select(scratch, 0.25);
  const double q3 = quantile_select(scratch, 0.75);
  return q3 - q1;
}

void quartiles_select(std::vector<double>& xs, double* q1, double* median,
                      double* q3) {
  *q1 = quantile_select(xs, 0.25);
  *median = quantile_select(xs, 0.5);
  *q3 = quantile_select(xs, 0.75);
}

Summary summarize_select(std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  s.n = xs.size();
  quartiles_select(xs, &s.q1, &s.median, &s.q3);
  // One linear pass for the order-free moments and extremes (the quartile
  // selections above left xs partially reordered, which is fine here).
  double lo = xs.front(), hi = xs.front(), acc = 0.0;
  for (double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    acc += x;
  }
  s.min = lo;
  s.max = hi;
  s.mean = acc / static_cast<double>(s.n);
  if (s.n > 1) {
    double dev = 0.0;
    for (double x : xs) dev += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(dev / static_cast<double>(s.n - 1));
  }
  return s;
}

Summary summarize(std::vector<double> xs) { return summarize_select(xs); }

}  // namespace bnm::stats
