#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace bnm::stats {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  assert(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

double median(const std::vector<double>& xs) { return quantile(xs, 0.5); }

double mad(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double med = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return median(dev);
}

double iqr(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> s = xs;
  std::sort(s.begin(), s.end());
  return quantile_sorted(s, 0.75) - quantile_sorted(s, 0.25);
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.n = xs.size();
  s.min = xs.front();
  s.max = xs.back();
  s.q1 = quantile_sorted(xs, 0.25);
  s.median = quantile_sorted(xs, 0.5);
  s.q3 = quantile_sorted(xs, 0.75);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

}  // namespace bnm::stats
