#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace bnm::stats {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  assert(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile_select(std::vector<double>& xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  if (xs.size() == 1) return xs.front();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto nth = xs.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(xs.begin(), nth, xs.end());
  const double vlo = *nth;
  if (frac == 0.0 || lo + 1 >= xs.size()) return vlo;
  // The interpolation partner is the smallest element of the upper
  // partition — one linear pass instead of a second selection.
  const double vhi = *std::min_element(nth + 1, xs.end());
  return vlo + frac * (vhi - vlo);
}

double quantile(std::vector<double> xs, double q) {
  return quantile_select(xs, q);
}

double median(const std::vector<double>& xs) { return quantile(xs, 0.5); }

double mad(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double med = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return median(dev);
}

double iqr(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> scratch = xs;
  const double q1 = quantile_select(scratch, 0.25);
  const double q3 = quantile_select(scratch, 0.75);
  return q3 - q1;
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.n = xs.size();
  s.min = xs.front();
  s.max = xs.back();
  s.q1 = quantile_sorted(xs, 0.25);
  s.median = quantile_sorted(xs, 0.5);
  s.q3 = quantile_sorted(xs, 0.75);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

}  // namespace bnm::stats
