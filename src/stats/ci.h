// Confidence intervals for the mean (Table 4 reports mean +- 95% CI).
//
// Uses the Student-t distribution with an embedded two-sided 95%/99%
// critical-value table (exact for df <= 30, asymptotic beyond), so the
// library needs no external math dependencies.
#pragma once

#include <vector>

namespace bnm::stats {

struct ConfidenceInterval {
  double mean = 0;
  double half_width = 0;  ///< the "+-" part
  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
  bool contains(double x) const { return x >= lo() && x <= hi(); }
};

/// Two-sided Student-t critical value for the given confidence level
/// (supported: 0.95 and 0.99) and degrees of freedom (>= 1).
double t_critical(double confidence, std::size_t df);

/// Mean +- t * s / sqrt(n). For n < 2 the half-width is 0.
ConfidenceInterval mean_ci(const std::vector<double>& xs,
                           double confidence = 0.95);

}  // namespace bnm::stats
