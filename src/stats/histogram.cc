#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace bnm::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  assert(hi > lo);
  assert(bins >= 1);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / w);
  bin = std::min(bin, counts_.size() - 1);  // guards float edge at hi_
  ++counts_[bin];
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::mode_center() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  const auto bin = static_cast<std::size_t>(it - counts_.begin());
  return (bin_lo(bin) + bin_hi(bin)) / 2.0;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%9.3f, %9.3f) %6zu |", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0) out += "underflow: " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0) out += "overflow: " + std::to_string(overflow_) + "\n";
  return out;
}

}  // namespace bnm::stats
