// Mergeable streaming quantile sketch for campaign-scale aggregation.
//
// A fleet campaign (core/campaign.h) simulates 10^5..10^6 clients; storing
// every Δd sample to sort later would cost O(clients·samples) memory. The
// sketch replaces that with a fixed sign-symmetric logarithmic grid of
// integer bucket counts plus exact {count, min, max, integer sum} — a few
// KB of state per shard, independent of how many samples stream through.
//
// Design choice (DESIGN.md §3h): a *grid* sketch rather than t-digest/KLL.
// Randomized or compaction-based sketches are functions of insertion order,
// so merging N shard sketches cannot reproduce the 1-shard run bit for bit.
// Here every piece of state is an exact integer (bucket counts, fixed-point
// value sum) or an order-free double (min/max), so merge() is exact,
// commutative and associative — an N-shard campaign report is byte-identical
// to the 1-shard serial run's, which scripts/check.sh gates on every run.
//
// Error bound: quantile() returns a value within one grid cell of an exact
// sample quantile — relative value error <= cell_ratio() - 1 (default grid:
// 512 cells per sign over [1 µs, 100 s] in ms units, ~3.7% per cell) for
// magnitudes inside the grid span; magnitudes below `lo` collapse into the
// zero cell (absolute error <= lo) and values beyond `hi` clamp to the
// exact min/max. Rank error follows from value error: the returned value's
// empirical rank differs from q by at most the mass of one cell
// (tests/test_campaign_sketch.cpp property-checks both against
// stats::quantile_sorted on uniform/lognormal/adversarial streams).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/json.h"

namespace bnm::stats {

class QuantileSketch {
 public:
  struct Grid {
    double lo = 1e-3;   ///< smallest resolved magnitude (ms): 1 µs
    double hi = 1e5;    ///< largest resolved magnitude (ms): 100 s
    int cells = 512;    ///< log-spaced cells per sign
    bool operator==(const Grid&) const = default;
  };

  QuantileSketch() : QuantileSketch(Grid{}) {}
  explicit QuantileSketch(Grid grid);

  void insert(double value_ms);

  /// Exact integer merge: bucket counts, count and fixed-point sum add;
  /// min/max take extrema. Commutative and associative, so any shard
  /// grouping and any merge order produce identical state. Grids must
  /// match (asserted; mismatch is a programming error).
  void merge(const QuantileSketch& other);

  /// Approximate type-7-style quantile (q in [0,1]); NaN when empty.
  /// Within one grid cell of the exact sample quantile (see header note).
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double min() const;   ///< exact; NaN when empty
  double max() const;   ///< exact; NaN when empty
  double mean() const;  ///< from the fixed-point sum; NaN when empty
  /// Exact sum of inserted values in integer nanoseconds (value_ms * 1e6,
  /// rounded half away from zero) — the mergeable form of the mean.
  std::int64_t sum_ns() const { return sum_ns_; }

  const Grid& grid() const { return grid_; }
  /// Geometric width of one cell (upper/lower edge ratio).
  double cell_ratio() const { return ratio_; }
  /// Bytes held by this sketch (the O(shards) memory accounting used by
  /// bench/campaign_scale).
  std::size_t memory_bytes() const;

  /// Deterministic JSON state: grid, exact fields, and the non-zero bucket
  /// cells as sorted [index, count] pairs (sparse — campaign checkpoints
  /// stay small). from_json round-trips bit-exactly.
  obs::json::Value to_json() const;
  static bool from_json(const obs::json::Value& v, QuantileSketch* out);

  bool operator==(const QuantileSketch&) const = default;

 private:
  /// Cell index for a value: [0, cells) negative magnitudes descending,
  /// cells = the |v| < lo zero cell, (cells, 2*cells] positive magnitudes.
  std::size_t cell_for(double value_ms) const;
  /// [lower, upper] value edges of one cell.
  void cell_edges(std::size_t cell, double* lower, double* upper) const;

  Grid grid_;
  double log_lo_ = 0;    ///< ln(grid_.lo)
  double inv_step_ = 0;  ///< cells / ln(hi/lo)
  double step_ = 0;      ///< ln(hi/lo) / cells
  double ratio_ = 1;     ///< e^step
  std::uint64_t count_ = 0;
  std::int64_t sum_ns_ = 0;
  double min_ = 0, max_ = 0;  ///< valid iff count_ > 0
  std::vector<std::uint64_t> buckets_;  ///< 2*cells + 1
};

}  // namespace bnm::stats
