// Fixed-bin histogram used by reports and the granularity analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bnm::stats {

class Histogram {
 public:
  /// Bins [lo, hi) split into `bins` equal-width buckets, plus underflow
  /// and overflow counters.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  /// Center of the fullest bin (ties: lowest bin wins).
  double mode_center() const;

  /// Simple ASCII rendering, one bin per line, bar scaled to `width`.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace bnm::stats
