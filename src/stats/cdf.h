// Empirical cumulative distribution function, as plotted in Figure 4.
#pragma once

#include <cstddef>
#include <vector>

namespace bnm::stats {

/// Empirical CDF over a fixed sample. Immutable once built.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F(x) = P[X <= x] with the step convention (right-continuous).
  double at(double x) const;

  /// Smallest sample value v with F(v) >= p (the empirical quantile).
  double inverse(double p) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

  /// Evaluate at evenly spaced points across [lo, hi]; used by renderers.
  struct Point {
    double x;
    double f;
  };
  std::vector<Point> sample_curve(double lo, double hi, std::size_t points) const;

  /// Detect discrete "levels": values around which at least `min_frac` of
  /// the probability mass is concentrated within +-`tol`. The paper uses
  /// this to show the two quantization levels of Date.getTime() (Fig. 4).
  std::vector<double> mass_levels(double tol, double min_frac) const;

  /// Kolmogorov-Smirnov distance to another empirical CDF.
  double ks_distance(const EmpiricalCdf& other) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace bnm::stats
