#include "stats/ci.h"

#include <array>
#include <cassert>
#include <cmath>

#include "stats/descriptive.h"

namespace bnm::stats {

namespace {
// Two-sided critical values t_{alpha/2, df} for df = 1..30.
constexpr std::array<double, 30> kT95 = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
constexpr std::array<double, 30> kT99 = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};
// Selected larger df (40, 60, 120, inf) for interpolation beyond 30.
struct TailPoint {
  std::size_t df;
  double t95;
  double t99;
};
constexpr std::array<TailPoint, 4> kTail = {{{40, 2.021, 2.704},
                                             {60, 2.000, 2.660},
                                             {120, 1.980, 2.617},
                                             {100000, 1.960, 2.576}}};
}  // namespace

double t_critical(double confidence, std::size_t df) {
  assert(df >= 1);
  const bool is95 = std::fabs(confidence - 0.95) < 1e-9;
  const bool is99 = std::fabs(confidence - 0.99) < 1e-9;
  assert((is95 || is99) && "only 95% and 99% tables embedded");
  (void)is99;
  if (df <= 30) return is95 ? kT95[df - 1] : kT99[df - 1];
  double prev_df = 30;
  double prev_t = is95 ? kT95[29] : kT99[29];
  for (const auto& p : kTail) {
    const double t = is95 ? p.t95 : p.t99;
    if (df <= p.df) {
      // Interpolate in 1/df, the conventional approach for t-tables.
      const double a = 1.0 / static_cast<double>(df);
      const double a0 = 1.0 / prev_df;
      const double a1 = 1.0 / static_cast<double>(p.df);
      const double w = (a0 - a) / (a0 - a1);
      return prev_t + w * (t - prev_t);
    }
    prev_df = static_cast<double>(p.df);
    prev_t = t;
  }
  return is95 ? 1.960 : 2.576;
}

ConfidenceInterval mean_ci(const std::vector<double>& xs, double confidence) {
  ConfidenceInterval ci;
  ci.mean = mean(xs);
  if (xs.size() < 2) return ci;
  const double s = stddev(xs);
  const double t = t_critical(confidence, xs.size() - 1);
  ci.half_width = t * s / std::sqrt(static_cast<double>(xs.size()));
  return ci;
}

}  // namespace bnm::stats
