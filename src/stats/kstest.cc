#include "stats/kstest.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bnm::stats {

double kolmogorov_q(double lambda) {
  if (lambda <= 0) return 1.0;
  // Alternating series; converges very fast for lambda > ~0.3.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_two_sample(std::vector<double> a, std::vector<double> b) {
  KsResult out;
  if (a.empty() || b.empty()) return out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  out.statistic = d;

  const double ne = na * nb / (na + nb);
  const double sqrt_ne = std::sqrt(ne);
  out.p_value = kolmogorov_q((sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d);
  return out;
}

}  // namespace bnm::stats
