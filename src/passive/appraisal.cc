#include "passive/appraisal.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "http/client.h"
#include "stats/descriptive.h"
#include "ws/endpoint.h"

namespace bnm::passive {

namespace {

/// One ground-truth HTTP transaction on the jitter-free clock.
struct TrueExchange {
  sim::TimePoint request_at;  ///< outbound data toward the HTTP port
  double rtt_ms = 0;
};

/// Pair outbound data packets toward `server_port` with the next inbound
/// data packet from it, on the capture's true_time column — the same filter
/// discipline as core::OfflineAnalyzer, but over SoA columns. At a server
/// tap the directions flip (the request arrives inbound), so the caller
/// passes the direction the request travels in.
std::vector<TrueExchange> true_exchanges(const net::PacketCapture& cap,
                                         net::Port server_port,
                                         net::CaptureDirection request_dir) {
  std::vector<TrueExchange> out;
  bool pending = false;
  sim::TimePoint request_at;
  for (std::size_t i = 0; i < cap.size(); ++i) {
    if (!cap.carries_data(i)) continue;
    const net::Packet& pkt = cap.packet(i);
    if (cap.direction(i) == request_dir && pkt.dst.port == server_port) {
      if (!pending) {
        pending = true;
        request_at = cap.true_time(i);
      }
    } else if (cap.direction(i) != request_dir &&
               pkt.src.port == server_port && pending) {
      out.push_back(TrueExchange{
          request_at, (cap.true_time(i) - request_at).ns() / 1e6});
      pending = false;
    }
  }
  return out;
}

}  // namespace

const char* to_string(CapturePoint p) {
  return p == CapturePoint::kClient ? "client" : "server";
}

PassiveAppraisalResult::PassiveAppraisalResult()
    : abs_pair_err_ms{stats::QuantileSketch::Grid{}} {}

stats::BoxStats PassiveAppraisalResult::d1_box() const {
  return stats::box_stats(pair_err_d1_ms);
}

stats::BoxStats PassiveAppraisalResult::d2_box() const {
  return stats::box_stats(pair_err_d2_ms);
}

double PassiveAppraisalResult::median_abs_pair_err_ms() const {
  std::vector<double> abs;
  abs.reserve(pair_err_d1_ms.size() + pair_err_d2_ms.size());
  for (double e : pair_err_d1_ms) abs.push_back(std::fabs(e));
  for (double e : pair_err_d2_ms) abs.push_back(std::fabs(e));
  return stats::median(abs);
}

PassiveAppraisalResult run_passive_appraisal(const PassiveScenario& scenario) {
  core::Testbed::Config tc = scenario.testbed;
  tc.tcp.timestamps = true;  // nothing to observe without the option
  tc.capture_at_server = scenario.capture_point == CapturePoint::kServer;
  core::Testbed bed{tc};
  sim::Simulation& sim = bed.sim();

  const std::string body(scenario.response_bytes, 'x');
  bed.web_server().route("GET", "/passive", [body](const http::HttpRequest&) {
    return http::HttpResponse::make(200, body);
  });

  PassiveAppraisalResult result;
  result.label = scenario.label;
  result.capture_point = scenario.capture_point;

  if (sim.trace().enabled()) {
    sim.trace().emit(sim.now(), "passive/" + scenario.label,
                     "traffic start: " + std::to_string(scenario.http_exchanges) +
                         " GETs, " + std::to_string(scenario.ws_messages) +
                         " WS messages, tap=" +
                         to_string(scenario.capture_point));
  }

  // --- background HTTP traffic: keep-alive GET volley ---
  http::HttpClient client{bed.client()};
  bool http_done = scenario.http_exchanges <= 0;
  // The chain re-arms itself through a raw self-pointer: the whole volley
  // runs to completion inside the drive loop below, while `fire` is alive —
  // owning captures would cycle and leak.
  auto fire = std::make_unique<std::function<void(int)>>();
  *fire = [&, self = fire.get()](int remaining) {
    if (remaining <= 0) {
      http_done = true;
      client.close_all();
      return;
    }
    http::HttpRequest req;
    req.target = "/passive";
    client.request(bed.http_endpoint(), req,
                   [&, self, remaining](http::HttpResponse rsp,
                                        http::HttpClient::TransferInfo) {
                     if (rsp.status == 200) ++result.http_responses;
                     sim.scheduler().schedule_after(
                         scenario.think_gap,
                         [self, remaining] { (*self)(remaining - 1); });
                   });
  };

  // --- background WebSocket echo volley ---
  ws::WebSocketClient ws_client{bed.client()};
  std::shared_ptr<ws::WebSocketConnection> ws_conn;
  bool ws_done = scenario.ws_messages <= 0;
  if (!ws_done) {
    ws_client.connect(
        bed.ws_endpoint(), "/echo",
        [&](std::shared_ptr<ws::WebSocketConnection> conn) {
          ws_conn = conn;
          ws::WebSocketConnection::Callbacks cbs;
          cbs.on_message = [&](const ws::MessageAssembler::Message&) {
            ++result.ws_echoes;
            if (static_cast<int>(result.ws_echoes) >= scenario.ws_messages) {
              ws_done = true;
              return;
            }
            sim.scheduler().schedule_after(
                scenario.think_gap, [&] {
                  if (ws_conn) ws_conn->send_text("passive-ping");
                });
          };
          conn->set_callbacks(std::move(cbs));
          conn->send_text("passive-ping");
        });
  }
  (*fire)(scenario.http_exchanges);

  // Drive to completion (faulted scenarios may never finish every exchange:
  // the horizon caps the run instead).
  const sim::Duration per_exchange =
      scenario.think_gap + scenario.testbed.server_delay * 4 +
      sim::Duration::millis(200);
  const sim::TimePoint horizon =
      sim.now() + sim::Duration::seconds(2) +
      per_exchange * (scenario.http_exchanges + scenario.ws_messages + 2);
  while (sim.now().ns_since_epoch() < horizon.ns_since_epoch() &&
         !(http_done && ws_done)) {
    sim.scheduler().run_until(sim.now() + sim::Duration::millis(100));
  }
  // Drain teardown (FINs, delayed ACKs) so the capture ends cleanly.
  sim.scheduler().run_until(sim.now() + sim::Duration::seconds(1));

  // --- the tap ---
  const net::PacketCapture& cap = scenario.capture_point == CapturePoint::kClient
                                      ? bed.client().capture()
                                      : bed.server().capture();
  PassiveRttEstimator estimator;
  estimator.consume(cap);
  result.counters = estimator.counters();
  result.report_json = estimator.report_json(scenario.label);

  // --- ground truth 1: the same packet pair on the true clock ---
  for (const PassiveSample& s : estimator.samples()) {
    const double truth_ms =
        (cap.true_time(s.echo_index) - cap.true_time(s.anchor_index)).ns() /
        1e6;
    const double err_ms = s.rtt.ns() / 1e6 - truth_ms;
    (s.first_on_flow ? result.pair_err_d1_ms : result.pair_err_d2_ms)
        .push_back(err_ms);
    result.abs_pair_err_ms.insert(std::fabs(err_ms));
  }

  // --- ground truth 2: the transaction nearest each anchor ---
  const net::CaptureDirection request_dir =
      scenario.capture_point == CapturePoint::kClient
          ? net::CaptureDirection::kOutbound
          : net::CaptureDirection::kInbound;
  const std::vector<TrueExchange> exchanges =
      true_exchanges(cap, tc.http_port, request_dir);
  for (const PassiveSample& s : estimator.samples()) {
    if (s.from.ip != bed.client().ip() || s.to.port != tc.http_port) continue;
    const sim::TimePoint anchor_true = cap.true_time(s.anchor_index);
    double best_gap = 0;
    const TrueExchange* best = nullptr;
    for (const TrueExchange& e : exchanges) {
      const double gap =
          std::fabs((e.request_at - anchor_true).ns() / 1e6);
      if (!best || gap < best_gap) {
        best = &e;
        best_gap = gap;
      }
    }
    if (best) result.exchange_err_ms.push_back(s.rtt.ns() / 1e6 - best->rtt_ms);
  }

  if (sim.trace().enabled()) {
    sim.trace().emit(sim.now(), "passive/" + scenario.label,
                     "appraised: " + std::to_string(result.counters.samples) +
                         " samples, " +
                         std::to_string(result.http_responses) + " responses");
  }
  return result;
}

std::string render_passive_boxplots(
    const std::vector<PassiveAppraisalResult>& results) {
  std::vector<report::BoxRow> rows;
  for (const PassiveAppraisalResult& r : results) {
    const std::string base =
        r.label + " (" + to_string(r.capture_point) + ") ";
    if (!r.pair_err_d1_ms.empty()) {
      rows.push_back(report::BoxRow{base + "d1", r.d1_box()});
    }
    if (!r.pair_err_d2_ms.empty()) {
      rows.push_back(report::BoxRow{base + "d2", r.d2_box()});
    }
  }
  report::BoxPlotRenderer renderer;
  return renderer.render(rows);
}

}  // namespace bnm::passive
