// Appraising the passive estimator the way the paper appraises browser
// methods: run traffic through a testbed, measure with the method under
// test, and compare against capture ground truth.
//
// The twist is that the "method" here injects nothing. Background HTTP
// (and optionally WebSocket) traffic flows client -> server with RFC 7323
// timestamps negotiated; a PassiveRttEstimator watches the tap at the
// chosen capture point and its TSval-echo samples are appraised against
// two ground truths, both taken from the capture's jitter-free true_time
// column:
//
//   * pair error  — the same two packets (anchor, echo) timed on the true
//     clock. Isolates the estimator's observation-path error: capture
//     jitter + microsecond quantization. This is the analogue of the
//     paper's Eq. (1) Δd, and the acceptance bound (median |error| ≤ one
//     TSval tick on loss-free testbeds) applies to it.
//   * exchange error — the request/response transaction nearest the
//     sample's anchor. Folds in echo-path effects (delayed ACKs, server
//     think time), the gap a deployed pping-style monitor actually has to
//     live with.
//
// Errors split d1 (first sample per flow: handshake/fresh-connection
// territory) vs d2 (steady state), mirroring the paper's d1/d2 panels, and
// flow into the existing boxplot + quantile-sketch pipelines.
#pragma once

#include <string>
#include <vector>

#include "core/testbed.h"
#include "passive/rtt_estimator.h"
#include "report/boxplot_render.h"
#include "stats/boxplot.h"
#include "stats/quantile_sketch.h"

namespace bnm::passive {

/// Where the estimator's tap sits. The paper's WinDump placement (client
/// NIC) is the default; the server NIC sees the same flows with the roles
/// of the two ground-truth directions swapped.
enum class CapturePoint { kClient, kServer };

const char* to_string(CapturePoint p);

struct PassiveScenario {
  std::string label = "fixed";
  /// Testbed knobs (netem jitter, loss, faults, cross traffic...). The
  /// runner forces tcp.timestamps on — there is nothing to observe without
  /// the option on the wire.
  core::Testbed::Config testbed;
  CapturePoint capture_point = CapturePoint::kClient;
  int http_exchanges = 40;            ///< keep-alive GETs of /passive
  std::size_t response_bytes = 600;   ///< /passive body size
  sim::Duration think_gap = sim::Duration::millis(20);
  int ws_messages = 10;               ///< background WS echo volley (0 = off)
};

struct PassiveAppraisalResult {
  std::string label;
  CapturePoint capture_point = CapturePoint::kClient;
  PassiveCounters counters;
  std::size_t http_responses = 0;  ///< exchanges that actually completed
  std::size_t ws_echoes = 0;

  /// Pair error (sample RTT minus true packet-pair RTT, ms), split d1/d2.
  std::vector<double> pair_err_d1_ms;
  std::vector<double> pair_err_d2_ms;
  /// Exchange error (sample RTT minus nearest true request/response RTT,
  /// ms) for client-originated samples toward the HTTP port.
  std::vector<double> exchange_err_ms;
  /// |pair error| folded into the mergeable sketch pipeline (ms grid).
  stats::QuantileSketch abs_pair_err_ms;
  /// Canonical estimator report — the byte-identity artifact the offline
  /// pcap gate compares against.
  std::string report_json;

  stats::BoxStats d1_box() const;
  stats::BoxStats d2_box() const;
  /// Median |pair error| in ms across all samples (the acceptance metric).
  double median_abs_pair_err_ms() const;

  PassiveAppraisalResult();
};

/// Run one scenario end to end: testbed + traffic + tap + estimator +
/// ground-truth comparison. Deterministic in the scenario (seeded).
PassiveAppraisalResult run_passive_appraisal(const PassiveScenario& scenario);

/// Figure-3-style panel: one "<label> (point) d1" / "... d2" row pair per
/// result, on a shared ms scale.
std::string render_passive_boxplots(
    const std::vector<PassiveAppraisalResult>& results);

}  // namespace bnm::passive
