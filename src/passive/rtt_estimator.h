// Passive RTT estimation from TCP timestamp echoes — the simulator's pping.
//
// Every other estimator in the repo is *active*: it injects probes and times
// them. This one watches traffic that already exists. At any capture point
// (client NIC, switch span port, server NIC) each TCP segment carrying an
// RFC 7323 timestamp option anchors its TSval at first sight; when a segment
// in the *reverse* direction echoes that TSval in its TSecr, the gap between
// the two observations is one round trip as seen from the tap — including
// the receiver's delayed-ACK wait, exactly what a real pping reports.
//
// The matcher follows the discipline of pollere's pping/DlyLoc:
//   * first-seen anchoring: at coarse timestamp clocks (1 ms granule) many
//     segments share a TSval; only the first occurrence anchors, so the
//     sample spans from the earliest segment — later duplicates are counted,
//     not matched (RFC 7323 echoes the earliest left-edge segment anyway);
//   * one sample per anchor: cumulative ACKs repeat TSecr values; only the
//     first echo yields a sample;
//   * Karn's-rule analogue: a data segment whose sequence range was already
//     covered (retransmission, zero-window probe) poisons its TSval anchor —
//     an echo can no longer be attributed to a unique transmission, so no
//     sample is emitted for it;
//   * unidirectional visibility degrades to zero samples (counted as
//     unmatched echoes), never to wrong ones.
//
// Observation timestamps are quantized (default 1 µs — libpcap fidelity)
// before matching, so a live tap and the same capture re-read from a pcap
// file produce byte-identical reports; scripts/check.sh gates on this.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.h"
#include "net/capture.h"
#include "net/packet.h"
#include "net/pcap_reader.h"
#include "sim/time.h"

namespace bnm::passive {

/// One passively measured round trip. `from` sent the anchored TSval;
/// the echo came back from `to`. Indices are observation ordinals (capture
/// row / pcap record number) so callers can join samples back to
/// ground-truth columns.
struct PassiveSample {
  net::Endpoint from;
  net::Endpoint to;
  sim::TimePoint anchor_at;  ///< quantized observation clock
  sim::TimePoint echo_at;
  sim::Duration rtt;
  std::uint32_t tsval = 0;
  std::size_t anchor_index = 0;
  std::size_t echo_index = 0;
  bool first_on_flow = false;  ///< d1-style: first sample for (from, to)
};

/// Cumulative matcher tallies (also published as `passive.*` metrics).
struct PassiveCounters {
  std::uint64_t packets = 0;           ///< observations scanned
  std::uint64_t ts_packets = 0;        ///< carried a timestamp option
  std::uint64_t anchors = 0;           ///< new TSval anchors stored
  std::uint64_t duplicate_tsvals = 0;  ///< coarse-clock repeats (not anchored)
  std::uint64_t retransmit_poisoned = 0;  ///< anchors killed by Karn analogue
  std::uint64_t suppressed_samples = 0;   ///< echoes of poisoned anchors
  std::uint64_t samples = 0;
  std::uint64_t unmatched_echoes = 0;  ///< no anchor (unidirectional/evicted)
  std::uint64_t evicted = 0;           ///< anchors aged out of the window
  std::uint64_t half_flows = 0;        ///< directional (src,dst) pairs seen
};

class PassiveRttEstimator {
 public:
  struct Config {
    /// Observation timestamps are floored to this quantum before matching.
    /// The default matches classic libpcap's microsecond resolution, which
    /// is what makes live-tap and offline-pcap runs byte-identical.
    sim::Duration timestamp_quantum = sim::Duration::micros(1);
    /// Anchors unmatched for longer than this are evicted (bounds memory on
    /// long captures; pping's flow timeout).
    sim::Duration anchor_window = sim::Duration::seconds(10);
    /// consume(PacketCapture): match on the jitter-free true_time column
    /// instead of the capture clock (ground-truth mode for calibration).
    bool use_true_time = false;
  };

  PassiveRttEstimator() : PassiveRttEstimator(Config{}) {}
  explicit PassiveRttEstimator(Config config) : config_{config} {}

  /// Feed one observation (live-tap incremental use). `wire_payload_len` is
  /// the on-wire payload size (may exceed pkt.payload.size() under snap-len
  /// truncation); it drives the retransmission detector's sequence math.
  void observe(const net::Packet& pkt, sim::TimePoint at,
               std::size_t wire_payload_len);
  void observe(const net::Packet& pkt, sim::TimePoint at) {
    observe(pkt, at, pkt.payload.size());
  }

  /// Scan a whole capture (any tap point, both directions interleaved).
  void consume(const net::PacketCapture& capture);
  /// Scan records parsed from a pcap file (the offline path).
  void consume(const std::vector<net::PcapRecord>& records);

  const std::vector<PassiveSample>& samples() const { return samples_; }
  const PassiveCounters& counters() const { return counters_; }
  const Config& config() const { return config_; }

  /// Canonical machine report: a deterministic function of the observed
  /// packet stream (counters, per-flow summaries, every sample in
  /// microseconds). Compact obs::json serialization — the live-vs-offline
  /// byte-identity gate compares these strings.
  std::string report_json(const std::string& label) const;

  /// Fold counter deltas since the last call into the `passive.*` metrics
  /// registry instruments. Called by consume(); incremental observe() users
  /// call it at a quiescent point.
  void publish_metrics();

 private:
  /// Directional half-flow: all packets src -> dst.
  struct HalfFlowKey {
    net::Endpoint src;
    net::Endpoint dst;
    bool operator==(const HalfFlowKey&) const = default;
  };
  struct HalfFlowKeyHash {
    std::size_t operator()(const HalfFlowKey& k) const {
      const std::size_t a = std::hash<net::Endpoint>{}(k.src);
      const std::size_t b = std::hash<net::Endpoint>{}(k.dst);
      return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    }
  };
  struct Anchor {
    sim::TimePoint at;
    std::size_t index = 0;
    bool matched = false;
    bool poisoned = false;
  };
  struct HalfFlow {
    std::unordered_map<std::uint32_t, Anchor> anchors;
    std::uint32_t max_seq_end = 0;  ///< highest sequence-space byte sent
    bool seen_seq = false;
    bool sampled = false;  ///< a sample has been emitted for this direction
  };

  void observe_at(const net::Packet& pkt, sim::TimePoint at,
                  std::size_t wire_payload_len, std::size_t index);
  void maybe_evict(sim::TimePoint now);

  Config config_;
  std::unordered_map<HalfFlowKey, HalfFlow, HalfFlowKeyHash> flows_;
  std::vector<PassiveSample> samples_;
  PassiveCounters counters_;
  PassiveCounters published_;  ///< high-water marks already in the registry
  std::size_t next_index_ = 0;
};

}  // namespace bnm::passive
