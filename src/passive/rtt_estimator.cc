#include "passive/rtt_estimator.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "stats/descriptive.h"

namespace bnm::passive {

namespace {

// Sequence-space comparison (RFC 793 modular arithmetic), same discipline
// as net/tcp.cc.
bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

// Sweep cadence for anchor eviction: amortized, content-deterministic.
constexpr std::uint64_t kEvictEvery = 4096;

const obs::Counter& m_packets() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.packets_scanned", "packets", "observations fed to the matcher");
  return c;
}
const obs::Counter& m_ts_packets() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.ts_packets", "packets", "observations carrying RFC 7323 TS");
  return c;
}
const obs::Counter& m_anchors() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.anchors", "anchors", "TSval anchors stored (first sight)");
  return c;
}
const obs::Counter& m_dup_tsvals() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.duplicate_tsvals", "packets",
      "repeat TSvals at coarse clock granularity (not re-anchored)");
  return c;
}
const obs::Counter& m_retx_poisoned() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.retransmit_poisoned", "anchors",
      "anchors poisoned by the Karn's-rule analogue");
  return c;
}
const obs::Counter& m_suppressed() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.suppressed_samples", "samples",
      "echoes of poisoned anchors (discarded, never emitted)");
  return c;
}
const obs::Counter& m_samples() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.samples", "samples", "RTT samples emitted");
  return c;
}
const obs::Counter& m_unmatched() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.unmatched_echoes", "packets",
      "TSecr with no stored anchor (unidirectional visibility / evicted)");
  return c;
}
const obs::Counter& m_evicted() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.evicted_anchors", "anchors",
      "anchors aged out of the matching window");
  return c;
}
const obs::Counter& m_half_flows() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "passive.half_flows", "flows", "directional (src,dst) pairs observed");
  return c;
}

}  // namespace

void PassiveRttEstimator::observe(const net::Packet& pkt, sim::TimePoint at,
                                  std::size_t wire_payload_len) {
  observe_at(pkt, at, wire_payload_len, next_index_);
  ++next_index_;
}

void PassiveRttEstimator::observe_at(const net::Packet& pkt, sim::TimePoint at,
                                     std::size_t wire_payload_len,
                                     std::size_t index) {
  ++counters_.packets;
  const sim::TimePoint t = at.quantized_floor(config_.timestamp_quantum);
  if (counters_.packets % kEvictEvery == 0) maybe_evict(t);
  if (pkt.protocol != net::Protocol::kTcp || !pkt.ts.present) return;
  ++counters_.ts_packets;

  // --- forward half-flow: anchor this packet's TSval ---
  auto [fit, fresh_flow] = flows_.try_emplace(HalfFlowKey{pkt.src, pkt.dst});
  HalfFlow& fw = fit->second;
  if (fresh_flow) ++counters_.half_flows;

  // Karn's-rule analogue: a segment whose sequence space was already covered
  // (RTO/fast retransmit, zero-window probe poking an acked byte) cannot be
  // attributed a unique send time, so its TSval must never anchor a sample.
  bool retransmit = false;
  const std::uint32_t occupies =
      static_cast<std::uint32_t>(wire_payload_len) +
      (pkt.flags.syn ? 1 : 0) + (pkt.flags.fin ? 1 : 0);
  if (occupies > 0) {
    const std::uint32_t end = pkt.seq + occupies;
    if (fw.seen_seq && seq_leq(end, fw.max_seq_end)) {
      retransmit = true;
    } else {
      fw.max_seq_end =
          fw.seen_seq && seq_lt(end, fw.max_seq_end) ? fw.max_seq_end : end;
      fw.seen_seq = true;
    }
  }

  auto [ait, fresh_anchor] = fw.anchors.try_emplace(
      pkt.ts.tsval, Anchor{t, index, /*matched=*/false, retransmit});
  if (fresh_anchor) {
    ++counters_.anchors;
    if (retransmit) ++counters_.retransmit_poisoned;
  } else if (retransmit && !ait->second.poisoned) {
    // A coarse clock let the retransmit reuse the original's TSval: the
    // original anchor is now ambiguous too.
    ait->second.poisoned = true;
    ++counters_.retransmit_poisoned;
  } else if (!retransmit) {
    ++counters_.duplicate_tsvals;  // first sight keeps the anchor
  }

  // --- reverse half-flow: match this packet's TSecr against an anchor ---
  // TSecr is only meaningful on ACK segments, and zero means "never seen a
  // timestamp from you" (an initial SYN).
  if (!pkt.flags.ack || pkt.ts.tsecr == 0) return;
  const auto rit = flows_.find(HalfFlowKey{pkt.dst, pkt.src});
  if (rit == flows_.end()) {
    ++counters_.unmatched_echoes;
    return;
  }
  HalfFlow& rv = rit->second;
  const auto eit = rv.anchors.find(pkt.ts.tsecr);
  if (eit == rv.anchors.end()) {
    ++counters_.unmatched_echoes;
    return;
  }
  Anchor& anchor = eit->second;
  if (anchor.matched) return;  // cumulative ACKs repeat TSecr: one sample only
  anchor.matched = true;
  if (anchor.poisoned) {
    ++counters_.suppressed_samples;
    return;
  }
  PassiveSample s;
  s.from = pkt.dst;
  s.to = pkt.src;
  s.anchor_at = anchor.at;
  s.echo_at = t;
  s.rtt = t - anchor.at;
  s.tsval = pkt.ts.tsecr;
  s.anchor_index = anchor.index;
  s.echo_index = index;
  s.first_on_flow = !rv.sampled;
  rv.sampled = true;
  samples_.push_back(s);
  ++counters_.samples;
}

void PassiveRttEstimator::maybe_evict(sim::TimePoint now) {
  const sim::TimePoint cutoff = now - config_.anchor_window;
  for (auto& [key, flow] : flows_) {
    for (auto it = flow.anchors.begin(); it != flow.anchors.end();) {
      if (it->second.at.ns_since_epoch() < cutoff.ns_since_epoch()) {
        it = flow.anchors.erase(it);
        ++counters_.evicted;
      } else {
        ++it;
      }
    }
  }
}

void PassiveRttEstimator::consume(const net::PacketCapture& capture) {
  for (std::size_t i = 0; i < capture.size(); ++i) {
    const sim::TimePoint at =
        config_.use_true_time ? capture.true_time(i) : capture.timestamp(i);
    const net::Packet& pkt = capture.packet(i);
    observe_at(pkt, at,
               std::max(capture.wire_payload_len(i), pkt.payload.size()),
               next_index_);
    ++next_index_;
  }
  publish_metrics();
}

void PassiveRttEstimator::consume(const std::vector<net::PcapRecord>& records) {
  for (const net::PcapRecord& rec : records) {
    observe_at(rec.packet, rec.timestamp, rec.packet.payload.size(),
               next_index_);
    ++next_index_;
  }
  publish_metrics();
}

void PassiveRttEstimator::publish_metrics() {
  m_packets().add(counters_.packets - published_.packets);
  m_ts_packets().add(counters_.ts_packets - published_.ts_packets);
  m_anchors().add(counters_.anchors - published_.anchors);
  m_dup_tsvals().add(counters_.duplicate_tsvals - published_.duplicate_tsvals);
  m_retx_poisoned().add(counters_.retransmit_poisoned -
                        published_.retransmit_poisoned);
  m_suppressed().add(counters_.suppressed_samples -
                     published_.suppressed_samples);
  m_samples().add(counters_.samples - published_.samples);
  m_unmatched().add(counters_.unmatched_echoes - published_.unmatched_echoes);
  m_evicted().add(counters_.evicted - published_.evicted);
  m_half_flows().add(counters_.half_flows - published_.half_flows);
  published_ = counters_;
}

std::string PassiveRttEstimator::report_json(const std::string& label) const {
  using obs::json::Value;
  Value root = Value::object();
  root.add("schema", Value::string("bnm.passive.report.v1"));
  root.add("label", Value::string(label));
  root.add("quantum_ns",
           Value::integer(config_.timestamp_quantum.ns()));

  Value counters = Value::object();
  counters.add("packets", Value::integer(
                              static_cast<std::int64_t>(counters_.packets)));
  counters.add("ts_packets",
               Value::integer(static_cast<std::int64_t>(counters_.ts_packets)));
  counters.add("anchors",
               Value::integer(static_cast<std::int64_t>(counters_.anchors)));
  counters.add("duplicate_tsvals",
               Value::integer(static_cast<std::int64_t>(
                   counters_.duplicate_tsvals)));
  counters.add("retransmit_poisoned",
               Value::integer(static_cast<std::int64_t>(
                   counters_.retransmit_poisoned)));
  counters.add("suppressed_samples",
               Value::integer(static_cast<std::int64_t>(
                   counters_.suppressed_samples)));
  counters.add("samples",
               Value::integer(static_cast<std::int64_t>(counters_.samples)));
  counters.add("unmatched_echoes",
               Value::integer(static_cast<std::int64_t>(
                   counters_.unmatched_echoes)));
  counters.add("evicted",
               Value::integer(static_cast<std::int64_t>(counters_.evicted)));
  counters.add("half_flows",
               Value::integer(static_cast<std::int64_t>(counters_.half_flows)));
  root.add("counters", std::move(counters));

  // Per-flow summaries, keyed and ordered by "from > to" label so the
  // serialization never depends on hash-map iteration order.
  std::map<std::string, std::vector<double>> per_flow;
  for (const PassiveSample& s : samples_) {
    per_flow[s.from.to_string() + " > " + s.to.to_string()].push_back(
        static_cast<double>(s.rtt.ns()));
  }
  Value flows = Value::array();
  for (auto& [flow_label, rtts] : per_flow) {
    std::sort(rtts.begin(), rtts.end());
    Value f = Value::object();
    f.add("flow", Value::string(flow_label));
    f.add("samples", Value::integer(static_cast<std::int64_t>(rtts.size())));
    f.add("min_rtt_ns",
          Value::integer(static_cast<std::int64_t>(rtts.front())));
    f.add("median_rtt_ns",
          Value::integer(static_cast<std::int64_t>(
              stats::quantile_sorted(rtts, 0.5))));
    f.add("max_rtt_ns", Value::integer(static_cast<std::int64_t>(rtts.back())));
    flows.push(std::move(f));
  }
  root.add("flows", std::move(flows));

  Value samples = Value::array();
  for (const PassiveSample& s : samples_) {
    Value v = Value::object();
    v.add("from", Value::string(s.from.to_string()));
    v.add("to", Value::string(s.to.to_string()));
    v.add("anchor_ns", Value::integer(s.anchor_at.ns_since_epoch()));
    v.add("rtt_ns", Value::integer(s.rtt.ns()));
    v.add("tsval", Value::integer(static_cast<std::int64_t>(s.tsval)));
    v.add("first", Value::boolean(s.first_on_flow));
    samples.push(std::move(v));
  }
  root.add("samples", std::move(samples));
  return root.dump();
}

}  // namespace bnm::passive
