// Time-sequence diagram of a packet capture: the classic two-lifeline
// client/server exchange picture, rendered in ASCII. Used by examples to
// show *why* a measurement came out the way it did (handshake included?
// connection reused? where did the 50 ms go?).
//
//   +0.000ms   client  SYN ----------------------------->  server
//   +50.41ms   client  <----------------------------- S.   server
#pragma once

#include <string>

#include "net/capture.h"

namespace bnm::report {

class SequenceRenderer {
 public:
  struct Options {
    std::size_t arrow_width = 44;
    /// Print at most this many records (0 = all).
    std::size_t limit = 0;
    /// Drop pure ACKs to keep the story readable.
    bool hide_pure_acks = false;
    /// Timestamps relative to the first shown record.
    bool relative_time = true;
  };

  explicit SequenceRenderer(Options options) : options_{options} {}
  SequenceRenderer() : SequenceRenderer(Options{}) {}

  /// Render records matching `filter` (all records if empty filter).
  std::string render(const net::PacketCapture& capture,
                     const net::CaptureFilter& filter = nullptr) const;

 private:
  std::string describe(const net::Packet& packet) const;

  Options options_;
};

}  // namespace bnm::report
