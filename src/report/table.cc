#include "report/table.h"

#include <algorithm>
#include <cstdio>

namespace bnm::report {

TextTable::TextTable(std::vector<std::string> header)
    : header_{std::move(header)} {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), next_rule_});
  next_rule_ = false;
}

void TextTable::add_rule() { next_rule_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::string cell = cells[i];
      cell.resize(widths[i], ' ');
      line += cell;
      if (i + 1 < cells.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  auto rule = [&] {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      line.append(widths[i], '-');
      if (i + 1 < widths.size()) line += "--";
    }
    return line + "\n";
  };

  std::string out = emit_row(header_);
  out += rule();
  for (const auto& row : rows_) {
    if (row.rule_before) out += rule();
    out += emit_row(row.cells);
  }
  return out;
}

std::string TextTable::render_markdown() const {
  auto emit = [](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (const auto& c : cells) line += " " + c + " |";
    return line + "\n";
  };
  std::string out = emit(header_);
  std::string sep = "|";
  for (std::size_t i = 0; i < header_.size(); ++i) sep += "---|";
  out += sep + "\n";
  for (const auto& row : rows_) out += emit(row.cells);
  return out;
}

std::string TextTable::render_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    return q + "\"";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      line += quote(cells[i]);
      if (i + 1 < cells.size()) line += ",";
    }
    return line + "\n";
  };
  std::string out = emit(header_);
  for (const auto& row : rows_) out += emit(row.cells);
  return out;
}

std::string TextTable::fmt(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_ci(double mean, double half, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f +- %.*f", precision, mean, precision,
                half);
  return buf;
}

}  // namespace bnm::report
