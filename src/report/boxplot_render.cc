#include "report/boxplot_render.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bnm::report {

std::string BoxPlotRenderer::render(const std::vector<BoxRow>& rows) const {
  if (rows.empty()) return "(no data)\n";

  double lo = rows.front().stats.whisker_lo;
  double hi = rows.front().stats.whisker_hi;
  std::size_t label_width = 0;
  for (const auto& row : rows) {
    lo = std::min(lo, row.stats.whisker_lo);
    hi = std::max(hi, row.stats.whisker_hi);
    if (options_.include_outliers) {
      if (!row.stats.outliers_lo.empty()) {
        lo = std::min(lo, row.stats.outliers_lo.front());
      }
      if (!row.stats.outliers_hi.empty()) {
        hi = std::max(hi, row.stats.outliers_hi.back());
      }
    }
    label_width = std::max(label_width, row.label.size());
  }
  if (hi <= lo) hi = lo + 1.0;
  const double span = hi - lo;

  const std::size_t w = options_.width;
  auto col = [&](double v) -> std::size_t {
    double frac = (v - lo) / span;
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<std::size_t>(std::lround(frac * static_cast<double>(w - 1)));
  };

  std::string out;
  for (const auto& row : rows) {
    std::string line(w, ' ');
    const auto& s = row.stats;
    const std::size_t cw_lo = col(s.whisker_lo), cq1 = col(s.q1),
                      cmed = col(s.median), cq3 = col(s.q3),
                      cw_hi = col(s.whisker_hi);
    for (std::size_t i = cw_lo; i <= cw_hi && i < w; ++i) line[i] = '-';
    for (std::size_t i = cq1; i <= cq3 && i < w; ++i) line[i] = '=';
    line[cw_lo] = '|';
    line[cw_hi] = '|';
    if (cq1 < w) line[cq1] = '[';
    if (cq3 < w) line[cq3] = ']';
    if (cmed < w) line[cmed] = 'M';
    if (options_.include_outliers) {
      for (double o : s.outliers_lo) line[col(o)] = 'o';
      for (double o : s.outliers_hi) line[col(o)] = 'o';
    }

    std::string label = row.label;
    label.resize(label_width, ' ');
    out += label + " " + line + "\n";
  }

  if (options_.show_scale) {
    std::string axis(w, '-');
    axis[0] = '+';
    axis[w - 1] = '+';
    axis[col((lo + hi) / 2)] = '+';
    out += std::string(label_width + 1, ' ') + axis + "\n";
    char buf[96];
    std::snprintf(buf, sizeof buf, "%-*.1f%*s%*.1f", static_cast<int>(w / 2),
                  lo, 0, "", static_cast<int>(w - w / 2), hi);
    out += std::string(label_width + 1, ' ') + buf + " (ms)\n";
  }
  return out;
}

}  // namespace bnm::report
