#include "report/cdf_render.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bnm::report {

namespace {
constexpr char kMarks[] = "*#@%+x&$o~";
}

std::string CdfRenderer::render(const std::vector<CdfSeries>& series) const {
  if (series.empty()) return "(no data)\n";

  double lo = options_.x_lo, hi = options_.x_hi;
  if (lo == hi) {
    lo = series.front().cdf.sorted_samples().front();
    hi = series.front().cdf.sorted_samples().back();
    for (const auto& s : series) {
      lo = std::min(lo, s.cdf.sorted_samples().front());
      hi = std::max(hi, s.cdf.sorted_samples().back());
    }
    const double pad = (hi - lo) * 0.05 + 1e-9;
    lo -= pad;
    hi += pad;
  }
  if (hi <= lo) hi = lo + 1.0;

  const std::size_t w = options_.width, h = options_.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarks[si % (sizeof kMarks - 1)];
    for (std::size_t x = 0; x < w; ++x) {
      const double xv =
          lo + (hi - lo) * static_cast<double>(x) / static_cast<double>(w - 1);
      const double f = series[si].cdf.at(xv);
      // Row 0 is F=1 (top); row h-1 is F=0.
      auto y = static_cast<std::size_t>(
          std::lround((1.0 - f) * static_cast<double>(h - 1)));
      y = std::min(y, h - 1);
      grid[y][x] = mark;
    }
  }

  std::string out;
  for (std::size_t y = 0; y < h; ++y) {
    const double f = 1.0 - static_cast<double>(y) / static_cast<double>(h - 1);
    char label[16];
    std::snprintf(label, sizeof label, "%4.2f |", f);
    out += label + grid[y] + "\n";
  }
  out += "     +" + std::string(w, '-') + "\n";
  char axis[128];
  std::snprintf(axis, sizeof axis, "     %-*.1f%*.1f (ms)",
                static_cast<int>(w / 2), lo, static_cast<int>(w - w / 2), hi);
  out += axis;
  out += "\n legend: ";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += std::string(1, kMarks[si % (sizeof kMarks - 1)]) + "=" +
           series[si].label + "  ";
  }
  out += "\n";
  return out;
}

}  // namespace bnm::report
