// Aligned text tables (plus Markdown and CSV emitters) for bench output.
#pragma once

#include <string>
#include <vector>

namespace bnm::report {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next added row.
  void add_rule();

  std::size_t rows() const { return rows_.size(); }

  std::string render() const;          ///< padded plain text
  std::string render_markdown() const; ///< GitHub-style pipes
  std::string render_csv() const;

  /// Format helpers.
  static std::string fmt(double v, int precision = 1);
  static std::string fmt_ci(double mean, double half, int precision = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool next_rule_ = false;
};

}  // namespace bnm::report
