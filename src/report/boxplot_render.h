// ASCII box-and-whisker rendering: one labelled row per distribution on a
// shared horizontal scale, mirroring the panels of the paper's Figure 3.
//
//   C (U) d1  |        |-----[==M====]------|      o  oo
//
//   |-  -|  whiskers        [= =]  interquartile box
//   M        median         o      outliers
#pragma once

#include <string>
#include <vector>

#include "stats/boxplot.h"

namespace bnm::report {

struct BoxRow {
  std::string label;
  stats::BoxStats stats;
};

class BoxPlotRenderer {
 public:
  struct Options {
    std::size_t width = 72;       ///< plot columns (excluding labels)
    bool show_scale = true;       ///< axis line with min/max annotations
    bool include_outliers = true;
  };

  explicit BoxPlotRenderer(Options options) : options_{options} {}
  BoxPlotRenderer() : BoxPlotRenderer(Options{}) {}

  /// Render rows on a common scale spanning all whiskers and outliers.
  std::string render(const std::vector<BoxRow>& rows) const;

 private:
  Options options_;
};

}  // namespace bnm::report
