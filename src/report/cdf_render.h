// ASCII CDF plot: multiple empirical CDFs on one grid (Figure 4 style).
#pragma once

#include <string>
#include <vector>

#include "stats/cdf.h"

namespace bnm::report {

struct CdfSeries {
  std::string label;
  stats::EmpiricalCdf cdf;
};

class CdfRenderer {
 public:
  struct Options {
    std::size_t width = 70;
    std::size_t height = 20;
    /// x-range; if lo == hi the range is derived from the data.
    double x_lo = 0;
    double x_hi = 0;
  };

  explicit CdfRenderer(Options options) : options_{options} {}
  CdfRenderer() : CdfRenderer(Options{}) {}

  std::string render(const std::vector<CdfSeries>& series) const;

 private:
  Options options_;
};

}  // namespace bnm::report
