#include "report/sequence_render.h"

#include <cstdio>

namespace bnm::report {

std::string SequenceRenderer::describe(const net::Packet& packet) const {
  if (packet.protocol == net::Protocol::kUdp) {
    return "UDP " + std::to_string(packet.payload_size()) + "B";
  }
  std::string flags = packet.flags.to_string();
  if (packet.flags.syn && packet.flags.ack) flags = "SYN-ACK";
  else if (packet.flags.syn) flags = "SYN";
  else if (packet.flags.fin) flags = "FIN";
  else if (packet.flags.rst) flags = "RST";
  else if (packet.carries_data()) flags = "data " + std::to_string(packet.payload_size()) + "B";
  else if (packet.is_pure_ack()) flags = "ACK";
  return flags;
}

std::string SequenceRenderer::render(const net::PacketCapture& capture,
                                     const net::CaptureFilter& filter) const {
  std::string out;
  char line[256];
  std::size_t shown = 0;
  std::optional<sim::TimePoint> t0;

  std::snprintf(line, sizeof line, "%-12s %-7s %-*s %s\n", "time", "client",
                static_cast<int>(options_.arrow_width), "", "server");
  out += line;

  for (std::size_t i = 0; i < capture.size(); ++i) {
    const net::CaptureRecord rec = capture.at(i);
    if (filter && !filter(rec)) continue;
    if (options_.hide_pure_acks && rec.packet.is_pure_ack()) continue;
    if (options_.limit > 0 && shown >= options_.limit) {
      out += "  ... (truncated)\n";
      break;
    }
    if (!t0) t0 = rec.timestamp;
    const double ms = options_.relative_time
                          ? (rec.timestamp - *t0).ms_f()
                          : rec.timestamp.ms_since_epoch_f();

    const std::string label = describe(rec.packet);
    std::string arrow;
    const std::size_t w = options_.arrow_width;
    if (rec.direction == net::CaptureDirection::kOutbound) {
      // client ---- label ---->
      const std::size_t dashes = w > label.size() + 4 ? w - label.size() - 4 : 1;
      arrow = std::string(dashes / 2, '-') + " " + label + " " +
              std::string(dashes - dashes / 2, '-') + ">";
    } else {
      const std::size_t dashes = w > label.size() + 4 ? w - label.size() - 4 : 1;
      arrow = "<" + std::string(dashes / 2, '-') + " " + label + " " +
              std::string(dashes - dashes / 2, '-');
    }
    char ts[32];
    std::snprintf(ts, sizeof ts, "+%.3fms", ms);
    std::snprintf(line, sizeof line, "%-12s %-7s %-*s %s\n", ts, "client",
                  static_cast<int>(w + 2), arrow.c_str(), "server");
    out += line;
    ++shown;
  }
  if (shown == 0) out += "  (no packets matched)\n";
  return out;
}

}  // namespace bnm::report
