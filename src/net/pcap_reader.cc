#include "net/pcap_reader.h"

#include <fstream>

#include "net/pcap_writer.h"

namespace bnm::net {

namespace {

bool read_u32le(std::istream& in, std::uint32_t& v) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) return false;
  v = static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
      (static_cast<std::uint32_t>(b[2]) << 16) |
      (static_cast<std::uint32_t>(b[3]) << 24);
  return true;
}

std::uint16_t u16be(const unsigned char* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t u32be(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

std::optional<Packet> PcapReader::parse_frame(const Payload& frame) {
  if (frame.size() < kIpHeaderBytes) return std::nullopt;
  const unsigned char* p = frame.data();
  if ((p[0] >> 4) != 4) return std::nullopt;  // IPv4 only
  const std::size_t ihl = static_cast<std::size_t>(p[0] & 0x0f) * 4;
  if (ihl < kIpHeaderBytes || frame.size() < ihl) return std::nullopt;
  const std::size_t total = u16be(p + 2);
  if (total < ihl || total > frame.size()) return std::nullopt;

  Packet pkt;
  pkt.id = u16be(p + 4);
  pkt.src.ip = IpAddress{u32be(p + 12)};
  pkt.dst.ip = IpAddress{u32be(p + 16)};

  const unsigned char proto = p[9];
  const unsigned char* t = p + ihl;
  const std::size_t remaining = total - ihl;

  if (proto == 6) {
    pkt.protocol = Protocol::kTcp;
    if (remaining < kTcpHeaderBytes) return std::nullopt;
    pkt.src.port = u16be(t);
    pkt.dst.port = u16be(t + 2);
    pkt.seq = u32be(t + 4);
    pkt.ack = u32be(t + 8);
    const std::size_t data_offset = static_cast<std::size_t>(t[12] >> 4) * 4;
    if (data_offset < kTcpHeaderBytes || remaining < data_offset) {
      return std::nullopt;
    }
    const unsigned char flags = t[13];
    pkt.flags.fin = flags & 0x01;
    pkt.flags.syn = flags & 0x02;
    pkt.flags.rst = flags & 0x04;
    pkt.flags.psh = flags & 0x08;
    pkt.flags.ack = flags & 0x10;
    pkt.window = u16be(t + 14);
    // Walk the option bytes for the RFC 7323 timestamp (kind 8, len 10).
    for (std::size_t o = kTcpHeaderBytes; o < data_offset;) {
      const unsigned char kind = t[o];
      if (kind == 0) break;  // end of option list
      if (kind == 1) {       // NOP pad
        ++o;
        continue;
      }
      if (o + 1 >= data_offset) break;
      const std::size_t len = t[o + 1];
      if (len < 2 || o + len > data_offset) break;  // malformed: stop
      if (kind == 8 && len == 10) {
        pkt.ts.present = true;
        pkt.ts.tsval = u32be(t + o + 2);
        pkt.ts.tsecr = u32be(t + o + 6);
      }
      o += len;
    }
    pkt.payload = frame.subview(ihl + data_offset, remaining - data_offset);
  } else if (proto == 17) {
    pkt.protocol = Protocol::kUdp;
    if (remaining < kUdpHeaderBytes) return std::nullopt;
    pkt.src.port = u16be(t);
    pkt.dst.port = u16be(t + 2);
    const std::size_t udp_len = u16be(t + 4);
    if (udp_len < kUdpHeaderBytes || udp_len > remaining) return std::nullopt;
    pkt.payload = frame.subview(ihl + kUdpHeaderBytes, udp_len - kUdpHeaderBytes);
  } else {
    return std::nullopt;  // other protocols not modelled
  }
  return pkt;
}

PcapReader::Result PcapReader::read(std::istream& in) {
  Result result;

  std::uint32_t magic = 0;
  if (!read_u32le(in, magic)) {
    result.error = Error::kTruncated;
    return result;
  }
  if (magic != 0xa1b2c3d4) {
    // Big-endian or nanosecond variants are not produced by PcapWriter.
    result.error = Error::kBadMagic;
    return result;
  }
  std::uint32_t v_zone, v_sigfigs, v_snaplen;
  std::uint32_t version = 0;
  if (!read_u32le(in, version) || !read_u32le(in, v_zone) ||
      !read_u32le(in, v_sigfigs) || !read_u32le(in, v_snaplen) ||
      !read_u32le(in, result.link_type)) {
    result.error = Error::kTruncated;
    return result;
  }
  if (result.link_type != PcapWriter::kLinkTypeRaw) {
    result.error = Error::kUnsupportedLinkType;
    return result;
  }

  for (;;) {
    std::uint32_t ts_sec, ts_usec, incl_len, orig_len = 0;
    if (!read_u32le(in, ts_sec)) break;  // clean EOF
    if (!read_u32le(in, ts_usec) || !read_u32le(in, incl_len) ||
        !read_u32le(in, orig_len)) {
      result.error = Error::kTruncated;
      return result;
    }
    std::vector<std::uint8_t> bytes(incl_len);
    if (!in.read(reinterpret_cast<char*>(bytes.data()),
                 static_cast<std::streamsize>(incl_len))) {
      result.error = Error::kTruncated;
      return result;
    }
    (void)orig_len;
    // One buffer per frame; the parsed packet's payload aliases it.
    const Payload frame{std::move(bytes)};
    const auto packet = parse_frame(frame);
    if (!packet) {
      result.error = Error::kBadIpHeader;
      return result;
    }
    PcapRecord rec;
    rec.timestamp = sim::TimePoint::from_ns(
        static_cast<std::int64_t>(ts_sec) * 1'000'000'000 +
        static_cast<std::int64_t>(ts_usec) * 1'000);
    rec.packet = *packet;
    result.records.push_back(std::move(rec));
  }
  return result;
}

PcapReader::Result PcapReader::read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    Result r;
    r.error = Error::kTruncated;
    return r;
  }
  return read(in);
}

}  // namespace bnm::net
