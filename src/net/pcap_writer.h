// libpcap file writer: serializes a PacketCapture into a real .pcap file
// (LINKTYPE_IPV4) so captures from the simulated testbed can be opened in
// tcpdump/Wireshark for inspection.
//
// IPv4 and TCP/UDP headers are synthesized from packet metadata; the IPv4
// header checksum is computed for real, transport checksums are left zero
// (as many capture setups with checksum offload do).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "net/capture.h"

namespace bnm::net {

class PcapWriter {
 public:
  /// LINKTYPE_RAW (101): packets begin with the IPv4 header.
  static constexpr std::uint32_t kLinkTypeRaw = 101;

  /// Serialize `capture` to `out` in classic pcap format (microsecond
  /// timestamps, magic 0xa1b2c3d4). Returns bytes written.
  static std::size_t write(const PacketCapture& capture, std::ostream& out);

  /// Convenience: write to a file path. Returns bytes written.
  static std::size_t write_file(const PacketCapture& capture,
                                const std::string& path);

  /// Synthesize the on-wire bytes (IPv4 + transport + payload) for one
  /// packet; exposed for tests.
  static std::string synthesize_frame(const Packet& packet);

  /// RFC 1071 internet checksum over `data` (exposed for tests).
  static std::uint16_t internet_checksum(const std::uint8_t* data,
                                         std::size_t len);
};

}  // namespace bnm::net
