// libpcap file writer: serializes a PacketCapture into a real .pcap file
// (LINKTYPE_IPV4) so captures from the simulated testbed can be opened in
// tcpdump/Wireshark for inspection.
//
// IPv4 and TCP/UDP headers are synthesized from packet metadata; the IPv4
// header checksum is computed for real, transport checksums are left zero
// (as many capture setups with checksum offload do).
//
// Records captured under a snap length are written with real pcap snaplen
// semantics: the frame headers describe the original (wire) payload length
// while only the truncated bytes are included, and the per-record header's
// orig_len exceeds incl_len accordingly.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "net/capture.h"

namespace bnm::net {

class PcapWriter {
 public:
  /// LINKTYPE_RAW (101): packets begin with the IPv4 header.
  static constexpr std::uint32_t kLinkTypeRaw = 101;

  /// Serialize `capture` to `out` in classic pcap format (microsecond
  /// timestamps, magic 0xa1b2c3d4). Returns bytes written.
  static std::size_t write(const PacketCapture& capture, std::ostream& out);

  /// Convenience: write to a file path. Returns bytes written.
  static std::size_t write_file(const PacketCapture& capture,
                                const std::string& path);

  /// Synthesize the on-wire bytes (IPv4 + transport + payload) for one
  /// packet; exposed for tests.
  static std::vector<std::uint8_t> synthesize_frame(const Packet& packet);

  /// As above, but the length fields in the IP/UDP headers describe
  /// `wire_payload_len` bytes of payload even if `packet.payload` holds
  /// fewer (a snap-truncated capture record).
  static std::vector<std::uint8_t> synthesize_frame(
      const Packet& packet, std::size_t wire_payload_len);

  /// RFC 1071 internet checksum over `data` (exposed for tests).
  static std::uint16_t internet_checksum(const std::uint8_t* data,
                                         std::size_t len);
};

}  // namespace bnm::net
