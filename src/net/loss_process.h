// Shared packet-loss primitive used by Link, DelayEmulator and
// FaultInjector, so i.i.d. and bursty (Gilbert-Elliott) loss semantics never
// diverge between pipeline stages.
//
// Determinism contract: a disabled process never touches the RNG, and the
// i.i.d. mode draws exactly one rng.chance(p) per packet — bit-identical to
// the historical inline check in Link::transmit.
#pragma once

#include "sim/random.h"

namespace bnm::net {

/// Two-state Gilbert-Elliott loss chain. Each packet is dropped with the
/// current state's loss probability, then the chain transitions.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.0;  ///< per-packet transition probability
  double p_bad_to_good = 0.0;
  double loss_good = 0.0;  ///< drop probability while in the Good state
  double loss_bad = 1.0;   ///< drop probability while in the Bad state

  /// Long-run stationary loss rate of the chain (for test assertions).
  double stationary_loss_rate() const;
};

class LossProcess {
 public:
  LossProcess() = default;

  static LossProcess iid(double p);
  static LossProcess bursty(const GilbertElliottConfig& cfg);

  bool enabled() const { return mode_ != Mode::kNone; }
  bool is_bursty() const { return mode_ == Mode::kBursty; }

  /// Advances the chain (bursty mode) and reports whether to drop. Must only
  /// be called when enabled(): a disabled process never touches the RNG.
  bool should_drop(sim::Rng& rng);

  /// Current Gilbert-Elliott state (bursty mode only; false = Good).
  bool in_bad_state() const { return bad_; }

 private:
  enum class Mode { kNone, kIid, kBursty };
  Mode mode_ = Mode::kNone;
  double iid_p_ = 0.0;
  GilbertElliottConfig ge_{};
  bool bad_ = false;
};

}  // namespace bnm::net
