// The simulated packet: one IP datagram with transport metadata and payload.
//
// Packets are value types; every hop works on its own copy, so mutation at
// one node can never be observed retroactively by another (the same property
// a real wire gives you). Payload bytes live in immutable refcounted
// buffers (net/payload.h), so copying a packet copies metadata only — the
// isolation invariant holds by construction (copy-on-write), not by
// duplicating bytes at every hop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/payload.h"

namespace bnm::net {

enum class Protocol : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

/// TCP control flags (subset used by the simulator).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  std::string to_string() const;
  bool operator==(const TcpFlags&) const = default;
};

/// Wire-size constants (bytes) used for serialization-delay math and pcap
/// synthesis. The only TCP option modelled is the RFC 7323 timestamp option
/// (NOP, NOP, kind=8, len=10 — 12 bytes after padding), present when a
/// connection negotiates `TcpConfig::timestamps`.
inline constexpr std::size_t kIpHeaderBytes = 20;
inline constexpr std::size_t kTcpHeaderBytes = 20;
inline constexpr std::size_t kTcpTimestampOptionBytes = 12;
inline constexpr std::size_t kUdpHeaderBytes = 8;
inline constexpr std::size_t kEthernetOverheadBytes = 38;  // hdr+FCS+preamble+IFG

/// RFC 7323 TCP timestamp option. `tsval` is the sender's timestamp clock at
/// transmit time; `tsecr` echoes the peer's most recent in-window TSval (valid
/// only on segments with the ACK bit, and zero on an initial SYN).
struct TcpTimestampOption {
  bool present = false;
  std::uint32_t tsval = 0;
  std::uint32_t tsecr = 0;

  bool operator==(const TcpTimestampOption&) const = default;
};

struct Packet {
  std::uint64_t id = 0;  ///< globally unique per simulation, for tracing
  Protocol protocol = Protocol::kTcp;
  Endpoint src;
  Endpoint dst;

  // TCP-only metadata (ignored for UDP).
  TcpFlags flags;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint16_t window = 65535;
  TcpTimestampOption ts;

  Payload payload;

  /// Set by a FaultInjector corrupting the packet in flight. The capture tap
  /// still records the frame, but the receiving stack drops it as a failed
  /// checksum before demux.
  bool corrupted = false;

  std::size_t payload_size() const { return payload.size(); }
  /// IP datagram size: transport header + payload (+ IP header).
  std::size_t ip_size() const;
  /// Size on the Ethernet wire, used for serialization delay.
  std::size_t wire_size() const;

  bool is_pure_ack() const {
    return protocol == Protocol::kTcp && flags.ack && !flags.syn &&
           !flags.fin && !flags.rst && payload.empty();
  }
  bool carries_data() const { return !payload.empty(); }

  std::string to_string() const;
};

/// Convert between byte vectors and strings (HTTP layer convenience).
/// to_string(const Payload&) lives in net/payload.h.
std::vector<std::uint8_t> to_bytes(const std::string& s);
std::string to_string(const std::vector<std::uint8_t>& b);

}  // namespace bnm::net
