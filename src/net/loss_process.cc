#include "net/loss_process.h"

#include <cassert>

namespace bnm::net {

double GilbertElliottConfig::stationary_loss_rate() const {
  const double denom = p_good_to_bad + p_bad_to_good;
  if (denom <= 0.0) return loss_good;
  const double pi_bad = p_good_to_bad / denom;
  return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
}

LossProcess LossProcess::iid(double p) {
  LossProcess lp;
  if (p > 0.0) {
    lp.mode_ = Mode::kIid;
    lp.iid_p_ = p;
  }
  return lp;
}

LossProcess LossProcess::bursty(const GilbertElliottConfig& cfg) {
  LossProcess lp;
  lp.mode_ = Mode::kBursty;
  lp.ge_ = cfg;
  return lp;
}

bool LossProcess::should_drop(sim::Rng& rng) {
  assert(enabled() && "should_drop on a disabled LossProcess");
  if (mode_ == Mode::kIid) return rng.chance(iid_p_);
  // Gilbert-Elliott: drop according to the current state, then transition.
  const double loss_p = bad_ ? ge_.loss_bad : ge_.loss_good;
  const bool drop = loss_p > 0.0 && rng.chance(loss_p);
  const double flip_p = bad_ ? ge_.p_bad_to_good : ge_.p_good_to_bad;
  if (flip_p > 0.0 && rng.chance(flip_p)) bad_ = !bad_;
  return drop;
}

}  // namespace bnm::net
