// Egress network-emulation qdisc, modelled on Linux netem.
//
// The paper's testbed adds "an additional delay of 50 ms on the server side
// to simulate the Internet environment"; this is the component that does it.
// Constant delay preserves packet order (as netem does for a fixed delay);
// optional jitter re-orders only if `allow_reorder` is set, otherwise each
// departure is clamped to be no earlier than the previous one.
//
// Like its Linux namesake, netem can also drop (i.i.d. or Gilbert-Elliott
// bursty, via the shared LossProcess primitive) and duplicate packets; both
// happen before the delay stage, matching the kernel qdisc's order. All
// stochastic knobs default off and draw nothing from the RNG when disabled.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>

#include "net/loss_process.h"
#include "net/packet.h"
#include "sim/arena.h"
#include "sim/simulation.h"

namespace bnm::net {

class DelayEmulator {
 public:
  struct Config {
    sim::Duration delay = sim::Duration::zero();
    sim::Duration jitter = sim::Duration::zero();  ///< uniform [0, jitter)
    bool allow_reorder = false;
    double loss_probability = 0.0;  ///< i.i.d. per-packet drop
    /// Bursty (Gilbert-Elliott) loss; takes precedence over
    /// loss_probability when set.
    std::optional<GilbertElliottConfig> bursty_loss;
    double duplicate_probability = 0.0;
    std::string name = "netem";
  };

  DelayEmulator(sim::Simulation& sim, Config config);

  /// The downstream stage packets are released to.
  void set_output(std::function<void(Packet)> output) {
    output_ = std::move(output);
  }

  void enqueue(Packet packet);

  const Config& config() const { return config_; }
  void set_delay(sim::Duration d) { config_.delay = d; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t duplicates() const { return duplicates_; }

 private:
  void schedule_release(Packet packet);

  sim::Simulation& sim_;
  Config config_;
  sim::Rng rng_;
  LossProcess loss_;
  std::function<void(Packet)> output_;
  sim::TimePoint last_release_;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  /// Delayed packets parked until their release event, in arena-backed
  /// nodes; the release closure captures [this, iterator] and stays inside
  /// the scheduler's inline storage. Release order is set by the scheduled
  /// event time (and last_release_ clamping), not by list position, so the
  /// staging container cannot perturb delivery order.
  std::list<Packet, sim::ArenaAllocator<Packet>> staged_;
};

}  // namespace bnm::net
