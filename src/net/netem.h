// Egress network-emulation qdisc, modelled on Linux netem.
//
// The paper's testbed adds "an additional delay of 50 ms on the server side
// to simulate the Internet environment"; this is the component that does it.
// Constant delay preserves packet order (as netem does for a fixed delay);
// optional jitter re-orders only if `allow_reorder` is set, otherwise each
// departure is clamped to be no earlier than the previous one.
#pragma once

#include <functional>
#include <string>

#include "net/packet.h"
#include "sim/simulation.h"

namespace bnm::net {

class DelayEmulator {
 public:
  struct Config {
    sim::Duration delay = sim::Duration::zero();
    sim::Duration jitter = sim::Duration::zero();  ///< uniform [0, jitter)
    bool allow_reorder = false;
    std::string name = "netem";
  };

  DelayEmulator(sim::Simulation& sim, Config config);

  /// The downstream stage packets are released to.
  void set_output(std::function<void(Packet)> output) {
    output_ = std::move(output);
  }

  void enqueue(Packet packet);

  const Config& config() const { return config_; }
  void set_delay(sim::Duration d) { config_.delay = d; }

 private:
  sim::Simulation& sim_;
  Config config_;
  sim::Rng rng_;
  std::function<void(Packet)> output_;
  sim::TimePoint last_release_;
};

}  // namespace bnm::net
