#include "net/cross_traffic.h"

#include <algorithm>
#include <cmath>

namespace bnm::net {

CrossTrafficGenerator::CrossTrafficGenerator(sim::Simulation& sim, Host& source,
                                             Endpoint sink_endpoint,
                                             Config config)
    : sim_{sim},
      source_{source},
      sink_{sink_endpoint},
      config_{std::move(config)},
      rng_{sim.rng_for(config_.name)} {}

sim::Duration CrossTrafficGenerator::mean_inter_burst() const {
  // average_mbps = burst_bytes / inter_burst  =>  solve for inter_burst.
  const double burst_bytes =
      config_.mean_burst_packets * static_cast<double>(config_.packet_bytes);
  const double bytes_per_second = config_.average_mbps * 1e6 / 8.0;
  return sim::Duration::from_seconds_f(
      std::max(1e-6, burst_bytes / bytes_per_second));
}

void CrossTrafficGenerator::start() {
  if (running_) return;
  running_ = true;
  if (!socket_) {
    socket_ = source_.udp_open([](Endpoint, const Payload&) {
      // Sink replies are not expected; drop anything that comes back.
    });
  }
  schedule_next_burst();
}

void CrossTrafficGenerator::stop() {
  running_ = false;
  next_burst_.cancel();
}

void CrossTrafficGenerator::schedule_next_burst() {
  if (!running_) return;
  const sim::Duration gap =
      rng_.exponential_ms(mean_inter_burst().ms_f());  // Poisson arrivals
  next_burst_ = sim_.scheduler().schedule_after(gap, [this] { emit_burst(); });
}

void CrossTrafficGenerator::emit_burst() {
  if (!running_) return;
  // Geometric burst length with the configured mean (>= 1 packet).
  const double u = std::max(1e-12, rng_.uniform01());
  const double p = 1.0 / std::max(1.0, config_.mean_burst_packets);
  const auto count = static_cast<int>(
      std::max(1.0, std::ceil(std::log(u) / std::log(1.0 - p))));
  for (int i = 0; i < count; ++i) {
    std::vector<std::uint8_t> payload(config_.packet_bytes, 0x5A);
    socket_->send_to(sink_, std::move(payload));
    ++packets_sent_;
    offered_bytes_ += static_cast<double>(config_.packet_bytes);
  }
  schedule_next_burst();
}

}  // namespace bnm::net
