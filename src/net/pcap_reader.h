// libpcap file reader: the inverse of PcapWriter. Parses classic pcap
// (microsecond timestamps, LINKTYPE_RAW IPv4) back into packet records, so
// captures can round-trip through files and externally produced captures
// can be analysed with the library's capture tooling.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace bnm::net {

struct PcapRecord {
  sim::TimePoint timestamp;
  Packet packet;
};

class PcapReader {
 public:
  enum class Error {
    kNone,
    kBadMagic,
    kUnsupportedLinkType,
    kTruncated,
    kBadIpHeader,
  };

  struct Result {
    Error error = Error::kNone;
    std::uint32_t link_type = 0;
    std::vector<PcapRecord> records;
    bool ok() const { return error == Error::kNone; }
  };

  /// Parse a whole pcap stream. Transport payloads are preserved;
  /// timestamps become TimePoints relative to the epoch.
  static Result read(std::istream& in);
  static Result read_file(const std::string& path);

  /// Parse one on-wire IPv4 frame (header + transport + payload) into a
  /// Packet. The packet's payload is a zero-copy subview of `frame`'s
  /// buffer. Returns nullopt on malformed input. Exposed for tests.
  static std::optional<Packet> parse_frame(const Payload& frame);
};

}  // namespace bnm::net
