// Minimal DNS over UDP: wire-format queries/responses (RFC 1035 subset,
// A records only), a server with a static zone, and a caching stub
// resolver.
//
// Why it exists here: browser-based measurement tools address servers by
// hostname, so a tool's *first* probe can silently include a DNS lookup -
// one more way a browser-level RTT overshoots the wire (and a service
// Netalyzr itself measures). The ablation benches use this to show the
// effect; the cache then removes it from the second probe, mirroring the
// Δd1/Δd2 asymmetry the paper dissects for TCP handshakes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/host.h"

namespace bnm::net {

/// A DNS question/answer for an A record.
struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  std::string qname;           ///< e.g. "server.bnm.test"
  std::optional<IpAddress> answer;  ///< present in positive responses
  std::uint32_t ttl_seconds = 60;
  std::uint8_t rcode = 0;      ///< 0 = NOERROR, 3 = NXDOMAIN

  /// RFC 1035 wire encoding (header + question [+ answer]).
  std::vector<std::uint8_t> encode() const;
  static std::optional<DnsMessage> decode(const Payload& wire);
};

/// Authoritative server with a static zone, listening on UDP 53.
class DnsServer {
 public:
  DnsServer(Host& host, Port port = 53);

  void add_record(const std::string& name, IpAddress address);
  std::uint64_t queries_served() const { return queries_; }

 private:
  Host& host_;
  std::shared_ptr<UdpSocket> socket_;
  std::map<std::string, IpAddress> zone_;
  std::uint64_t queries_ = 0;
};

/// Caching stub resolver for a client host.
class DnsResolver {
 public:
  using Callback = std::function<void(std::optional<IpAddress>)>;

  DnsResolver(Host& host, Endpoint server);

  /// Resolve `name`; served from cache when fresh, otherwise one UDP
  /// query. Negative results are not cached.
  void resolve(const std::string& name, Callback cb);

  bool cached(const std::string& name) const;
  std::uint64_t queries_sent() const { return queries_sent_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  void flush_cache() { cache_.clear(); }

  /// Lookup timeout (default 2 s) - expired lookups call back with nullopt.
  void set_timeout(sim::Duration timeout) { timeout_ = timeout; }

 private:
  struct CacheEntry {
    IpAddress address;
    sim::TimePoint expires;
  };
  struct Pending {
    std::string name;
    Callback cb;
    sim::EventHandle timeout;
  };

  void on_datagram(Endpoint src, const Payload& data);

  Host& host_;
  Endpoint server_;
  std::shared_ptr<UdpSocket> socket_;
  std::map<std::string, CacheEntry> cache_;
  std::map<std::uint16_t, Pending> pending_;
  std::uint16_t next_id_ = 1;
  sim::Duration timeout_ = sim::Duration::seconds(2);
  std::uint64_t queries_sent_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace bnm::net
