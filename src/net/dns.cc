#include "net/dns.h"

#include <utility>

namespace bnm::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}

/// Encode "a.b.c" as 1a1b1c0 label sequence. Returns false on bad labels.
bool put_qname(std::vector<std::uint8_t>& out, const std::string& name) {
  std::size_t start = 0;
  while (start <= name.size()) {
    auto dot = name.find('.', start);
    if (dot == std::string::npos) dot = name.size();
    const std::size_t len = dot - start;
    if (len == 0 || len > 63) return false;
    out.push_back(static_cast<std::uint8_t>(len));
    for (std::size_t i = start; i < dot; ++i) {
      out.push_back(static_cast<std::uint8_t>(name[i]));
    }
    if (dot == name.size()) break;
    start = dot + 1;
  }
  out.push_back(0);
  return true;
}

std::optional<std::string> read_qname(const Payload& wire,
                                      std::size_t& pos) {
  std::string name;
  while (pos < wire.size()) {
    const std::uint8_t len = wire[pos++];
    if (len == 0) return name;
    if ((len & 0xC0) != 0) return std::nullopt;  // no compression support
    if (pos + len > wire.size()) return std::nullopt;
    if (!name.empty()) name += '.';
    name.append(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                wire.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return std::nullopt;
}

std::optional<std::uint16_t> read_u16(const Payload& wire,
                                      std::size_t& pos) {
  if (pos + 2 > wire.size()) return std::nullopt;
  const std::uint16_t v =
      static_cast<std::uint16_t>((wire[pos] << 8) | wire[pos + 1]);
  pos += 2;
  return v;
}

constexpr std::uint16_t kTypeA = 1;
constexpr std::uint16_t kClassIn = 1;

}  // namespace

std::vector<std::uint8_t> DnsMessage::encode() const {
  std::vector<std::uint8_t> out;
  put_u16(out, id);
  // Flags: QR at bit 15, RD set, RCODE low nibble.
  std::uint16_t flags = 0x0100;  // RD
  if (is_response) flags |= 0x8000 | rcode;
  put_u16(out, flags);
  put_u16(out, 1);                            // QDCOUNT
  put_u16(out, is_response && answer ? 1 : 0);  // ANCOUNT
  put_u16(out, 0);                            // NSCOUNT
  put_u16(out, 0);                            // ARCOUNT
  if (!put_qname(out, qname)) return {};
  put_u16(out, kTypeA);
  put_u16(out, kClassIn);
  if (is_response && answer) {
    put_qname(out, qname);  // no compression: repeat the name
    put_u16(out, kTypeA);
    put_u16(out, kClassIn);
    put_u32(out, ttl_seconds);
    put_u16(out, 4);  // RDLENGTH
    put_u32(out, answer->raw());
  }
  return out;
}

std::optional<DnsMessage> DnsMessage::decode(const Payload& wire) {
  std::size_t pos = 0;
  DnsMessage msg;
  const auto id = read_u16(wire, pos);
  const auto flags = read_u16(wire, pos);
  const auto qdcount = read_u16(wire, pos);
  const auto ancount = read_u16(wire, pos);
  if (!id || !flags || !qdcount || !ancount) return std::nullopt;
  pos += 4;  // NSCOUNT + ARCOUNT
  if (*qdcount != 1) return std::nullopt;

  msg.id = *id;
  msg.is_response = (*flags & 0x8000) != 0;
  msg.rcode = static_cast<std::uint8_t>(*flags & 0x000F);

  const auto qname = read_qname(wire, pos);
  if (!qname) return std::nullopt;
  msg.qname = *qname;
  const auto qtype = read_u16(wire, pos);
  const auto qclass = read_u16(wire, pos);
  if (!qtype || !qclass || *qtype != kTypeA || *qclass != kClassIn) {
    return std::nullopt;
  }

  if (msg.is_response && *ancount >= 1) {
    const auto aname = read_qname(wire, pos);
    const auto atype = read_u16(wire, pos);
    const auto aclass = read_u16(wire, pos);
    const auto ttl_hi = read_u16(wire, pos);
    const auto ttl_lo = read_u16(wire, pos);
    const auto rdlen = read_u16(wire, pos);
    if (!aname || !atype || !aclass || !ttl_hi || !ttl_lo || !rdlen ||
        *rdlen != 4 || pos + 4 > wire.size()) {
      return std::nullopt;
    }
    msg.ttl_seconds =
        (static_cast<std::uint32_t>(*ttl_hi) << 16) | *ttl_lo;
    msg.answer = IpAddress{(static_cast<std::uint32_t>(wire[pos]) << 24) |
                           (static_cast<std::uint32_t>(wire[pos + 1]) << 16) |
                           (static_cast<std::uint32_t>(wire[pos + 2]) << 8) |
                           wire[pos + 3]};
  }
  return msg;
}

// -------------------------------------------------------------------- server

DnsServer::DnsServer(Host& host, Port port) : host_{host} {
  socket_ = host_.udp_open(
      port, [this](Endpoint src, const Payload& data) {
        const auto query = DnsMessage::decode(data);
        if (!query || query->is_response) return;
        ++queries_;
        DnsMessage reply = *query;
        reply.is_response = true;
        const auto it = zone_.find(query->qname);
        if (it != zone_.end()) {
          reply.answer = it->second;
          reply.rcode = 0;
        } else {
          reply.answer.reset();
          reply.rcode = 3;  // NXDOMAIN
        }
        socket_->send_to(src, reply.encode());
      });
}

void DnsServer::add_record(const std::string& name, IpAddress address) {
  zone_[name] = address;
}

// ------------------------------------------------------------------ resolver

DnsResolver::DnsResolver(Host& host, Endpoint server)
    : host_{host}, server_{server} {
  socket_ = host_.udp_open(
      [this](Endpoint src, const Payload& data) {
        on_datagram(src, data);
      });
}

bool DnsResolver::cached(const std::string& name) const {
  const auto it = cache_.find(name);
  return it != cache_.end() && it->second.expires > host_.sim().now();
}

void DnsResolver::resolve(const std::string& name, Callback cb) {
  if (const auto it = cache_.find(name);
      it != cache_.end() && it->second.expires > host_.sim().now()) {
    ++cache_hits_;
    // Asynchronous like a real API, even on a hit.
    host_.sim().scheduler().schedule_after(
        sim::Duration::micros(20),
        [cb = std::move(cb), addr = it->second.address] { cb(addr); });
    return;
  }

  const std::uint16_t id = next_id_++;
  DnsMessage query;
  query.id = id;
  query.qname = name;

  Pending pending;
  pending.name = name;
  pending.cb = std::move(cb);
  pending.timeout = host_.sim().scheduler().schedule_after(timeout_, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto cb = std::move(it->second.cb);
    pending_.erase(it);
    cb(std::nullopt);
  });
  pending_.emplace(id, std::move(pending));

  ++queries_sent_;
  socket_->send_to(server_, query.encode());
}

void DnsResolver::on_datagram(Endpoint src, const Payload& data) {
  if (src != server_) return;
  const auto reply = DnsMessage::decode(data);
  if (!reply || !reply->is_response) return;
  const auto it = pending_.find(reply->id);
  if (it == pending_.end()) return;  // late or spoofed
  auto pending = std::move(it->second);
  pending_.erase(it);
  pending.timeout.cancel();

  if (reply->rcode == 0 && reply->answer) {
    cache_[pending.name] = CacheEntry{
        *reply->answer,
        host_.sim().now() + sim::Duration::seconds(reply->ttl_seconds)};
    pending.cb(*reply->answer);
  } else {
    pending.cb(std::nullopt);
  }
}

}  // namespace bnm::net
