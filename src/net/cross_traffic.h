// Background cross-traffic generator: Poisson-arriving on/off UDP bursts
// from one host toward another, to contend with measurement traffic on
// shared links.
//
// The paper's testbed carefully ensured "the network was free of cross
// traffic"; this component exists for the ablation that shows what happens
// when it is not.
#pragma once

#include <cstdint>
#include <memory>

#include "net/host.h"
#include "sim/simulation.h"

namespace bnm::net {

class CrossTrafficGenerator {
 public:
  struct Config {
    /// Long-run average offered load.
    double average_mbps = 10.0;
    /// Burst sizing: packets per burst is geometric with this mean.
    double mean_burst_packets = 10.0;
    std::size_t packet_bytes = 1400;
    Port destination_port = 7;  ///< discard-style sink
    std::string name = "crosstraffic";
  };

  /// Sends from `source` toward `sink_endpoint`. Call start() to begin.
  CrossTrafficGenerator(sim::Simulation& sim, Host& source,
                        Endpoint sink_endpoint, Config config);

  void start();
  void stop();
  bool running() const { return running_; }

  std::uint64_t packets_sent() const { return packets_sent_; }
  double offered_bytes() const { return offered_bytes_; }

 private:
  void schedule_next_burst();
  void emit_burst();
  sim::Duration mean_inter_burst() const;

  sim::Simulation& sim_;
  Host& source_;
  Endpoint sink_;
  Config config_;
  sim::Rng rng_;
  std::shared_ptr<UdpSocket> socket_;
  sim::EventHandle next_burst_;
  bool running_ = false;
  std::uint64_t packets_sent_ = 0;
  double offered_bytes_ = 0;
};

}  // namespace bnm::net
