// Zero-copy packet payloads: an immutable, refcounted byte buffer
// (PayloadBuffer) and a cheap offset/length view over it (Payload).
//
// Ownership model (see DESIGN.md "Payload buffers"):
//   * The bytes inside a PayloadBuffer are immutable for as long as more
//     than one Payload references them. Copying a Payload bumps a refcount;
//     it never touches the bytes. Sub-views (TCP segmentation, capture
//     snap-len truncation) alias the same buffer at an offset.
//   * Mutation goes through the explicit copy-on-write escape hatch
//     `mutable_bytes()`: a uniquely-owned full view is mutated in place,
//     anything shared is first cloned into a fresh buffer. Every other
//     holder keeps seeing the original bytes, so the simulator's
//     "every hop works on its own copy" invariant holds by construction.
//
// Accounting: the class counts payload bytes that are deep-copied versus
// bytes that are merely aliased (each alias is a copy the pre-zero-copy
// design would have performed). bench/payload_copy.cpp reports the ratio.
//
// Allocation: a PayloadBuffer is one intrusively-refcounted block (header
// and bytes contiguous), served from the thread's current sim::Arena when
// one is installed and from the global allocator otherwise. The two paths
// are observationally identical — same bytes, same PayloadStats counts —
// which the bit-identity tests rely on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bnm::net {

class PayloadBuffer;

/// Global tallies of payload byte traffic. Relaxed atomics: cheap on the
/// hot path, safe under the parallel matrix runner, precise enough for the
/// bench harness (each simulation is single-threaded).
struct PayloadStats {
  /// Bytes memcpy'd into fresh buffers (buffer creation, COW clones,
  /// multi-chunk gathers, as_vector()/as_string() extraction).
  static std::uint64_t deep_copy_bytes();
  /// Bytes aliased by copying/sub-viewing a Payload instead of deep-copying
  /// them — exactly what the old owned-vector design paid per hop.
  static std::uint64_t aliased_bytes();
  /// Number of distinct backing buffers allocated.
  static std::uint64_t buffers_allocated();
  static void reset();
};

/// An immutable view (offset + length) into a refcounted byte buffer.
/// Copying is O(1); the bytes are shared, never duplicated. The API is
/// deliberately vector-ish (size/empty/data/begin/end/operator[]) so code
/// that used to hold std::vector<std::uint8_t> ports with minimal churn.
class Payload {
 public:
  using value_type = std::uint8_t;
  using const_iterator = const std::uint8_t*;

  Payload() = default;
  /// Adopt a byte vector as a new immutable buffer (no copy for rvalues).
  Payload(std::vector<std::uint8_t> bytes);  // NOLINT: implicit by design
  /// Deep-copy a string's bytes into a new buffer.
  explicit Payload(const std::string& bytes);
  /// Deep-copy a raw byte range into a new buffer.
  static Payload copy_of(const void* data, std::size_t len);

  Payload(const Payload& other);
  Payload& operator=(const Payload& other);
  Payload(Payload&& other) noexcept;
  Payload& operator=(Payload&& other) noexcept;
  ~Payload();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* data() const;
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }

  /// Zero-copy sub-view: `len` bytes starting at `offset` (clamped to the
  /// view's bounds). Shares the backing buffer.
  Payload subview(std::size_t offset, std::size_t len) const;
  /// Zero-copy prefix of at most `n` bytes.
  Payload first(std::size_t n) const { return subview(0, n); }
  /// Zero-copy suffix starting at `offset`.
  Payload skip(std::size_t offset) const {
    return subview(offset, size_ - std::min(offset, size_));
  }
  /// Drop `n` bytes from the front of this view in place. Pure view
  /// bookkeeping (the old deque-based send buffer popped its head just as
  /// cheaply), so unlike subview() it is not counted as aliased bytes.
  void remove_prefix(std::size_t n) {
    n = std::min(n, size_);
    offset_ += n;
    size_ -= n;
    if (size_ == 0) clear();
  }

  // ---- vector-compat mutators: rebind this view to a fresh buffer ----
  void clear();
  void assign(std::size_t count, std::uint8_t value);
  template <typename It>
  void assign(It first, It last) {
    *this = Payload{std::vector<std::uint8_t>(first, last)};
  }

  /// Copy-on-write escape hatch: a pointer to size() writable bytes. A
  /// uniquely-owned full view is mutated in place; a shared or partial view
  /// is first cloned, so every other holder keeps the original bytes.
  /// In-place mutation only — a payload never changes length.
  std::uint8_t* mutable_bytes();

  /// Materialize a copy (counted as a deep copy).
  std::vector<std::uint8_t> as_vector() const;
  std::string as_string() const;

  /// Byte-wise comparison (not buffer identity).
  bool operator==(const Payload& other) const;
  bool operator==(const std::vector<std::uint8_t>& other) const;

  // ---- introspection for tests and the bench harness ----
  /// True when both views read from the same backing buffer (and therefore
  /// neither paid a byte copy).
  bool shares_buffer_with(const Payload& other) const {
    return buf_ != nullptr && buf_ == other.buf_;
  }
  long buffer_use_count() const;

 private:
  friend Payload gather(const Payload* parts, std::size_t count,
                        std::size_t skip_front, std::size_t total);

  /// Takes ownership of one reference (the caller must have ref'd `buf`).
  Payload(PayloadBuffer* buf, std::size_t offset, std::size_t size)
      : buf_{buf}, offset_{offset}, size_{size} {}

  PayloadBuffer* buf_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

/// Gather a sequence of views into one contiguous buffer (deep copy; used
/// when a TCP segment must span send-queue chunk boundaries).
Payload gather(const Payload* parts, std::size_t count, std::size_t skip_front,
               std::size_t total);

/// String conversion helpers (HTTP layer convenience).
std::string to_string(const Payload& p);

}  // namespace bnm::net
