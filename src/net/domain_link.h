// Cross-domain duplex link: the cut point of a domain-partitioned topology.
//
// Timing is identical to Link (serialize at the source, propagate, deliver),
// but the two ends live in different DomainScheduler domains: the source
// side computes queueing + serialization against its own clock, then hands
// the packet to the destination domain through a DomainScheduler channel
// whose latency is the propagation delay. That latency is exactly the
// conservative lookahead the window protocol synchronizes on, so a
// partition cut along DomainLinks is race-free by construction.
//
// Differences from Link, both forced by the partition:
//   * no loss process — Link shares one RNG chain across both directions,
//     which cannot be drawn deterministically from two threads. Cut the
//     topology along lossless links (the usual case: loss is modelled on
//     access links, partitions cut the long-haul core).
//   * the transmitter slot frees at tx_done (a source-domain event), not at
//     delivery — in_flight accounting never crosses the domain boundary.
//     Under the queue limit both schemes admit the same packets whenever
//     the queue never fills, and propagation only extends occupancy.
#pragma once

#include <cstdint>
#include <string>

#include "net/link.h"
#include "net/packet.h"
#include "sim/domain.h"

namespace bnm::net {

class DomainLink final : public Egress {
 public:
  struct Config {
    double bandwidth_bps = 100e6;
    /// Propagation delay == channel lookahead; must be > 0.
    sim::Duration propagation = sim::Duration::micros(5);
    std::size_t queue_limit_packets = 1000;
    std::string name = "dlink";
  };

  /// Registers an a->b and a b->a channel on `domains`. Side kA lives in
  /// domain `dom_a`, side kB in `dom_b`; both must already be added.
  DomainLink(sim::DomainScheduler& domains,
             sim::DomainScheduler::DomainId dom_a,
             sim::DomainScheduler::DomainId dom_b, Config config);

  /// `sink` receives packets arriving *at* `side`; it must live in that
  /// side's domain.
  void attach(LinkSide side, PacketSink* sink) override;

  /// Must be called from the side's own domain (its thread, during a
  /// window) — normal packet flow satisfies this automatically.
  void transmit(LinkSide side, Packet packet) override;

  const Config& config() const { return config_; }
  sim::Duration lookahead() const { return config_.propagation; }
  std::uint64_t drops(LinkSide side) const { return dir(side).drops; }
  std::uint64_t delivered(LinkSide side) const { return dir(side).delivered; }

  sim::Duration serialization_delay(const Packet& packet) const;

 private:
  struct Direction {
    PacketSink* sink = nullptr;  ///< receiver at the far end (dst domain)
    sim::DomainScheduler::ChannelId channel = 0;
    sim::Simulation* src = nullptr;
    sim::TimePoint tx_free;     ///< src-domain state
    std::size_t in_flight = 0;  ///< src-domain state
    std::uint64_t drops = 0;    ///< src-domain state
    /// Bumped by the delivery closure in the *destination* domain; distinct
    /// field, so concurrent windows never touch the same memory location.
    std::uint64_t delivered = 0;
  };

  Direction& dir(LinkSide from) {
    return from == LinkSide::kA ? a_to_b_ : b_to_a_;
  }
  const Direction& dir(LinkSide from) const {
    return from == LinkSide::kA ? a_to_b_ : b_to_a_;
  }

  sim::DomainScheduler& domains_;
  Config config_;
  Direction a_to_b_;
  Direction b_to_a_;
};

}  // namespace bnm::net
