#include "net/link.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bnm::net {

Link::Link(sim::Simulation& sim, Config config)
    : sim_{sim}, config_{std::move(config)}, rng_{sim.rng_for(config_.name)} {
  assert(config_.bandwidth_bps > 0);
  loss_ = config_.bursty_loss ? LossProcess::bursty(*config_.bursty_loss)
                              : LossProcess::iid(config_.loss_probability);
}

void Link::attach(Side side, PacketSink* sink) {
  // `sink` is the receiver *on* `side`; store it in the direction that
  // delivers toward that side.
  Direction& d = side == Side::kA ? b_to_a_ : a_to_b_;
  d.sink = sink;
}

sim::Duration Link::serialization_delay(const Packet& packet) const {
  const double bits = static_cast<double>(packet.wire_size()) * 8.0;
  return sim::Duration::from_seconds_f(bits / config_.bandwidth_bps);
}

void Link::transmit(Side side, Packet packet) {
  Direction& d = dir(side);
  assert(d.sink && "link side not attached");

  if (d.in_flight >= config_.queue_limit_packets) {
    ++d.drops;
    if (sim_.trace().enabled()) {
      sim_.trace().emit(sim_.now(), config_.name,
                        "tail-drop " + packet.to_string());
    }
    return;
  }
  if (loss_.enabled() && loss_.should_drop(rng_)) {
    ++d.drops;
    if (sim_.trace().enabled()) {
      sim_.trace().emit(sim_.now(), config_.name,
                        "loss " + packet.to_string());
    }
    return;
  }

  const sim::TimePoint start = std::max(sim_.now(), d.tx_free);
  const sim::TimePoint tx_done = start + serialization_delay(packet);
  d.tx_free = tx_done;
  ++d.in_flight;

  const sim::TimePoint arrive = tx_done + config_.propagation;
  if (sim_.trace().enabled()) {
    // One hop span per packet: [queued, delivered) = queueing +
    // serialization + propagation.
    sim_.trace().emit_span(
        sim_.now(), arrive - sim_.now(), config_.name,
        "hop " + packet.to_string(),
        {{"packet_id", static_cast<std::int64_t>(packet.id)},
         {"wire_bytes", static_cast<std::int64_t>(packet.wire_size())}});
  }
  PacketSink* sink = d.sink;
  Direction* dp = &d;
  const auto it = in_flight_.insert(in_flight_.end(), std::move(packet));
  sim_.scheduler().schedule_at(arrive, [this, sink, dp, it] {
    --dp->in_flight;
    ++dp->delivered;
    Packet pkt = std::move(*it);
    in_flight_.erase(it);
    sink->handle_packet(std::move(pkt));
  });
}

std::uint64_t Link::drops(Side side) const { return dir(side).drops; }

std::uint64_t Link::delivered(Side side) const { return dir(side).delivered; }

}  // namespace bnm::net
