#include "net/tcp.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/host.h"
#include "obs/prof.h"

namespace bnm::net {

namespace {
// Sequence-space comparison (RFC 793 modular arithmetic).
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
}  // namespace

const char* TcpConnection::state_name(State s) {
  switch (s) {
    case State::kClosed: return "CLOSED";
    case State::kSynSent: return "SYN_SENT";
    case State::kSynRcvd: return "SYN_RCVD";
    case State::kEstablished: return "ESTABLISHED";
    case State::kFinWait1: return "FIN_WAIT_1";
    case State::kFinWait2: return "FIN_WAIT_2";
    case State::kCloseWait: return "CLOSE_WAIT";
    case State::kLastAck: return "LAST_ACK";
    case State::kClosing: return "CLOSING";
    case State::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(Host& host, FourTuple tuple, TcpConfig config,
                             bool initiator, std::uint32_t isn)
    : host_{host},
      tuple_{tuple},
      config_{config},
      initiator_{initiator},
      iss_{isn},
      snd_una_{isn},
      snd_nxt_{isn},
      rto_current_{config.rto_initial} {
  // Passive-open connections are created by the host in response to a SYN
  // and handle that SYN immediately afterwards.
  if (!initiator_) state_ = State::kSynRcvd;
  cwnd_ = static_cast<double>(config_.initial_cwnd_segments * config_.mss);
  ssthresh_ = static_cast<double>(config_.send_window);
}

std::uint32_t TcpConnection::tsval_now() const {
  const std::int64_t granule =
      std::max<std::int64_t>(config_.ts_granule.ns(), 1);
  const std::int64_t ticks = host_.sim().now().ns_since_epoch() / granule;
  return config_.ts_offset + static_cast<std::uint32_t>(ticks);
}

void TcpConnection::stamp_timestamps(Packet& pkt) const {
  if (!ts_ok_) return;
  pkt.ts.present = true;
  pkt.ts.tsval = tsval_now();
  pkt.ts.tsecr = ts_recent_valid_ ? ts_recent_ : 0;
}

void TcpConnection::note_ts_recent(const Packet& seg) {
  if (!ts_ok_ || !seg.ts.present) return;
  // Update only when the segment sits at (or left of) the last ACK we sent:
  // a burst received before a cumulative ACK leaves TS.Recent at the burst's
  // *first* segment, so the delayed ACK's TSecr times the full round trip
  // including the delayed-ACK wait — exactly RFC 7323 §4.3.
  if (!seq_leq(seg.seq, last_ack_sent_)) return;
  if (ts_recent_valid_ &&
      static_cast<std::int32_t>(seg.ts.tsval - ts_recent_) < 0) {
    return;  // older timestamp (e.g. a reordered segment): keep TS.Recent
  }
  ts_recent_ = seg.ts.tsval;
  ts_recent_valid_ = true;
}

std::size_t TcpConnection::effective_window() const {
  if (!config_.congestion_control) return config_.send_window;
  return std::min(config_.send_window,
                  static_cast<std::size_t>(cwnd_));
}

void TcpConnection::enter(State next) {
  if (host_.sim().trace().enabled()) {
    host_.sim().trace().emit(host_.sim().now(), "tcp/" + tuple_.to_string(),
                             std::string{state_name(state_)} + " -> " +
                                 state_name(next));
  }
  state_ = next;
}

void TcpConnection::start_active_open() {
  assert(initiator_);
  assert(state_ == State::kClosed);
  enter(State::kSynSent);
  Packet syn;
  syn.protocol = Protocol::kTcp;
  syn.src = tuple_.local;
  syn.dst = tuple_.remote;
  syn.flags.syn = true;
  syn.seq = iss_;
  if (config_.timestamps) {
    // Offer RFC 7323 timestamps; TSecr is zero until the peer accepts.
    syn.ts.present = true;
    syn.ts.tsval = tsval_now();
  }
  snd_nxt_ = iss_ + 1;
  rtx_queue_.push_back(Unacked{iss_, syn});
  ++segments_sent_;
  host_.send_packet(std::move(syn));
  arm_rto();
}

void TcpConnection::send(Payload data) {
  assert(!fin_pending_ && !fin_sent_ && "send after close()");
  if (!data.empty()) {
    send_buffered_ += data.size();
    send_buffer_.push_back(std::move(data));
  }
  pump_send();
}

void TcpConnection::send(std::vector<std::uint8_t> data) {
  send(Payload{std::move(data)});
}

void TcpConnection::send(const std::string& data) { send(Payload{data}); }

Payload TcpConnection::dequeue_chunk(std::size_t take) {
  assert(take <= send_buffered_);
  send_buffered_ -= take;
  Payload& front = send_buffer_.front();
  if (take < front.size()) {
    // Partial consumption: the segment is a sub-view, the remainder stays
    // queued as a sub-view of the same buffer. No bytes move.
    Payload chunk = front.first(take);
    front.remove_prefix(take);
    return chunk;
  }
  if (take == front.size()) {
    Payload chunk = std::move(front);
    send_buffer_.pop_front();
    return chunk;
  }
  // The segment spans queued buffers (only possible when a window-limited
  // sender coalesces several small send() calls): gather-copy this one.
  std::vector<Payload> parts;
  std::size_t have = 0;
  while (have < take) {
    have += send_buffer_.front().size();
    parts.push_back(std::move(send_buffer_.front()));
    send_buffer_.pop_front();
  }
  Payload chunk = gather(parts.data(), parts.size(), 0, take);
  if (have > take) {
    // Re-queue the unconsumed tail of the last buffer as a view.
    send_buffer_.push_front(parts.back().skip(parts.back().size() - (have - take)));
  }
  return chunk;
}

void TcpConnection::pump_send() {
  BNM_PROF_SCOPE("tcp.segmentation");
  if (state_ != State::kEstablished && state_ != State::kCloseWait) {
    return;  // data flows once established; SYN queues it via send_buffer_
  }
  while (send_buffered_ > 0) {
    const std::uint32_t in_flight = snd_nxt_ - snd_una_;
    const std::size_t window = effective_window();
    if (in_flight >= window) break;  // wait for ACKs
    const std::size_t room = window - in_flight;
    const std::size_t take = std::min({config_.mss, send_buffered_, room});
    transmit_segment(dequeue_chunk(take), /*fin=*/false);
  }
  maybe_send_fin();
}

void TcpConnection::transmit_segment(Payload chunk, bool fin) {
  Packet seg;
  seg.protocol = Protocol::kTcp;
  seg.src = tuple_.local;
  seg.dst = tuple_.remote;
  seg.flags.ack = true;
  seg.flags.psh = !chunk.empty();
  seg.flags.fin = fin;
  seg.seq = snd_nxt_;
  seg.ack = rcv_nxt_;
  stamp_timestamps(seg);
  last_ack_sent_ = rcv_nxt_;
  seg.payload = std::move(chunk);
  snd_nxt_ += static_cast<std::uint32_t>(seg.payload.size()) + (fin ? 1 : 0);
  // The outgoing data/FIN acknowledges everything received so far, so any
  // pending delayed ACK is now redundant.
  delack_timer_.cancel();
  rtx_queue_.push_back(Unacked{seg.seq, seg});
  ++segments_sent_;
  host_.send_packet(std::move(seg));
  arm_rto();
}

void TcpConnection::send_control(TcpFlags flags, std::uint32_t seq) {
  Packet pkt;
  pkt.protocol = Protocol::kTcp;
  pkt.src = tuple_.local;
  pkt.dst = tuple_.remote;
  pkt.flags = flags;
  pkt.seq = seq;
  pkt.ack = flags.ack ? rcv_nxt_ : 0;
  stamp_timestamps(pkt);  // delayed ACKs reach here at fire time: fresh TSval
  if (flags.ack) last_ack_sent_ = rcv_nxt_;
  ++segments_sent_;
  host_.send_packet(std::move(pkt));
}

void TcpConnection::send_ack_now() {
  delack_timer_.cancel();
  send_control(TcpFlags{.ack = true}, snd_nxt_);
}

void TcpConnection::schedule_delayed_ack() {
  if (delack_timer_.pending()) return;
  delack_timer_ = host_.sim().scheduler().schedule_after(
      config_.delayed_ack, [self = shared_from_this()] {
        self->send_control(TcpFlags{.ack = true}, self->snd_nxt_);
      });
}

void TcpConnection::close() {
  if (state_ == State::kClosed || fin_pending_ || fin_sent_) return;
  fin_pending_ = true;
  maybe_send_fin();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_ || send_buffered_ > 0) return;
  // A close() before the handshake completes (e.g. an acceptor that
  // rejects immediately) defers the FIN until ESTABLISHED; pump_send()
  // retries it then.
  if (state_ != State::kEstablished && state_ != State::kCloseWait) {
    return;
  }
  fin_sent_ = true;
  transmit_segment({}, /*fin=*/true);
  enter(state_ == State::kCloseWait ? State::kLastAck : State::kFinWait1);
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  send_control(TcpFlags{.ack = true, .rst = true}, snd_nxt_);
  cancel_rto();
  delack_timer_.cancel();
  enter(State::kClosed);
  deregister();
}

void TcpConnection::on_segment(const Packet& seg) {
  assert(seg.protocol == Protocol::kTcp);

  note_ts_recent(seg);  // no-op until timestamps negotiate

  if (seg.flags.rst) {
    if (state_ == State::kClosed) return;
    cancel_rto();
    delack_timer_.cancel();
    enter(State::kClosed);
    const auto cb = cbs_.on_reset;  // deregister() clears the callbacks
    deregister();
    if (cb) cb();
    return;
  }

  switch (state_) {
    case State::kClosed:
      return;  // late segment after teardown; host-level RST handles strays

    case State::kSynSent:
      if (seg.flags.syn && seg.flags.ack && seg.ack == iss_ + 1) {
        irs_ = seg.seq;
        rcv_nxt_ = seg.seq + 1;
        if (config_.timestamps && seg.ts.present) {
          // Peer echoed our offer on the SYN-ACK: timestamps are on.
          ts_ok_ = true;
          ts_recent_ = seg.ts.tsval;
          ts_recent_valid_ = true;
        }
        handle_ack(seg.ack);
        enter(State::kEstablished);
        send_ack_now();
        if (auto cb = cbs_.on_connect) cb();
        pump_send();  // flush data queued while connecting
      }
      return;

    case State::kSynRcvd:
      if (seg.flags.syn && !seg.flags.ack) {
        // First sight of the SYN (or a retransmit): record sequence and
        // send (or re-send) the SYN-ACK.
        if (rcv_nxt_ == 0) {
          irs_ = seg.seq;
          rcv_nxt_ = seg.seq + 1;
          snd_nxt_ = iss_ + 1;
          if (config_.timestamps && seg.ts.present) {
            // Accept the peer's RFC 7323 offer; the SYN-ACK echoes its TSval.
            ts_ok_ = true;
            ts_recent_ = seg.ts.tsval;
            ts_recent_valid_ = true;
          }
          Packet synack;
          synack.protocol = Protocol::kTcp;
          synack.src = tuple_.local;
          synack.dst = tuple_.remote;
          synack.flags.syn = true;
          synack.flags.ack = true;
          synack.seq = iss_;
          synack.ack = rcv_nxt_;
          stamp_timestamps(synack);
          last_ack_sent_ = rcv_nxt_;
          rtx_queue_.push_back(Unacked{iss_, synack});
          ++segments_sent_;
          host_.send_packet(std::move(synack));
          arm_rto();
        }
        return;
      }
      if (seg.flags.ack && seg.ack == iss_ + 1) {
        handle_ack(seg.ack);
        enter(State::kEstablished);
        if (auto cb = cbs_.on_connect) cb();
        if (seg.carries_data()) deliver_in_order(seg);
        pump_send();
      }
      return;

    case State::kEstablished:
    case State::kFinWait1:
    case State::kFinWait2:
    case State::kClosing:
      if (seg.flags.ack) handle_ack(seg.ack, seg.is_pure_ack());
      if (seg.carries_data()) deliver_in_order(seg);
      if (seg.flags.fin) {
        const std::uint32_t fin_seq =
            seg.seq + static_cast<std::uint32_t>(seg.payload.size());
        if (fin_seq == rcv_nxt_ && !fin_received_) {
          fin_received_ = true;
          rcv_nxt_ = fin_seq + 1;
          send_ack_now();
          if (state_ == State::kEstablished) {
            enter(State::kCloseWait);
          } else if (state_ == State::kFinWait1) {
            // Our FIN unacked yet: simultaneous close.
            enter(State::kClosing);
          } else if (state_ == State::kFinWait2) {
            enter(State::kTimeWait);
            host_.sim().scheduler().schedule_after(
                config_.time_wait, [self = shared_from_this()] {
                  self->enter(State::kClosed);
                  self->deregister();
                });
          }
          if (auto cb = cbs_.on_close) cb();
        } else if (fin_received_) {
          send_ack_now();  // retransmitted FIN
        }
      }
      return;

    case State::kCloseWait:
    case State::kLastAck:
      if (seg.flags.ack) handle_ack(seg.ack);
      if (seg.flags.fin) send_ack_now();  // peer retransmitted its FIN
      return;

    case State::kTimeWait:
      if (seg.flags.fin) send_ack_now();
      return;
  }
}

void TcpConnection::handle_ack(std::uint32_t ack, bool pure_ack) {
  if (!seq_lt(snd_una_, ack)) {
    // Duplicate ACK: the receiver saw a gap. Three in a row trigger a
    // fast retransmit (RFC 5681) without waiting for the RTO.
    if (pure_ack && ack == snd_una_ && !rtx_queue_.empty() &&
        snd_nxt_ != snd_una_) {
      ++dupacks_;
      if (dupacks_ == config_.dupack_threshold) {
        ++fast_retransmissions_;
        retransmit_first_unacked("fast retransmit");
        on_congestion_event();
      }
    }
    return;
  }
  if (seq_lt(snd_nxt_, ack)) return;  // acks data we never sent
  const std::uint32_t newly_acked = ack - snd_una_;
  snd_una_ = ack;
  dupacks_ = 0;
  consecutive_rtos_ = 0;  // forward progress
  // Window growth counts acked *data* only (established state), not the
  // SYN/FIN sequence bytes.
  if (config_.congestion_control && state_ == State::kEstablished) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(newly_acked);  // slow start: double/RTT
    } else {
      // Congestion avoidance: ~one MSS per RTT.
      cwnd_ += static_cast<double>(config_.mss) *
               static_cast<double>(newly_acked) / cwnd_;
    }
    cwnd_ = std::min(cwnd_, static_cast<double>(config_.send_window));
  }
  while (!rtx_queue_.empty()) {
    const Unacked& u = rtx_queue_.front();
    const std::uint32_t end =
        u.seq + static_cast<std::uint32_t>(u.packet.payload.size()) +
        (u.packet.flags.syn ? 1 : 0) + (u.packet.flags.fin ? 1 : 0);
    if (seq_leq(end, ack)) {
      rtx_queue_.pop_front();
    } else {
      break;
    }
  }
  if (rtx_queue_.empty()) {
    cancel_rto();
    rto_current_ = config_.rto_initial;
  } else {
    arm_rto();
  }

  // ACKs open send-window room: push more queued data.
  if (send_buffered_ > 0) pump_send();

  // ACK of our FIN advances teardown.
  if (fin_sent_ && snd_una_ == snd_nxt_) {
    if (state_ == State::kFinWait1) {
      enter(State::kFinWait2);
    } else if (state_ == State::kClosing) {
      enter(State::kTimeWait);
      host_.sim().scheduler().schedule_after(
          config_.time_wait, [self = shared_from_this()] {
            self->enter(State::kClosed);
            self->deregister();
          });
    } else if (state_ == State::kLastAck) {
      cancel_rto();
      enter(State::kClosed);
      deregister();
    }
  }
}

void TcpConnection::deliver_in_order(const Packet& seg) {
  if (seq_lt(seg.seq, rcv_nxt_)) {
    // Complete retransmission of old data (partial overlap is not modelled:
    // the sender never re-segments).
    send_ack_now();
    return;
  }
  if (seg.seq != rcv_nxt_) {
    reassembly_.emplace(seg.seq, seg.payload);
    send_ack_now();  // duplicate ACK signalling the gap
    return;
  }
  rcv_nxt_ += static_cast<std::uint32_t>(seg.payload.size());
  bytes_delivered_ += seg.payload.size();
  if (auto cb = cbs_.on_data) cb(seg.payload);
  // Drain contiguous out-of-order segments.
  auto it = reassembly_.find(rcv_nxt_);
  while (it != reassembly_.end()) {
    const auto payload = std::move(it->second);
    reassembly_.erase(it);
    rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
    bytes_delivered_ += payload.size();
    if (auto cb = cbs_.on_data) cb(payload);
    it = reassembly_.find(rcv_nxt_);
  }
  if (!reassembly_.empty()) {
    send_ack_now();
  } else {
    schedule_delayed_ack();
  }
}

void TcpConnection::arm_rto() {
  cancel_rto();
  rto_timer_ = host_.sim().scheduler().schedule_after(
      rto_current_, [self = shared_from_this()] { self->on_rto_fire(); });
}

void TcpConnection::cancel_rto() { rto_timer_.cancel(); }

void TcpConnection::on_rto_fire() {
  if (rtx_queue_.empty() || state_ == State::kClosed) return;
  ++consecutive_rtos_;
  if (consecutive_rtos_ > config_.max_retransmissions) {
    // Give up like a real stack: the peer is unreachable.
    if (host_.sim().trace().enabled()) {
      host_.sim().trace().emit(host_.sim().now(), "tcp/" + tuple_.to_string(),
                               "max retransmissions: giving up");
    }
    cancel_rto();
    delack_timer_.cancel();
    enter(State::kClosed);
    const auto cb = cbs_.on_reset;
    deregister();
    if (cb) cb();
    return;
  }
  retransmit_first_unacked("RTO retransmit");
  if (config_.congestion_control) {
    // RFC 5681 timeout response: multiplicative decrease + restart from
    // one segment.
    const double in_flight = static_cast<double>(snd_nxt_ - snd_una_);
    ssthresh_ =
        std::max(in_flight / 2.0, 2.0 * static_cast<double>(config_.mss));
    cwnd_ = static_cast<double>(config_.mss);
  }
  rto_current_ = std::min(rto_current_ * 2, config_.rto_max);
  arm_rto();
}

void TcpConnection::retransmit_first_unacked(const char* reason) {
  if (rtx_queue_.empty()) return;
  Packet again = rtx_queue_.front().packet;
  if (again.flags.ack) again.ack = rcv_nxt_;  // refresh cumulative ACK
  if (again.ts.present) {
    // RFC 7323: retransmissions carry the *current* clock, which is what
    // lets a timestamp-aware observer (or RTTM) disambiguate the echo —
    // and what a Karn-conservative passive estimator must still discard.
    again.ts.tsval = tsval_now();
    if (ts_ok_ && ts_recent_valid_) again.ts.tsecr = ts_recent_;
  }
  ++retransmissions_;
  if (host_.sim().trace().enabled()) {
    host_.sim().trace().emit(host_.sim().now(), "tcp/" + tuple_.to_string(),
                             std::string{reason} + " " + again.to_string());
  }
  host_.send_packet(std::move(again));
}

void TcpConnection::on_congestion_event() {
  if (!config_.congestion_control) return;
  const double in_flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ =
      std::max(in_flight / 2.0, 2.0 * static_cast<double>(config_.mss));
  cwnd_ = ssthresh_;  // fast recovery, simplified
}

void TcpConnection::deregister() {
  // A closed connection delivers no further events; dropping the callbacks
  // here also breaks the common application cycle
  //   connection -> callbacks -> app state -> connection
  // so fully torn down connections actually free.
  cbs_ = {};
  host_.deregister_connection(tuple_);
}

}  // namespace bnm::net
