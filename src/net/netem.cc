#include "net/netem.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bnm::net {

DelayEmulator::DelayEmulator(sim::Simulation& sim, Config config)
    : sim_{sim}, config_{std::move(config)}, rng_{sim.rng_for(config_.name)} {}

void DelayEmulator::enqueue(Packet packet) {
  assert(output_ && "DelayEmulator has no output stage");
  sim::Duration d = config_.delay;
  if (!config_.jitter.is_zero()) {
    d += rng_.uniform_ms(0.0, config_.jitter.ms_f());
  }
  sim::TimePoint release = sim_.now() + d;
  if (!config_.allow_reorder) {
    release = std::max(release, last_release_);
    last_release_ = release;
  }
  sim_.scheduler().schedule_at(release, [this, pkt = std::move(packet)]() mutable {
    output_(std::move(pkt));
  });
}

}  // namespace bnm::net
