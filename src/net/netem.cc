#include "net/netem.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bnm::net {

DelayEmulator::DelayEmulator(sim::Simulation& sim, Config config)
    : sim_{sim}, config_{std::move(config)}, rng_{sim.rng_for(config_.name)} {
  loss_ = config_.bursty_loss ? LossProcess::bursty(*config_.bursty_loss)
                              : LossProcess::iid(config_.loss_probability);
}

void DelayEmulator::enqueue(Packet packet) {
  assert(output_ && "DelayEmulator has no output stage");
  // netem order: loss, then duplication, then delay/jitter.
  if (loss_.enabled() && loss_.should_drop(rng_)) {
    ++drops_;
    if (sim_.trace().enabled()) {
      sim_.trace().emit(sim_.now(), config_.name,
                        "loss " + packet.to_string());
    }
    return;
  }
  if (config_.duplicate_probability > 0.0 &&
      rng_.chance(config_.duplicate_probability)) {
    ++duplicates_;
    if (sim_.trace().enabled()) {
      sim_.trace().emit(sim_.now(), config_.name,
                        "duplicate " + packet.to_string());
    }
    schedule_release(packet);  // the copy; the original follows
  }
  schedule_release(std::move(packet));
}

void DelayEmulator::schedule_release(Packet packet) {
  sim::Duration d = config_.delay;
  if (!config_.jitter.is_zero()) {
    d += rng_.uniform_ms(0.0, config_.jitter.ms_f());
  }
  sim::TimePoint release = sim_.now() + d;
  if (!config_.allow_reorder) {
    release = std::max(release, last_release_);
    last_release_ = release;
  }
  if (sim_.trace().enabled()) {
    sim_.trace().emit_span(
        sim_.now(), release - sim_.now(), "netem",
        "delay " + packet.to_string(),
        {{"packet_id", static_cast<std::int64_t>(packet.id)}});
  }
  const auto it = staged_.insert(staged_.end(), std::move(packet));
  sim_.scheduler().schedule_at(release, [this, it] {
    Packet pkt = std::move(*it);
    staged_.erase(it);
    output_(std::move(pkt));
  });
}

}  // namespace bnm::net
