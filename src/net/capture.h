// Packet capture at the NIC: the simulator's WinDump/tcpdump.
//
// The capture tap sits where libpcap sits — between the host's network
// stack and the wire — and records a timestamped copy of every packet in
// both directions. Ground-truth timestamps tN_s / tN_r in the paper's
// Eq. (1) come from here.
//
// A configurable timestamping jitter models the capture inaccuracy the
// paper cites (software capturers are accurate to ~0.3 ms at best).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/simulation.h"

namespace bnm::net {

enum class CaptureDirection : std::uint8_t {
  kOutbound,  ///< host -> wire
  kInbound,   ///< wire -> host
};

struct CaptureRecord {
  sim::TimePoint timestamp;  ///< capture clock (true time + jitter)
  sim::TimePoint true_time;  ///< exact simulated instant (for calibration)
  CaptureDirection direction = CaptureDirection::kOutbound;
  /// The captured packet. Its payload is a zero-copy view sharing the
  /// in-flight packet's buffer, possibly truncated to the tap's snap_len
  /// (like a real tcpdump -s capture).
  Packet packet;
  /// Payload length of the packet on the wire (>= packet.payload_size()
  /// when the tap truncates). Analysis should use this, not the stored
  /// view's size, for byte accounting.
  std::size_t wire_payload_len = 0;

  /// Whether the on-wire packet carried data (snap-len-proof).
  bool carries_data() const { return wire_payload_len > 0; }

  std::string to_string() const;
};

/// Predicate over capture records (a micro "BPF filter").
using CaptureFilter = std::function<bool(const CaptureRecord&)>;

class PacketCapture {
 public:
  struct Config {
    /// Uniform [0, jitter) added to each record's timestamp.
    sim::Duration timestamp_jitter = sim::Duration::zero();
    std::string name = "pcap";
    bool enabled = true;
    /// Payload bytes retained per record (tcpdump's -s). The default keeps
    /// the whole payload; either way the tap stores a shared view — a
    /// capture never deep-copies payload bytes, so a long capture costs
    /// O(records), not O(bytes). 0 = headers + timestamps only, the
    /// DlyLoc-style metadata-weight tap.
    std::size_t snap_len = kNoSnapLen;
  };
  static constexpr std::size_t kNoSnapLen = static_cast<std::size_t>(-1);

  explicit PacketCapture(sim::Simulation& sim)
      : PacketCapture(sim, Config{}) {}
  PacketCapture(sim::Simulation& sim, Config config);

  void record(CaptureDirection direction, const Packet& packet);

  const std::vector<CaptureRecord>& records() const { return records_; }
  void clear() { records_.clear(); }
  std::size_t size() const { return records_.size(); }

  /// Index of the first record with true_time >= t (== size() if none).
  /// Records are appended at the current simulated instant, so true_time is
  /// non-decreasing and the lookup is a binary search — window extraction
  /// over a long capture is O(log n + window) instead of a full scan.
  std::size_t first_index_at_or_after(sim::TimePoint t) const;

  /// Records matching `filter`, in capture order.
  std::vector<CaptureRecord> select(const CaptureFilter& filter) const;
  /// First record at or after `from` matching `filter`.
  std::optional<CaptureRecord> first(const CaptureFilter& filter,
                                     sim::TimePoint from = {}) const;
  /// Last matching record.
  std::optional<CaptureRecord> last(const CaptureFilter& filter) const;

  // Common filters.
  static CaptureFilter outbound_data();
  static CaptureFilter inbound_data();
  static CaptureFilter tcp_syn();
  static CaptureFilter to_port(Port port);
  static CaptureFilter between(Endpoint a, Endpoint b);

  /// Count of TCP connections initiated (SYN packets, either direction,
  /// de-duplicated by 4-tuple+seq so retransmits count once). The Table 3
  /// analysis uses this to show which browsers open fresh connections.
  std::size_t distinct_connections() const;

 private:
  sim::Simulation& sim_;
  Config config_;
  sim::Rng rng_;
  std::vector<CaptureRecord> records_;
};

}  // namespace bnm::net
