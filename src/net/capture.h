// Packet capture at the NIC: the simulator's WinDump/tcpdump.
//
// The capture tap sits where libpcap sits — between the host's network
// stack and the wire — and records a timestamped copy of every packet in
// both directions. Ground-truth timestamps tN_s / tN_r in the paper's
// Eq. (1) come from here.
//
// A configurable timestamping jitter models the capture inaccuracy the
// paper cites (software capturers are accurate to ~0.3 ms at best).
//
// Storage is structure-of-arrays: the scan-hot fields (true_time,
// timestamp, direction, wire_payload_len) each live in their own dense
// column, with the heavyweight Packet in a side column. Window extraction
// (first_index_at_or_after + a linear sweep) touches only the packed
// columns it needs, so a scan over a long capture stays cache-resident
// instead of striding over full records. Columns are arena-backed when the
// capture is built under an installed sim::Arena scope.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/arena.h"
#include "sim/simulation.h"

namespace bnm::net {

enum class CaptureDirection : std::uint8_t {
  kOutbound,  ///< host -> wire
  kInbound,   ///< wire -> host
};

/// One materialized capture row. PacketCapture stores these fields as
/// separate columns (SoA) and assembles a CaptureRecord on demand via
/// at(); prefer the per-column accessors — true_time(i), direction(i),
/// wire_payload_len(i), packet(i) — when scanning, since at() copies the
/// packet (a refcount bump on its payload, never a byte copy).
struct CaptureRecord {
  sim::TimePoint timestamp;  ///< capture clock (true time + jitter)
  sim::TimePoint true_time;  ///< exact simulated instant (for calibration)
  CaptureDirection direction = CaptureDirection::kOutbound;
  /// The captured packet. Its payload is a zero-copy view sharing the
  /// in-flight packet's buffer, possibly truncated to the tap's snap_len
  /// (like a real tcpdump -s capture).
  Packet packet;
  /// Payload length of the packet on the wire (>= packet.payload_size()
  /// when the tap truncates). Analysis should use this, not the stored
  /// view's size, for byte accounting.
  std::size_t wire_payload_len = 0;

  /// Whether the on-wire packet carried data (snap-len-proof).
  bool carries_data() const { return wire_payload_len > 0; }

  std::string to_string() const;
};

/// Predicate over capture records (a micro "BPF filter").
using CaptureFilter = std::function<bool(const CaptureRecord&)>;

class PacketCapture {
 public:
  struct Config {
    /// Uniform [0, jitter) added to each record's timestamp.
    sim::Duration timestamp_jitter = sim::Duration::zero();
    std::string name = "pcap";
    bool enabled = true;
    /// Payload bytes retained per record (tcpdump's -s). The default keeps
    /// the whole payload; either way the tap stores a shared view — a
    /// capture never deep-copies payload bytes, so a long capture costs
    /// O(records), not O(bytes). 0 = headers + timestamps only, the
    /// DlyLoc-style metadata-weight tap.
    std::size_t snap_len = kNoSnapLen;
  };
  static constexpr std::size_t kNoSnapLen = static_cast<std::size_t>(-1);

  explicit PacketCapture(sim::Simulation& sim)
      : PacketCapture(sim, Config{}) {}
  PacketCapture(sim::Simulation& sim, Config config);

  void record(CaptureDirection direction, const Packet& packet);

  std::size_t size() const { return true_time_.size(); }
  bool empty() const { return true_time_.empty(); }
  void clear();
  /// Pre-size every column (e.g. from the experiment's repetition plan) so
  /// recording never reallocates mid-run.
  void reserve(std::size_t n);

  // ---- per-column accessors (the cache-dense scan path) ----
  sim::TimePoint timestamp(std::size_t i) const { return timestamp_[i]; }
  sim::TimePoint true_time(std::size_t i) const { return true_time_[i]; }
  CaptureDirection direction(std::size_t i) const { return direction_[i]; }
  std::size_t wire_payload_len(std::size_t i) const { return wire_len_[i]; }
  bool carries_data(std::size_t i) const { return wire_len_[i] > 0; }
  const Packet& packet(std::size_t i) const { return packets_[i]; }

  /// Materialize row `i` as a CaptureRecord (copies the packet).
  CaptureRecord at(std::size_t i) const;

  /// Index of the first record with true_time >= t (== size() if none).
  /// Records are appended at the current simulated instant, so true_time is
  /// non-decreasing and the lookup is a binary search over the packed
  /// true_time column — window extraction over a long capture is
  /// O(log n + window) instead of a full scan.
  std::size_t first_index_at_or_after(sim::TimePoint t) const;

  /// Records matching `filter`, in capture order.
  std::vector<CaptureRecord> select(const CaptureFilter& filter) const;
  /// First record at or after `from` matching `filter`.
  std::optional<CaptureRecord> first(const CaptureFilter& filter,
                                     sim::TimePoint from = {}) const;
  /// Last matching record.
  std::optional<CaptureRecord> last(const CaptureFilter& filter) const;

  // Common filters.
  static CaptureFilter outbound_data();
  static CaptureFilter inbound_data();
  static CaptureFilter tcp_syn();
  static CaptureFilter to_port(Port port);
  static CaptureFilter between(Endpoint a, Endpoint b);

  /// Count of TCP connections initiated (SYN packets, either direction,
  /// de-duplicated by 4-tuple+seq so retransmits count once). The Table 3
  /// analysis uses this to show which browsers open fresh connections.
  std::size_t distinct_connections() const;

 private:
  template <typename T>
  using Column = std::vector<T, sim::ArenaAllocator<T>>;

  sim::Simulation& sim_;
  Config config_;
  sim::Rng rng_;
  // SoA columns, index-aligned: row i of the capture is
  // (timestamp_[i], true_time_[i], direction_[i], wire_len_[i], packets_[i]).
  Column<sim::TimePoint> timestamp_;
  Column<sim::TimePoint> true_time_;
  Column<CaptureDirection> direction_;
  Column<std::size_t> wire_len_;
  Column<Packet> packets_;
};

}  // namespace bnm::net
