#include "net/packet.h"

#include <cstdio>

namespace bnm::net {

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s.push_back('S');
  if (fin) s.push_back('F');
  if (rst) s.push_back('R');
  if (psh) s.push_back('P');
  if (ack) s.push_back('.');
  if (s.empty()) s.push_back('-');
  return s;
}

std::size_t Packet::ip_size() const {
  std::size_t transport =
      protocol == Protocol::kTcp ? kTcpHeaderBytes : kUdpHeaderBytes;
  if (protocol == Protocol::kTcp && ts.present) {
    transport += kTcpTimestampOptionBytes;
  }
  return kIpHeaderBytes + transport + payload.size();
}

std::size_t Packet::wire_size() const {
  return kEthernetOverheadBytes + ip_size();
}

std::string Packet::to_string() const {
  char buf[160];
  if (protocol == Protocol::kTcp) {
    std::snprintf(buf, sizeof buf, "#%llu %s > %s TCP [%s] seq=%u ack=%u len=%zu",
                  static_cast<unsigned long long>(id), src.to_string().c_str(),
                  dst.to_string().c_str(), flags.to_string().c_str(), seq, ack,
                  payload.size());
    if (ts.present) {
      char tsbuf[48];
      std::snprintf(tsbuf, sizeof tsbuf, " TS val=%u ecr=%u", ts.tsval,
                    ts.tsecr);
      return std::string(buf) + tsbuf + (corrupted ? " CORRUPT" : "");
    }
  } else {
    std::snprintf(buf, sizeof buf, "#%llu %s > %s UDP len=%zu",
                  static_cast<unsigned long long>(id), src.to_string().c_str(),
                  dst.to_string().c_str(), payload.size());
  }
  std::string s = buf;
  if (corrupted) s += " CORRUPT";
  return s;
}

std::vector<std::uint8_t> to_bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string to_string(const std::vector<std::uint8_t>& b) {
  return {b.begin(), b.end()};
}

}  // namespace bnm::net
