// A simulated end host: NIC attachment, packet capture tap, optional egress
// netem qdisc, and a transport layer (TCP connections/listeners, UDP
// sockets) with per-packet stack processing delay.
//
// Layering on the send path:   transport -> [stack delay] -> capture tap ->
//                              [netem] -> link
// and on the receive path:     link -> capture tap -> [stack delay] ->
//                              transport demux -> application callback
//
// The capture tap therefore sits exactly where WinDump/tcpdump sat in the
// paper's testbed: at the NIC, outside the stack-processing delay.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/capture.h"
#include "net/fault.h"
#include "net/link.h"
#include "net/netem.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "sim/simulation.h"

namespace bnm::net {

class Host : public PacketSink {
 public:
  struct Config {
    std::string name = "host";
    IpAddress ip;
    /// Kernel processing per packet in each direction.
    sim::Duration stack_delay = sim::Duration::micros(10);
    PacketCapture::Config capture{};
    /// Optional egress delay emulation (the paper's +50 ms on the server).
    std::optional<DelayEmulator::Config> egress_netem;
    /// Optional fault stage on the path just past the NIC (after netem on
    /// the way out). Corrupted packets are produced here.
    std::optional<FaultPlan> egress_faults;
    /// Optional fault stage on the last path segment before the NIC; a
    /// packet it drops is never seen by this host's capture tap.
    std::optional<FaultPlan> ingress_faults;
    TcpConfig tcp{};
  };

  Host(sim::Simulation& sim, Config config);

  /// Detaches application callbacks from any connection still open, so
  /// app-state cycles (connection -> callbacks -> app object -> connection)
  /// cannot outlive the host.
  ~Host() override;

  /// Plug this host into `link` (an in-domain Link or a cross-domain
  /// DomainLink); the host sits on `host_side`.
  void attach_link(Egress* link, LinkSide host_side);

  // ---- TCP ----
  /// Active open toward `remote`. The returned connection is in SYN_SENT;
  /// `cbs.on_connect` fires when the handshake completes.
  std::shared_ptr<TcpConnection> tcp_connect(Endpoint remote, TcpCallbacks cbs);
  /// Passive open on `port`.
  void tcp_listen(Port port, TcpListener::AcceptCallback on_accept);
  void tcp_unlisten(Port port);

  // ---- UDP ----
  std::shared_ptr<UdpSocket> udp_open(Port local_port,
                                      UdpSocket::ReceiveCallback on_receive);
  /// Open on an ephemeral port.
  std::shared_ptr<UdpSocket> udp_open(UdpSocket::ReceiveCallback on_receive);
  void udp_close(Port local_port);

  // ---- Introspection ----
  sim::Simulation& sim() { return sim_; }
  const Config& config() const { return config_; }
  IpAddress ip() const { return config_.ip; }
  PacketCapture& capture() { return capture_; }
  const PacketCapture& capture() const { return capture_; }
  DelayEmulator* egress_netem() { return netem_ ? netem_.get() : nullptr; }
  FaultInjector* egress_faults() { return egress_faults_.get(); }
  FaultInjector* ingress_faults() { return ingress_faults_.get(); }
  /// Inbound packets dropped by the stack as corrupted (failed checksum).
  std::uint64_t checksum_drops() const { return checksum_drops_; }
  std::size_t open_connections() const { return connections_.size(); }

  // ---- Internal plumbing (used by TcpConnection / UdpSocket) ----
  /// Push a transport-built packet down the stack and onto the wire.
  void send_packet(Packet packet);
  Port allocate_ephemeral_port();
  std::uint32_t next_isn();
  std::uint64_t next_packet_id() { return id_base_ + id_counter_++; }
  void deregister_connection(const FourTuple& tuple);

  // PacketSink: packet arrived from the wire.
  void handle_packet(Packet packet) override;

 private:
  /// Ship a stack-processed packet onto the wire (netem -> faults -> link).
  void wire_out(Packet packet);
  /// A packet survived the inbound path faults: tap, checksum, stack, demux.
  void deliver_from_wire(Packet packet);
  void demux(const Packet& packet);
  void handle_tcp(const Packet& packet);
  void handle_udp(const Packet& packet);
  void send_rst_for(const Packet& packet);

  sim::Simulation& sim_;
  Config config_;
  PacketCapture capture_;
  std::unique_ptr<DelayEmulator> netem_;
  std::unique_ptr<FaultInjector> egress_faults_;
  std::unique_ptr<FaultInjector> ingress_faults_;
  std::uint64_t checksum_drops_ = 0;
  Egress* link_ = nullptr;
  LinkSide link_side_ = LinkSide::kA;

  std::unordered_map<FourTuple, std::shared_ptr<TcpConnection>> connections_;
  std::unordered_map<Port, TcpListener> listeners_;
  std::unordered_map<Port, std::shared_ptr<UdpSocket>> udp_sockets_;

  /// Packets parked during the stack-delay hop, in arena-backed nodes. The
  /// scheduled callback captures only [this, iterator] — small enough for
  /// the scheduler's inline closure storage, so a per-packet hop costs no
  /// heap allocation. Iterators are stable; each callback erases its own
  /// node, and anything still staged at teardown dies with the host.
  std::list<Packet, sim::ArenaAllocator<Packet>> staged_;

  Port next_ephemeral_ = 49152;
  std::uint32_t isn_counter_;
  std::uint64_t id_base_;
  std::uint64_t id_counter_ = 0;
};

}  // namespace bnm::net
