#include "net/payload.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "obs/metrics.h"
#include "sim/arena.h"

namespace bnm::net {

namespace {

// Counters live in the obs metrics registry (docs/OBSERVABILITY.md,
// "payload.*"); the PayloadStats accessors below stay the public API.
const obs::Counter& deep_copy_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "payload.deep_copy_bytes", "bytes",
      "bytes memcpy'd into payload buffers");
  return c;
}
const obs::Counter& aliased_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "payload.aliased_bytes", "bytes",
      "bytes shared by reference instead of copied");
  return c;
}
const obs::Counter& buffers_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "payload.buffers_allocated", "buffers",
      "PayloadBuffer allocations (arena or heap)");
  return c;
}

void count_deep(std::size_t bytes) {
  if (bytes) deep_copy_counter().add(bytes);
}
void count_alias(std::size_t bytes) {
  if (bytes) aliased_counter().add(bytes);
}
void count_buffer() { buffers_counter().add(1); }

// The empty view needs no buffer at all.
const std::uint8_t* empty_data() {
  static const std::uint8_t b = 0;
  return &b;
}

}  // namespace

/// One refcounted immutable byte buffer. Two storage modes:
///   * inline  — the bytes live directly after the header, in the same
///     block (a single arena bump or a single ::operator new);
///   * adopted — the buffer wraps a std::vector handed in by the caller
///     (zero-copy adoption; the vector keeps its own heap storage).
/// The block itself comes from the thread's current sim::Arena when one is
/// installed; deref() then skips operator delete — the arena reclaims the
/// memory wholesale at reset(). The refcount is atomic so a buffer may be
/// observed from stats/teardown paths, but arena-backed buffers are
/// thread-confined like the simulation that made them.
class PayloadBuffer {
 public:
  /// New inline buffer with `size` uninitialized bytes (size > 0).
  static PayloadBuffer* create(std::size_t size) {
    sim::Arena* arena = sim::Arena::current();
    void* mem =
        arena != nullptr
            ? arena->allocate(sizeof(PayloadBuffer) + size,
                              alignof(PayloadBuffer))
            : ::operator new(sizeof(PayloadBuffer) + size);
    return new (mem) PayloadBuffer{size, arena != nullptr};
  }

  /// Wrap a vector without copying its bytes (vector must be non-empty).
  static PayloadBuffer* adopt(std::vector<std::uint8_t>&& bytes) {
    sim::Arena* arena = sim::Arena::current();
    void* mem = arena != nullptr
                    ? arena->allocate(sizeof(PayloadBuffer),
                                      alignof(PayloadBuffer))
                    : ::operator new(sizeof(PayloadBuffer));
    return new (mem) PayloadBuffer{std::move(bytes), arena != nullptr};
  }

  void ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void deref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) destroy();
  }
  std::uint32_t use_count() const {
    return refs_.load(std::memory_order_relaxed);
  }

  std::uint8_t* data() {
    return adopted_ ? vec_.data()
                    : reinterpret_cast<std::uint8_t*>(this + 1);
  }
  std::size_t size() const { return size_; }

 private:
  PayloadBuffer(std::size_t size, bool arena_backed)
      : size_{size}, adopted_{false}, arena_backed_{arena_backed} {}
  PayloadBuffer(std::vector<std::uint8_t>&& bytes, bool arena_backed)
      : size_{bytes.size()}, adopted_{true}, arena_backed_{arena_backed} {
    new (&vec_) std::vector<std::uint8_t>(std::move(bytes));
  }
  ~PayloadBuffer() {}  // vec_ destroyed manually in destroy()

  void destroy() {
    const bool heap = !arena_backed_;
    if (adopted_) vec_.~vector();
    this->~PayloadBuffer();
    if (heap) ::operator delete(static_cast<void*>(this));
  }

  std::atomic<std::uint32_t> refs_{1};
  std::size_t size_;
  const bool adopted_;
  const bool arena_backed_;
  union {
    std::vector<std::uint8_t> vec_;  // active only when adopted_
  };
};

std::uint64_t PayloadStats::deep_copy_bytes() {
  return deep_copy_counter().total();
}
std::uint64_t PayloadStats::aliased_bytes() {
  return aliased_counter().total();
}
std::uint64_t PayloadStats::buffers_allocated() {
  return buffers_counter().total();
}
void PayloadStats::reset() {
  deep_copy_counter().reset();
  aliased_counter().reset();
  buffers_counter().reset();
}

Payload::Payload(std::vector<std::uint8_t> bytes) {
  if (bytes.empty()) return;
  size_ = bytes.size();
  buf_ = PayloadBuffer::adopt(std::move(bytes));
  count_buffer();
}

Payload::Payload(const std::string& bytes) {
  if (bytes.empty()) return;
  size_ = bytes.size();
  buf_ = PayloadBuffer::create(size_);
  std::memcpy(buf_->data(), bytes.data(), size_);
  count_buffer();
  count_deep(size_);
}

Payload Payload::copy_of(const void* data, std::size_t len) {
  count_deep(len);
  if (len == 0) return Payload{};
  PayloadBuffer* buf = PayloadBuffer::create(len);
  std::memcpy(buf->data(), data, len);
  count_buffer();
  return Payload{buf, 0, len};
}

Payload::Payload(const Payload& other)
    : buf_{other.buf_}, offset_{other.offset_}, size_{other.size_} {
  if (buf_ != nullptr) buf_->ref();
  count_alias(size_);
}

Payload& Payload::operator=(const Payload& other) {
  if (this != &other) {
    // Ref before deref so self-buffer assignment (distinct views over one
    // buffer) can never hit a zero refcount.
    if (other.buf_ != nullptr) other.buf_->ref();
    if (buf_ != nullptr) buf_->deref();
    buf_ = other.buf_;
    offset_ = other.offset_;
    size_ = other.size_;
    count_alias(size_);
  }
  return *this;
}

Payload::Payload(Payload&& other) noexcept
    : buf_{other.buf_}, offset_{other.offset_}, size_{other.size_} {
  other.buf_ = nullptr;
  other.offset_ = 0;
  other.size_ = 0;
}

Payload& Payload::operator=(Payload&& other) noexcept {
  if (this != &other) {
    if (buf_ != nullptr) buf_->deref();
    buf_ = other.buf_;
    offset_ = other.offset_;
    size_ = other.size_;
    other.buf_ = nullptr;
    other.offset_ = 0;
    other.size_ = 0;
  }
  return *this;
}

Payload::~Payload() {
  if (buf_ != nullptr) buf_->deref();
}

const std::uint8_t* Payload::data() const {
  return buf_ != nullptr ? buf_->data() + offset_ : empty_data();
}

Payload Payload::subview(std::size_t offset, std::size_t len) const {
  if (offset >= size_) return Payload{};
  len = std::min(len, size_ - offset);
  if (len == 0) return Payload{};
  count_alias(len);
  buf_->ref();
  return Payload{buf_, offset_ + offset, len};
}

void Payload::clear() {
  if (buf_ != nullptr) buf_->deref();
  buf_ = nullptr;
  offset_ = 0;
  size_ = 0;
}

void Payload::assign(std::size_t count, std::uint8_t value) {
  clear();
  if (count == 0) return;
  size_ = count;
  buf_ = PayloadBuffer::create(count);
  std::memset(buf_->data(), value, count);
  count_buffer();
}

std::uint8_t* Payload::mutable_bytes() {
  if (buf_ == nullptr) return nullptr;  // empty view: nothing to write
  if (buf_->use_count() != 1 || offset_ != 0 || size_ != buf_->size()) {
    // Shared (or a partial view): clone so other holders keep the original.
    count_deep(size_);
    PayloadBuffer* clone = PayloadBuffer::create(size_);
    std::memcpy(clone->data(), buf_->data() + offset_, size_);
    count_buffer();
    buf_->deref();
    buf_ = clone;
    offset_ = 0;
  }
  return buf_->data();
}

std::vector<std::uint8_t> Payload::as_vector() const {
  count_deep(size_);
  return {begin(), end()};
}

std::string Payload::as_string() const {
  count_deep(size_);
  return {begin(), end()};
}

bool Payload::operator==(const Payload& other) const {
  if (size_ != other.size_) return false;
  if (size_ == 0) return true;
  if (shares_buffer_with(other) && offset_ == other.offset_) return true;
  return std::memcmp(data(), other.data(), size_) == 0;
}

bool Payload::operator==(const std::vector<std::uint8_t>& other) const {
  if (size_ != other.size()) return false;
  return size_ == 0 || std::memcmp(data(), other.data(), size_) == 0;
}

long Payload::buffer_use_count() const {
  return buf_ != nullptr ? static_cast<long>(buf_->use_count()) : 0;
}

Payload gather(const Payload* parts, std::size_t count, std::size_t skip_front,
               std::size_t total) {
  // Size the destination exactly, then copy part by part into one inline
  // buffer — no intermediate vector.
  std::size_t take_total = 0;
  for (std::size_t i = 0; i < count && take_total < total; ++i) {
    std::size_t avail = parts[i].size();
    if (i == 0) avail -= std::min(skip_front, avail);
    take_total += std::min(avail, total - take_total);
  }
  count_deep(take_total);
  if (take_total == 0) return Payload{};
  PayloadBuffer* buf = PayloadBuffer::create(take_total);
  count_buffer();
  std::uint8_t* out = buf->data();
  std::size_t written = 0;
  for (std::size_t i = 0; i < count && written < take_total; ++i) {
    const Payload& part = parts[i];
    std::size_t off = 0;
    if (i == 0) off = std::min(skip_front, part.size());
    const std::size_t take =
        std::min(part.size() - off, take_total - written);
    std::memcpy(out + written, part.data() + off, take);
    written += take;
  }
  return Payload{buf, 0, take_total};
}

std::string to_string(const Payload& p) { return p.as_string(); }

}  // namespace bnm::net
