#include "net/payload.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace bnm::net {

namespace {

std::atomic<std::uint64_t> g_deep_copy_bytes{0};
std::atomic<std::uint64_t> g_aliased_bytes{0};
std::atomic<std::uint64_t> g_buffers_allocated{0};

void count_deep(std::size_t bytes) {
  if (bytes) g_deep_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}
void count_alias(std::size_t bytes) {
  if (bytes) g_aliased_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

// The empty view needs no buffer at all.
const std::uint8_t* empty_data() {
  static const std::uint8_t b = 0;
  return &b;
}

}  // namespace

std::uint64_t PayloadStats::deep_copy_bytes() {
  return g_deep_copy_bytes.load(std::memory_order_relaxed);
}
std::uint64_t PayloadStats::aliased_bytes() {
  return g_aliased_bytes.load(std::memory_order_relaxed);
}
std::uint64_t PayloadStats::buffers_allocated() {
  return g_buffers_allocated.load(std::memory_order_relaxed);
}
void PayloadStats::reset() {
  g_deep_copy_bytes.store(0, std::memory_order_relaxed);
  g_aliased_bytes.store(0, std::memory_order_relaxed);
  g_buffers_allocated.store(0, std::memory_order_relaxed);
}

Payload::Payload(std::vector<std::uint8_t> bytes) {
  if (bytes.empty()) return;
  size_ = bytes.size();
  buf_ = std::make_shared<std::vector<std::uint8_t>>(std::move(bytes));
  g_buffers_allocated.fetch_add(1, std::memory_order_relaxed);
}

Payload::Payload(const std::string& bytes)
    : Payload{std::vector<std::uint8_t>{bytes.begin(), bytes.end()}} {
  count_deep(size_);
}

Payload Payload::copy_of(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  count_deep(len);
  return Payload{std::vector<std::uint8_t>{p, p + len}};
}

Payload::Payload(const Payload& other)
    : buf_{other.buf_}, offset_{other.offset_}, size_{other.size_} {
  count_alias(size_);
}

Payload& Payload::operator=(const Payload& other) {
  if (this != &other) {
    buf_ = other.buf_;
    offset_ = other.offset_;
    size_ = other.size_;
    count_alias(size_);
  }
  return *this;
}

Payload::Payload(Payload&& other) noexcept
    : buf_{std::move(other.buf_)}, offset_{other.offset_}, size_{other.size_} {
  other.offset_ = 0;
  other.size_ = 0;
}

Payload& Payload::operator=(Payload&& other) noexcept {
  if (this != &other) {
    buf_ = std::move(other.buf_);
    offset_ = other.offset_;
    size_ = other.size_;
    other.offset_ = 0;
    other.size_ = 0;
  }
  return *this;
}

const std::uint8_t* Payload::data() const {
  return buf_ ? buf_->data() + offset_ : empty_data();
}

Payload Payload::subview(std::size_t offset, std::size_t len) const {
  if (offset >= size_) return Payload{};
  len = std::min(len, size_ - offset);
  if (len == 0) return Payload{};
  count_alias(len);
  return Payload{buf_, offset_ + offset, len};
}

void Payload::clear() {
  buf_.reset();
  offset_ = 0;
  size_ = 0;
}

void Payload::assign(std::size_t count, std::uint8_t value) {
  *this = Payload{std::vector<std::uint8_t>(count, value)};
}

std::uint8_t* Payload::mutable_bytes() {
  if (!buf_) return nullptr;  // empty view: nothing to write
  if (buf_.use_count() != 1 || offset_ != 0 || size_ != buf_->size()) {
    // Shared (or a partial view): clone so other holders keep the original.
    count_deep(size_);
    buf_ = std::make_shared<std::vector<std::uint8_t>>(begin(), end());
    g_buffers_allocated.fetch_add(1, std::memory_order_relaxed);
    offset_ = 0;
  }
  return buf_->data();
}

std::vector<std::uint8_t> Payload::as_vector() const {
  count_deep(size_);
  return {begin(), end()};
}

std::string Payload::as_string() const {
  count_deep(size_);
  return {begin(), end()};
}

bool Payload::operator==(const Payload& other) const {
  if (size_ != other.size_) return false;
  if (size_ == 0) return true;
  if (shares_buffer_with(other) && offset_ == other.offset_) return true;
  return std::memcmp(data(), other.data(), size_) == 0;
}

bool Payload::operator==(const std::vector<std::uint8_t>& other) const {
  if (size_ != other.size()) return false;
  return size_ == 0 || std::memcmp(data(), other.data(), size_) == 0;
}

Payload gather(const Payload* parts, std::size_t count, std::size_t skip_front,
               std::size_t total) {
  std::vector<std::uint8_t> out;
  out.reserve(total);
  for (std::size_t i = 0; i < count && out.size() < total; ++i) {
    const Payload& part = parts[i];
    std::size_t off = 0;
    if (i == 0) off = std::min(skip_front, part.size());
    const std::size_t take =
        std::min(part.size() - off, total - out.size());
    out.insert(out.end(), part.begin() + static_cast<std::ptrdiff_t>(off),
               part.begin() + static_cast<std::ptrdiff_t>(off + take));
  }
  count_deep(out.size());
  return Payload{std::move(out)};
}

std::string to_string(const Payload& p) { return p.as_string(); }

}  // namespace bnm::net
