// Simulated UDP socket (used by the Java applet UDP method, and generally
// available as a substrate for loss/reordering experiments).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/address.h"
#include "net/packet.h"

namespace bnm::net {

class Host;

class UdpSocket {
 public:
  /// (source endpoint, payload). The payload is a zero-copy view of the
  /// datagram's buffer.
  using ReceiveCallback = std::function<void(Endpoint, const Payload&)>;

  UdpSocket(Host& host, Port local_port, ReceiveCallback on_receive);

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  Port local_port() const { return local_port_; }

  void send_to(Endpoint remote, Payload payload);

  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_received() const { return received_; }

  // Host-internal.
  void on_datagram(const Packet& packet);

 private:
  Host& host_;
  Port local_port_;
  ReceiveCallback on_receive_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace bnm::net
