// Simulated TCP: 3-way handshake, MSS segmentation, cumulative ACKs,
// delayed-ACK with piggybacking, in-order delivery with a reassembly buffer,
// RTO-based retransmission, and FIN/RST teardown.
//
// The subset is deliberately small but *real*: connection setup costs one
// round trip, which is exactly the behaviour behind the paper's Table 3
// (Flash methods that open a fresh connection inflate the measured RTT by
// one handshake).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/packet.h"
#include "sim/arena.h"
#include "sim/simulation.h"

namespace bnm::net {

class Host;

/// Application callbacks for one connection. All are optional. on_data
/// hands out an immutable payload view aliasing the sender's buffer — no
/// bytes are copied on the delivery path; call as_vector()/as_string() (or
/// keep the view) as needed.
struct TcpCallbacks {
  std::function<void()> on_connect;  ///< handshake complete (client side)
  std::function<void(const Payload&)> on_data;
  std::function<void()> on_close;  ///< peer sent FIN
  std::function<void()> on_reset;  ///< connection aborted by RST
};

struct TcpConfig {
  std::size_t mss = 1460;
  /// Send window: maximum unacknowledged bytes in flight. ACKs clock out
  /// further segments (keeps bursts below link queue limits, like a real
  /// advertised window does). The default covers the testbed's
  /// bandwidth-delay product (100 Mbps x 50 ms = 625 KB), matching the
  /// window-scaled stacks of the paper's era.
  std::size_t send_window = 1024 * 1024;
  sim::Duration delayed_ack = sim::Duration::micros(500);
  sim::Duration rto_initial = sim::Duration::millis(200);
  sim::Duration rto_max = sim::Duration::seconds(4);
  /// Give up (reset the connection) after this many *consecutive*
  /// retransmissions without forward progress.
  std::uint64_t max_retransmissions = 16;
  /// Fast retransmit: resend the first unacked segment after this many
  /// duplicate ACKs (RFC 5681's 3), without waiting for the RTO.
  std::uint32_t dupack_threshold = 3;
  /// Congestion control (slow start + AIMD). Off by default: the paper's
  /// single-packet probes never exercise it, and the deterministic
  /// fixed-window behaviour keeps calibration simple. Enable for realistic
  /// bulk-transfer dynamics (see the throughput ablations).
  bool congestion_control = false;
  std::size_t initial_cwnd_segments = 10;  ///< IW10, era-appropriate
  sim::Duration time_wait = sim::Duration::millis(1);
  /// RFC 7323 timestamp option (TSval/TSecr). Off by default: the option adds
  /// 12 bytes to every segment, which shifts serialization delay and would
  /// perturb every calibrated deterministic result; passive-estimation
  /// scenarios opt in. Negotiated on SYN/SYN-ACK — both ends must enable it.
  bool timestamps = false;
  /// Tick of the timestamp clock (Linux-like 1 ms per TSval increment).
  sim::Duration ts_granule = sim::Duration::millis(1);
  /// Added to the tick count when stamping TSval; lets tests start the clock
  /// near 2^32 to exercise wraparound. Defaults to 1 so the simulation epoch
  /// never emits TSval 0 — a zero would be indistinguishable from the
  /// TSecr "no echo yet" sentinel when the peer echoes it back.
  std::uint32_t ts_offset = 1;
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kLastAck,
    kClosing,
    kTimeWait,
  };
  static const char* state_name(State s);

  /// Constructed via Host::tcp_connect / Host's listener path only.
  TcpConnection(Host& host, FourTuple tuple, TcpConfig config, bool initiator,
                std::uint32_t isn);

  // Not copyable/movable: the host demux map holds shared_ptrs to us.
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  void set_callbacks(TcpCallbacks cbs) { cbs_ = std::move(cbs); }

  /// Queue application bytes; segments go out subject to MSS. Segmentation
  /// takes zero-copy sub-views of the queued buffers (a deep copy happens
  /// only when one segment spans two queued buffers).
  void send(Payload data);
  void send(std::vector<std::uint8_t> data);
  void send(const std::string& data);

  /// Graceful close: FIN after the send buffer drains.
  void close();
  /// Abortive close: RST immediately.
  void abort();

  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  const FourTuple& tuple() const { return tuple_; }

  // Counters for tests and capture audits.
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t fast_retransmissions() const { return fast_retransmissions_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  /// Current RTO (doubles per consecutive timeout, clamped at rto_max).
  sim::Duration rto_current() const { return rto_current_; }
  /// Consecutive RTO fires without forward progress.
  std::uint64_t consecutive_rtos() const { return consecutive_rtos_; }
  /// Effective send window right now (min of cwnd and the configured
  /// window when congestion control is on).
  std::size_t effective_window() const;
  double cwnd_bytes() const { return cwnd_; }
  /// True once RFC 7323 timestamps were negotiated on this connection.
  bool timestamps_negotiated() const { return ts_ok_; }
  /// TS.Recent: the peer TSval that our next ACK will echo.
  std::uint32_t ts_recent() const { return ts_recent_; }

  // --- Host-internal entry points (not for applications) ---
  void start_active_open();
  void on_segment(const Packet& segment);

 private:
  void enter(State next);
  void pump_send();
  /// Zero-copy view of the next `take` bytes of the send queue; dequeues
  /// what it returns. Deep-copies only when `take` spans queued buffers.
  Payload dequeue_chunk(std::size_t take);
  void transmit_segment(Payload chunk, bool fin);
  void send_control(TcpFlags flags, std::uint32_t seq);
  void send_ack_now();
  void schedule_delayed_ack();
  void handle_ack(std::uint32_t ack, bool pure_ack = false);
  void deliver_in_order(const Packet& segment);
  void maybe_send_fin();
  void arm_rto();
  void cancel_rto();
  void on_rto_fire();
  void deregister();
  /// Current TSval: simulated time quantized to ts_granule, plus ts_offset.
  std::uint32_t tsval_now() const;
  /// Attach the timestamp option to an outgoing segment (ts_ok_ only).
  void stamp_timestamps(Packet& pkt) const;
  /// RFC 7323 §4.3: TS.Recent tracks the TSval of the segment occupying the
  /// left edge of the receive window, so cumulative/delayed ACKs echo the
  /// *earliest* unacknowledged segment's clock.
  void note_ts_recent(const Packet& seg);

  Host& host_;
  FourTuple tuple_;
  TcpConfig config_;
  TcpCallbacks cbs_;
  State state_ = State::kClosed;
  bool initiator_;

  // Send side.
  std::uint32_t iss_;       ///< initial send sequence
  std::uint32_t snd_una_;   ///< oldest unacked
  std::uint32_t snd_nxt_;   ///< next seq to send
  /// Queued application buffers, consumed front-to-first as zero-copy
  /// sub-views; send_buffered_ tracks the total queued byte count. The
  /// queue (like the retransmission queue and reassembly map below) lives
  /// in arena-backed storage: a connection dies with its host's testbed,
  /// inside one arena epoch.
  std::deque<Payload, sim::ArenaAllocator<Payload>> send_buffer_;
  std::size_t send_buffered_ = 0;
  bool fin_pending_ = false;
  bool fin_sent_ = false;

  struct Unacked {
    std::uint32_t seq;
    Packet packet;
  };
  std::deque<Unacked, sim::ArenaAllocator<Unacked>> rtx_queue_;
  sim::EventHandle rto_timer_;
  sim::Duration rto_current_;
  std::uint64_t consecutive_rtos_ = 0;

  // Receive side.
  std::uint32_t irs_ = 0;      ///< initial receive sequence
  std::uint32_t rcv_nxt_ = 0;  ///< next expected
  /// Out-of-order segments held as views aliasing the sender's buffers.
  std::map<std::uint32_t, Payload, std::less<std::uint32_t>,
           sim::ArenaAllocator<std::pair<const std::uint32_t, Payload>>>
      reassembly_;
  sim::EventHandle delack_timer_;
  bool fin_received_ = false;

  // RFC 7323 timestamp state.
  bool ts_ok_ = false;                  ///< negotiated on SYN/SYN-ACK
  bool ts_recent_valid_ = false;
  std::uint32_t ts_recent_ = 0;         ///< TSval our ACKs echo
  std::uint32_t last_ack_sent_ = 0;     ///< Last.ACK.sent (left window edge)

  std::uint64_t segments_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t fast_retransmissions_ = 0;
  std::uint64_t bytes_delivered_ = 0;

  // Congestion state (used when config_.congestion_control is set).
  double cwnd_ = 0;      ///< bytes
  double ssthresh_ = 0;  ///< bytes; slow start below, AIMD above
  std::uint32_t dupacks_ = 0;
  std::uint32_t last_ack_seen_ = 0;

  void retransmit_first_unacked(const char* reason);
  void on_congestion_event();
};

/// Passive-open endpoint: hands established connections to `on_accept`.
class TcpListener {
 public:
  using AcceptCallback = std::function<void(std::shared_ptr<TcpConnection>)>;

  TcpListener(Port port, AcceptCallback on_accept)
      : port_{port}, on_accept_{std::move(on_accept)} {}

  Port port() const { return port_; }
  void notify_accept(std::shared_ptr<TcpConnection> conn) const {
    if (on_accept_) on_accept_(std::move(conn));
  }

 private:
  Port port_;
  AcceptCallback on_accept_;
};

}  // namespace bnm::net
