// IPv4-style addressing for the simulated network.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <string>

namespace bnm::net {

/// 32-bit IPv4-style address, value type.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  explicit constexpr IpAddress(std::uint32_t raw) : raw_{raw} {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d)
      : raw_{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
             (std::uint32_t{c} << 8) | d} {}

  /// Parse dotted-quad ("10.0.0.1"); throws std::invalid_argument on error.
  static IpAddress parse(const std::string& dotted);

  constexpr std::uint32_t raw() const { return raw_; }
  std::string to_string() const;

  constexpr auto operator<=>(const IpAddress&) const = default;

 private:
  std::uint32_t raw_ = 0;
};

using Port = std::uint16_t;

/// Transport endpoint: address + port.
struct Endpoint {
  IpAddress ip;
  Port port = 0;

  std::string to_string() const;
  constexpr auto operator<=>(const Endpoint&) const = default;
};

/// TCP 4-tuple identifying one connection.
struct FourTuple {
  Endpoint local;
  Endpoint remote;

  FourTuple reversed() const { return FourTuple{remote, local}; }
  std::string to_string() const;
  constexpr auto operator<=>(const FourTuple&) const = default;
};

}  // namespace bnm::net

namespace std {
template <>
struct hash<bnm::net::IpAddress> {
  size_t operator()(const bnm::net::IpAddress& a) const noexcept {
    return std::hash<uint32_t>{}(a.raw());
  }
};
template <>
struct hash<bnm::net::Endpoint> {
  size_t operator()(const bnm::net::Endpoint& e) const noexcept {
    return std::hash<uint64_t>{}((uint64_t{e.ip.raw()} << 16) ^ e.port);
  }
};
template <>
struct hash<bnm::net::FourTuple> {
  size_t operator()(const bnm::net::FourTuple& t) const noexcept {
    return std::hash<bnm::net::Endpoint>{}(t.local) * 1000003u ^
           std::hash<bnm::net::Endpoint>{}(t.remote);
  }
};
}  // namespace std
