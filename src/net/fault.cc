#include "net/fault.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace bnm::net {

namespace {

// Process-wide per-kind totals in the obs registry ("fault.*" in
// docs/OBSERVABILITY.md), alongside the per-injector FaultCounters that
// tests and the resilience report consume. The array is indexed by
// FaultKind and also carries an instant trace attribute vocabulary.
const obs::Counter& fault_counter(FaultKind kind) {
  static const obs::Counter counters[] = {
      obs::MetricsRegistry::instance().counter(
          "fault.iid_losses", "packets", "packets dropped by i.i.d. loss"),
      obs::MetricsRegistry::instance().counter(
          "fault.burst_losses", "packets",
          "packets dropped by Gilbert-Elliott bursts"),
      obs::MetricsRegistry::instance().counter(
          "fault.corrupted", "packets", "packets corrupted in flight"),
      obs::MetricsRegistry::instance().counter(
          "fault.duplicated", "packets", "packets duplicated in flight"),
      obs::MetricsRegistry::instance().counter(
          "fault.blackholed", "packets",
          "packets swallowed by blackhole windows"),
      obs::MetricsRegistry::instance().counter(
          "fault.flap_drops", "packets", "packets dropped by link flaps"),
      obs::MetricsRegistry::instance().counter(
          "fault.scripted_drops", "packets",
          "data segments dropped by scripted ordinals"),
  };
  return counters[static_cast<std::size_t>(kind)];
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIidLoss: return "loss";
    case FaultKind::kBurstLoss: return "burst-loss";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kBlackhole: return "blackhole";
    case FaultKind::kFlap: return "flap";
    case FaultKind::kScriptedDrop: return "scripted-drop";
  }
  return "?";
}

FaultPlan& FaultPlan::blackhole(sim::TimePoint begin, sim::TimePoint end) {
  blackholes.push_back({begin, end});
  return *this;
}

FaultPlan& FaultPlan::flap(sim::TimePoint first_down, sim::Duration down_for,
                           sim::Duration period, std::size_t count) {
  sim::TimePoint t = first_down;
  for (std::size_t i = 0; i < count; ++i) {
    flaps.push_back({t, t + down_for});
    t += period;
  }
  return *this;
}

FaultPlan& FaultPlan::drop_nth_data_segment(std::uint64_t n) {
  drop_data_segments.push_back(n);
  return *this;
}

bool FaultPlan::empty() const {
  return loss_probability <= 0.0 && !bursty_loss &&
         corrupt_probability <= 0.0 && duplicate_probability <= 0.0 &&
         blackholes.empty() && flaps.empty() && drop_data_segments.empty();
}

namespace {

void check_probability(const std::string& plan, const char* knob, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {  // !(..) also rejects NaN
    throw std::invalid_argument{"FaultPlan '" + plan + "': " + knob + " = " +
                                std::to_string(p) +
                                " is outside [0, 1]"};
  }
}

void check_windows(const std::string& plan, const char* knob,
                   const std::vector<TimeWindow>& windows) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (windows[i].end < windows[i].begin) {
      throw std::invalid_argument{
          "FaultPlan '" + plan + "': " + knob + "[" + std::to_string(i) +
          "] is inverted (" + windows[i].begin.to_string() + " > " +
          windows[i].end.to_string() + ")"};
    }
  }
}

}  // namespace

void FaultPlan::validate() const {
  check_probability(name, "loss_probability", loss_probability);
  check_probability(name, "corrupt_probability", corrupt_probability);
  check_probability(name, "duplicate_probability", duplicate_probability);
  if (bursty_loss) {
    check_probability(name, "bursty_loss.p_good_to_bad",
                      bursty_loss->p_good_to_bad);
    check_probability(name, "bursty_loss.p_bad_to_good",
                      bursty_loss->p_bad_to_good);
    check_probability(name, "bursty_loss.loss_good", bursty_loss->loss_good);
    check_probability(name, "bursty_loss.loss_bad", bursty_loss->loss_bad);
  }
  check_windows(name, "blackholes", blackholes);
  check_windows(name, "flaps", flaps);
  for (std::size_t i = 0; i < drop_data_segments.size(); ++i) {
    if (drop_data_segments[i] == 0) {
      throw std::invalid_argument{
          "FaultPlan '" + name + "': drop_data_segments[" +
          std::to_string(i) + "] is 0 (ordinals are 1-based)"};
    }
  }
}

FaultInjector::FaultInjector(sim::Simulation& sim, FaultPlan plan)
    : sim_{sim},
      plan_{std::move(plan)},
      rng_{sim.rng_for(plan_.name)},
      active_{!plan_.empty()} {
  plan_.validate();
  if (plan_.bursty_loss) {
    loss_ = LossProcess::bursty(*plan_.bursty_loss);
  } else {
    loss_ = LossProcess::iid(plan_.loss_probability);
  }
}

void FaultInjector::set_output(PacketSink* sink) {
  assert(sink);
  output_ = [sink](Packet p) { sink->handle_packet(std::move(p)); };
}

void FaultInjector::note(FaultKind kind, const Packet& packet) {
  switch (kind) {
    case FaultKind::kIidLoss: ++counters_.iid_losses; break;
    case FaultKind::kBurstLoss: ++counters_.burst_losses; break;
    case FaultKind::kCorrupt: ++counters_.corrupted; break;
    case FaultKind::kDuplicate: ++counters_.duplicated; break;
    case FaultKind::kBlackhole: ++counters_.blackholed; break;
    case FaultKind::kFlap: ++counters_.flap_drops; break;
    case FaultKind::kScriptedDrop: ++counters_.scripted_drops; break;
  }
  fault_counter(kind).add(1);
  if (events_.size() < plan_.max_events) {
    events_.push_back({sim_.now(), kind, packet.id});
  }
  if (sim_.trace().enabled()) {
    sim_.trace().emit_instant(
        sim_.now(), plan_.name,
        std::string{to_string(kind)} + " " + packet.to_string(),
        {{"fault", std::string{to_string(kind)}},
         {"packet_id", static_cast<std::int64_t>(packet.id)}});
  }
}

std::optional<FaultKind> FaultInjector::apply_drop_faults(
    const Packet& packet) {
  if (!plan_.drop_data_segments.empty() && packet.carries_data()) {
    const std::uint64_t ordinal = ++data_ordinal_;
    if (std::find(plan_.drop_data_segments.begin(),
                  plan_.drop_data_segments.end(),
                  ordinal) != plan_.drop_data_segments.end()) {
      return FaultKind::kScriptedDrop;
    }
  }
  const sim::TimePoint now = sim_.now();
  for (const TimeWindow& w : plan_.blackholes) {
    if (w.contains(now)) return FaultKind::kBlackhole;
  }
  for (const TimeWindow& w : plan_.flaps) {
    if (w.contains(now)) return FaultKind::kFlap;
  }
  if (loss_.enabled() && loss_.should_drop(rng_)) {
    return loss_.is_bursty() ? FaultKind::kBurstLoss : FaultKind::kIidLoss;
  }
  return std::nullopt;
}

void FaultInjector::handle_packet(Packet packet) {
  assert(output_ && "FaultInjector has no output stage");
  ++counters_.seen;
  if (!active_) {  // pass-through: no RNG draws, no window scans
    ++counters_.forwarded;
    output_(std::move(packet));
    return;
  }
  if (const auto drop = apply_drop_faults(packet)) {
    note(*drop, packet);
    return;
  }
  if (plan_.corrupt_probability > 0.0 &&
      rng_.chance(plan_.corrupt_probability)) {
    packet.corrupted = true;
    note(FaultKind::kCorrupt, packet);
  }
  if (plan_.duplicate_probability > 0.0 &&
      rng_.chance(plan_.duplicate_probability)) {
    note(FaultKind::kDuplicate, packet);
    ++counters_.forwarded;
    output_(packet);  // the copy; the original follows
  }
  ++counters_.forwarded;
  output_(std::move(packet));
}

}  // namespace bnm::net
