// Point-to-point duplex link with bandwidth, propagation delay, FIFO
// queueing, and optional random loss.
//
// Each direction models a transmitter that serializes one packet at a time
// (wire_size * 8 / rate) and a propagation pipe (fixed delay). Packets
// queued while the transmitter is busy wait their turn, which yields correct
// store-and-forward timing for multi-packet exchanges (throughput
// experiments depend on this).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>

#include "net/loss_process.h"
#include "net/packet.h"
#include "sim/arena.h"
#include "sim/simulation.h"

namespace bnm::net {

/// Anything that can accept a delivered packet (hosts, switches). Packets
/// are handed over by value and moved the whole way down the pipeline —
/// with refcounted payloads that is a metadata move, no byte copies.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void handle_packet(Packet packet) = 0;
};

/// Which end of a duplex link a component sits on.
enum class LinkSide { kA, kB };

/// Anything a host can transmit through: an in-domain Link or a
/// cross-domain DomainLink. Hosts hold an Egress* so the same Host code
/// works whether its peer lives in the same scheduler domain or not.
class Egress {
 public:
  virtual ~Egress() = default;
  /// `sink` receives packets arriving at `side`.
  virtual void attach(LinkSide side, PacketSink* sink) = 0;
  /// Enqueue a packet for transmission from `side` toward the other side.
  virtual void transmit(LinkSide side, Packet packet) = 0;
};

class Link final : public Egress {
 public:
  using Side = LinkSide;  ///< compat alias; call sites say Link::Side::kA

  struct Config {
    double bandwidth_bps = 100e6;  ///< 100 Mbps Fast Ethernet (paper testbed)
    sim::Duration propagation = sim::Duration::micros(5);
    double loss_probability = 0.0;  ///< per-packet independent drop
    /// Bursty (Gilbert-Elliott) loss; takes precedence over
    /// loss_probability when set. Shared chain across both directions.
    std::optional<GilbertElliottConfig> bursty_loss;
    std::size_t queue_limit_packets = 1000;  ///< tail-drop beyond this
    std::string name = "link";
  };

  Link(sim::Simulation& sim, Config config);

  void attach(Side side, PacketSink* sink) override;

  void transmit(Side side, Packet packet) override;

  const Config& config() const { return config_; }
  /// Propagation delay doubles as the conservative lookahead bound when the
  /// link is the cut point of a domain partition.
  sim::Duration lookahead() const { return config_.propagation; }
  std::uint64_t drops(Side side) const;
  std::uint64_t delivered(Side side) const;

  /// Serialization delay of `packet` at this link's rate.
  sim::Duration serialization_delay(const Packet& packet) const;

 private:
  struct Direction {
    PacketSink* sink = nullptr;        ///< receiver at the far end
    sim::TimePoint tx_free;            ///< transmitter busy until
    std::size_t in_flight = 0;         ///< queued or serializing
    std::uint64_t drops = 0;
    std::uint64_t delivered = 0;
  };

  Direction& dir(Side from) { return from == Side::kA ? a_to_b_ : b_to_a_; }
  const Direction& dir(Side from) const {
    return from == Side::kA ? a_to_b_ : b_to_a_;
  }

  sim::Simulation& sim_;
  Config config_;
  sim::Rng rng_;
  LossProcess loss_;
  Direction a_to_b_;
  Direction b_to_a_;
  /// In-flight packets parked until their arrival event fires, in
  /// arena-backed nodes so the delivery closure ([this, sink, dir, iter])
  /// stays within the scheduler's inline storage — no per-packet heap trip.
  std::list<Packet, sim::ArenaAllocator<Packet>> in_flight_;
};

}  // namespace bnm::net
