#include "net/host.h"

#include <cassert>
#include <utility>

namespace bnm::net {

namespace {
std::uint64_t name_hash(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

Host::Host(sim::Simulation& sim, Config config)
    : sim_{sim},
      config_{std::move(config)},
      capture_{sim, [&] {
                 auto c = config_.capture;
                 if (c.name == "pcap") c.name = config_.name + "/pcap";
                 return c;
               }()},
      isn_counter_{static_cast<std::uint32_t>(name_hash(config_.name) & 0xffff)},
      id_base_{name_hash(config_.name) << 20} {
  if (config_.egress_faults) {
    auto plan = *config_.egress_faults;
    if (plan.name == "faults") plan.name = config_.name + "/egress-faults";
    egress_faults_ = std::make_unique<FaultInjector>(sim_, std::move(plan));
    egress_faults_->set_output([this](Packet p) {
      assert(link_ && "host not attached to a link");
      link_->transmit(link_side_, std::move(p));
    });
  }
  if (config_.egress_netem) {
    netem_ = std::make_unique<DelayEmulator>(sim_, *config_.egress_netem);
    netem_->set_output([this](Packet p) {
      if (egress_faults_) {
        egress_faults_->handle_packet(std::move(p));
        return;
      }
      assert(link_ && "host not attached to a link");
      link_->transmit(link_side_, std::move(p));
    });
  }
  if (config_.ingress_faults) {
    auto plan = *config_.ingress_faults;
    if (plan.name == "faults") plan.name = config_.name + "/ingress-faults";
    ingress_faults_ = std::make_unique<FaultInjector>(sim_, std::move(plan));
    ingress_faults_->set_output(
        [this](Packet p) { deliver_from_wire(std::move(p)); });
  }
}

Host::~Host() {
  for (auto& [tuple, conn] : connections_) {
    conn->set_callbacks({});
  }
}

void Host::attach_link(Egress* link, LinkSide host_side) {
  link_ = link;
  link_side_ = host_side;
  link->attach(host_side, this);
}

std::shared_ptr<TcpConnection> Host::tcp_connect(Endpoint remote,
                                                 TcpCallbacks cbs) {
  const Endpoint local{config_.ip, allocate_ephemeral_port()};
  const FourTuple tuple{local, remote};
  auto conn = std::make_shared<TcpConnection>(*this, tuple, config_.tcp,
                                              /*initiator=*/true, next_isn());
  conn->set_callbacks(std::move(cbs));
  connections_.emplace(tuple, conn);
  conn->start_active_open();
  return conn;
}

void Host::tcp_listen(Port port, TcpListener::AcceptCallback on_accept) {
  listeners_.emplace(port, TcpListener{port, std::move(on_accept)});
}

void Host::tcp_unlisten(Port port) { listeners_.erase(port); }

std::shared_ptr<UdpSocket> Host::udp_open(Port local_port,
                                          UdpSocket::ReceiveCallback on_receive) {
  auto sock = std::make_shared<UdpSocket>(*this, local_port, std::move(on_receive));
  udp_sockets_[local_port] = sock;
  return sock;
}

std::shared_ptr<UdpSocket> Host::udp_open(UdpSocket::ReceiveCallback on_receive) {
  return udp_open(allocate_ephemeral_port(), std::move(on_receive));
}

void Host::udp_close(Port local_port) { udp_sockets_.erase(local_port); }

void Host::send_packet(Packet packet) {
  packet.id = next_packet_id();
  // Stack processing, then the capture tap at the NIC, then netem/wire.
  // The packet waits in the staging list so the closure stays inline-small.
  const auto it = staged_.insert(staged_.end(), std::move(packet));
  sim_.scheduler().schedule_after(config_.stack_delay, [this, it] {
    capture_.record(CaptureDirection::kOutbound, *it);
    if (sim_.trace().enabled()) {
      sim_.trace().emit(sim_.now(), config_.name, "tx " + it->to_string());
    }
    Packet pkt = std::move(*it);
    staged_.erase(it);
    wire_out(std::move(pkt));
  });
}

void Host::wire_out(Packet packet) {
  if (netem_) {
    netem_->enqueue(std::move(packet));
    return;
  }
  if (egress_faults_) {
    egress_faults_->handle_packet(std::move(packet));
    return;
  }
  assert(link_ && "host not attached to a link");
  link_->transmit(link_side_, std::move(packet));
}

Port Host::allocate_ephemeral_port() {
  const Port p = next_ephemeral_;
  next_ephemeral_ = next_ephemeral_ == 65535 ? 49152 : next_ephemeral_ + 1;
  return p;
}

std::uint32_t Host::next_isn() {
  isn_counter_ += 64000;
  return isn_counter_;
}

void Host::deregister_connection(const FourTuple& tuple) {
  connections_.erase(tuple);
}

void Host::handle_packet(Packet packet) {
  // Faults on the last path segment hit before the NIC: a packet dropped
  // there never reaches the capture tap.
  if (ingress_faults_) {
    ingress_faults_->handle_packet(std::move(packet));
    return;
  }
  deliver_from_wire(std::move(packet));
}

void Host::deliver_from_wire(Packet packet) {
  capture_.record(CaptureDirection::kInbound, packet);
  if (sim_.trace().enabled()) {
    sim_.trace().emit(sim_.now(), config_.name, "rx " + packet.to_string());
  }
  if (packet.corrupted) {
    // The NIC/stack verifies checksums after the tap: tcpdump sees the
    // frame, the transport never does.
    ++checksum_drops_;
    if (sim_.trace().enabled()) {
      sim_.trace().emit(sim_.now(), config_.name,
                        "checksum-drop " + packet.to_string());
    }
    return;
  }
  const auto it = staged_.insert(staged_.end(), std::move(packet));
  sim_.scheduler().schedule_after(config_.stack_delay, [this, it] {
    const Packet pkt = std::move(*it);
    staged_.erase(it);
    demux(pkt);
  });
}

void Host::demux(const Packet& packet) {
  if (packet.dst.ip != config_.ip) return;  // not ours; NIC would drop
  switch (packet.protocol) {
    case Protocol::kTcp:
      handle_tcp(packet);
      break;
    case Protocol::kUdp:
      handle_udp(packet);
      break;
  }
}

void Host::handle_tcp(const Packet& packet) {
  const FourTuple tuple{packet.dst, packet.src};
  if (const auto it = connections_.find(tuple); it != connections_.end()) {
    // Keep the connection alive through the callback even if it
    // deregisters itself while processing this segment.
    const auto conn = it->second;
    conn->on_segment(packet);
    return;
  }
  if (packet.flags.syn && !packet.flags.ack) {
    if (const auto lit = listeners_.find(packet.dst.port);
        lit != listeners_.end()) {
      auto conn = std::make_shared<TcpConnection>(
          *this, tuple, config_.tcp, /*initiator=*/false, next_isn());
      // The listener installs application callbacks; it runs before any
      // subsequent segment can arrive (that takes at least one more event).
      connections_.emplace(tuple, conn);
      lit->second.notify_accept(conn);
      conn->on_segment(packet);
      return;
    }
  }
  if (!packet.flags.rst) send_rst_for(packet);
}

void Host::handle_udp(const Packet& packet) {
  if (const auto it = udp_sockets_.find(packet.dst.port);
      it != udp_sockets_.end()) {
    it->second->on_datagram(packet);
  }
  // Unbound port: silently dropped (no ICMP in this simulator).
}

void Host::send_rst_for(const Packet& packet) {
  Packet rst;
  rst.protocol = Protocol::kTcp;
  rst.src = packet.dst;
  rst.dst = packet.src;
  rst.flags.rst = true;
  rst.flags.ack = true;
  rst.seq = packet.ack;
  rst.ack = packet.seq + static_cast<std::uint32_t>(packet.payload.size()) +
            (packet.flags.syn ? 1 : 0) + (packet.flags.fin ? 1 : 0);
  send_packet(std::move(rst));
}

}  // namespace bnm::net
