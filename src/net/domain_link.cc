#include "net/domain_link.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/simulation.h"

namespace bnm::net {

DomainLink::DomainLink(sim::DomainScheduler& domains,
                       sim::DomainScheduler::DomainId dom_a,
                       sim::DomainScheduler::DomainId dom_b, Config config)
    : domains_{domains}, config_{std::move(config)} {
  assert(config_.bandwidth_bps > 0);
  a_to_b_.src = &domains.domain(dom_a);
  a_to_b_.channel = domains.add_channel(dom_a, dom_b, config_.propagation);
  b_to_a_.src = &domains.domain(dom_b);
  b_to_a_.channel = domains.add_channel(dom_b, dom_a, config_.propagation);
}

void DomainLink::attach(LinkSide side, PacketSink* sink) {
  // `sink` is the receiver *on* `side`; store it in the direction that
  // delivers toward that side.
  Direction& d = side == LinkSide::kA ? b_to_a_ : a_to_b_;
  d.sink = sink;
}

sim::Duration DomainLink::serialization_delay(const Packet& packet) const {
  const double bits = static_cast<double>(packet.wire_size()) * 8.0;
  return sim::Duration::from_seconds_f(bits / config_.bandwidth_bps);
}

void DomainLink::transmit(LinkSide side, Packet packet) {
  Direction& d = dir(side);
  assert(d.sink && "link side not attached");
  sim::Simulation& src = *d.src;

  if (d.in_flight >= config_.queue_limit_packets) {
    ++d.drops;
    if (src.trace().enabled()) {
      src.trace().emit(src.now(), config_.name,
                       "tail-drop " + packet.to_string());
    }
    return;
  }

  const sim::TimePoint start = std::max(src.now(), d.tx_free);
  const sim::TimePoint tx_done = start + serialization_delay(packet);
  d.tx_free = tx_done;
  ++d.in_flight;
  Direction* dp = &d;
  // Transmitter slot frees at tx_done, a source-domain event (see header).
  src.scheduler().post_at(tx_done, [dp] { --dp->in_flight; });

  if (src.trace().enabled()) {
    src.trace().emit_span(
        src.now(), (tx_done + config_.propagation) - src.now(), config_.name,
        "hop " + packet.to_string(),
        {{"packet_id", static_cast<std::int64_t>(packet.id)},
         {"wire_bytes", static_cast<std::int64_t>(packet.wire_size())}});
  }

  // Delivery at src.now() + propagation + extra == tx_done + propagation,
  // matching Link exactly. The closure runs in the destination domain;
  // the payload handoff is zero-copy (atomic refcounts).
  PacketSink* sink = d.sink;
  domains_.post_remote(d.channel, tx_done - src.now(),
                       [sink, dp, pkt = std::move(packet)]() mutable {
                         ++dp->delivered;
                         sink->handle_packet(std::move(pkt));
                       });
}

}  // namespace bnm::net
