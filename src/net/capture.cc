#include "net/capture.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>

namespace bnm::net {

std::string CaptureRecord::to_string() const {
  return timestamp.to_string() +
         (direction == CaptureDirection::kOutbound ? " OUT " : " IN  ") +
         packet.to_string();
}

PacketCapture::PacketCapture(sim::Simulation& sim, Config config)
    : sim_{sim}, config_{std::move(config)}, rng_{sim.rng_for(config_.name)} {}

void PacketCapture::record(CaptureDirection direction, const Packet& packet) {
  if (!config_.enabled) return;
  CaptureRecord rec;
  rec.true_time = sim_.now();
  rec.timestamp = rec.true_time;
  if (!config_.timestamp_jitter.is_zero()) {
    rec.timestamp += rng_.uniform_ms(0.0, config_.timestamp_jitter.ms_f());
  }
  rec.direction = direction;
  // Metadata copy + shared payload view — never a byte copy. snap_len
  // truncation is a narrower view of the same buffer.
  rec.packet = packet;
  rec.wire_payload_len = packet.payload_size();
  if (config_.snap_len < rec.wire_payload_len) {
    rec.packet.payload = packet.payload.first(config_.snap_len);
  }
  records_.push_back(std::move(rec));
}

std::size_t PacketCapture::first_index_at_or_after(sim::TimePoint t) const {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), t,
      [](const CaptureRecord& r, sim::TimePoint at) { return r.true_time < at; });
  return static_cast<std::size_t>(it - records_.begin());
}

std::vector<CaptureRecord> PacketCapture::select(const CaptureFilter& filter) const {
  std::vector<CaptureRecord> out;
  for (const auto& r : records_) {
    if (filter(r)) out.push_back(r);
  }
  return out;
}

std::optional<CaptureRecord> PacketCapture::first(const CaptureFilter& filter,
                                                  sim::TimePoint from) const {
  for (const auto& r : records_) {
    if (r.true_time >= from && filter(r)) return r;
  }
  return std::nullopt;
}

std::optional<CaptureRecord> PacketCapture::last(const CaptureFilter& filter) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (filter(*it)) return *it;
  }
  return std::nullopt;
}

CaptureFilter PacketCapture::outbound_data() {
  return [](const CaptureRecord& r) {
    return r.direction == CaptureDirection::kOutbound && r.carries_data();
  };
}

CaptureFilter PacketCapture::inbound_data() {
  return [](const CaptureRecord& r) {
    return r.direction == CaptureDirection::kInbound && r.carries_data();
  };
}

CaptureFilter PacketCapture::tcp_syn() {
  return [](const CaptureRecord& r) {
    return r.packet.protocol == Protocol::kTcp && r.packet.flags.syn;
  };
}

CaptureFilter PacketCapture::to_port(Port port) {
  return [port](const CaptureRecord& r) { return r.packet.dst.port == port; };
}

CaptureFilter PacketCapture::between(Endpoint a, Endpoint b) {
  return [a, b](const CaptureRecord& r) {
    return (r.packet.src == a && r.packet.dst == b) ||
           (r.packet.src == b && r.packet.dst == a);
  };
}

std::size_t PacketCapture::distinct_connections() const {
  std::set<std::tuple<std::uint32_t, Port, std::uint32_t, Port, std::uint32_t>>
      syns;
  for (const auto& r : records_) {
    const Packet& p = r.packet;
    if (p.protocol == Protocol::kTcp && p.flags.syn && !p.flags.ack) {
      syns.emplace(p.src.ip.raw(), p.src.port, p.dst.ip.raw(), p.dst.port,
                   p.seq);
    }
  }
  return syns.size();
}

}  // namespace bnm::net
