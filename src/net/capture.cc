#include "net/capture.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>

namespace bnm::net {

std::string CaptureRecord::to_string() const {
  return timestamp.to_string() +
         (direction == CaptureDirection::kOutbound ? " OUT " : " IN  ") +
         packet.to_string();
}

PacketCapture::PacketCapture(sim::Simulation& sim, Config config)
    : sim_{sim}, config_{std::move(config)}, rng_{sim.rng_for(config_.name)} {}

void PacketCapture::record(CaptureDirection direction, const Packet& packet) {
  if (!config_.enabled) return;
  const sim::TimePoint now = sim_.now();
  sim::TimePoint stamp = now;
  if (!config_.timestamp_jitter.is_zero()) {
    stamp += rng_.uniform_ms(0.0, config_.timestamp_jitter.ms_f());
  }
  const std::size_t wire_len = packet.payload_size();
  timestamp_.push_back(stamp);
  true_time_.push_back(now);
  direction_.push_back(direction);
  wire_len_.push_back(wire_len);
  // Metadata copy + shared payload view — never a byte copy. snap_len
  // truncation is a narrower view of the same buffer.
  packets_.push_back(packet);
  if (config_.snap_len < wire_len) {
    packets_.back().payload = packet.payload.first(config_.snap_len);
  }
}

void PacketCapture::clear() {
  timestamp_.clear();
  true_time_.clear();
  direction_.clear();
  wire_len_.clear();
  packets_.clear();
}

void PacketCapture::reserve(std::size_t n) {
  timestamp_.reserve(n);
  true_time_.reserve(n);
  direction_.reserve(n);
  wire_len_.reserve(n);
  packets_.reserve(n);
}

CaptureRecord PacketCapture::at(std::size_t i) const {
  CaptureRecord rec;
  rec.timestamp = timestamp_[i];
  rec.true_time = true_time_[i];
  rec.direction = direction_[i];
  rec.packet = packets_[i];
  rec.wire_payload_len = wire_len_[i];
  return rec;
}

std::size_t PacketCapture::first_index_at_or_after(sim::TimePoint t) const {
  const auto it = std::lower_bound(true_time_.begin(), true_time_.end(), t);
  return static_cast<std::size_t>(it - true_time_.begin());
}

std::vector<CaptureRecord> PacketCapture::select(
    const CaptureFilter& filter) const {
  std::vector<CaptureRecord> out;
  for (std::size_t i = 0; i < size(); ++i) {
    CaptureRecord rec = at(i);
    if (filter(rec)) out.push_back(std::move(rec));
  }
  return out;
}

std::optional<CaptureRecord> PacketCapture::first(const CaptureFilter& filter,
                                                  sim::TimePoint from) const {
  for (std::size_t i = first_index_at_or_after(from); i < size(); ++i) {
    CaptureRecord rec = at(i);
    if (filter(rec)) return rec;
  }
  return std::nullopt;
}

std::optional<CaptureRecord> PacketCapture::last(
    const CaptureFilter& filter) const {
  for (std::size_t i = size(); i-- > 0;) {
    CaptureRecord rec = at(i);
    if (filter(rec)) return rec;
  }
  return std::nullopt;
}

CaptureFilter PacketCapture::outbound_data() {
  return [](const CaptureRecord& r) {
    return r.direction == CaptureDirection::kOutbound && r.carries_data();
  };
}

CaptureFilter PacketCapture::inbound_data() {
  return [](const CaptureRecord& r) {
    return r.direction == CaptureDirection::kInbound && r.carries_data();
  };
}

CaptureFilter PacketCapture::tcp_syn() {
  return [](const CaptureRecord& r) {
    return r.packet.protocol == Protocol::kTcp && r.packet.flags.syn;
  };
}

CaptureFilter PacketCapture::to_port(Port port) {
  return [port](const CaptureRecord& r) { return r.packet.dst.port == port; };
}

CaptureFilter PacketCapture::between(Endpoint a, Endpoint b) {
  return [a, b](const CaptureRecord& r) {
    return (r.packet.src == a && r.packet.dst == b) ||
           (r.packet.src == b && r.packet.dst == a);
  };
}

std::size_t PacketCapture::distinct_connections() const {
  std::set<std::tuple<std::uint32_t, Port, std::uint32_t, Port, std::uint32_t>>
      syns;
  for (const Packet& p : packets_) {
    if (p.protocol == Protocol::kTcp && p.flags.syn && !p.flags.ack) {
      syns.emplace(p.src.ip.raw(), p.src.port, p.dst.ip.raw(), p.dst.port,
                   p.seq);
    }
  }
  return syns.size();
}

}  // namespace bnm::net
