// Composable fault injection for the packet pipeline.
//
// A FaultInjector is a PacketSink stage that can be spliced between any two
// pipeline stages (link/switch/netem/host, either direction). It executes a
// FaultPlan: stochastic impairments (i.i.d. or Gilbert-Elliott bursty loss,
// payload corruption, duplication) plus scripted deterministic faults
// ("drop the Nth data segment", "blackhole [t1,t2)", timed link flaps).
// Every fault is counted per kind and appended to a bounded event trace, so
// experiments can account for exactly which impairments each run saw.
//
// Determinism: the injector draws from its own forked RNG stream, and every
// draw is gated on the corresponding knob being configured — an injector
// with an empty plan consumes zero random numbers and is a pure pass-through,
// so inserting a disabled stage never perturbs baseline results.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/loss_process.h"
#include "net/packet.h"
#include "sim/arena.h"
#include "sim/simulation.h"

namespace bnm::net {

enum class FaultKind : std::uint8_t {
  kIidLoss,       ///< independent per-packet loss
  kBurstLoss,     ///< Gilbert-Elliott chain drop
  kCorrupt,       ///< payload corrupted in flight (receiver checksum-drops)
  kDuplicate,     ///< packet duplicated in flight
  kBlackhole,     ///< inside a scripted blackhole window
  kFlap,          ///< link down (timed flap window)
  kScriptedDrop,  ///< "drop the Nth data segment"
};

const char* to_string(FaultKind kind);

/// Half-open wall-clock window [begin, end) in simulation time.
struct TimeWindow {
  sim::TimePoint begin;
  sim::TimePoint end;
  bool contains(sim::TimePoint t) const { return t >= begin && t < end; }
};

/// One injected fault, for the bounded event trace.
struct FaultEvent {
  sim::TimePoint time;
  FaultKind kind = FaultKind::kIidLoss;
  std::uint64_t packet_id = 0;
};

struct FaultCounters {
  std::uint64_t seen = 0;       ///< packets entering the stage
  std::uint64_t forwarded = 0;  ///< packets leaving it (incl. corrupted)
  std::uint64_t iid_losses = 0;
  std::uint64_t burst_losses = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t flap_drops = 0;
  std::uint64_t scripted_drops = 0;

  std::uint64_t dropped() const {
    return iid_losses + burst_losses + blackholed + flap_drops +
           scripted_drops;
  }
};

/// Declarative description of the faults one injector executes. All knobs
/// default off; an empty plan makes the injector a pass-through.
struct FaultPlan {
  std::string name = "faults";

  // --- stochastic impairments ---
  double loss_probability = 0.0;  ///< i.i.d. per-packet loss
  std::optional<GilbertElliottConfig> bursty_loss;
  double corrupt_probability = 0.0;  ///< mark corrupted; receiver drops it
  double duplicate_probability = 0.0;

  // --- scripted deterministic faults ---
  std::vector<TimeWindow> blackholes;
  std::vector<TimeWindow> flaps;  ///< link-down windows
  /// 1-based ordinals of data-carrying packets to drop (pure ACKs and bare
  /// SYN/FIN segments are not counted).
  std::vector<std::uint64_t> drop_data_segments;

  std::size_t max_events = 4096;  ///< event-trace cap

  // Fluent builders (return *this for chaining).
  FaultPlan& blackhole(sim::TimePoint begin, sim::TimePoint end);
  /// `count` down-windows of `down_for`, the first starting at `first_down`,
  /// subsequent ones every `period`.
  FaultPlan& flap(sim::TimePoint first_down, sim::Duration down_for,
                  sim::Duration period, std::size_t count);
  FaultPlan& drop_nth_data_segment(std::uint64_t n);

  bool empty() const;

  /// Reject ill-formed plans with a descriptive std::invalid_argument
  /// naming the offending knob: probabilities must lie in [0, 1] (including
  /// the Gilbert-Elliott fields), window begins must not exceed their ends,
  /// and scripted drop ordinals are 1-based. Called on FaultInjector
  /// construction, so a bad plan fails fast at wiring time instead of
  /// silently skewing a campaign's loss rates.
  void validate() const;
};

/// Pipeline stage executing a FaultPlan. Insert it anywhere a PacketSink is
/// accepted, or drive it via handle_packet() and wire set_output() to the
/// next stage.
class FaultInjector : public PacketSink {
 public:
  FaultInjector(sim::Simulation& sim, FaultPlan plan);

  void set_output(std::function<void(Packet)> output) {
    output_ = std::move(output);
  }
  void set_output(PacketSink* sink);

  /// Process one packet: apply the plan, forward survivors downstream.
  void handle_packet(Packet packet) override;

  /// False when the plan is empty (stage is a zero-draw pass-through).
  bool active() const { return active_; }

  /// Bounded event trace, in an arena-backed container (the injector lives
  /// and dies with its testbed, within one arena epoch).
  using EventTrace = std::vector<FaultEvent, sim::ArenaAllocator<FaultEvent>>;

  const FaultPlan& plan() const { return plan_; }
  const FaultCounters& counters() const { return counters_; }
  const EventTrace& events() const { return events_; }

 private:
  /// Returns the drop reason, or nullopt if the packet survives the drop
  /// stages. May mark `packet` corrupted (a non-drop fault).
  std::optional<FaultKind> apply_drop_faults(const Packet& packet);
  void note(FaultKind kind, const Packet& packet);

  sim::Simulation& sim_;
  FaultPlan plan_;
  sim::Rng rng_;
  LossProcess loss_;
  bool active_ = false;
  std::function<void(Packet)> output_;
  std::uint64_t data_ordinal_ = 0;
  FaultCounters counters_;
  EventTrace events_;
};

}  // namespace bnm::net
