// Store-and-forward Ethernet-style switch connecting hosts (Fig. 2 testbed).
//
// Forwarding is by destination IP through a static table populated when
// hosts are plugged in (the simulated LAN needs no ARP). A small forwarding
// latency models the switch's lookup + fabric transit.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "sim/arena.h"
#include "sim/simulation.h"

namespace bnm::net {

class SwitchFabric : public PacketSink {
 public:
  struct Config {
    sim::Duration forwarding_latency = sim::Duration::micros(3);
    std::string name = "switch";
  };

  explicit SwitchFabric(sim::Simulation& sim) : SwitchFabric(sim, Config{}) {}
  SwitchFabric(sim::Simulation& sim, Config config);

  /// Plug a link into the next free port; the switch sits on `switch_side`
  /// of that link. Returns the port index.
  std::size_t add_port(Link* link, Link::Side switch_side);

  /// Bind a destination address to a port (which host lives where).
  void learn(IpAddress ip, std::size_t port);

  // PacketSink: a packet arrived from one of the attached links.
  void handle_packet(Packet packet) override;

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }

 private:
  struct PortRef {
    Link* link = nullptr;
    Link::Side side = Link::Side::kA;
  };

  sim::Simulation& sim_;
  Config config_;
  std::vector<PortRef> ports_;
  std::unordered_map<IpAddress, std::size_t> table_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  /// Packets transiting the fabric, parked until the forwarding-latency
  /// event fires; arena-backed nodes keep the closure inline-small.
  std::list<Packet, sim::ArenaAllocator<Packet>> transiting_;
};

}  // namespace bnm::net
