#include "net/switch_fabric.h"

#include <utility>

namespace bnm::net {

SwitchFabric::SwitchFabric(sim::Simulation& sim, Config config)
    : sim_{sim}, config_{std::move(config)} {}

std::size_t SwitchFabric::add_port(Link* link, Link::Side switch_side) {
  link->attach(switch_side, this);
  ports_.push_back(PortRef{link, switch_side});
  return ports_.size() - 1;
}

void SwitchFabric::learn(IpAddress ip, std::size_t port) {
  table_[ip] = port;
}

void SwitchFabric::handle_packet(Packet packet) {
  const auto it = table_.find(packet.dst.ip);
  if (it == table_.end()) {
    ++dropped_no_route_;
    if (sim_.trace().enabled()) {
      sim_.trace().emit(sim_.now(), config_.name,
                        "no route for " + packet.to_string());
    }
    return;
  }
  const PortRef out = ports_.at(it->second);
  ++forwarded_;
  const auto node = transiting_.insert(transiting_.end(), std::move(packet));
  sim_.scheduler().schedule_after(config_.forwarding_latency,
                                  [this, out, node] {
                                    Packet pkt = std::move(*node);
                                    transiting_.erase(node);
                                    out.link->transmit(out.side,
                                                       std::move(pkt));
                                  });
}

}  // namespace bnm::net
