#include "net/address.h"

#include <cstdio>
#include <stdexcept>

namespace bnm::net {

IpAddress IpAddress::parse(const std::string& dotted) {
  unsigned a, b, c, d;
  char extra;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("bad IPv4 address: " + dotted);
  }
  return IpAddress{static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                   static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d)};
}

std::string IpAddress::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (raw_ >> 24) & 0xff,
                (raw_ >> 16) & 0xff, (raw_ >> 8) & 0xff, raw_ & 0xff);
  return buf;
}

std::string Endpoint::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

std::string FourTuple::to_string() const {
  return local.to_string() + "<->" + remote.to_string();
}

}  // namespace bnm::net
