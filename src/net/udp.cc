#include "net/udp.h"

#include <utility>

#include "net/host.h"

namespace bnm::net {

UdpSocket::UdpSocket(Host& host, Port local_port, ReceiveCallback on_receive)
    : host_{host}, local_port_{local_port}, on_receive_{std::move(on_receive)} {}

void UdpSocket::send_to(Endpoint remote, Payload payload) {
  Packet pkt;
  pkt.protocol = Protocol::kUdp;
  pkt.src = Endpoint{host_.ip(), local_port_};
  pkt.dst = remote;
  pkt.payload = std::move(payload);
  ++sent_;
  host_.send_packet(std::move(pkt));
}

void UdpSocket::on_datagram(const Packet& packet) {
  ++received_;
  if (on_receive_) on_receive_(packet.src, packet.payload);
}

}  // namespace bnm::net
