#include "net/pcap_writer.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace bnm::net {

namespace {

void put_u16be(std::vector<std::uint8_t>& f, std::uint16_t v) {
  f.push_back(static_cast<std::uint8_t>(v >> 8));
  f.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32be(std::vector<std::uint8_t>& f, std::uint32_t v) {
  f.push_back(static_cast<std::uint8_t>(v >> 24));
  f.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  f.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  f.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u16le(std::ostream& out, std::uint16_t v) {
  const char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out.write(b, 2);
}

void put_u32le(std::ostream& out, std::uint32_t v) {
  const char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                     static_cast<char>((v >> 16) & 0xff),
                     static_cast<char>((v >> 24) & 0xff)};
  out.write(b, 4);
}

}  // namespace

std::uint16_t PcapWriter::internet_checksum(const std::uint8_t* data,
                                            std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (len % 2 == 1) sum += static_cast<std::uint32_t>(data[len - 1]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::vector<std::uint8_t> PcapWriter::synthesize_frame(const Packet& packet) {
  return synthesize_frame(packet, packet.payload.size());
}

std::vector<std::uint8_t> PcapWriter::synthesize_frame(
    const Packet& packet, std::size_t wire_payload_len) {
  std::vector<std::uint8_t> f;
  f.reserve(kIpHeaderBytes + kTcpHeaderBytes + packet.payload.size());

  const bool tcp = packet.protocol == Protocol::kTcp;
  const bool has_ts = tcp && packet.ts.present;
  const std::size_t tcp_header =
      kTcpHeaderBytes + (has_ts ? kTcpTimestampOptionBytes : 0);
  const std::size_t total =
      kIpHeaderBytes + (tcp ? tcp_header : kUdpHeaderBytes) + wire_payload_len;

  // --- IPv4 header (20 bytes, no options) ---
  f.push_back(0x45);  // version 4, IHL 5
  f.push_back(0x00);  // DSCP/ECN
  put_u16be(f, static_cast<std::uint16_t>(total));
  put_u16be(f, static_cast<std::uint16_t>(packet.id & 0xffff));  // IP ID
  put_u16be(f, 0x4000);                                          // DF
  f.push_back(64);  // TTL
  f.push_back(static_cast<std::uint8_t>(packet.protocol));
  put_u16be(f, 0);  // checksum placeholder
  put_u32be(f, packet.src.ip.raw());
  put_u32be(f, packet.dst.ip.raw());
  const std::uint16_t csum = internet_checksum(f.data(), kIpHeaderBytes);
  f[10] = static_cast<std::uint8_t>(csum >> 8);
  f[11] = static_cast<std::uint8_t>(csum & 0xff);

  if (tcp) {
    // --- TCP header (20 bytes, + 12 option bytes when timestamps ride) ---
    put_u16be(f, packet.src.port);
    put_u16be(f, packet.dst.port);
    put_u32be(f, packet.seq);
    put_u32be(f, packet.ack);
    f.push_back(static_cast<std::uint8_t>((tcp_header / 4) << 4));
    std::uint8_t flags = 0;
    if (packet.flags.fin) flags |= 0x01;
    if (packet.flags.syn) flags |= 0x02;
    if (packet.flags.rst) flags |= 0x04;
    if (packet.flags.psh) flags |= 0x08;
    if (packet.flags.ack) flags |= 0x10;
    f.push_back(flags);
    put_u16be(f, packet.window);
    put_u16be(f, 0);  // checksum (offloaded)
    put_u16be(f, 0);  // urgent pointer
    if (has_ts) {
      // RFC 7323 recommended layout: NOP, NOP, kind=8, len=10, TSval, TSecr.
      f.push_back(1);
      f.push_back(1);
      f.push_back(8);
      f.push_back(10);
      put_u32be(f, packet.ts.tsval);
      put_u32be(f, packet.ts.tsecr);
    }
  } else {
    // --- UDP header (8 bytes) ---
    put_u16be(f, packet.src.port);
    put_u16be(f, packet.dst.port);
    put_u16be(f, static_cast<std::uint16_t>(kUdpHeaderBytes + wire_payload_len));
    put_u16be(f, 0);  // checksum (optional for IPv4)
  }

  f.insert(f.end(), packet.payload.begin(), packet.payload.end());
  return f;
}

std::size_t PcapWriter::write(const PacketCapture& capture, std::ostream& out) {
  // Global header.
  put_u32le(out, 0xa1b2c3d4);  // magic, microsecond timestamps
  put_u16le(out, 2);           // version major
  put_u16le(out, 4);           // version minor
  put_u32le(out, 0);           // thiszone
  put_u32le(out, 0);           // sigfigs
  put_u32le(out, 65535);       // snaplen
  put_u32le(out, kLinkTypeRaw);
  std::size_t written = 24;

  for (std::size_t i = 0; i < capture.size(); ++i) {
    const Packet& pkt = capture.packet(i);
    // wire_payload_len only differs from the stored payload when the
    // capture snapped; hand-built records may leave it 0, so never let it
    // understate what we actually hold.
    const std::size_t wire_len =
        std::max(capture.wire_payload_len(i), pkt.payload.size());
    const std::vector<std::uint8_t> frame = synthesize_frame(pkt, wire_len);
    const std::size_t orig_len =
        frame.size() + (wire_len - pkt.payload.size());
    const std::int64_t us = capture.timestamp(i).ns_since_epoch() / 1000;
    put_u32le(out, static_cast<std::uint32_t>(us / 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(us % 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(frame.size()));
    put_u32le(out, static_cast<std::uint32_t>(orig_len));
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    written += 16 + frame.size();
  }
  return written;
}

std::size_t PcapWriter::write_file(const PacketCapture& capture,
                                   const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("cannot open pcap output: " + path);
  return write(capture, out);
}

}  // namespace bnm::net
