#include "sim/arena.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "obs/metrics.h"

namespace bnm::sim {

namespace {

thread_local Arena* t_current = nullptr;
std::atomic<bool> g_enabled{true};

#ifdef BNM_ARENA_STATS
// Process aggregate lives in the obs metrics registry ("arena.*" in
// docs/OBSERVABILITY.md); ArenaStats accessors stay the public API. The
// BNM_ARENA_STATS gate keeps its meaning: compiled out, the instruments
// are never registered and every accessor reads 0.
const obs::Counter& allocations_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "arena.allocations", "allocs", "arena allocations served");
  return c;
}
const obs::Counter& bytes_counter() {
  static const obs::Counter c = obs::MetricsRegistry::instance().counter(
      "arena.bytes_served", "bytes", "bytes served from arena chunks");
  return c;
}
const obs::Gauge& peak_gauge() {
  static const obs::Gauge g = obs::MetricsRegistry::instance().gauge(
      "arena.peak_bytes", "bytes", "high-water mark of live arena bytes");
  return g;
}

void stats_count(std::size_t bytes, std::size_t arena_in_use) {
  allocations_counter().add(1);
  bytes_counter().add(bytes);
  peak_gauge().record_max(arena_in_use);
}
#endif

std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes)
    : chunk_bytes_{std::max<std::size_t>(chunk_bytes, 1024)} {}

Arena::~Arena() = default;

void* Arena::allocate(std::size_t size, std::size_t align) {
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");
  if (size == 0) size = 1;
  if (chunks_.empty()) add_chunk(size + align);
  for (;;) {
    Chunk& c = chunks_[active_];
    // Align the actual address, not the offset: operator new[] only
    // guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the chunk base, so an
    // aligned offset into an unaligned base would not be enough for
    // over-aligned requests.
    const auto base = reinterpret_cast<std::uintptr_t>(c.base.get());
    const std::size_t at =
        align_up(static_cast<std::size_t>(base) + c.used, align) -
        static_cast<std::size_t>(base);
    if (at + size <= c.capacity) {
      c.used = at + size;
      in_use_ += size;
      peak_ = std::max(peak_, in_use_);
      ++allocations_;
      bytes_served_ += size;
#ifdef BNM_ARENA_STATS
      stats_count(size, in_use_);
#endif
      return c.base.get() + at;
    }
    add_chunk(size + align);
  }
}

void Arena::add_chunk(std::size_t min_size) {
  // Reuse a retained chunk if the next one is big enough (the common case
  // after reset()); otherwise append a fresh chunk. Oversized requests get
  // a dedicated chunk of exactly their size, so a huge payload never forces
  // the default chunk size up.
  if (!chunks_.empty() && active_ + 1 < chunks_.size() &&
      chunks_[active_ + 1].capacity >= min_size) {
    ++active_;
    return;
  }
  const std::size_t cap = std::max(chunk_bytes_, min_size);
  Chunk c;
  c.base = std::make_unique<std::byte[]>(cap);
  c.capacity = cap;
  chunks_.push_back(std::move(c));
  active_ = chunks_.size() - 1;
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
  in_use_ = 0;
}

std::size_t Arena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.capacity;
  return total;
}

Arena* Arena::current() {
  return g_enabled.load(std::memory_order_relaxed) ? t_current : nullptr;
}

void Arena::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Arena::enabled() { return g_enabled.load(std::memory_order_relaxed); }

ArenaScope::ArenaScope(Arena* arena)
    : prev_{t_current}, installed_{arena != nullptr} {
  if (installed_) t_current = arena;
}

ArenaScope::~ArenaScope() {
  if (installed_) t_current = prev_;
}

std::uint64_t ArenaStats::allocations() {
#ifdef BNM_ARENA_STATS
  return allocations_counter().total();
#else
  return 0;
#endif
}

std::uint64_t ArenaStats::bytes() {
#ifdef BNM_ARENA_STATS
  return bytes_counter().total();
#else
  return 0;
#endif
}

std::uint64_t ArenaStats::peak_arena_bytes() {
#ifdef BNM_ARENA_STATS
  return peak_gauge().max_value();
#else
  return 0;
#endif
}

void ArenaStats::reset() {
#ifdef BNM_ARENA_STATS
  allocations_counter().reset();
  bytes_counter().reset();
  peak_gauge().reset();
#endif
}

bool ArenaStats::compiled_in() {
#ifdef BNM_ARENA_STATS
  return true;
#else
  return false;
#endif
}

}  // namespace bnm::sim
