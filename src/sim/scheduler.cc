#include "sim/scheduler.h"

#include <cassert>
#include <utility>

namespace bnm::sim {

void EventHandle::cancel() {
  if (alive_) *alive_ = false;
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle Scheduler::schedule_at(TimePoint at, std::function<void()> fn) {
  assert(fn && "scheduling an empty callback");
  if (at < now_) at = now_;  // never schedule into the past
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{at, next_seq_++, std::move(fn), alive});
  return EventHandle{std::move(alive)};
}

EventHandle Scheduler::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (!*e.alive) {
      if (cancelled_in_queue_ > 0) --cancelled_in_queue_;
      continue;  // skip dead entries
    }
    assert(e.at >= now_);
    now_ = e.at;
    *e.alive = false;  // fired; handle reports !pending()
    ++executed_;
    e.fn();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(TimePoint deadline) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (!*top.alive) {
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

std::size_t Scheduler::pending_events() const {
  // The queue may hold dead entries that have not surfaced yet; count live
  // ones by scanning a copy only when asked (tests and diagnostics only).
  auto copy = queue_;
  std::size_t live = 0;
  while (!copy.empty()) {
    if (*copy.top().alive) ++live;
    copy.pop();
  }
  return live;
}

void Scheduler::clear() {
  while (!queue_.empty()) queue_.pop();
  cancelled_in_queue_ = 0;
}

}  // namespace bnm::sim
