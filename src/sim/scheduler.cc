#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "sim/trace.h"

namespace bnm::sim {

namespace {

/// Kernel throughput counters (always on, bumped once per batch — never per
/// event). Catalogued in docs/OBSERVABILITY.md.
struct SchedulerMetrics {
  obs::Counter batches;
  obs::Counter events;
  obs::Counter promotions;
  obs::Counter overflow_pulls;

  static const SchedulerMetrics& get() {
    static const SchedulerMetrics m{
        obs::MetricsRegistry::instance().counter(
            "scheduler.batches", "batches",
            "buckets fired by batched dispatch"),
        obs::MetricsRegistry::instance().counter(
            "scheduler.events", "events", "events executed by any scheduler"),
        obs::MetricsRegistry::instance().counter(
            "scheduler.bucket_promotions", "buckets",
            "calendar buckets promoted (sorted) into the bottom tier"),
        obs::MetricsRegistry::instance().counter(
            "scheduler.overflow_pulls", "events",
            "far-future events migrated from the overflow heap into a "
            "promoted bucket"),
    };
    return m;
  }
};

Scheduler::QueueImpl g_default_impl = Scheduler::QueueImpl::kCalendar;

}  // namespace

namespace detail {

std::uint32_t ControlBlockPool::acquire(std::uint32_t& gen) {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    Slot& s = slot(idx);
    s.alive = true;
    gen = s.gen;
    return idx;
  }
  if (size_ % kChunkSlots == 0) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    // Grow the free list up front so retire() never reallocates on the
    // dispatch hot path.
    free_.reserve(size_ + kChunkSlots);
  }
  const std::uint32_t idx = size_++;
  Slot& s = slot(idx);
  s.alive = true;
  gen = s.gen;
  return idx;
}

void ControlBlockPool::retire(std::uint32_t idx) {
  Slot& s = slot(idx);
  ++s.gen;  // stale handles become inert instantly
  s.alive = false;
  free_.push_back(idx);
}

void CallbackPool::grow() {
  chunks_.push_back(std::make_unique<SmallCallback[]>(kChunkCells));
  // Reserve for the worst case (every cell free at once) so release() never
  // reallocates on the dispatch hot path.
  free_.reserve(chunks_.size() * kChunkCells);
  SmallCallback* base = chunks_.back().get();
  for (std::size_t i = kChunkCells; i > 0; --i) {
    free_.push_back(base + (i - 1));
  }
}

}  // namespace detail

void Scheduler::set_default_impl(QueueImpl impl) { g_default_impl = impl; }

Scheduler::QueueImpl Scheduler::default_impl() { return g_default_impl; }

Scheduler::Scheduler(QueueImpl impl)
    : impl_{impl}, pool_{new detail::ControlBlockPool} {}

Scheduler::~Scheduler() { pool_->release(); }

void Scheduler::push_entry(TimePoint at, SmallCallback fn,
                           std::uint32_t block) {
  if (at < now_) at = now_;  // never schedule into the past
  const std::uint64_t seq = next_seq_++;
  // The callable moves into a stable pool cell exactly once; the queue
  // tiers shuffle 40-byte POD entries from here on.
  SmallCallback* cb = cbpool_.acquire(std::move(fn));
  if (impl_ == QueueImpl::kHeap) {
    heap_push(Entry{at, seq, cb, block, now_});
    return;
  }
  const std::uint64_t abs = bucket_of(at);
  if (abs < next_abs_bucket_) {
    // Lands inside the active bottom's time range: merge-insert into the
    // un-fired tail so the (at, seq) total order is preserved. The new
    // entry's seq is the largest so far, so it can never sort before an
    // already-fired position.
    const auto pos = std::upper_bound(
        bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_pos_),
        bottom_.end(), at, [seq](TimePoint key, const Entry& e) {
          if (key != e.at) return key < e.at;
          return seq < e.seq;
        });
    bottom_.insert(pos, Entry{at, seq, cb, block, now_});
  } else if (abs < next_abs_bucket_ + kBuckets) {
    std::vector<Entry>& bucket = ring_[abs & kBucketMask];
    if (bucket.empty()) {
      mark_bucket(abs, true);
    } else if (at < bucket.back().at) {
      // Out-of-order append (the new seq is always maximal, so only an
      // earlier `at` breaks the order): remember that promotion must sort.
      const std::size_t slot = abs & kBucketMask;
      unsorted_[slot / 64] |= std::uint64_t{1} << (slot % 64);
    }
    bucket.push_back(Entry{at, seq, cb, block, now_});
    ++ring_count_;
  } else {
    overflow_.push_back(Entry{at, seq, cb, block, now_});
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

EventHandle Scheduler::schedule_at(TimePoint at, SmallCallback fn) {
  assert(fn && "scheduling an empty callback");
  std::uint32_t gen = 0;
  const std::uint32_t idx = pool_->acquire(gen);
  EventHandle handle{pool_, idx, gen};
  push_entry(at, std::move(fn), idx + 1);
  return handle;
}

EventHandle Scheduler::schedule_after(Duration delay, SmallCallback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::post_at(TimePoint at, SmallCallback fn) {
  assert(fn && "scheduling an empty callback");
  push_entry(at, std::move(fn), 0);
}

void Scheduler::post_after(Duration delay, SmallCallback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  post_at(now_ + delay, std::move(fn));
}

void Scheduler::mark_bucket(std::uint64_t abs, bool occupied) {
  const std::size_t slot = abs & kBucketMask;
  const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
  if (occupied) {
    occupied_[slot / 64] |= bit;
  } else {
    occupied_[slot / 64] &= ~bit;
  }
}

std::uint64_t Scheduler::next_ring_bucket() const {
  if (ring_count_ == 0) return kNoBucket;
  // Scan the occupancy bitmap cyclically starting at next_abs_bucket_'s
  // slot. Each occupied slot maps to exactly one absolute bucket inside the
  // window [next_abs_bucket_, next_abs_bucket_ + kBuckets).
  const std::size_t start = next_abs_bucket_ & kBucketMask;
  for (std::size_t scanned = 0; scanned < kBuckets;) {
    const std::size_t slot = (start + scanned) & kBucketMask;
    const std::size_t word = slot / 64;
    std::uint64_t bits = occupied_[word] >> (slot % 64);
    if (bits != 0) {
      const std::size_t offset =
          static_cast<std::size_t>(__builtin_ctzll(bits));
      const std::size_t hit = scanned + offset;
      if (hit >= kBuckets) break;  // wrapped past the window
      return next_abs_bucket_ + hit;
    }
    scanned += 64 - (slot % 64);  // jump to the next word boundary
  }
  return kNoBucket;  // unreachable while ring_count_ > 0, but be safe
}

bool Scheduler::refill_bottom() {
  if (bottom_pos_ < bottom_.size()) return true;
  bottom_.clear();
  bottom_pos_ = 0;

  const std::uint64_t rb = next_ring_bucket();
  const std::uint64_t ob =
      overflow_.empty() ? kNoBucket : bucket_of(overflow_.front().at);
  const std::uint64_t b = std::min(rb, ob);
  if (b == kNoBucket) return false;

  bool sorted = true;
  if (rb == b) {
    std::vector<Entry>& bucket = ring_[b & kBucketMask];
    ring_count_ -= bucket.size();
    mark_bucket(b, false);
    const std::size_t slot = b & kBucketMask;
    const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
    sorted = (unsorted_[slot / 64] & bit) == 0;
    unsorted_[slot / 64] &= ~bit;
    // Swap so the drained bucket inherits the bottom's capacity —
    // vectors circulate between the tiers instead of reallocating.
    bottom_.swap(bucket);
  }
  const bool had_ring_entries = !bottom_.empty();
  std::size_t pulled = 0;
  while (!overflow_.empty() && bucket_of(overflow_.front().at) == b) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    bottom_.push_back(std::move(overflow_.back()));
    overflow_.pop_back();
    ++pulled;
  }
  // Ring buckets track sortedness at insert time (most workloads append in
  // non-decreasing (at, seq) order, so promotion is sort-free); successive
  // pop_heap pulls arrive already ascending, but appending them after ring
  // entries interleaves two runs and forces the sort.
  if (pulled != 0 && had_ring_entries) sorted = false;
  if (!sorted) std::sort(bottom_.begin(), bottom_.end(), Earlier{});
  next_abs_bucket_ = b + 1;

  const auto& metrics = SchedulerMetrics::get();
  metrics.promotions.add(1);
  if (pulled != 0) metrics.overflow_pulls.add(pulled);
  return true;
}

std::optional<TimePoint> Scheduler::tier_lower_bound() const {
  std::optional<TimePoint> lb;
  const std::uint64_t rb = next_ring_bucket();
  if (rb != kNoBucket) {
    lb = TimePoint::from_ns(static_cast<std::int64_t>(rb << kBucketShiftNs));
  }
  if (!overflow_.empty() &&
      (!lb || overflow_.front().at < *lb)) {
    lb = overflow_.front().at;
  }
  return lb;
}

std::optional<TimePoint> Scheduler::next_event_time() {
  if (impl_ == QueueImpl::kHeap) {
    if (heap_.empty()) return std::nullopt;
    return heap_.front().at;
  }
  if (!refill_bottom()) return std::nullopt;
  return bottom_[bottom_pos_].at;
}

bool Scheduler::fire_one(bool tracing) {
  // Copy the entry out (40 trivially-copyable bytes): the callback may
  // schedule into the bottom tail and reallocate the vector under us. The
  // callable itself stays put — its pool cell is stable across any growth
  // the callback triggers — so it is invoked in place, never moved.
  const Entry e = bottom_[bottom_pos_++];
  if (e.block != 0 && !pool_->retire_was_alive(e.block - 1)) {
    cbpool_.release(e.cb);
    return false;  // cancelled while queued or staged in a batch
  }
  assert(e.at >= now_);
  now_ = e.at;
  ++executed_;
  if (tracing) {
    // The span covers the event's queue wait in simulated time: posted at
    // e.posted, fired at e.at.
    trace_->emit_span(e.posted, e.at - e.posted, "scheduler", "dispatch",
                      {{"seq", static_cast<std::int64_t>(e.seq)}});
  }
  (*e.cb)();
  cbpool_.release(e.cb);
  return true;
}

void Scheduler::note_batch(std::size_t fired) {
  ++batches_;
  const auto& metrics = SchedulerMetrics::get();
  metrics.batches.add(1);
  if (fired != 0) metrics.events.add(fired);
}

bool Scheduler::step() {
  if (impl_ == QueueImpl::kHeap) return heap_step();
  while (refill_bottom()) {
    const bool tracing = trace_ && trace_->enabled();
    if (fire_one(tracing)) return true;
  }
  return false;
}

std::size_t Scheduler::step_batch() {
  if (impl_ == QueueImpl::kHeap) {
    // The heap has no buckets; a "batch" degrades to one event.
    return heap_step() ? 1 : 0;
  }
  if (!refill_bottom()) return 0;
  BNM_PROF_SCOPE("scheduler.dispatch");
  const bool tracing = trace_ && trace_->enabled();
  const TimePoint batch_start = bottom_[bottom_pos_].at;
  std::size_t fired = 0;
  while (bottom_pos_ < bottom_.size()) {
    if (fire_one(tracing)) ++fired;
  }
  if (tracing) {
    trace_->emit_span(batch_start, now_ - batch_start, "scheduler", "batch",
                      {{"events", static_cast<std::int64_t>(fired)}});
  }
  note_batch(fired);
  return fired;
}

void Scheduler::run() {
  if (impl_ == QueueImpl::kHeap) {
    while (heap_step()) {
    }
    return;
  }
  // step_batch can legitimately fire 0 events (a fully-cancelled bucket);
  // refill_bottom is the emptiness test, not the fired count.
  while (refill_bottom()) step_batch();
}

void Scheduler::run_until(TimePoint deadline) {
  if (impl_ == QueueImpl::kHeap) {
    heap_run_until(deadline);
    return;
  }
  while (true) {
    if (bottom_pos_ < bottom_.size()) {
      BNM_PROF_SCOPE("scheduler.dispatch");
      const bool tracing = trace_ && trace_->enabled();
      std::size_t fired = 0;
      while (bottom_pos_ < bottom_.size() &&
             bottom_[bottom_pos_].at <= deadline) {
        if (fire_one(tracing)) ++fired;
      }
      note_batch(fired);
      if (bottom_pos_ < bottom_.size()) break;  // next event past deadline
      continue;
    }
    // Bottom exhausted: peek at the outer tiers before promoting, so a
    // deadline short of the next bucket costs nothing.
    const auto lb = tier_lower_bound();
    if (!lb || *lb > deadline) break;
    refill_bottom();
  }
  if (now_ < deadline) now_ = deadline;
}

std::size_t Scheduler::run_while(const bool& stop, TimePoint not_after,
                                 const RunLimits* limits) {
  std::size_t fired = 0;
  if (limits == nullptr) {
    // Default path: byte-for-byte the historical loop, no atomic loads.
    while (!stop) {
      if (now_ > not_after) break;
      if (!step()) break;
      ++fired;
    }
  } else {
    while (!stop) {
      if (now_ > not_after) break;
      if (limits->max_events != 0 && fired >= limits->max_events) break;
      if (limits->abort != nullptr &&
          limits->abort->load(std::memory_order_acquire)) {
        break;
      }
      if (!step()) break;
      ++fired;
    }
  }
  if (fired != 0) SchedulerMetrics::get().events.add(fired);
  return fired;
}

std::size_t Scheduler::pending_events() const {
  std::size_t live = 0;
  const auto count = [&](const Entry& e) {
    if (e.block == 0 || pool_->alive(e.block - 1)) ++live;
  };
  for (std::size_t i = bottom_pos_; i < bottom_.size(); ++i) count(bottom_[i]);
  for (const auto& bucket : ring_) {
    for (const Entry& e : bucket) count(e);
  }
  for (const Entry& e : overflow_) count(e);
  for (const Entry& e : heap_) count(e);
  return live;
}

void Scheduler::clear() {
  const auto drop = [&](Entry& e) {
    if (e.block != 0) pool_->retire(e.block - 1);
    cbpool_.release(e.cb);
  };
  for (std::size_t i = bottom_pos_; i < bottom_.size(); ++i) drop(bottom_[i]);
  bottom_.clear();
  bottom_pos_ = 0;
  for (auto& bucket : ring_) {
    for (Entry& e : bucket) drop(e);
    bucket.clear();
  }
  occupied_.fill(0);
  unsorted_.fill(0);
  ring_count_ = 0;
  for (Entry& e : overflow_) drop(e);
  overflow_.clear();
  for (Entry& e : heap_) drop(e);
  heap_.clear();
  // Re-anchor the ring at the current time so new near-future events use
  // the buckets instead of degenerating to sorted bottom inserts.
  next_abs_bucket_ = bucket_of(now_);
}

// ---- kHeap reference implementation ---------------------------------------

void Scheduler::heap_push(Entry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Scheduler::Entry Scheduler::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  return e;
}

bool Scheduler::heap_step() {
  BNM_PROF_SCOPE("scheduler.dispatch");
  while (!heap_.empty()) {
    const Entry e = heap_pop();
    if (e.block != 0 && !pool_->retire_was_alive(e.block - 1)) {
      cbpool_.release(e.cb);
      continue;  // skip dead entries
    }
    assert(e.at >= now_);
    now_ = e.at;
    ++executed_;
    if (trace_ && trace_->enabled()) {
      trace_->emit_span(e.posted, e.at - e.posted, "scheduler", "dispatch",
                        {{"seq", static_cast<std::int64_t>(e.seq)}});
    }
    (*e.cb)();
    cbpool_.release(e.cb);
    return true;
  }
  return false;
}

void Scheduler::heap_run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (top.block != 0 && !pool_->alive(top.block - 1)) {
      const Entry dead = heap_pop();
      pool_->retire(dead.block - 1);
      cbpool_.release(dead.cb);
      continue;
    }
    if (top.at > deadline) break;
    heap_step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace bnm::sim
