#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/prof.h"
#include "sim/trace.h"

namespace bnm::sim {

void EventHandle::cancel() {
  if (alive_) *alive_ = false;
}

bool EventHandle::pending() const { return alive_ && *alive_; }

std::shared_ptr<bool> Scheduler::acquire_block() {
  if (!free_blocks_.empty()) {
    std::shared_ptr<bool> block = std::move(free_blocks_.back());
    free_blocks_.pop_back();
    *block = true;
    return block;
  }
  return std::make_shared<bool>(true);
}

void Scheduler::release_block(std::shared_ptr<bool>&& block) {
  // Recycle only when no EventHandle still references the block; otherwise
  // the handle keeps it alive and it is freed when the handle dies.
  if (block.use_count() == 1) {
    free_blocks_.push_back(std::move(block));
  } else {
    block.reset();
  }
}

void Scheduler::push_entry(TimePoint at, SmallCallback fn,
                           std::shared_ptr<bool> alive) {
  if (at < now_) at = now_;  // never schedule into the past
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), std::move(alive), now_});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Scheduler::Entry Scheduler::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

EventHandle Scheduler::schedule_at(TimePoint at, SmallCallback fn) {
  assert(fn && "scheduling an empty callback");
  std::shared_ptr<bool> alive = acquire_block();
  EventHandle handle{alive};
  push_entry(at, std::move(fn), std::move(alive));
  return handle;
}

EventHandle Scheduler::schedule_after(Duration delay, SmallCallback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::post_at(TimePoint at, SmallCallback fn) {
  assert(fn && "scheduling an empty callback");
  push_entry(at, std::move(fn), nullptr);
}

void Scheduler::post_after(Duration delay, SmallCallback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  post_at(now_ + delay, std::move(fn));
}

bool Scheduler::step() {
  BNM_PROF_SCOPE("scheduler.dispatch");
  while (!heap_.empty()) {
    Entry e = pop_entry();
    if (e.alive && !*e.alive) {
      release_block(std::move(e.alive));
      continue;  // skip dead entries
    }
    assert(e.at >= now_);
    now_ = e.at;
    if (e.alive) {
      *e.alive = false;  // fired; handle reports !pending()
      release_block(std::move(e.alive));
    }
    ++executed_;
    if (trace_ && trace_->enabled()) {
      // The span covers the event's queue wait in simulated time: posted at
      // e.posted, fired at e.at.
      trace_->emit_span(e.posted, e.at - e.posted, "scheduler", "dispatch",
                        {{"seq", static_cast<std::int64_t>(e.seq)}});
    }
    e.fn();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (top.alive && !*top.alive) {
      Entry dead = pop_entry();
      release_block(std::move(dead.alive));
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

std::size_t Scheduler::pending_events() const {
  std::size_t live = 0;
  for (const Entry& e : heap_) {
    if (!e.alive || *e.alive) ++live;
  }
  return live;
}

void Scheduler::clear() {
  for (Entry& e : heap_) {
    if (e.alive) {
      *e.alive = false;  // outstanding handles must report !pending()
      release_block(std::move(e.alive));
    }
  }
  heap_.clear();
}

}  // namespace bnm::sim
