#include "sim/random.h"

#include <cmath>
#include <numbers>

namespace bnm::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a 64-bit, used to mix fork labels into the seed stream.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

std::uint64_t Rng::splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  // Seed expansion per the xoshiro authors' recommendation.
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

Rng Rng::fork(std::string_view label) const {
  std::uint64_t x = s_[0] ^ rotl(s_[3], 23) ^ fnv1a(label);
  std::array<std::uint64_t, 4> st;
  for (auto& w : st) w = splitmix64(x);
  return Rng{st};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 random bits into the mantissa -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny next to 2^64 for all
  // call sites, so the bias is immeasurable; determinism is what matters.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller. Guard u1 away from 0 so log() is finite.
  double u1 = uniform01();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal_med(double median, double sigma) {
  return median * std::exp(normal(0.0, sigma));
}

double Rng::exponential(double mean) {
  double u = uniform01();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform01() < p; }

Duration Rng::uniform_ms(double lo_ms, double hi_ms) {
  return Duration::from_millis_f(uniform(lo_ms, hi_ms));
}

Duration Rng::normal_ms(double mean_ms, double stddev_ms) {
  return Duration::from_millis_f(normal(mean_ms, stddev_ms));
}

Duration Rng::lognormal_med_ms(double median_ms, double sigma) {
  return Duration::from_millis_f(lognormal_med(median_ms, sigma));
}

Duration Rng::exponential_ms(double mean_ms) {
  return Duration::from_millis_f(exponential(mean_ms));
}

}  // namespace bnm::sim
