// Simulated-time primitives for the bnm discrete-event testbed.
//
// All simulation time is kept in integer nanoseconds. Two strong types are
// provided so that instants and intervals cannot be mixed accidentally:
//
//   Duration  -- a signed length of time (may be negative, e.g. a delay
//                overhead computed from quantized clocks).
//   TimePoint -- an instant on the simulation timeline, measured from the
//                simulation epoch (t = 0 at Scheduler construction).
//
// The types are trivially copyable value types with the usual arithmetic,
// plus factory helpers (seconds/millis/micros/nanos) and human-readable
// formatting used throughout reports and traces.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace bnm::sim {

/// A signed span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors; fractional arguments are rounded to the nearest ns.
  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  static constexpr Duration minutes(std::int64_t m) { return seconds(m * 60); }
  static Duration from_millis_f(double ms);
  static Duration from_seconds_f(double s);

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us_f() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms_f() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double s_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  constexpr auto operator<=>(const Duration&) const = default;

  /// Scale by a real factor (used by bandwidth/serialization math).
  Duration scaled(double f) const;

  /// Round down to an integer multiple of `granule` (clock quantization).
  constexpr Duration quantized_floor(Duration granule) const {
    if (granule.ns_ <= 1) return *this;
    std::int64_t q = ns_ / granule.ns_;
    if (ns_ < 0 && ns_ % granule.ns_ != 0) --q;  // floor, not trunc
    return Duration{q * granule.ns_};
  }

  /// e.g. "50ms", "1.234ms", "750ns", "-3.125ms".
  std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

/// An instant on the simulated timeline.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint epoch() { return TimePoint{}; }
  static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint{ns}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns_since_epoch() const { return ns_; }
  constexpr double ms_since_epoch_f() const {
    return static_cast<double>(ns_) / 1e6;
  }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanos(ns_ - o.ns_); }
  TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  /// Floor to a multiple of `granule` since the epoch — models a coarse
  /// system clock that only advances in `granule` ticks.
  constexpr TimePoint quantized_floor(Duration granule) const {
    return TimePoint{(*this - epoch()).quantized_floor(granule).ns()};
  }

  std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

}  // namespace bnm::sim
