// Per-simulation monotonic bump arena for the packet hot path.
//
// One simulated packet hop used to cost several trips through the global
// allocator (payload control blocks, staging queue nodes, capture growth).
// An Arena replaces those with pointer bumps into chunked slabs: allocation
// is O(1) and contention-free, deallocation is deferred wholesale to
// reset() (between runs) or destruction. The allocator never reclaims an
// individual object — that is the contract that makes it cheap, and it fits
// the simulator exactly: everything allocated while a simulation runs dies
// with its Testbed, strictly before the arena is reset or destroyed.
//
// Threading model: an Arena is single-thread-confined, like the Simulation
// that owns it. Code opts in through a thread-local "current arena"
// installed with ArenaScope; allocation sites (Payload buffers,
// ArenaAllocator-backed containers) consult Arena::current() and fall back
// to the global allocator when no scope is active, so every component works
// identically — bit for bit — with the arena on or off. core::run_matrix
// gives each worker thread a private arena, reset between cells, so
// parallel matrix shards never touch the global allocator on the packet
// path and never contend with each other.
//
// Stats: each arena keeps cheap per-instance counters (always on). The
// process-wide aggregate (ArenaStats, used by bench/perf_matrix) is only
// maintained when compiled with BNM_ARENA_STATS (a CMake option, on by
// default in this repo); without it the accessors report zero.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace bnm::sim {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `size` bytes aligned to `align`. Never returns nullptr
  /// (chunks grow on demand; an oversized request gets a dedicated chunk).
  void* allocate(std::size_t size,
                 std::size_t align = alignof(std::max_align_t));

  /// Rewind to empty, retaining every chunk for reuse. All memory handed
  /// out since the last reset must be dead: the caller guarantees no
  /// Payload, container node or staged packet allocated from this arena is
  /// still alive (in the matrix runner that holds because each cell's
  /// Testbed is destroyed before the worker resets).
  void reset();

  // ---- per-arena counters (always on; plain increments on the owning
  // ---- thread, so they cost nothing measurable) ----
  std::uint64_t allocations() const { return allocations_; }  ///< lifetime
  std::uint64_t bytes_served() const { return bytes_served_; }  ///< lifetime
  std::size_t bytes_in_use() const { return in_use_; }  ///< since reset()
  std::size_t peak_bytes() const { return peak_; }      ///< lifetime high-water
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t bytes_reserved() const;  ///< sum of chunk capacities

  /// The calling thread's active arena (nullptr when none, or when arenas
  /// are globally disabled).
  static Arena* current();

  /// Process-wide kill switch for A/B comparisons (bit-identity tests,
  /// bench/perf_matrix's arena-off reference pass). Scopes installed while
  /// disabled are ignored; existing arena-backed objects stay valid.
  static void set_enabled(bool on);
  static bool enabled();

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> base;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  /// Make room for `size` bytes: reuse the next retained chunk or grow.
  void add_chunk(std::size_t min_size);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< index of the chunk currently bumped
  std::size_t chunk_bytes_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t bytes_served_ = 0;
};

/// RAII installer for the thread-local current arena. Passing nullptr keeps
/// whatever is already installed (a no-op scope) — callers that want
/// "install mine unless an outer scope is active" pass
/// `Arena::current() ? nullptr : &mine`.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  explicit ArenaScope(Arena& arena) : ArenaScope(&arena) {}
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
  bool installed_;
};

/// Process-wide aggregate of arena service, for the bench harness. Only
/// counted when compiled with BNM_ARENA_STATS; otherwise everything reads 0.
struct ArenaStats {
  /// Allocation calls served by any arena (== global-allocator round trips
  /// avoided on the hot path).
  static std::uint64_t allocations();
  /// Bytes served by any arena.
  static std::uint64_t bytes();
  /// Largest bytes_in_use() any single arena reached.
  static std::uint64_t peak_arena_bytes();
  static void reset();
  /// True when the library was compiled with BNM_ARENA_STATS.
  static bool compiled_in();
};

/// Minimal std::allocator replacement that serves from the arena captured
/// at construction (Arena::current() by default) and falls back to the
/// global allocator when none was active. deallocate() is a no-op for
/// arena-served memory — containers using this allocator must die before
/// their arena resets. Intended for the simulator's per-connection /
/// per-stage containers (TCP send/reassembly/retransmit queues, netem and
/// fault staging), whose lifetime is bounded by the owning Testbed.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept : arena_{Arena::current()} {}
  explicit ArenaAllocator(Arena* arena) noexcept : arena_{arena} {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_{other.arena()} {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace bnm::sim
