// Discrete-event scheduler: the heartbeat of the testbed.
//
// Components schedule closures to run at simulated instants. Events at the
// same instant execute in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run fully deterministic.
//
// Cancellation is supported through EventHandle tokens — cancelling marks
// the queue entry dead; the entry is skipped (and freed) when it surfaces.
//
// Hot-path design: entries store a SmallCallback (no heap allocation for
// typical closures), the heap is an explicit std::vector (entries are moved
// out, never copied out as std::priority_queue forces), and the per-event
// liveness control blocks are recycled through a free list once their last
// handle is gone. Fire-and-forget work should use post_at()/post_after(),
// which skip the control block entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace bnm::sim {

class Trace;

/// A cancellation token for a scheduled event. Default-constructed handles
/// are inert. Handles are cheap to copy; cancelling any copy cancels the
/// event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel();
  /// True if the event is still waiting to fire.
  bool pending() const;

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_{std::move(alive)} {}
  std::shared_ptr<bool> alive_;
};

/// Binary-heap event queue with deterministic same-instant ordering.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Advances only inside run()/step().
  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(TimePoint at, SmallCallback fn);
  /// Schedule `fn` to run `delay` after now(). Negative delays clamp to 0.
  EventHandle schedule_after(Duration delay, SmallCallback fn);

  /// Fire-and-forget variants: no cancellation handle, no control-block
  /// allocation. Prefer these on hot paths that never cancel.
  void post_at(TimePoint at, SmallCallback fn);
  void post_after(Duration delay, SmallCallback fn);

  /// Execute the next pending event; returns false if the queue is empty.
  bool step();
  /// Run until the queue drains.
  void run();
  /// Run until the queue drains or simulated time would exceed `deadline`.
  /// Events past the deadline stay queued.
  void run_until(TimePoint deadline);

  /// Number of live (non-cancelled) events still queued.
  std::size_t pending_events() const;
  /// Total events executed so far (for micro-benchmarks and tests).
  std::uint64_t executed_events() const { return executed_; }

  /// Control blocks currently parked for reuse (observability for the
  /// substrate micro-benchmarks).
  std::size_t pooled_control_blocks() const { return free_blocks_.size(); }

  /// Drop every queued event (used between experiment repetitions).
  /// Outstanding handles for dropped events report !pending().
  void clear();

  /// Attach a trace (owned elsewhere, e.g. the Simulation): when it is
  /// enabled, step() emits a "dispatch" span per event covering its queue
  /// wait [posted, fired) in simulated time.
  void set_trace(Trace* trace) { trace_ = trace; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    SmallCallback fn;
    std::shared_ptr<bool> alive;  ///< null => fire-and-forget (always live)
    TimePoint posted;             ///< when the entry was queued
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void push_entry(TimePoint at, SmallCallback fn, std::shared_ptr<bool> alive);
  std::shared_ptr<bool> acquire_block();
  void release_block(std::shared_ptr<bool>&& block);
  /// Pop the earliest entry off the heap (caller owns the result).
  Entry pop_entry();

  std::vector<Entry> heap_;
  std::vector<std::shared_ptr<bool>> free_blocks_;
  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  Trace* trace_ = nullptr;
};

}  // namespace bnm::sim
