// Discrete-event scheduler: the heartbeat of the testbed.
//
// Components schedule closures to run at simulated instants. Events at the
// same instant execute in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run fully deterministic.
//
// Cancellation is supported through EventHandle tokens — cancelling marks
// the queue entry dead; the entry is skipped (and freed) when it surfaces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.h"

namespace bnm::sim {

/// A cancellation token for a scheduled event. Default-constructed handles
/// are inert. Handles are cheap to copy; cancelling any copy cancels the
/// event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel();
  /// True if the event is still waiting to fire.
  bool pending() const;

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_{std::move(alive)} {}
  std::shared_ptr<bool> alive_;
};

/// Binary-heap event queue with deterministic same-instant ordering.
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Advances only inside run()/step().
  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(TimePoint at, std::function<void()> fn);
  /// Schedule `fn` to run `delay` after now(). Negative delays clamp to 0.
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Execute the next pending event; returns false if the queue is empty.
  bool step();
  /// Run until the queue drains.
  void run();
  /// Run until the queue drains or simulated time would exceed `deadline`.
  /// Events past the deadline stay queued.
  void run_until(TimePoint deadline);

  /// Number of live (non-cancelled) events still queued.
  std::size_t pending_events() const;
  /// Total events executed so far (for micro-benchmarks and tests).
  std::uint64_t executed_events() const { return executed_; }

  /// Drop every queued event (used between experiment repetitions).
  void clear();

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t cancelled_in_queue_ = 0;
};

}  // namespace bnm::sim
