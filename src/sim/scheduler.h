// Discrete-event scheduler: the heartbeat of the testbed.
//
// Components schedule closures to run at simulated instants. Events at the
// same instant execute in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run fully deterministic.
//
// Cancellation is supported through EventHandle tokens — cancelling marks
// the pooled control block dead; the entry is skipped (and its block
// recycled) when it surfaces.
//
// Queue layout (QueueImpl::kCalendar, the default): a two-tier
// calendar/ladder queue.
//
//   * bottom   — the bucket currently being fired, sorted by (at, seq).
//                Dispatch is an index increment; nested schedules landing
//                inside the bottom's time range are merge-inserted into the
//                un-fired tail, preserving the total order.
//   * ring     — kBuckets near-future buckets of width 2^kBucketShiftNs ns,
//                indexed by the quantized TimePoint. Insertion is an
//                unsorted append; a bucket is sorted once, when it is
//                promoted to become the bottom. A 256-bit occupancy bitmap
//                makes find-next-bucket a handful of word scans.
//   * overflow — binary min-heap for events beyond the ring horizon.
//                Entries migrate into the ring lazily: when their bucket is
//                promoted (epoch advance), never before.
//
// The old binary heap survives as QueueImpl::kHeap, a bit-identical
// reference implementation: bench/perf_matrix runs the full experiment
// matrix under both and fails if a single sample differs.
//
// Hot-path costs: schedule_*/post_* are a bucket append plus (for the
// cancellable path) a pooled control-block acquisition — no heap allocation
// in steady state (tests/test_kernel_alloc.cpp asserts this with an
// operator-new hook). run() fires whole buckets per batch with the
// trace/profiling guards hoisted out of the per-event loop.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace bnm::sim {

class Trace;

namespace detail {

/// Pool of event liveness/generation slots. Chunked so slot addresses are
/// stable; recycled slots bump their generation, which instantly
/// invalidates any stale EventHandle without freeing memory. Intrusively
/// refcounted (non-atomic — a Scheduler and its handles live on one thread
/// by contract) so handles that outlive their Scheduler stay safe: they
/// keep the pool alive and, like the old shared_ptr<bool> tokens, report
/// pending() for events their dead scheduler never fired.
class ControlBlockPool {
 public:
  void add_ref() { ++refs_; }
  void release() {
    if (--refs_ == 0) delete this;
  }
  /// Take a free slot (alive, current generation — written to `gen`).
  /// Allocates a new chunk only when the pool is exhausted — steady state
  /// is allocation-free.
  std::uint32_t acquire(std::uint32_t& gen);
  /// Entry surfaced (fired, dead or cleared): invalidate outstanding
  /// handles and recycle the slot.
  void retire(std::uint32_t idx);
  /// retire() fused with the liveness read the dispatch loop needs —
  /// one slot lookup instead of two. Returns whether the event was still
  /// alive (i.e. not cancelled) at retirement.
  bool retire_was_alive(std::uint32_t idx) {
    Slot& s = slot(idx);
    const bool was_alive = s.alive;
    ++s.gen;
    s.alive = false;
    free_.push_back(idx);
    return was_alive;
  }

  void cancel(std::uint32_t idx, std::uint32_t gen) {
    Slot& s = slot(idx);
    if (s.gen == gen) s.alive = false;
  }
  bool pending(std::uint32_t idx, std::uint32_t gen) const {
    const Slot& s = slot(idx);
    return s.gen == gen && s.alive;
  }
  bool alive(std::uint32_t idx) const { return slot(idx).alive; }
  std::uint32_t generation(std::uint32_t idx) const { return slot(idx).gen; }
  std::size_t free_count() const { return free_.size(); }

 private:
  struct Slot {
    std::uint32_t gen = 0;
    bool alive = false;
  };
  static constexpr std::size_t kChunkSlots = 256;

  Slot& slot(std::uint32_t i) {
    return chunks_[i / kChunkSlots][i % kChunkSlots];
  }
  const Slot& slot(std::uint32_t i) const {
    return chunks_[i / kChunkSlots][i % kChunkSlots];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t size_ = 0;
  std::uint32_t refs_ = 1;  ///< creator's reference
};

/// Chunk-stable pool of SmallCallback cells. Queue entries reference their
/// callable by pointer, which keeps an Entry at ~40 trivially-copyable
/// bytes: bucket pushes, promotions and sorts move small PODs instead of
/// memcpy'ing 64-byte closure buffers, and dispatch can invoke the callable
/// in place — cells never move, even when the callback's own scheduling
/// grows the pool or reshapes the queue tiers.
class CallbackPool {
 public:
  SmallCallback* acquire(SmallCallback&& fn) {
    if (free_.empty()) grow();
    SmallCallback* cell = free_.back();
    free_.pop_back();
    *cell = std::move(fn);
    return cell;
  }
  /// Destroy the cell's callable (if any) and park the cell for reuse.
  /// Never allocates: grow() pre-reserves the free list.
  void release(SmallCallback* cell) {
    *cell = SmallCallback{};
    free_.push_back(cell);
  }

 private:
  static constexpr std::size_t kChunkCells = 256;
  void grow();
  std::vector<std::unique_ptr<SmallCallback[]>> chunks_;
  std::vector<SmallCallback*> free_;
};

}  // namespace detail

/// A cancellation token for a scheduled event. Default-constructed handles
/// are inert. Handles are cheap to copy (one refcount bump, no allocation);
/// cancelling any copy cancels the event.
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(const EventHandle& o) : pool_{o.pool_}, idx_{o.idx_}, gen_{o.gen_} {
    if (pool_) pool_->add_ref();
  }
  EventHandle(EventHandle&& o) noexcept
      : pool_{o.pool_}, idx_{o.idx_}, gen_{o.gen_} {
    o.pool_ = nullptr;
  }
  EventHandle& operator=(const EventHandle& o) {
    if (this != &o) {
      if (o.pool_) o.pool_->add_ref();
      if (pool_) pool_->release();
      pool_ = o.pool_;
      idx_ = o.idx_;
      gen_ = o.gen_;
    }
    return *this;
  }
  EventHandle& operator=(EventHandle&& o) noexcept {
    if (this != &o) {
      if (pool_) pool_->release();
      pool_ = o.pool_;
      idx_ = o.idx_;
      gen_ = o.gen_;
      o.pool_ = nullptr;
    }
    return *this;
  }
  ~EventHandle() {
    if (pool_) pool_->release();
  }

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() {
    if (pool_) pool_->cancel(idx_, gen_);
  }
  /// True if the event is still waiting to fire.
  bool pending() const { return pool_ && pool_->pending(idx_, gen_); }

 private:
  friend class Scheduler;
  EventHandle(detail::ControlBlockPool* pool, std::uint32_t idx,
              std::uint32_t gen)
      : pool_{pool}, idx_{idx}, gen_{gen} {
    pool_->add_ref();
  }
  detail::ControlBlockPool* pool_ = nullptr;
  std::uint32_t idx_ = 0;
  std::uint32_t gen_ = 0;
};

/// Calendar-queue event scheduler with deterministic same-instant ordering.
class Scheduler {
 public:
  /// Queue implementation selector: the calendar queue is the production
  /// kernel; the binary heap is kept as the A/B reference (bit-identity
  /// gated in bench/perf_matrix and scripts/check.sh).
  enum class QueueImpl : std::uint8_t { kCalendar, kHeap };

  /// Process-wide default for new Schedulers (like Arena::set_enabled, a
  /// bench/test A/B knob — flip it only at quiescent points).
  static void set_default_impl(QueueImpl impl);
  static QueueImpl default_impl();

  Scheduler() : Scheduler(default_impl()) {}
  explicit Scheduler(QueueImpl impl);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  QueueImpl impl() const { return impl_; }

  /// Current simulated time. Advances only inside run()/step().
  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(TimePoint at, SmallCallback fn);
  /// Schedule `fn` to run `delay` after now(). Negative delays clamp to 0.
  EventHandle schedule_after(Duration delay, SmallCallback fn);

  /// Fire-and-forget variants: no cancellation handle, no control block.
  /// Prefer these on hot paths that never cancel.
  void post_at(TimePoint at, SmallCallback fn);
  void post_after(Duration delay, SmallCallback fn);

  /// Execute the next pending event; returns false if the queue is empty.
  bool step();
  /// Batched dispatch: fire every remaining event of the current bucket
  /// (promoting the next one if none is active) without re-touching the
  /// queue tiers per event. Trace/profiling guards are evaluated once per
  /// batch. Returns the number of events fired (0 == queue empty).
  std::size_t step_batch();
  /// Run until the queue drains (batched internally).
  void run();
  /// Run until the queue drains or simulated time would exceed `deadline`.
  /// Events past the deadline stay queued.
  void run_until(TimePoint deadline);
  /// Cooperative limits for a run_while drive. Both knobs are optional and
  /// owned by the caller (the matrix runner's per-cell watchdog): `abort` is
  /// set from another thread when the cell's wall-clock deadline expires,
  /// `max_events` caps how many events this call may fire (a simulated-event
  /// budget against runaway event loops). Passing nullptr to run_while keeps
  /// the historical zero-overhead loop — no atomic loads on the default path.
  struct RunLimits {
    const std::atomic<bool>* abort = nullptr;
    std::uint64_t max_events = 0;  ///< 0 = unlimited
  };

  /// Drive events one at a time while `stop` is false and now() has not
  /// passed `not_after` — the experiment completion loop, with the checks
  /// evaluated before each event exactly like the historical
  /// `while (!done && now() <= deadline && step())`. Returns events fired.
  /// With `limits`, the loop additionally stops when the abort flag is set
  /// or the event budget for this call is exhausted (the caller inspects
  /// its watchdog/budget state to tell those apart from completion).
  std::size_t run_while(const bool& stop, TimePoint not_after,
                        const RunLimits* limits = nullptr);

  /// Earliest pending event's time (dead entries count — conservative), or
  /// nullopt when empty. May promote a bucket internally; the observable
  /// state (ordering, now()) is unchanged. Used by the DomainScheduler to
  /// compute conservative lookahead windows.
  std::optional<TimePoint> next_event_time();

  /// Number of live (non-cancelled) events still queued.
  std::size_t pending_events() const;
  /// Total events executed so far (for micro-benchmarks and tests).
  std::uint64_t executed_events() const { return executed_; }
  /// Batches fired by run()/step_batch() so far.
  std::uint64_t executed_batches() const { return batches_; }

  /// Control-block slots currently parked for reuse (observability for the
  /// substrate micro-benchmarks).
  std::size_t pooled_control_blocks() const { return pool_->free_count(); }

  /// Drop every queued event (used between experiment repetitions).
  /// Outstanding handles for dropped events report !pending().
  void clear();

  /// Attach a trace (owned elsewhere, e.g. the Simulation): when it is
  /// enabled, dispatch emits a "dispatch" span per event covering its queue
  /// wait [posted, fired) in simulated time, plus one "batch" span per
  /// fired batch.
  void set_trace(Trace* trace) { trace_ = trace; }

  // ---- calendar geometry (exposed for tests) ----
  /// Bucket width is 2^kBucketShiftNs ns (65.536 us); the ring covers
  /// kBuckets * width (~16.8 ms) of near future beyond the active bucket.
  static constexpr unsigned kBucketShiftNs = 16;
  static constexpr std::size_t kBuckets = 256;
  static constexpr Duration bucket_width() {
    return Duration::nanos(std::int64_t{1} << kBucketShiftNs);
  }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    SmallCallback* cb;    ///< cell in cbpool_ (stable address)
    std::uint32_t block;  ///< pool slot + 1; 0 == fire-and-forget
    TimePoint posted;     ///< when the entry was queued
  };
  struct Later {  // max-heap comparator -> min (at, seq) at front
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Earlier {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };

  static constexpr std::size_t kBucketMask = kBuckets - 1;
  static constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

  static std::uint64_t bucket_of(TimePoint at) {
    return static_cast<std::uint64_t>(at.ns_since_epoch()) >> kBucketShiftNs;
  }

  void push_entry(TimePoint at, SmallCallback fn, std::uint32_t block);
  /// Fire (or discard, if cancelled) the next bottom entry. Returns true
  /// if a live event ran. Caller guarantees bottom_pos_ < bottom_.size().
  bool fire_one(bool tracing);
  /// Ensure the bottom holds un-fired entries; promotes the next bucket
  /// (ring or overflow) when exhausted. False when the queue is empty.
  bool refill_bottom();
  /// Earliest possible time of any event outside the bottom (bucket lower
  /// bound for ring entries — cheap, conservative), or nullopt.
  std::optional<TimePoint> tier_lower_bound() const;
  std::uint64_t next_ring_bucket() const;  ///< abs index or kNoBucket
  void mark_bucket(std::uint64_t abs, bool occupied);
  void note_batch(std::size_t fired);

  // ---- kHeap reference implementation ----
  void heap_push(Entry entry);
  Entry heap_pop();
  bool heap_step();
  void heap_run_until(TimePoint deadline);

  QueueImpl impl_;
  detail::ControlBlockPool* pool_;
  detail::CallbackPool cbpool_;

  // Calendar tiers.
  std::vector<Entry> bottom_;
  std::size_t bottom_pos_ = 0;
  std::array<std::vector<Entry>, kBuckets> ring_;
  std::array<std::uint64_t, kBuckets / 64> occupied_{};
  /// Bit set when a ring bucket received an out-of-order entry; a clear bit
  /// means the bucket is already (at, seq)-sorted at promotion time and the
  /// sort is skipped entirely.
  std::array<std::uint64_t, kBuckets / 64> unsorted_{};
  std::size_t ring_count_ = 0;
  std::uint64_t next_abs_bucket_ = 0;  ///< first un-promoted bucket index
  std::vector<Entry> overflow_;        ///< heap, Later{}

  // kHeap tier.
  std::vector<Entry> heap_;

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t batches_ = 0;
  Trace* trace_ = nullptr;
};

}  // namespace bnm::sim
