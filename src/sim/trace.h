// Structured trace log for the testbed.
//
// Components emit records carrying a simulated timestamp, a component
// label, a message, an event kind (instant or span), an optional duration
// (spans), and typed key/value attributes. Tests and diagnostic tools
// inspect them in-process; obs::trace (src/obs/trace_export.h) exports a
// whole trace to JSON-lines or Chrome trace_event format for Perfetto.
// Tracing is off by default so experiment hot paths pay one branch.
//
// Event vocabulary and the export formats are documented in
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "sim/time.h"

namespace bnm::sim {

enum class TraceEventKind : std::uint8_t {
  kInstant,  ///< a point event ("packet dropped")
  kSpan,     ///< a region with a duration ("scheduler dispatch", "link hop")
};

/// One typed key/value annotation on a record.
struct TraceAttr {
  std::string key;
  std::variant<std::string, std::int64_t, double, bool> value;
};

struct TraceRecord {
  TimePoint at;
  std::string component;
  std::string message;
  TraceEventKind kind = TraceEventKind::kInstant;
  Duration duration = Duration::zero();  ///< spans only
  std::vector<TraceAttr> attrs;

  /// Attribute value by key, or nullptr.
  const TraceAttr* attr(std::string_view key) const;
};

class Trace;

/// Non-owning filtered view over a Trace: a list of record indexes produced
/// by the trace's component/attribute indexes. No records are copied, and
/// membership checks use the index rather than a full scan. Invalidated by
/// emit/clear on the underlying trace, like any iterator.
class TraceView {
 public:
  std::size_t size() const { return idx_.size(); }
  bool empty() const { return idx_.empty(); }
  const TraceRecord& operator[](std::size_t i) const;
  /// True if any record in the view's message contains `needle`.
  bool contains(std::string_view needle) const;

  class iterator {
   public:
    iterator(const Trace* t, const std::size_t* p) : trace_{t}, pos_{p} {}
    const TraceRecord& operator*() const;
    iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return pos_ != o.pos_; }

   private:
    const Trace* trace_;
    const std::size_t* pos_;
  };
  iterator begin() const;
  iterator end() const;

 private:
  friend class Trace;
  TraceView(const Trace* trace, std::vector<std::size_t> idx)
      : trace_{trace}, idx_{std::move(idx)} {}
  const Trace* trace_;
  std::vector<std::size_t> idx_;
};

/// Collects trace records; optionally mirrors them to a sink callback.
class Trace {
 public:
  /// Enable/disable collection. Disabled traces drop records.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Mirror each record to `sink` as it is emitted (e.g. print to stderr).
  void set_sink(std::function<void(const TraceRecord&)> sink) {
    sink_ = std::move(sink);
  }

  /// Legacy entry point: an instant event with no attributes.
  void emit(TimePoint at, std::string component, std::string message);

  /// A point event with attributes.
  void emit_instant(TimePoint at, std::string component, std::string message,
                    std::vector<TraceAttr> attrs = {});

  /// A region [at, at + duration) in simulated time, with attributes.
  void emit_span(TimePoint at, Duration duration, std::string component,
                 std::string message, std::vector<TraceAttr> attrs = {});

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear();

  /// Index-backed view of records whose component matches exactly. O(1)
  /// lookup, no copies; invalidated by emit/clear.
  TraceView view_by_component(const std::string& component) const;
  /// Index-backed view of records carrying attribute `key` (any value).
  TraceView view_by_attr(const std::string& key) const;

  /// True if any record's message contains `needle`.
  bool contains(const std::string& needle) const;

 private:
  void push(TraceRecord rec);

  bool enabled_ = false;
  std::function<void(const TraceRecord&)> sink_;
  std::vector<TraceRecord> records_;
  // Built as records are emitted (emission is already the slow, opt-in
  // path); queries never scan the record list.
  std::unordered_map<std::string, std::vector<std::size_t>> by_component_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_attr_key_;
};

}  // namespace bnm::sim
