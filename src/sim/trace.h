// Lightweight structured trace log for the testbed.
//
// Components emit (time, component, message) records; tests and diagnostic
// tools inspect them, and examples can stream them to stderr. Tracing is
// off by default so experiment hot paths pay one branch.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace bnm::sim {

struct TraceRecord {
  TimePoint at;
  std::string component;
  std::string message;
};

/// Collects trace records; optionally mirrors them to a sink callback.
class Trace {
 public:
  /// Enable/disable collection. Disabled traces drop records.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Mirror each record to `sink` as it is emitted (e.g. print to stderr).
  void set_sink(std::function<void(const TraceRecord&)> sink) {
    sink_ = std::move(sink);
  }

  void emit(TimePoint at, std::string component, std::string message);

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Records whose component matches `component` exactly.
  std::vector<TraceRecord> by_component(const std::string& component) const;
  /// True if any record's message contains `needle`.
  bool contains(const std::string& needle) const;

 private:
  bool enabled_ = false;
  std::function<void(const TraceRecord&)> sink_;
  std::vector<TraceRecord> records_;
};

}  // namespace bnm::sim
