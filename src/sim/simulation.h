// Simulation context: bundles the scheduler, root RNG and trace log that a
// testbed shares. Components hold a Simulation& and never own global state,
// so many independent simulations can coexist in one process (gtest shards,
// google-benchmark iterations, parameter sweeps).
#pragma once

#include "sim/random.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace bnm::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : root_rng_{seed} {}

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  Trace& trace() { return trace_; }

  TimePoint now() const { return scheduler_.now(); }

  /// Independent RNG stream for a named component.
  Rng rng_for(std::string_view label) const { return root_rng_.fork(label); }

 private:
  Scheduler scheduler_;
  Rng root_rng_;
  Trace trace_;
};

}  // namespace bnm::sim
