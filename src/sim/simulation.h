// Simulation context: bundles the scheduler, root RNG and trace log that a
// testbed shares. Components hold a Simulation& and never own global state,
// so many independent simulations can coexist in one process (gtest shards,
// google-benchmark iterations, parameter sweeps).
#pragma once

#include "sim/arena.h"
#include "sim/random.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace bnm::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : root_rng_{seed} {
    // Dispatch spans ("scheduler"/"dispatch") fire only while the trace is
    // enabled; wiring the pointer up front costs nothing otherwise.
    scheduler_.set_trace(&trace_);
  }

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  Trace& trace() { return trace_; }

  /// The simulation's bump arena (see sim/arena.h). Components and Payload
  /// buffers allocate from it while an ArenaScope over it is installed
  /// (core::Experiment::run does this; the matrix runner substitutes
  /// per-worker arenas). Lazily chunked: costs nothing if never scoped.
  Arena& arena() { return arena_; }

  TimePoint now() const { return scheduler_.now(); }

  /// Independent RNG stream for a named component.
  Rng rng_for(std::string_view label) const { return root_rng_.fork(label); }

 private:
  // Declared first so it is destroyed last: pending scheduler entries can
  // hold arena-backed state (payload views, staged packets) until the
  // scheduler itself is torn down.
  Arena arena_;
  Scheduler scheduler_;
  Rng root_rng_;
  Trace trace_;
};

}  // namespace bnm::sim
