// Conservative parallel DES: lookahead-partitioned domains.
//
// A multi-host topology is split into *domains*, each owning a full
// Simulation (scheduler, RNG, trace, arena). Domains only interact through
// *channels* — directed mailboxes with a declared minimum latency, the
// link-level lookahead (for a cross-domain link, its propagation delay).
// Because any cross-domain effect is at least `lookahead` in the future,
// every domain can safely advance through the window
//
//     [t_min, t_min + lookahead)
//
// where t_min is the earliest pending event across all domains, without
// ever seeing an event out of order (INET/NS-style conservative null-free
// synchronization with a global window). Rounds proceed:
//
//   1. t_min = min over domains of next_event_time()
//   2. every domain runs run_until(t_min + L - 1ns)   [parallel or serial]
//   3. mailboxes flush: each message becomes a post_at() in its
//      destination domain (delivery >= t_min + L by construction)
//
// Determinism: domains share no mutable state, so each domain's execution
// is a function of its own event stream; mailboxes flush in channel-id
// order and FIFO within a channel, so destination sequence numbers are
// assigned identically on every run — threaded or serial, any core count.
// The serial driver runs the *same* windowed protocol one domain at a
// time, which is what makes the parallel run bit-identical to it (and to
// a monolithic single-Simulation run of the same topology, provided every
// component draws its RNG stream by the same label — see
// tests/test_kernel_domain.cpp).
//
// Fallback: with zero lookahead (no channels declare latency), one domain,
// or a single-core host, run_until degrades to the serial driver — same
// results, no threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace bnm::sim {

class Simulation;

class DomainScheduler {
 public:
  enum class Mode {
    kAuto,     ///< threads when lookahead > 0 and hardware allows
    kSerial,   ///< always the serial driver (same protocol, same results)
    kThreads,  ///< force worker threads even on one core (for tests)
  };

  using DomainId = std::size_t;
  using ChannelId = std::size_t;

  explicit DomainScheduler(Mode mode = Mode::kAuto);
  ~DomainScheduler();
  DomainScheduler(const DomainScheduler&) = delete;
  DomainScheduler& operator=(const DomainScheduler&) = delete;

  /// Register a partition. The Simulation must outlive this object; add
  /// all domains before the first run_until.
  DomainId add_domain(Simulation& sim);

  /// Declare a directed cross-domain path with minimum latency `latency`
  /// (> 0: zero-lookahead channels would serialize every event and are
  /// rejected). The smallest latency over all channels is the global
  /// lookahead.
  ChannelId add_channel(DomainId src, DomainId dst, Duration latency);

  /// Minimum declared channel latency; Duration::max() with no channels
  /// (fully independent domains).
  Duration lookahead() const;

  /// Post `fn` into the channel's destination domain, to fire at
  /// src.now() + latency + extra. Must be called from code running inside
  /// the source domain (its thread, during a window). The message sits in
  /// the channel mailbox until the end-of-round flush.
  void post_remote(ChannelId channel, Duration extra, SmallCallback fn);

  /// Advance every domain to `deadline` (inclusive), windowed by the
  /// lookahead. All events <= deadline fire; every domain's clock ends at
  /// `deadline`.
  void run_until(TimePoint deadline);

  std::size_t domain_count() const { return domains_.size(); }
  Simulation& domain(DomainId id) const { return *domains_[id]; }
  /// True when the last run_until drove the domains with worker threads.
  bool parallel_active() const { return parallel_active_; }

  struct Stats {
    std::uint64_t rounds = 0;         ///< lookahead windows executed
    std::uint64_t remote_events = 0;  ///< mailbox messages delivered
    std::uint64_t threaded_rounds = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Channel {
    DomainId src;
    DomainId dst;
    Duration latency;
    struct Mail {
      TimePoint at;
      SmallCallback fn;
    };
    /// Written only by the source domain's thread during a window, drained
    /// only by the coordinator at the barrier.
    std::vector<Mail> box;
  };

  bool use_threads() const;
  void advance_serial(TimePoint target);
  void advance_threaded(TimePoint target);
  void flush_mailboxes();
  void start_workers();
  void worker_loop(std::size_t index);

  Mode mode_;
  std::vector<Simulation*> domains_;
  std::vector<Channel> channels_;
  Stats stats_;
  bool parallel_active_ = false;

  // Worker pool (lazily started; coordinator <-> workers hand off through
  // one mutex + condvars, which also provides the happens-before edges for
  // mailbox contents and scheduler state).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable round_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_id_ = 0;       ///< bumped to release workers
  std::size_t running_ = 0;          ///< workers still in the window
  TimePoint round_target_;
  bool shutdown_ = false;
};

}  // namespace bnm::sim
