// Small-buffer callback for the scheduler's event hot path.
//
// Every simulated packet, timer and browser task schedules a closure; with
// std::function most of those closures spill to the heap (libstdc++ gives
// them 16 bytes of inline storage) and each Entry copy re-allocates. This
// type keeps callables up to kInlineBytes inside the event itself, is
// move-only (queue entries are moved, never copied), and falls back to a
// single heap cell for oversized captures.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace bnm::sim {

/// Move-only type-erased `void()` callable with inline storage.
class SmallCallback {
 public:
  /// Inline capacity: fits `this` + a Packet-sized value capture or several
  /// pointers/shared_ptrs, which covers the simulator's common closures.
  static constexpr std::size_t kInlineBytes = 64;

  SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<void**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallCallback(SmallCallback&& o) noexcept { move_from(o); }
  SmallCallback& operator=(SmallCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  void operator()() { ops_->call(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True if the callable lives in the inline buffer (no heap allocation).
  /// Exposed for the substrate micro-benchmarks and tests.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*call)(void* buf);
    /// Move-construct into `dst` from `src` and destroy the source.
    /// nullptr means "memcpy the whole buffer" — the fast path for
    /// trivially-copyable callables (and the heap cell's pointer), which
    /// queue moves hit constantly.
    void (*relocate)(void* dst, void* src) noexcept;
    /// nullptr means trivially destructible: nothing to run.
    void (*destroy)(void* buf) noexcept;
    bool inline_storage;
  };

  /// Inline storage is 8-aligned (pointers, the universal lambda capture);
  /// over-aligned callables take the heap cell. Keeps the whole object —
  /// and every queue Entry embedding it — 8 bytes denser than a
  /// max_align_t buffer would.
  static constexpr std::size_t kInlineAlign = alignof(void*);

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              Fn* s = std::launder(reinterpret_cast<Fn*>(src));
              ::new (dst) Fn(std::move(*s));
              s->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* buf) noexcept {
              std::launder(reinterpret_cast<Fn*>(buf))->~Fn();
            },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* buf) { (**reinterpret_cast<Fn**>(buf))(); },
      /*relocate=*/nullptr,  // memcpy moves the heap-cell pointer
      [](void* buf) noexcept { delete *reinterpret_cast<Fn**>(buf); },
      /*inline_storage=*/false,
  };

  void move_from(SmallCallback& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(buf_, o.buf_);
      } else {
        std::memcpy(buf_, o.buf_, kInlineBytes);
      }
      o.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace bnm::sim
