#include "sim/trace.h"

namespace bnm::sim {

const TraceAttr* TraceRecord::attr(std::string_view key) const {
  for (const TraceAttr& a : attrs) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

const TraceRecord& TraceView::operator[](std::size_t i) const {
  return trace_->records()[idx_[i]];
}

bool TraceView::contains(std::string_view needle) const {
  for (std::size_t i : idx_) {
    if (trace_->records()[i].message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

const TraceRecord& TraceView::iterator::operator*() const {
  return trace_->records()[*pos_];
}

TraceView::iterator TraceView::begin() const {
  return iterator{trace_, idx_.data()};
}

TraceView::iterator TraceView::end() const {
  return iterator{trace_, idx_.data() + idx_.size()};
}

void Trace::push(TraceRecord rec) {
  if (sink_) sink_(rec);
  std::size_t idx = records_.size();
  by_component_[rec.component].push_back(idx);
  for (const TraceAttr& a : rec.attrs) by_attr_key_[a.key].push_back(idx);
  records_.push_back(std::move(rec));
}

void Trace::emit(TimePoint at, std::string component, std::string message) {
  if (!enabled_) return;
  push(TraceRecord{at, std::move(component), std::move(message),
                   TraceEventKind::kInstant, Duration::zero(), {}});
}

void Trace::emit_instant(TimePoint at, std::string component,
                         std::string message, std::vector<TraceAttr> attrs) {
  if (!enabled_) return;
  push(TraceRecord{at, std::move(component), std::move(message),
                   TraceEventKind::kInstant, Duration::zero(),
                   std::move(attrs)});
}

void Trace::emit_span(TimePoint at, Duration duration, std::string component,
                      std::string message, std::vector<TraceAttr> attrs) {
  if (!enabled_) return;
  push(TraceRecord{at, std::move(component), std::move(message),
                   TraceEventKind::kSpan, duration, std::move(attrs)});
}

void Trace::clear() {
  records_.clear();
  by_component_.clear();
  by_attr_key_.clear();
}

TraceView Trace::view_by_component(const std::string& component) const {
  auto it = by_component_.find(component);
  if (it == by_component_.end()) return TraceView{this, {}};
  return TraceView{this, it->second};
}

TraceView Trace::view_by_attr(const std::string& key) const {
  auto it = by_attr_key_.find(key);
  if (it == by_attr_key_.end()) return TraceView{this, {}};
  return TraceView{this, it->second};
}

bool Trace::contains(const std::string& needle) const {
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace bnm::sim
