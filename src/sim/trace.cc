#include "sim/trace.h"

namespace bnm::sim {

void Trace::emit(TimePoint at, std::string component, std::string message) {
  if (!enabled_) return;
  TraceRecord rec{at, std::move(component), std::move(message)};
  if (sink_) sink_(rec);
  records_.push_back(std::move(rec));
}

std::vector<TraceRecord> Trace::by_component(const std::string& component) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.component == component) out.push_back(r);
  }
  return out;
}

bool Trace::contains(const std::string& needle) const {
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace bnm::sim
