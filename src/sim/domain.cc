#include "sim/domain.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/metrics.h"
#include "sim/arena.h"
#include "sim/simulation.h"

namespace bnm::sim {

namespace {

struct DomainMetrics {
  obs::Counter rounds;
  obs::Counter remote_events;
  obs::Counter threaded_rounds;

  static const DomainMetrics& get() {
    static const DomainMetrics m{
        obs::MetricsRegistry::instance().counter(
            "domain.rounds", "rounds", "lookahead windows executed"),
        obs::MetricsRegistry::instance().counter(
            "domain.remote_events", "events",
            "cross-domain mailbox messages delivered"),
        obs::MetricsRegistry::instance().counter(
            "domain.threaded_rounds", "rounds",
            "lookahead windows driven by worker threads"),
    };
    return m;
  }
};

}  // namespace

DomainScheduler::DomainScheduler(Mode mode) : mode_{mode} {}

DomainScheduler::~DomainScheduler() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock{mu_};
      shutdown_ = true;
    }
    round_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }
}

DomainScheduler::DomainId DomainScheduler::add_domain(Simulation& sim) {
  assert(workers_.empty() && "add domains before the first threaded run");
  domains_.push_back(&sim);
  return domains_.size() - 1;
}

DomainScheduler::ChannelId DomainScheduler::add_channel(DomainId src,
                                                        DomainId dst,
                                                        Duration latency) {
  assert(src < domains_.size() && dst < domains_.size());
  assert(!latency.is_negative() && !latency.is_zero() &&
         "cross-domain channels need positive lookahead");
  channels_.push_back(Channel{src, dst, latency, {}});
  return channels_.size() - 1;
}

Duration DomainScheduler::lookahead() const {
  Duration min = Duration::max();
  for (const Channel& ch : channels_) min = std::min(min, ch.latency);
  return min;
}

void DomainScheduler::post_remote(ChannelId channel, Duration extra,
                                  SmallCallback fn) {
  assert(channel < channels_.size());
  Channel& ch = channels_[channel];
  const TimePoint at =
      domains_[ch.src]->scheduler().now() + ch.latency + extra;
  ch.box.push_back(Channel::Mail{at, std::move(fn)});
}

bool DomainScheduler::use_threads() const {
  switch (mode_) {
    case Mode::kSerial:
      return false;
    case Mode::kThreads:
      return domains_.size() > 1;
    case Mode::kAuto:
      return domains_.size() > 1 &&
             std::thread::hardware_concurrency() > 1 &&
             !lookahead().is_zero();
  }
  return false;
}

void DomainScheduler::advance_serial(TimePoint target) {
  for (Simulation* sim : domains_) {
    // Route each domain's allocations through its own arena, exactly as
    // the worker threads do.
    ArenaScope scope{Arena::current() != nullptr ? nullptr : &sim->arena()};
    sim->scheduler().run_until(target);
  }
}

void DomainScheduler::advance_threaded(TimePoint target) {
  start_workers();
  {
    std::lock_guard<std::mutex> lock{mu_};
    round_target_ = target;
    running_ = workers_.size();
    ++round_id_;
  }
  round_cv_.notify_all();
  std::unique_lock<std::mutex> lock{mu_};
  done_cv_.wait(lock, [&] { return running_ == 0; });
}

void DomainScheduler::start_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(domains_.size());
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void DomainScheduler::worker_loop(std::size_t index) {
  std::uint64_t seen_round = 0;
  while (true) {
    TimePoint target;
    {
      std::unique_lock<std::mutex> lock{mu_};
      round_cv_.wait(lock,
                     [&] { return shutdown_ || round_id_ != seen_round; });
      if (shutdown_) return;
      seen_round = round_id_;
      target = round_target_;
    }
    {
      Simulation* sim = domains_[index];
      ArenaScope scope{&sim->arena()};
      sim->scheduler().run_until(target);
    }
    {
      std::lock_guard<std::mutex> lock{mu_};
      --running_;
    }
    done_cv_.notify_one();
  }
}

void DomainScheduler::flush_mailboxes() {
  // Channel-id order, FIFO within a channel: destination sequence numbers
  // come out identical on every run, threaded or not.
  std::uint64_t delivered = 0;
  for (Channel& ch : channels_) {
    if (ch.box.empty()) continue;
    Scheduler& dst = domains_[ch.dst]->scheduler();
    for (Channel::Mail& mail : ch.box) {
      dst.post_at(mail.at, std::move(mail.fn));
    }
    delivered += ch.box.size();
    ch.box.clear();
  }
  if (delivered != 0) {
    stats_.remote_events += delivered;
    DomainMetrics::get().remote_events.add(delivered);
  }
}

void DomainScheduler::run_until(TimePoint deadline) {
  if (domains_.empty()) return;
  const Duration la = lookahead();
  const bool threaded = use_threads();
  parallel_active_ = threaded;
  const auto& metrics = DomainMetrics::get();

  while (true) {
    // 1. Earliest pending event anywhere (mailboxes are always empty here:
    //    they were flushed at the end of the previous round).
    std::int64_t t_min = std::numeric_limits<std::int64_t>::max();
    for (Simulation* sim : domains_) {
      const auto next = sim->scheduler().next_event_time();
      if (next) t_min = std::min(t_min, next->ns_since_epoch());
    }
    if (t_min == std::numeric_limits<std::int64_t>::max() ||
        t_min > deadline.ns_since_epoch()) {
      break;  // nothing left at or before the deadline
    }

    // 2. Window end (exclusive): t_min + lookahead, clamped to just past
    //    the deadline. Saturating math — la may be Duration::max().
    std::int64_t window_end;
    if (la.ns() > std::numeric_limits<std::int64_t>::max() - t_min) {
      window_end = std::numeric_limits<std::int64_t>::max();
    } else {
      window_end = t_min + la.ns();
    }
    if (deadline.ns_since_epoch() <
        std::numeric_limits<std::int64_t>::max()) {
      window_end = std::min(window_end, deadline.ns_since_epoch() + 1);
    }
    const TimePoint target = TimePoint::from_ns(window_end - 1);

    // 3. Advance every domain through the window. Any remote message
    //    produced inside it delivers at >= t_min + lookahead >= window_end,
    //    strictly after the window — no domain can have needed it.
    if (threaded) {
      advance_threaded(target);
      ++stats_.threaded_rounds;
      metrics.threaded_rounds.add(1);
    } else {
      advance_serial(target);
    }
    ++stats_.rounds;
    metrics.rounds.add(1);

    // 4. Barrier: exchange cross-domain events.
    flush_mailboxes();
  }

  // Pin every clock to the deadline (run_until semantics).
  for (Simulation* sim : domains_) {
    sim->scheduler().run_until(deadline);
  }
}

}  // namespace bnm::sim
