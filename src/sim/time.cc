#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace bnm::sim {

Duration Duration::from_millis_f(double ms) {
  return Duration{static_cast<std::int64_t>(std::llround(ms * 1e6))};
}

Duration Duration::from_seconds_f(double s) {
  return Duration{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

Duration Duration::scaled(double f) const {
  return Duration{static_cast<std::int64_t>(
      std::llround(static_cast<double>(ns_) * f))};
}

std::string Duration::to_string() const {
  char buf[64];
  const std::int64_t a = ns_ < 0 ? -ns_ : ns_;
  if (a >= 1'000'000'000 && a % 1'000'000 == 0 && a % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(ns_ / 1'000'000'000));
  } else if (a >= 1'000'000) {
    if (a % 1'000'000 == 0) {
      std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(ns_ / 1'000'000));
    } else {
      std::snprintf(buf, sizeof buf, "%.3fms", ms_f());
    }
  } else if (a >= 1'000) {
    if (a % 1'000 == 0) {
      std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(ns_ / 1'000));
    } else {
      std::snprintf(buf, sizeof buf, "%.3fus", us_f());
    }
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  return "+" + Duration::nanos(ns_).to_string();
}

}  // namespace bnm::sim
