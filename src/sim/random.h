// Deterministic pseudo-random infrastructure for the testbed.
//
// Every stochastic element of the simulation (browser dispatch latency,
// plugin noise, capture jitter, granularity-regime epochs, ...) draws from a
// Rng seeded from the experiment configuration, so each figure and table in
// the paper regenerates bit-for-bit.
//
// The generator is xoshiro256** (Blackman & Vigna), a small, fast, high
// quality PRNG; we implement it ourselves so results do not depend on the
// standard library's unspecified distribution algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/time.h"

namespace bnm::sim {

/// xoshiro256** pseudo-random generator with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Derive an independent stream from a parent, keyed by a label; used to
  /// give each (browser, method, run) its own substream so adding one
  /// experiment never perturbs another.
  Rng fork(std::string_view label) const;

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform01();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (no cached spare: keeps forks stateless).
  double normal(double mean, double stddev);
  /// Log-normal parameterized by the *target* median and a shape sigma
  /// (sigma is the stddev of the underlying normal). Median of the result
  /// is exactly `median`. Used for heavy-tailed browser overheads.
  double lognormal_med(double median, double sigma);
  /// Exponential with the given mean.
  double exponential(double mean);
  /// Bernoulli trial.
  bool chance(double p);

  /// Duration helpers (all arguments in milliseconds for readability at the
  /// calibration-table call sites).
  Duration uniform_ms(double lo_ms, double hi_ms);
  Duration normal_ms(double mean_ms, double stddev_ms);
  Duration lognormal_med_ms(double median_ms, double sigma);
  Duration exponential_ms(double mean_ms);

 private:
  explicit Rng(const std::array<std::uint64_t, 4>& state) : s_{state} {}
  static std::uint64_t splitmix64(std::uint64_t& x);

  std::array<std::uint64_t, 4> s_{};
};

}  // namespace bnm::sim
