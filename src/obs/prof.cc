#include "obs/prof.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <mutex>

namespace bnm::obs::prof {

std::atomic<bool> g_enabled{false};

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace {

struct ThreadTable;

/// Global site-name registry plus the set of live/retired thread tables.
/// Leaked (never destroyed) so thread-exit retirement is always safe.
struct Registry {
  std::mutex mu;
  std::vector<std::string> names;     // site id -> name
  std::vector<ThreadTable*> live;
  std::deque<detail::SiteStats> retired;  // folded exited-thread tables
};

Registry& registry() {
  static Registry* r = new Registry{};
  return *r;
}

struct ThreadTable {
  // deque: tls_stats hands out references that must survive growth.
  std::deque<detail::SiteStats> stats;

  ThreadTable() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock{r.mu};
    r.live.push_back(this);
  }
  ~ThreadTable() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock{r.mu};
    r.live.erase(std::find(r.live.begin(), r.live.end(), this));
    if (r.retired.size() < stats.size()) r.retired.resize(stats.size());
    for (std::size_t i = 0; i < stats.size(); ++i) {
      r.retired[i].calls.fetch_add(
          stats[i].calls.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      r.retired[i].total_ns.fetch_add(
          stats[i].total_ns.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      std::uint64_t m = stats[i].max_ns.load(std::memory_order_relaxed);
      if (m > r.retired[i].max_ns.load(std::memory_order_relaxed)) {
        r.retired[i].max_ns.store(m, std::memory_order_relaxed);
      }
    }
  }
};

ThreadTable& tls_table() {
  thread_local ThreadTable table;
  return table;
}

}  // namespace

ProfSite::ProfSite(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock{r.mu};
  id_ = static_cast<std::uint32_t>(r.names.size());
  r.names.emplace_back(name);
}

namespace detail {

SiteStats& tls_stats(std::uint32_t id) {
  ThreadTable& t = tls_table();
  if (t.stats.size() <= id) t.stats.resize(id + 1);
  return t.stats[id];
}

}  // namespace detail

std::vector<ProfEntry> report() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock{r.mu};
  std::vector<ProfEntry> out(r.names.size());
  for (std::size_t i = 0; i < r.names.size(); ++i) out[i].name = r.names[i];

  auto fold = [&out](const std::deque<detail::SiteStats>& stats) {
    for (std::size_t i = 0; i < stats.size() && i < out.size(); ++i) {
      out[i].calls += stats[i].calls.load(std::memory_order_relaxed);
      out[i].total_ns += stats[i].total_ns.load(std::memory_order_relaxed);
      out[i].max_ns = std::max(
          out[i].max_ns, stats[i].max_ns.load(std::memory_order_relaxed));
    }
  };
  fold(r.retired);
  for (const ThreadTable* t : r.live) fold(t->stats);

  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const ProfEntry& e) { return e.calls == 0; }),
            out.end());
  std::sort(out.begin(), out.end(), [](const ProfEntry& a, const ProfEntry& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.name < b.name;
  });
  return out;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock{r.mu};
  auto zero = [](std::deque<detail::SiteStats>& stats) {
    for (detail::SiteStats& s : stats) {
      s.calls.store(0, std::memory_order_relaxed);
      s.total_ns.store(0, std::memory_order_relaxed);
      s.max_ns.store(0, std::memory_order_relaxed);
    }
  };
  zero(r.retired);
  for (ThreadTable* t : r.live) zero(t->stats);
}

std::string format_report(const std::vector<ProfEntry>& entries) {
  std::size_t w = 4;
  for (const ProfEntry& e : entries) w = std::max(w, e.name.size());
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf, "  %-*s %12s %12s %10s %10s\n",
                static_cast<int>(w), "site", "calls", "total_ms", "avg_us",
                "max_us");
  out += buf;
  for (const ProfEntry& e : entries) {
    double total_ms = static_cast<double>(e.total_ns) / 1e6;
    double avg_us =
        e.calls ? static_cast<double>(e.total_ns) / 1e3 /
                      static_cast<double>(e.calls)
                : 0.0;
    double max_us = static_cast<double>(e.max_ns) / 1e3;
    std::snprintf(buf, sizeof buf, "  %-*s %12llu %12.3f %10.3f %10.3f\n",
                  static_cast<int>(w), e.name.c_str(),
                  static_cast<unsigned long long>(e.calls), total_ms, avg_us,
                  max_us);
    out += buf;
  }
  return out;
}

}  // namespace bnm::obs::prof
