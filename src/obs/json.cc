#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bnm::obs::json {

Value Value::null() { return Value{}; }

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::integer(std::int64_t i) {
  Value v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Value::add(std::string key, Value v) {
  object_.emplace_back(std::move(key), std::move(v));
}

void Value::push(Value v) { array_.push_back(std::move(v)); }

void escape_to(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  escape_to(out, s);
  return out;
}

namespace {

void dump_to(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kInt:
      out += std::to_string(v.as_int());
      break;
    case Value::Type::kDouble: {
      double d = v.as_double();
      if (std::isfinite(d)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
      } else {
        out += "null";  // JSON has no NaN/Inf
      }
      break;
    }
    case Value::Type::kString:
      out += '"';
      escape_to(out, v.as_string());
      out += '"';
      break;
    case Value::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.items()) {
        if (!first) out += ',';
        first = false;
        dump_to(e, out);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      out += '{';
      bool first = true;
      for (const Member& m : v.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        escape_to(out, m.first);
        out += "\":";
        dump_to(m.second, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_{text}, error_{error} {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;

  void fail(const char* what) {
    if (error_ && error_->empty()) {
      *error_ = std::string{what} + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    fail("invalid literal");
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case 'n':
        if (!literal("null")) return false;
        out = Value::null();
        return true;
      case 't':
        if (!literal("true")) return false;
        out = Value::boolean(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = Value::boolean(false);
        return true;
      case '"':
        return parse_string(out);
      case '[':
        return parse_array(out);
      case '{':
        return parse_object(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_string_raw(std::string& out) {
    if (!eat('"')) {
      fail("expected '\"'");
      return false;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Our emitters only escape control chars; decode is lossy here.
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            pos_ += 4;
            out += '?';
            break;
          default:
            fail("invalid escape");
            return false;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_string(Value& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = Value::string(std::move(s));
    return true;
  }

  bool parse_number(Value& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected a value");
      return false;
    }
    std::string token{text_.substr(start, pos_ - start)};
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      // "-0" must stay a double: collapsing it to integer 0 would drop the
      // sign and break byte-exact parse->dump round trips (the matrix
      // checkpoint's resume bit-identity contract depends on them).
      if (errno == 0 && end && *end == '\0' &&
          !(v == 0 && token[0] == '-')) {
        out = Value::integer(v);
        return true;
      }
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0') {
      fail("malformed number");
      return false;
    }
    out = Value::number(d);
    return true;
  }

  bool parse_array(Value& out) {
    eat('[');
    out = Value::array();
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      Value v;
      skip_ws();
      if (!parse_value(v)) return false;
      out.push(std::move(v));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) {
        fail("expected ',' or ']'");
        return false;
      }
    }
  }

  bool parse_object(Value& out) {
    eat('{');
    out = Value::object();
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (!eat(':')) {
        fail("expected ':'");
        return false;
      }
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.add(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) {
        fail("expected ',' or '}'");
        return false;
      }
    }
  }
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

std::optional<Value> parse(std::string_view text, std::string* error) {
  if (error) error->clear();
  return Parser{text, error}.run();
}

}  // namespace bnm::obs::json
