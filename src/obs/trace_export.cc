#include "obs/trace_export.h"

#include <cstdio>
#include <unordered_map>

#include "obs/json.h"

namespace bnm::obs::trace {

using bnm::sim::TraceAttr;
using bnm::sim::TraceEventKind;
using bnm::sim::TraceRecord;

namespace {

void append_attr_value(std::string& out, const TraceAttr& a) {
  if (const auto* s = std::get_if<std::string>(&a.value)) {
    out += '"';
    json::escape_to(out, *s);
    out += '"';
  } else if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&a.value)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", *d);
    out += buf;
  } else {
    out += std::get<bool>(a.value) ? "true" : "false";
  }
}

void append_attrs_object(std::string& out,
                         const std::vector<TraceAttr>& attrs) {
  out += '{';
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i) out += ',';
    out += '"';
    json::escape_to(out, attrs[i].key);
    out += "\":";
    append_attr_value(out, attrs[i]);
  }
  out += '}';
}

void append_us(std::string& out, std::int64_t ns) {
  // Microseconds with three decimals: full nanosecond fidelity, and
  // Perfetto's expected unit.
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string to_jsonl(const bnm::sim::Trace& trace) {
  std::string out;
  for (const TraceRecord& r : trace.records()) {
    out += "{\"ts_us\":";
    append_us(out, r.at.ns_since_epoch());
    out += ",\"component\":\"";
    json::escape_to(out, r.component);
    out += "\",\"name\":\"";
    json::escape_to(out, r.message);
    out += "\",\"kind\":\"";
    out += r.kind == TraceEventKind::kSpan ? "span" : "instant";
    out += '"';
    if (r.kind == TraceEventKind::kSpan) {
      out += ",\"dur_us\":";
      append_us(out, r.duration.ns());
    }
    if (!r.attrs.empty()) {
      out += ",\"attrs\":";
      append_attrs_object(out, r.attrs);
    }
    out += "}\n";
  }
  return out;
}

std::string to_chrome_trace(const bnm::sim::Trace& trace) {
  // One synthetic thread per component, in order of first appearance.
  std::unordered_map<std::string, int> tids;
  std::vector<std::string> components;
  for (const TraceRecord& r : trace.records()) {
    if (tids.emplace(r.component, static_cast<int>(tids.size()) + 1).second) {
      components.push_back(r.component);
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const std::string& c : components) {
    if (!first) out += ',';
    first = false;
    out +=
        "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" +
        std::to_string(tids[c]) + ",\"args\":{\"name\":\"";
    json::escape_to(out, c);
    out += "\"}}";
  }
  for (const TraceRecord& r : trace.records()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json::escape_to(out, r.message);
    out += "\",\"cat\":\"";
    json::escape_to(out, r.component);
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(tids[r.component]);
    out += ",\"ts\":";
    append_us(out, r.at.ns_since_epoch());
    if (r.kind == TraceEventKind::kSpan) {
      out += ",\"ph\":\"X\",\"dur\":";
      append_us(out, r.duration.ns());
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    if (!r.attrs.empty()) {
      out += ",\"args\":";
      append_attrs_object(out, r.attrs);
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  bool ok = n == contents.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace bnm::obs::trace
