#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace bnm::obs {
namespace {

/// Cells per thread shard. Every registered instrument claims a fixed range
/// of cells (counter: 1, gauge: 1, histogram: bounds+2); the layout is
/// identical in every shard, so merging is a cell-wise fold. 4096 cells is
/// ~32 KiB per thread — far more than the catalog needs, cheap enough to
/// never grow (growing would invalidate hot-path pointers).
constexpr std::size_t kShardCells = 4096;

/// How a cell folds across shards.
enum class MergeKind : std::uint8_t { kSum, kMax };

struct Shard {
  std::atomic<std::uint64_t> cells[kShardCells] = {};
};

struct MetricDef {
  std::string name;
  std::string unit;
  std::string help;
  MetricKind kind;
  std::uint32_t cell;               ///< first cell in every shard
  std::uint32_t n_cells;            ///< cells claimed
  std::vector<std::uint64_t> bounds;  ///< histogram bucket upper bounds
};

[[noreturn]] void die(const char* what, const std::string& name) {
  std::fprintf(stderr, "obs::MetricsRegistry: %s (metric '%s')\n", what,
               name.c_str());
  std::abort();
}

}  // namespace

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // deque: handles keep pointers into defs (histogram bounds), so elements
  // must never move.
  std::deque<MetricDef> defs;
  std::unordered_map<std::string, std::uint32_t> by_name;  // -> defs index
  std::uint32_t next_cell = 0;
  std::vector<Shard*> live;          // registered, not yet retired
  std::uint64_t retired[kShardCells] = {};  // folded exited-thread shards
  MergeKind merge[kShardCells] = {};        // cell -> fold rule

  void fold_into_retired(Shard* s) {
    for (std::size_t i = 0; i < kShardCells; ++i) {
      std::uint64_t v = s->cells[i].load(std::memory_order_relaxed);
      if (merge[i] == MergeKind::kMax) {
        retired[i] = std::max(retired[i], v);
      } else {
        retired[i] += v;
      }
    }
  }

  /// Cell-wise fold of retired + all live shards. Caller holds mu.
  void merged(std::uint64_t out[kShardCells]) const {
    std::copy(retired, retired + kShardCells, out);
    for (const Shard* s : live) {
      for (std::size_t i = 0; i < kShardCells; ++i) {
        std::uint64_t v = s->cells[i].load(std::memory_order_relaxed);
        if (merge[i] == MergeKind::kMax) {
          out[i] = std::max(out[i], v);
        } else {
          out[i] += v;
        }
      }
    }
  }

  std::uint32_t claim(std::string_view name, std::string_view unit,
                      std::string_view help, MetricKind kind,
                      std::uint32_t n_cells,
                      std::vector<std::uint64_t> bounds) {
    std::lock_guard<std::mutex> lock{mu};
    std::string key{name};
    if (auto it = by_name.find(key); it != by_name.end()) {
      const MetricDef& d = defs[it->second];
      if (d.kind != kind || d.bounds != bounds) {
        die("re-registration with a different kind or buckets", key);
      }
      return it->second;
    }
    if (next_cell + n_cells > kShardCells) {
      die("shard cell budget exhausted; raise kShardCells", key);
    }
    MetricDef d;
    d.name = key;
    d.unit = std::string{unit};
    d.help = std::string{help};
    d.kind = kind;
    d.cell = next_cell;
    d.n_cells = n_cells;
    d.bounds = std::move(bounds);
    MergeKind mk = kind == MetricKind::kGauge ? MergeKind::kMax
                                              : MergeKind::kSum;
    for (std::uint32_t i = 0; i < n_cells; ++i) merge[next_cell + i] = mk;
    next_cell += n_cells;
    defs.push_back(std::move(d));
    std::uint32_t idx = static_cast<std::uint32_t>(defs.size() - 1);
    by_name.emplace(std::move(key), idx);
    return idx;
  }
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked on purpose: thread-exit shard retirement (ShardHandle dtor) may
  // run during process teardown, after static destructors would have fired.
  static Impl* impl = new Impl{};
  return *impl;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* reg = new MetricsRegistry{};
  return *reg;
}

namespace detail {
namespace {

/// Owns one thread's shard; registers on construction, retires (folds into
/// the registry accumulator) on thread exit.
struct ShardHandle {
  Shard shard;
  MetricsRegistry::Impl* impl;

  ShardHandle() : impl{&MetricsRegistry::instance().impl()} {
    std::lock_guard<std::mutex> lock{impl->mu};
    impl->live.push_back(&shard);
  }
  ~ShardHandle() {
    std::lock_guard<std::mutex> lock{impl->mu};
    impl->live.erase(std::find(impl->live.begin(), impl->live.end(), &shard));
    impl->fold_into_retired(&shard);
  }
};

}  // namespace

std::atomic<std::uint64_t>* tls_cells() {
  thread_local ShardHandle handle;
  return handle.shard.cells;
}

}  // namespace detail

Counter MetricsRegistry::counter(std::string_view name, std::string_view unit,
                                 std::string_view help) {
  Impl& im = impl();
  std::uint32_t idx = im.claim(name, unit, help, MetricKind::kCounter, 1, {});
  return Counter{im.defs[idx].cell};
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view unit,
                             std::string_view help) {
  Impl& im = impl();
  std::uint32_t idx = im.claim(name, unit, help, MetricKind::kGauge, 1, {});
  return Gauge{im.defs[idx].cell};
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::string_view unit,
                                     std::string_view help,
                                     std::vector<std::uint64_t> bucket_bounds) {
  if (bucket_bounds.empty() ||
      !std::is_sorted(bucket_bounds.begin(), bucket_bounds.end())) {
    die("histogram bounds must be non-empty and ascending", std::string{name});
  }
  Impl& im = impl();
  std::uint32_t n_cells =
      static_cast<std::uint32_t>(bucket_bounds.size() + 2);  // +overflow +sum
  std::uint32_t idx = im.claim(name, unit, help, MetricKind::kHistogram,
                               n_cells, std::move(bucket_bounds));
  const MetricDef& d = im.defs[idx];
  return Histogram{d.cell, d.bounds.data(), d.bounds.size()};
}

namespace {

/// Fold just one instrument's cells (cold accessor path).
void merge_range(const MetricsRegistry::Impl& im, std::uint32_t first,
                 std::uint32_t n, std::uint64_t* out) {
  std::lock_guard<std::mutex> lock{im.mu};
  for (std::uint32_t i = 0; i < n; ++i) out[i] = im.retired[first + i];
  for (const Shard* s : im.live) {
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t v = s->cells[first + i].load(std::memory_order_relaxed);
      if (im.merge[first + i] == MergeKind::kMax) {
        out[i] = std::max(out[i], v);
      } else {
        out[i] += v;
      }
    }
  }
}

void zero_range(MetricsRegistry::Impl& im, std::uint32_t first,
                std::uint32_t n) {
  std::lock_guard<std::mutex> lock{im.mu};
  for (std::uint32_t i = 0; i < n; ++i) im.retired[first + i] = 0;
  for (Shard* s : im.live) {
    for (std::uint32_t i = 0; i < n; ++i) {
      s->cells[first + i].store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry::Impl& the_impl() { return MetricsRegistry::instance().impl(); }

}  // namespace

std::uint64_t Counter::total() const {
  std::uint64_t v = 0;
  merge_range(the_impl(), cell_, 1, &v);
  return v;
}

void Counter::reset() const { zero_range(the_impl(), cell_, 1); }

std::uint64_t Gauge::max_value() const {
  std::uint64_t v = 0;
  merge_range(the_impl(), cell_, 1, &v);
  return v;
}

void Gauge::reset() const { zero_range(the_impl(), cell_, 1); }

std::uint64_t Histogram::count() const {
  std::vector<std::uint64_t> v(n_bounds_ + 2);
  merge_range(the_impl(), cell_, static_cast<std::uint32_t>(v.size()),
              v.data());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= n_bounds_; ++i) total += v[i];
  return total;
}

std::uint64_t Histogram::sum() const {
  std::vector<std::uint64_t> v(n_bounds_ + 2);
  merge_range(the_impl(), cell_, static_cast<std::uint32_t>(v.size()),
              v.data());
  return v[n_bounds_ + 1];
}

void Histogram::reset() const {
  zero_range(the_impl(), cell_, static_cast<std::uint32_t>(n_bounds_ + 2));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  Impl& im = impl();
  MetricsSnapshot snap;
  std::vector<std::uint64_t> cells(kShardCells);
  {
    std::lock_guard<std::mutex> lock{im.mu};
    im.merged(cells.data());
    snap.metrics.reserve(im.defs.size());
    for (const MetricDef& d : im.defs) {
      MetricValue mv;
      mv.name = d.name;
      mv.unit = d.unit;
      mv.help = d.help;
      mv.kind = d.kind;
      if (d.kind == MetricKind::kHistogram) {
        mv.bounds = d.bounds;
        mv.buckets.assign(cells.begin() + d.cell,
                          cells.begin() + d.cell + d.bounds.size() + 1);
        mv.sum = cells[d.cell + d.bounds.size() + 1];
        mv.value = 0;
        for (std::uint64_t b : mv.buckets) mv.value += b;
      } else {
        mv.value = cells[d.cell];
      }
      snap.metrics.push_back(std::move(mv));
    }
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock{im.mu};
  std::fill(im.retired, im.retired + kShardCells, 0);
  for (Shard* s : im.live) {
    for (std::size_t i = 0; i < kShardCells; ++i) {
      s->cells[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t MetricsRegistry::metric_count() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock{im.mu};
  return im.defs.size();
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricValue& m, std::string_view n) { return m.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricValue& m = metrics[i];
    if (i) out += ',';
    out += "{\"kind\":\"";
    out += to_string(m.kind);
    out += "\",\"name\":\"";
    append_escaped(out, m.name);
    out += "\",\"unit\":\"";
    append_escaped(out, m.unit);
    out += "\",\"value\":";
    out += std::to_string(m.value);
    if (m.kind == MetricKind::kHistogram) {
      out += ",\"bounds\":";
      append_u64_array(out, m.bounds);
      out += ",\"buckets\":";
      append_u64_array(out, m.buckets);
      out += ",\"sum\":";
      out += std::to_string(m.sum);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::size_t w = 4;
  for (const MetricValue& m : metrics) w = std::max(w, m.name.size());
  std::string out;
  for (const MetricValue& m : metrics) {
    out += m.name;
    out.append(w - m.name.size() + 2, ' ');
    out += std::to_string(m.value);
    if (!m.unit.empty()) {
      out += ' ';
      out += m.unit;
    }
    if (m.kind == MetricKind::kHistogram) {
      out += "  (sum ";
      out += std::to_string(m.sum);
      out += ')';
    }
    out += '\n';
  }
  return out;
}

}  // namespace bnm::obs
