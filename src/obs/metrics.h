// Process-wide metrics registry: the one place the testbed's counters live.
//
// Before this layer existed, every subsystem kept its own tallies —
// PayloadStats atomics, per-injector FaultCounters, ArenaStats, HTTP client
// members, SampleAccounting — with no common export path. The registry gives
// them a shared, typed substrate with one contract:
//
//   * Typed instruments. Counter (monotonic sum), Gauge (high-water mark,
//     merged by max) and Histogram (fixed integer bucket bounds chosen at
//     registration). All values are unsigned 64-bit integers, so every
//     aggregation is exact and order-independent — which is what makes a
//     snapshot from a parallel core::run_matrix run byte-identical to the
//     serial run's snapshot (bench/obs_overhead proves it on every
//     scripts/check.sh run).
//   * Lock-free thread-local shards. An increment touches only the calling
//     thread's shard cell (a relaxed atomic on a thread-private cache line),
//     so pool workers never contend. Shards fold into a retired accumulator
//     when their thread exits; snapshot() merges live shards + retired under
//     a mutex (cold path only).
//   * Always on. Instruments here replaced counters that were always on
//     (PayloadStats, FaultCounters, ...) and whose accessors are part of
//     the public API — so recording is unconditional and cheap by design.
//     The obs kill switch (obs::prof, sim::Trace) gates the *optional*
//     layers, not these.
//
// Registration is idempotent by name (same name + kind returns the same
// instrument) and cold; do it once in a function-local static:
//
//   const obs::Counter& deep_bytes() {
//     static const obs::Counter c = obs::MetricsRegistry::instance().counter(
//         "payload.deep_copy_bytes", "bytes", "bytes memcpy'd into buffers");
//     return c;
//   }
//
// The full catalog of registered metrics is documented in
// docs/OBSERVABILITY.md; add a row there when you add an instrument here.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bnm::obs {

class MetricsRegistry;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

namespace detail {
/// The calling thread's shard cells (registered with the registry on first
/// use). Never nullptr. Cells are relaxed atomics: the owning thread is the
/// only writer, snapshot/reset are the only other readers.
std::atomic<std::uint64_t>* tls_cells();
}  // namespace detail

/// Monotonic sum. add() is the hot path: one thread-local relaxed add.
class Counter {
 public:
  void add(std::uint64_t v = 1) const {
    detail::tls_cells()[cell_].fetch_add(v, std::memory_order_relaxed);
  }
  /// Merged total across all threads (cold: takes the registry mutex).
  std::uint64_t total() const;
  /// Zero the metric everywhere. Call only at quiescent points (between
  /// runs / bench passes), like the legacy *Stats::reset() it replaces.
  void reset() const;

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint32_t cell) : cell_{cell} {}
  std::uint32_t cell_;
};

/// High-water-mark gauge: record_max() keeps the per-thread maximum and the
/// merged value is the max across threads — exact and order-independent
/// (peak arena bytes is the canonical user).
class Gauge {
 public:
  void record_max(std::uint64_t v) const {
    std::atomic<std::uint64_t>& cell = detail::tls_cells()[cell_];
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (v > cur &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t max_value() const;
  void reset() const;

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::uint32_t cell) : cell_{cell} {}
  std::uint32_t cell_;
};

/// Fixed-bucket histogram over unsigned integer samples (callers pick the
/// unit — microseconds, bytes — at registration). A sample lands in the
/// first bucket whose bound is >= value; larger samples land in the
/// overflow bucket. Bucket counts and the exact integer sum are u64, so
/// merges are deterministic.
class Histogram {
 public:
  void observe(std::uint64_t v) const {
    std::atomic<std::uint64_t>* cells = detail::tls_cells();
    std::size_t i = 0;
    while (i < n_bounds_ && v > bounds_[i]) ++i;  // n_bounds_ is small
    cells[cell_ + i].fetch_add(1, std::memory_order_relaxed);
    cells[cell_ + n_bounds_ + 1].fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t count() const;
  std::uint64_t sum() const;
  void reset() const;

 private:
  friend class MetricsRegistry;
  Histogram(std::uint32_t cell, const std::uint64_t* bounds,
            std::size_t n_bounds)
      : cell_{cell}, bounds_{bounds}, n_bounds_{n_bounds} {}
  std::uint32_t cell_;            ///< first bucket cell
  const std::uint64_t* bounds_;  ///< registry-owned, stable
  std::size_t n_bounds_;
};

/// One metric's merged value, as captured by MetricsRegistry::snapshot().
struct MetricValue {
  std::string name;
  std::string unit;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter total / gauge max / histogram count
  // Histograms only:
  std::vector<std::uint64_t> bounds;   ///< upper bounds (exclusive overflow)
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = overflow)
  std::uint64_t sum = 0;               ///< exact sum of observed samples
};

/// A point-in-time merge of every registered metric, sorted by name (so two
/// snapshots of identical state serialize byte-identically regardless of
/// registration or thread order).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* find(std::string_view name) const;
  /// Deterministic JSON (sorted keys, integer values only). The format is
  /// documented in docs/OBSERVABILITY.md.
  std::string to_json() const;
  /// Human-readable aligned table (examples / debugging).
  std::string to_text() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry. Intentionally leaked so that thread-exit
  /// shard retirement can never outlive it.
  static MetricsRegistry& instance();

  /// Register (or look up) an instrument. Name collisions with a different
  /// kind abort — metric names are a global namespace.
  Counter counter(std::string_view name, std::string_view unit,
                  std::string_view help);
  Gauge gauge(std::string_view name, std::string_view unit,
              std::string_view help);
  Histogram histogram(std::string_view name, std::string_view unit,
                      std::string_view help,
                      std::vector<std::uint64_t> bucket_bounds);

  /// Merge every live shard plus retired totals into one snapshot.
  MetricsSnapshot snapshot() const;

  /// Zero every cell of every metric (live shards + retired). Quiescent
  /// points only — concurrent increments on other threads may be lost, not
  /// corrupted.
  void reset();

  std::size_t metric_count() const;

  /// Internal (shard registration / merge helpers). Not part of the API.
  struct Impl;
  Impl& impl() const;

 private:
  MetricsRegistry() = default;
};

}  // namespace bnm::obs
