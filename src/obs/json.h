// Minimal JSON document model + recursive-descent parser + writer.
//
// Exists so the repo's tooling can *read back* the JSON it emits — the
// trace exporters' round-trip tests (tests/test_obs.cpp) and the bench
// schema validator (tools/bench_schema_check) both parse real output files
// with it. It is deliberately small: full JSON per RFC 8259 minus \uXXXX
// surrogate pairs (escapes decode to '?') — none of our emitters produce
// non-ASCII. Not a streaming parser; documents here are tens of KiB.
//
// Objects preserve insertion order (vector of pairs), so a parse→write
// round trip of our own deterministic output is byte-stable apart from
// number formatting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bnm::obs::json {

class Value;

using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,     ///< integer-valued number (fits int64)
    kDouble,  ///< any other number
    kString,
    kArray,
    kObject,
  };

  Value() = default;
  static Value null();
  static Value boolean(bool b);
  static Value integer(std::int64_t i);
  static Value number(double d);
  static Value string(std::string s);
  static Value array();
  static Value object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const { return int_; }
  double as_double() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& items() const { return array_; }
  const std::vector<Member>& members() const { return object_; }

  std::vector<Value>& items() { return array_; }
  std::vector<Member>& members() { return object_; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const Value* find(std::string_view key) const;

  /// Append a member (objects) — no duplicate-key check.
  void add(std::string key, Value v);
  /// Append an element (arrays).
  void push(Value v);

  /// Compact deterministic serialization (no whitespace; members in stored
  /// order; doubles via %.17g trimmed).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Parse one JSON document. Returns nullopt (and sets *error if given) on
/// malformed input or trailing garbage.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// JSON string escaping (shared by every emitter in obs/).
void escape_to(std::string& out, std::string_view s);
std::string escape(std::string_view s);

}  // namespace bnm::obs::json
