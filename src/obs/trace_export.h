// Trace exporters: turn a sim::Trace into files other tools can read.
//
// Two formats, both documented with examples in docs/OBSERVABILITY.md:
//
//   * JSON-lines — one JSON object per record (ts_us, component, name,
//     kind, dur_us for spans, attrs). Greppable, diffable, trivially
//     parsed back (tests round-trip it through obs::json).
//   * Chrome trace_event — the {"traceEvents":[...]} JSON that
//     chrome://tracing and https://ui.perfetto.dev load directly. Spans
//     become complete ("X") events, instants become "i" events; each
//     component gets its own synthetic thread row (named via "M" metadata
//     events) so scheduler / link / method activity stack visually.
//
// Timestamps are *simulated* microseconds since the run's epoch — the
// timeline you see in Perfetto is the simulation's, not the host's.
#pragma once

#include <string>

#include "sim/trace.h"

namespace bnm::obs::trace {

/// One record per line. Deterministic for a deterministic trace.
std::string to_jsonl(const bnm::sim::Trace& trace);

/// Chrome trace_event JSON (see header comment). Deterministic: component
/// rows are assigned tids in order of first appearance.
std::string to_chrome_trace(const bnm::sim::Trace& trace);

/// Write `contents` to `path`. Returns false (and leaves a partial file
/// possibly in place) on I/O failure.
bool write_file(const std::string& path, const std::string& contents);

}  // namespace bnm::obs::trace
