// Wall-clock profiling scopes, off by default.
//
// Deliberately a separate facility from obs::MetricsRegistry: profile
// samples are host wall-clock nanoseconds, which vary run to run, while the
// registry's contract is deterministic, byte-identical snapshots. Mixing
// them would poison the determinism guarantee, so timings live here and
// never enter a metrics snapshot.
//
// Usage: wrap a region in BNM_PROF_SCOPE("site.name"). When profiling is
// disabled (the default) the scope costs one relaxed atomic load and a
// predictable branch — no clock read, no allocation (tests/test_obs.cpp
// asserts the no-allocation part with an operator-new hook, and
// bench/obs_overhead gates the total cost at <1% of a measurement run).
// When enabled, each scope records {calls, total_ns, max_ns} into a
// thread-local table keyed by a small site id.
//
//   void Scheduler::step() {
//     BNM_PROF_SCOPE("scheduler.dispatch");
//     ...
//   }
//
// Site registration (ProfSite) is cold and happens once per call site via a
// function-local static inside the macro. report() merges all threads'
// tables and sorts by total time; perf_matrix prints it as the per-run
// profile table.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace bnm::obs::prof {

/// Global profiling switch. Hot path reads it relaxed; flipping it between
/// timed regions is the caller's job (benches/examples enable it around the
/// pass they want profiled).
extern std::atomic<bool> g_enabled;

inline bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);

/// Registered call site. Construction is cold (takes a registry lock);
/// the macro below caches one per site in a function-local static.
class ProfSite {
 public:
  explicit ProfSite(const char* name);
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

namespace detail {
/// Per-thread, per-site accumulators. The owning thread is the only writer;
/// relaxed atomics let report() read live tables from another thread
/// without a data race.
struct SiteStats {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> max_ns{0};
};
/// The calling thread's per-site stats table (indexed by site id). Grows
/// to cover `id` and returns a reference valid until thread exit.
SiteStats& tls_stats(std::uint32_t id);
}  // namespace detail

/// RAII timing scope. Reads the clock only when profiling is enabled at
/// both entry and exit; a mid-scope flip simply drops that one sample.
class ProfScope {
 public:
  explicit ProfScope(const ProfSite& site) : site_id_{site.id()} {
    if (enabled()) {
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfScope() {
    if (armed_ && enabled()) {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      detail::SiteStats& s = detail::tls_stats(site_id_);
      auto uns = static_cast<std::uint64_t>(ns);
      s.calls.fetch_add(1, std::memory_order_relaxed);
      s.total_ns.fetch_add(uns, std::memory_order_relaxed);
      if (uns > s.max_ns.load(std::memory_order_relaxed)) {
        s.max_ns.store(uns, std::memory_order_relaxed);
      }
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  std::uint32_t site_id_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_;
};

/// One row of the merged profile report.
struct ProfEntry {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Merge all threads' tables; rows with zero calls are omitted, remaining
/// rows sorted by total_ns descending.
std::vector<ProfEntry> report();

/// Zero every thread's table (quiescent points only).
void reset();

/// Aligned human-readable table of report() (perf_matrix, examples).
std::string format_report(const std::vector<ProfEntry>& entries);

}  // namespace bnm::obs::prof

#define BNM_PROF_CONCAT2(a, b) a##b
#define BNM_PROF_CONCAT(a, b) BNM_PROF_CONCAT2(a, b)

/// Profile the enclosing scope under `name` (a string literal).
#define BNM_PROF_SCOPE(name)                                          \
  static const ::bnm::obs::prof::ProfSite BNM_PROF_CONCAT(            \
      bnm_prof_site_, __LINE__){name};                                \
  ::bnm::obs::prof::ProfScope BNM_PROF_CONCAT(bnm_prof_scope_,        \
                                              __LINE__){              \
      BNM_PROF_CONCAT(bnm_prof_site_, __LINE__)}
