#include "ws/frame.h"

namespace bnm::ws {

bool is_control(Opcode op) {
  return static_cast<std::uint8_t>(op) >= 0x8;
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kContinuation: return "continuation";
    case Opcode::kText: return "text";
    case Opcode::kBinary: return "binary";
    case Opcode::kClose: return "close";
    case Opcode::kPing: return "ping";
    case Opcode::kPong: return "pong";
  }
  return "?";
}

std::string Frame::encode() const {
  std::string out;
  out.reserve(payload.size() + 14);

  const std::uint8_t b0 =
      static_cast<std::uint8_t>((fin ? 0x80 : 0x00) |
                                static_cast<std::uint8_t>(opcode));
  out.push_back(static_cast<char>(b0));

  const std::size_t len = payload.size();
  const std::uint8_t mask_bit = masked ? 0x80 : 0x00;
  if (len < 126) {
    out.push_back(static_cast<char>(mask_bit | static_cast<std::uint8_t>(len)));
  } else if (len <= 0xffff) {
    out.push_back(static_cast<char>(mask_bit | 126));
    out.push_back(static_cast<char>((len >> 8) & 0xff));
    out.push_back(static_cast<char>(len & 0xff));
  } else {
    out.push_back(static_cast<char>(mask_bit | 127));
    for (int i = 7; i >= 0; --i) {
      out.push_back(static_cast<char>((static_cast<std::uint64_t>(len) >> (8 * i)) & 0xff));
    }
  }

  if (masked) {
    std::uint8_t key[4];
    for (int i = 0; i < 4; ++i) {
      key[i] = static_cast<std::uint8_t>((masking_key >> (8 * (3 - i))) & 0xff);
      out.push_back(static_cast<char>(key[i]));
    }
    for (std::size_t i = 0; i < payload.size(); ++i) {
      out.push_back(static_cast<char>(payload[i] ^ key[i % 4]));
    }
  } else {
    out.append(payload.begin(), payload.end());
  }
  return out;
}

std::vector<std::uint8_t> encode_close_payload(std::uint16_t code,
                                               const std::string& reason) {
  std::vector<std::uint8_t> out;
  out.reserve(2 + reason.size());
  out.push_back(static_cast<std::uint8_t>(code >> 8));
  out.push_back(static_cast<std::uint8_t>(code & 0xff));
  out.insert(out.end(), reason.begin(), reason.end());
  return out;
}

std::optional<std::uint16_t> decode_close_code(
    const std::vector<std::uint8_t>& payload) {
  if (payload.size() < 2) return std::nullopt;
  return static_cast<std::uint16_t>((payload[0] << 8) | payload[1]);
}

void FrameDecoder::feed(const std::string& bytes) {
  if (failed()) return;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  while (try_decode_one()) {
  }
}

void FrameDecoder::feed(const net::Payload& bytes) {
  if (failed()) return;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  while (try_decode_one()) {
  }
}

bool FrameDecoder::try_decode_one() {
  if (failed() || buffer_.size() < 2) return false;

  const std::uint8_t b0 = buffer_[0];
  const std::uint8_t b1 = buffer_[1];
  if ((b0 & 0x70) != 0) {  // RSV1-3 must be zero (no extensions negotiated)
    error_ = Error::kReservedBits;
    return false;
  }
  const auto opcode = static_cast<Opcode>(b0 & 0x0f);
  switch (opcode) {
    case Opcode::kContinuation:
    case Opcode::kText:
    case Opcode::kBinary:
    case Opcode::kClose:
    case Opcode::kPing:
    case Opcode::kPong:
      break;
    default:
      error_ = Error::kBadOpcode;
      return false;
  }
  const bool fin = (b0 & 0x80) != 0;
  const bool masked = (b1 & 0x80) != 0;

  std::size_t header = 2;
  std::uint64_t len = b1 & 0x7f;
  if (len == 126) {
    if (buffer_.size() < 4) return false;
    len = (static_cast<std::uint64_t>(buffer_[2]) << 8) | buffer_[3];
    header = 4;
  } else if (len == 127) {
    if (buffer_.size() < 10) return false;
    len = 0;
    for (int i = 0; i < 8; ++i) len = (len << 8) | buffer_[2 + i];
    header = 10;
  }

  if (is_control(opcode)) {
    if (len > 125) {
      error_ = Error::kControlTooLong;
      return false;
    }
    if (!fin) {
      error_ = Error::kControlFragmented;
      return false;
    }
  }

  std::uint8_t key[4] = {0, 0, 0, 0};
  if (masked) {
    if (buffer_.size() < header + 4) return false;
    for (int i = 0; i < 4; ++i) key[i] = buffer_[header + static_cast<std::size_t>(i)];
    header += 4;
  }

  if (buffer_.size() < header + len) return false;

  Frame f;
  f.fin = fin;
  f.opcode = opcode;
  f.masked = masked;
  f.masking_key = (std::uint32_t{key[0]} << 24) | (std::uint32_t{key[1]} << 16) |
                  (std::uint32_t{key[2]} << 8) | key[3];
  f.payload.reserve(static_cast<std::size_t>(len));
  for (std::uint64_t i = 0; i < len; ++i) {
    std::uint8_t byte = buffer_[header + static_cast<std::size_t>(i)];
    if (masked) byte ^= key[i % 4];
    f.payload.push_back(byte);
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(header + len));
  ready_.push_back(std::move(f));
  return true;
}

std::optional<Frame> FrameDecoder::take() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return f;
}

std::optional<MessageAssembler::Message> MessageAssembler::add(const Frame& frame) {
  if (frame.opcode == Opcode::kText || frame.opcode == Opcode::kBinary) {
    partial_ = Message{frame.opcode, frame.payload};
    in_progress_ = !frame.fin;
    if (frame.fin) return std::move(partial_);
    return std::nullopt;
  }
  if (frame.opcode == Opcode::kContinuation && in_progress_) {
    partial_.data.insert(partial_.data.end(), frame.payload.begin(),
                         frame.payload.end());
    if (frame.fin) {
      in_progress_ = false;
      return std::move(partial_);
    }
  }
  return std::nullopt;
}

}  // namespace bnm::ws
