// RFC 6455 WebSocket frame codec: encoder and incremental decoder, with
// client-side masking, 7/16/64-bit payload lengths, and control frames.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/payload.h"

namespace bnm::ws {

enum class Opcode : std::uint8_t {
  kContinuation = 0x0,
  kText = 0x1,
  kBinary = 0x2,
  kClose = 0x8,
  kPing = 0x9,
  kPong = 0xA,
};

bool is_control(Opcode op);
const char* opcode_name(Opcode op);

struct Frame {
  bool fin = true;
  Opcode opcode = Opcode::kBinary;
  bool masked = false;
  std::uint32_t masking_key = 0;
  std::vector<std::uint8_t> payload;

  /// Serialize to wire bytes. If `masked`, the payload is XOR-masked with
  /// `masking_key` on the wire (the struct's payload stays clear-text).
  std::string encode() const;
};

/// Close frame payload helpers (2-byte big-endian status code + reason).
std::vector<std::uint8_t> encode_close_payload(std::uint16_t code,
                                               const std::string& reason);
std::optional<std::uint16_t> decode_close_code(
    const std::vector<std::uint8_t>& payload);

/// Incremental frame decoder. Feed wire bytes; complete frames (with
/// unmasked payloads) pop out in order.
class FrameDecoder {
 public:
  enum class Error { kNone, kReservedBits, kBadOpcode, kControlTooLong,
                     kControlFragmented };

  void feed(const std::string& bytes);
  /// Same, straight from a payload view (no intermediate string copy).
  void feed(const net::Payload& bytes);
  /// Next complete frame, if any.
  std::optional<Frame> take();

  bool failed() const { return error_ != Error::kNone; }
  Error error() const { return error_; }

 private:
  bool try_decode_one();

  std::vector<std::uint8_t> buffer_;
  std::vector<Frame> ready_;
  Error error_ = Error::kNone;
};

/// Reassembles data frames (handling continuation) into complete messages.
class MessageAssembler {
 public:
  struct Message {
    Opcode type = Opcode::kBinary;  ///< kText or kBinary
    std::vector<std::uint8_t> data;
  };

  /// Feed one *data* frame (text/binary/continuation). Returns a complete
  /// message when `frame.fin` closes it.
  std::optional<Message> add(const Frame& frame);

 private:
  bool in_progress_ = false;
  Message partial_;
};

}  // namespace bnm::ws
