#include "ws/base64.h"

namespace bnm::ws {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int decode_char(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string base64_encode(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve((len + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= len) {
    const std::uint32_t n = (std::uint32_t{data[i]} << 16) |
                            (std::uint32_t{data[i + 1]} << 8) | data[i + 2];
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
    i += 3;
  }
  const std::size_t rem = len - i;
  if (rem == 1) {
    const std::uint32_t n = std::uint32_t{data[i]} << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out += "==";
  } else if (rem == 2) {
    const std::uint32_t n =
        (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::string base64_encode(const std::string& data) {
  return base64_encode(reinterpret_cast<const std::uint8_t*>(data.data()),
                       data.size());
}

std::string base64_encode(const std::vector<std::uint8_t>& data) {
  return base64_encode(data.data(), data.size());
}

std::optional<std::vector<std::uint8_t>> base64_decode(const std::string& text) {
  if (text.size() % 4 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding only allowed in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) return std::nullopt;
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) return std::nullopt;  // data after padding
        vals[j] = decode_char(c);
        if (vals[j] < 0) return std::nullopt;
      }
    }
    const std::uint32_t n = (static_cast<std::uint32_t>(vals[0]) << 18) |
                            (static_cast<std::uint32_t>(vals[1]) << 12) |
                            (static_cast<std::uint32_t>(vals[2]) << 6) |
                            static_cast<std::uint32_t>(vals[3]);
    out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n & 0xff));
  }
  return out;
}

}  // namespace bnm::ws
