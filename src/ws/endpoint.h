// WebSocket endpoints over the simulated TCP stack: opening handshake
// (RFC 6455 section 4) plus the message-level API browsers expose.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "http/parser.h"
#include "net/host.h"
#include "ws/frame.h"

namespace bnm::ws {

/// RFC 6455 magic GUID appended to the client key before hashing.
inline constexpr const char* kHandshakeGuid =
    "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";

/// Compute Sec-WebSocket-Accept for a Sec-WebSocket-Key.
std::string accept_key_for(const std::string& client_key);

/// An established WebSocket connection (either role). Client-role
/// connections mask outgoing frames, per the RFC.
class WebSocketConnection
    : public std::enable_shared_from_this<WebSocketConnection> {
 public:
  enum class Role { kClient, kServer };

  struct Callbacks {
    std::function<void(const MessageAssembler::Message&)> on_message;
    std::function<void(const std::vector<std::uint8_t>&)> on_pong;
    std::function<void(std::uint16_t code)> on_close;
  };

  WebSocketConnection(std::shared_ptr<net::TcpConnection> tcp, Role role,
                      sim::Rng rng);

  void set_callbacks(Callbacks cbs) { cbs_ = std::move(cbs); }

  /// Fragment outgoing messages into frames of at most this payload size
  /// (RFC 6455 5.4). 0 = never fragment (the default).
  void set_max_frame_payload(std::size_t bytes) { max_frame_payload_ = bytes; }

  void send_text(const std::string& text);
  void send_binary(std::vector<std::uint8_t> data);
  void ping(std::vector<std::uint8_t> payload = {});
  void close(std::uint16_t code = 1000, const std::string& reason = "");

  bool open() const { return open_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_received() const { return messages_received_; }

  /// Wire-level entry: bytes arrived on the underlying TCP connection.
  void on_tcp_data(const net::Payload& bytes);
  void on_tcp_closed();

 private:
  void send_frame(Frame frame);
  void send_message(Opcode type, std::vector<std::uint8_t> payload);

  std::shared_ptr<net::TcpConnection> tcp_;
  std::size_t max_frame_payload_ = 0;
  Role role_;
  sim::Rng rng_;
  Callbacks cbs_;
  FrameDecoder decoder_;
  MessageAssembler assembler_;
  bool open_ = true;
  bool close_sent_ = false;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
};

/// Client-side opening handshake.
class WebSocketClient {
 public:
  using OpenCallback = std::function<void(std::shared_ptr<WebSocketConnection>)>;
  using ErrorCallback = std::function<void(const std::string&)>;

  explicit WebSocketClient(net::Host& host);

  /// Handshakes still in flight are detached: their TCP callbacks become
  /// no-ops, so a client destroyed mid-handshake (a cancelled measurement
  /// run) is never called back.
  ~WebSocketClient();

  /// Open ws://server/path. `on_open` fires when the 101 handshake
  /// completes and the connection is ready for messages.
  void connect(net::Endpoint server, const std::string& path,
               OpenCallback on_open);
  void set_error_callback(ErrorCallback cb) { on_error_ = std::move(cb); }

 private:
  struct Pending {
    std::shared_ptr<net::TcpConnection> tcp;
    http::ResponseParser parser;
    std::string key;
    std::shared_ptr<WebSocketConnection> ws;
  };

  net::Host& host_;
  sim::Rng rng_;
  ErrorCallback on_error_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Server-side upgrade endpoint bound to a host port.
class WebSocketServer {
 public:
  using OpenCallback = std::function<void(std::shared_ptr<WebSocketConnection>)>;

  WebSocketServer(net::Host& host, net::Port port, OpenCallback on_open);

  std::uint64_t upgrades_completed() const { return upgrades_; }

 private:
  struct Pending {
    std::shared_ptr<net::TcpConnection> tcp;
    http::RequestParser parser;
    std::shared_ptr<WebSocketConnection> ws;
  };

  void on_accept(std::shared_ptr<net::TcpConnection> conn);

  net::Host& host_;
  net::Port port_;
  OpenCallback on_open_;
  std::uint64_t upgrades_ = 0;
};

}  // namespace bnm::ws
