#include "ws/sha1.h"

#include <cstring>

namespace bnm::ws {

namespace {
constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

std::array<std::uint8_t, 20> sha1(const std::string& data) {
  std::uint32_t h0 = 0x67452301, h1 = 0xEFCDAB89, h2 = 0x98BADCFE,
                h3 = 0x10325476, h4 = 0xC3D2E1F0;

  // Pre-process: append 0x80, pad with zeros, append 64-bit bit length.
  std::string msg = data;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(msg.size()) * 8;
  msg.push_back(static_cast<char>(0x80));
  while (msg.size() % 64 != 56) msg.push_back('\0');
  for (int i = 7; i >= 0; --i) {
    msg.push_back(static_cast<char>((bit_len >> (8 * i)) & 0xff));
  }

  for (std::size_t chunk = 0; chunk < msg.size(); chunk += 64) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(static_cast<unsigned char>(msg[chunk + 4 * i])) << 24) |
             (static_cast<std::uint32_t>(static_cast<unsigned char>(msg[chunk + 4 * i + 1])) << 16) |
             (static_cast<std::uint32_t>(static_cast<unsigned char>(msg[chunk + 4 * i + 2])) << 8) |
             static_cast<std::uint32_t>(static_cast<unsigned char>(msg[chunk + 4 * i + 3]));
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }

    std::uint32_t a = h0, b = h1, c = h2, d = h3, e = h4;
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = temp;
    }
    h0 += a;
    h1 += b;
    h2 += c;
    h3 += d;
    h4 += e;
  }

  std::array<std::uint8_t, 20> out;
  const std::uint32_t hs[5] = {h0, h1, h2, h3, h4};
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(hs[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(hs[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(hs[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(hs[i]);
  }
  return out;
}

std::string sha1_hex(const std::string& data) {
  static const char* hex = "0123456789abcdef";
  const auto digest = sha1(data);
  std::string out;
  out.reserve(40);
  for (auto b : digest) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 0xf]);
  }
  return out;
}

}  // namespace bnm::ws
