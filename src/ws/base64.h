// Base64 (RFC 4648) encode/decode, used by the WebSocket handshake.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bnm::ws {

std::string base64_encode(const std::uint8_t* data, std::size_t len);
std::string base64_encode(const std::string& data);
std::string base64_encode(const std::vector<std::uint8_t>& data);

/// Returns nullopt on malformed input (bad characters / bad padding).
std::optional<std::vector<std::uint8_t>> base64_decode(const std::string& text);

}  // namespace bnm::ws
