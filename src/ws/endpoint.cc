#include "ws/endpoint.h"

#include <utility>

#include "ws/base64.h"
#include "ws/sha1.h"

namespace bnm::ws {

std::string accept_key_for(const std::string& client_key) {
  const auto digest = sha1(client_key + kHandshakeGuid);
  return base64_encode(digest.data(), digest.size());
}

// ---------------------------------------------------------------- connection

WebSocketConnection::WebSocketConnection(
    std::shared_ptr<net::TcpConnection> tcp, Role role, sim::Rng rng)
    : tcp_{std::move(tcp)}, role_{role}, rng_{rng} {}

void WebSocketConnection::send_frame(Frame frame) {
  if (!open_ && frame.opcode != Opcode::kClose) return;
  if (role_ == Role::kClient) {
    frame.masked = true;
    frame.masking_key = static_cast<std::uint32_t>(rng_.next_u64());
  }
  tcp_->send(frame.encode());
}

void WebSocketConnection::send_message(Opcode type,
                                       std::vector<std::uint8_t> payload) {
  ++messages_sent_;
  if (max_frame_payload_ == 0 || payload.size() <= max_frame_payload_) {
    Frame f;
    f.opcode = type;
    f.payload = std::move(payload);
    send_frame(std::move(f));
    return;
  }
  // Fragment: first frame carries the opcode, continuations follow, the
  // last one sets FIN (RFC 6455 5.4).
  std::size_t offset = 0;
  bool first = true;
  while (offset < payload.size()) {
    const std::size_t take =
        std::min(max_frame_payload_, payload.size() - offset);
    Frame f;
    f.opcode = first ? type : Opcode::kContinuation;
    f.fin = offset + take == payload.size();
    f.payload.assign(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                     payload.begin() + static_cast<std::ptrdiff_t>(offset + take));
    send_frame(std::move(f));
    offset += take;
    first = false;
  }
}

void WebSocketConnection::send_text(const std::string& text) {
  send_message(Opcode::kText, {text.begin(), text.end()});
}

void WebSocketConnection::send_binary(std::vector<std::uint8_t> data) {
  send_message(Opcode::kBinary, std::move(data));
}

void WebSocketConnection::ping(std::vector<std::uint8_t> payload) {
  Frame f;
  f.opcode = Opcode::kPing;
  f.payload = std::move(payload);
  send_frame(std::move(f));
}

void WebSocketConnection::close(std::uint16_t code, const std::string& reason) {
  if (close_sent_) return;
  close_sent_ = true;
  Frame f;
  f.opcode = Opcode::kClose;
  f.payload = encode_close_payload(code, reason);
  send_frame(std::move(f));
  open_ = false;
  tcp_->close();
}

void WebSocketConnection::on_tcp_data(const net::Payload& bytes) {
  decoder_.feed(bytes);
  if (decoder_.failed()) {
    open_ = false;
    tcp_->abort();
    if (cbs_.on_close) cbs_.on_close(1002);  // protocol error
    return;
  }
  while (auto frame = decoder_.take()) {
    switch (frame->opcode) {
      case Opcode::kText:
      case Opcode::kBinary:
      case Opcode::kContinuation:
        if (auto msg = assembler_.add(*frame)) {
          ++messages_received_;
          if (cbs_.on_message) cbs_.on_message(*msg);
        }
        break;
      case Opcode::kPing: {
        Frame pong;
        pong.opcode = Opcode::kPong;
        pong.payload = frame->payload;
        send_frame(std::move(pong));
        break;
      }
      case Opcode::kPong:
        if (cbs_.on_pong) cbs_.on_pong(frame->payload);
        break;
      case Opcode::kClose: {
        const auto code = decode_close_code(frame->payload).value_or(1005);
        if (!close_sent_) {
          close_sent_ = true;
          Frame reply;
          reply.opcode = Opcode::kClose;
          reply.payload = frame->payload;
          send_frame(std::move(reply));
        }
        open_ = false;
        tcp_->close();
        if (cbs_.on_close) cbs_.on_close(code);
        break;
      }
    }
  }
}

void WebSocketConnection::on_tcp_closed() {
  if (!open_) return;
  open_ = false;
  if (cbs_.on_close) cbs_.on_close(1006);  // abnormal closure
}

// -------------------------------------------------------------------- client

WebSocketClient::WebSocketClient(net::Host& host)
    : host_{host}, rng_{host.sim().rng_for("ws-client/" + host.config().name)} {}

void WebSocketClient::connect(net::Endpoint server, const std::string& path,
                              OpenCallback on_open) {
  auto pending = std::make_shared<Pending>();

  std::uint8_t nonce[16];
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng_.next_u64());
  pending->key = base64_encode(nonce, sizeof nonce);

  net::TcpCallbacks cbs;
  cbs.on_connect = [alive = alive_, pending, server, path] {
    if (!*alive) return;
    http::HttpRequest req;
    req.method = "GET";
    req.target = path;
    req.headers.set("Host", server.to_string());
    req.headers.set("Upgrade", "websocket");
    req.headers.set("Connection", "Upgrade");
    req.headers.set("Sec-WebSocket-Key", pending->key);
    req.headers.set("Sec-WebSocket-Version", "13");
    pending->tcp->send(req.serialize());
  };
  cbs.on_data = [this, alive = alive_, pending, on_open = std::move(on_open)](
                    const net::Payload& bytes) mutable {
    if (pending->ws) {
      pending->ws->on_tcp_data(bytes);
      return;
    }
    if (!*alive) {
      pending->tcp->abort();
      return;
    }
    pending->parser.feed(bytes);
    if (pending->parser.failed()) {
      if (on_error_) on_error_("handshake parse error");
      pending->tcp->abort();
      return;
    }
    auto resp = pending->parser.take();
    if (!resp) return;
    if (resp->status != 101 ||
        resp->headers.get("Sec-WebSocket-Accept").value_or("") !=
            accept_key_for(pending->key)) {
      if (on_error_) on_error_("handshake rejected");
      pending->tcp->abort();
      return;
    }
    pending->ws = std::make_shared<WebSocketConnection>(
        pending->tcp, WebSocketConnection::Role::kClient,
        rng_.fork("conn"));
    on_open(pending->ws);
  };
  cbs.on_close = [pending] {
    if (pending->ws) pending->ws->on_tcp_closed();
  };
  cbs.on_reset = [this, alive = alive_, pending] {
    // A reset mid-handshake (or an aborted transport under faults) must
    // surface instead of leaving the opener waiting forever.
    if (pending->ws) {
      pending->ws->on_tcp_closed();
      return;
    }
    if (!*alive) return;
    if (on_error_) on_error_("connection reset");
  };
  pending->tcp = host_.tcp_connect(server, std::move(cbs));
}

WebSocketClient::~WebSocketClient() { *alive_ = false; }

// -------------------------------------------------------------------- server

WebSocketServer::WebSocketServer(net::Host& host, net::Port port,
                                 OpenCallback on_open)
    : host_{host}, port_{port}, on_open_{std::move(on_open)} {
  host_.tcp_listen(port_, [this](std::shared_ptr<net::TcpConnection> conn) {
    on_accept(std::move(conn));
  });
}

void WebSocketServer::on_accept(std::shared_ptr<net::TcpConnection> conn) {
  auto pending = std::make_shared<Pending>();
  pending->tcp = std::move(conn);
  net::TcpCallbacks cbs;
  cbs.on_data = [this, pending](const net::Payload& bytes) {
    if (pending->ws) {
      pending->ws->on_tcp_data(bytes);
      return;
    }
    pending->parser.feed(bytes);
    if (pending->parser.failed()) {
      pending->tcp->abort();
      return;
    }
    auto req = pending->parser.take();
    if (!req) return;
    const auto key = req->headers.get("Sec-WebSocket-Key");
    const bool is_upgrade =
        req->headers.get("Upgrade").has_value() && key.has_value();
    if (!is_upgrade) {
      http::HttpResponse bad = http::HttpResponse::make(400, "not a websocket");
      bad.headers.set("Connection", "close");
      pending->tcp->send(bad.serialize());
      pending->tcp->close();
      return;
    }
    http::HttpResponse resp;
    resp.status = 101;
    resp.reason = http::reason_phrase(101);
    resp.headers.set("Upgrade", "websocket");
    resp.headers.set("Connection", "Upgrade");
    resp.headers.set("Sec-WebSocket-Accept", accept_key_for(*key));
    resp.headers.set("Content-Length", "0");
    pending->tcp->send(resp.serialize());
    pending->ws = std::make_shared<WebSocketConnection>(
        pending->tcp, WebSocketConnection::Role::kServer,
        host_.sim().rng_for("ws-server-conn"));
    ++upgrades_;
    if (on_open_) on_open_(pending->ws);
  };
  cbs.on_close = [pending] {
    if (pending->ws) pending->ws->on_tcp_closed();
  };
  pending->tcp->set_callbacks(std::move(cbs));
}

}  // namespace bnm::ws
