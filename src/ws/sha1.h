// Self-contained SHA-1 (FIPS 180-1), needed for the WebSocket opening
// handshake (Sec-WebSocket-Accept). Not for new cryptographic designs;
// RFC 6455 mandates it for this one purpose.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bnm::ws {

/// 20-byte SHA-1 digest of `data`.
std::array<std::uint8_t, 20> sha1(const std::string& data);

/// Hex rendering of a digest (tests against known vectors).
std::string sha1_hex(const std::string& data);

}  // namespace bnm::ws
