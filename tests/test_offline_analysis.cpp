#include <gtest/gtest.h>

#include <cstdio>

#include "core/offline_analysis.h"
#include "core/testbed.h"
#include "http/client.h"
#include "net/pcap_writer.h"

namespace bnm::core {
namespace {

const net::IpAddress kClient{10, 0, 0, 1};
const net::IpAddress kServer{10, 0, 0, 2};

net::PcapRecord rec_at(double ms, net::Endpoint src, net::Endpoint dst,
                       const std::string& payload) {
  net::PcapRecord r;
  r.timestamp = sim::TimePoint::epoch() + sim::Duration::from_millis_f(ms);
  r.packet.protocol = net::Protocol::kTcp;
  r.packet.src = src;
  r.packet.dst = dst;
  r.packet.flags.ack = true;
  r.packet.flags.psh = !payload.empty();
  r.packet.payload = net::to_bytes(payload);
  return r;
}

TEST(OfflineAnalyzer, PairsRequestsWithResponses) {
  const net::Endpoint c{kClient, 50000};
  const net::Endpoint s{kServer, 80};
  std::vector<net::PcapRecord> records;
  records.push_back(rec_at(0.0, c, s, "GET 1"));
  records.push_back(rec_at(50.0, s, c, "resp 1"));
  records.push_back(rec_at(100.0, c, s, "GET 2"));
  records.push_back(rec_at(151.0, s, c, "resp 2"));

  const auto rtts =
      OfflineAnalyzer::request_response_rtts(records, kClient, 80);
  ASSERT_EQ(rtts.size(), 2u);
  EXPECT_DOUBLE_EQ(rtts[0].rtt_ms, 50.0);
  EXPECT_DOUBLE_EQ(rtts[1].rtt_ms, 51.0);
  EXPECT_EQ(rtts[0].request_bytes, 5u);
  EXPECT_EQ(rtts[0].response_bytes, 6u);
}

TEST(OfflineAnalyzer, IgnoresPureAcksAndOtherFlows) {
  const net::Endpoint c{kClient, 50000};
  const net::Endpoint s{kServer, 80};
  std::vector<net::PcapRecord> records;
  records.push_back(rec_at(0.0, c, s, "GET"));
  records.push_back(rec_at(10.0, c, s, ""));  // pure ack: ignored
  // A different flow's data, must not match.
  records.push_back(
      rec_at(20.0, net::Endpoint{kServer, 9999}, c, "other flow"));
  records.push_back(rec_at(50.0, s, c, "resp"));

  const auto rtts =
      OfflineAnalyzer::request_response_rtts(records, kClient, 80);
  ASSERT_EQ(rtts.size(), 1u);
  EXPECT_DOUBLE_EQ(rtts[0].rtt_ms, 50.0);
}

TEST(OfflineAnalyzer, UnansweredRequestDropped) {
  const net::Endpoint c{kClient, 50000};
  const net::Endpoint s{kServer, 80};
  std::vector<net::PcapRecord> records;
  records.push_back(rec_at(0.0, c, s, "GET lost"));
  records.push_back(rec_at(200.0, c, s, "GET retry"));
  records.push_back(rec_at(250.0, s, c, "resp"));
  const auto rtts =
      OfflineAnalyzer::request_response_rtts(records, kClient, 80);
  ASSERT_EQ(rtts.size(), 1u);
  EXPECT_DOUBLE_EQ(rtts[0].rtt_ms, 50.0);
}

TEST(OfflineAnalyzer, SummaryStatistics) {
  std::vector<OfflineRtt> rtts(3);
  rtts[0].rtt_ms = 50;
  rtts[1].rtt_ms = 52;
  rtts[2].rtt_ms = 51;
  const auto s = OfflineAnalyzer::summarize(rtts);
  EXPECT_EQ(s.exchanges, 3u);
  EXPECT_DOUBLE_EQ(s.min_rtt_ms, 50.0);
  EXPECT_DOUBLE_EQ(s.median_rtt_ms, 51.0);
  EXPECT_DOUBLE_EQ(s.max_rtt_ms, 52.0);
  EXPECT_EQ(OfflineAnalyzer::summarize({}).exchanges, 0u);
}

TEST(OfflineAnalyzer, EndToEndThroughPcapFile) {
  // Generate real traffic on the testbed, export the client capture to a
  // pcap file, analyze it offline: RTT ~ the 50 ms netem delay.
  Testbed::Config cfg;
  Testbed tb{cfg};
  http::HttpClient client{tb.client()};
  for (int i = 0; i < 3; ++i) {
    http::HttpRequest req;
    req.method = "GET";
    req.target = "/echo";
    client.request(tb.http_endpoint(), req,
                   [](http::HttpResponse, http::HttpClient::TransferInfo) {});
    tb.sim().scheduler().run();
  }

  const std::string path = ::testing::TempDir() + "/bnm_offline.pcap";
  net::PcapWriter::write_file(tb.client().capture(), path);

  const auto rtts = OfflineAnalyzer::analyze_file(path, kClient, 80);
  ASSERT_EQ(rtts.size(), 3u);
  for (const auto& r : rtts) {
    EXPECT_GT(r.rtt_ms, 50.0);
    EXPECT_LT(r.rtt_ms, 51.5);
  }
  std::remove(path.c_str());
}

TEST(OfflineAnalyzer, MissingFileThrows) {
  EXPECT_THROW(OfflineAnalyzer::analyze_file("/no/such.pcap", kClient, 80),
               std::runtime_error);
}

}  // namespace
}  // namespace bnm::core
