// The crash-safe matrix engine's runtime contract: watchdogs cancel hung
// cells, failed cells retry with backoff and quarantine with a structured
// error, cancellation drains gracefully, progress callbacks cannot wedge a
// run, and with everything disabled the engine is byte-identical to the
// legacy run_matrix path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/parallel_runner.h"

namespace bnm::core {
namespace {

std::vector<ExperimentConfig> small_matrix(int cells, int runs = 2) {
  using B = browser::BrowserId;
  using O = browser::OsId;
  using K = methods::ProbeKind;
  struct Proto {
    B b;
    O os;
    K k;
  };
  const Proto protos[] = {
      {B::kChrome, O::kUbuntu, K::kXhrGet},
      {B::kFirefox, O::kUbuntu, K::kDom},
      {B::kChrome, O::kWindows7, K::kJavaSocket},
      {B::kChrome, O::kUbuntu, K::kWebSocket},
  };
  std::vector<ExperimentConfig> out;
  for (int i = 0; i < cells; ++i) {
    ExperimentConfig cfg;
    const Proto& p = protos[static_cast<std::size_t>(i) % 4];
    cfg.browser = p.b;
    cfg.os = p.os;
    cfg.kind = p.k;
    cfg.runs = runs;
    cfg.seed = 42 + static_cast<std::uint64_t>(i) / 4;
    out.push_back(cfg);
  }
  return out;
}

MatrixOptions with_jobs(int jobs) {
  MatrixOptions opts;
  opts.jobs = jobs;
  return opts;
}

void expect_identical(const OverheadSeries& a, const OverheadSeries& b) {
  EXPECT_EQ(a.case_label, b.case_label);
  EXPECT_EQ(a.method_name, b.method_name);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.first_error, b.first_error);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    // Bitwise equality, not EXPECT_DOUBLE_EQ: determinism is the contract.
    EXPECT_EQ(a.samples[i].d1_ms, b.samples[i].d1_ms);
    EXPECT_EQ(a.samples[i].d2_ms, b.samples[i].d2_ms);
    EXPECT_EQ(a.samples[i].net_rtt1_ms, b.samples[i].net_rtt1_ms);
    EXPECT_EQ(a.samples[i].net_rtt2_ms, b.samples[i].net_rtt2_ms);
  }
}

TEST(CheckedRunner, DisabledEngineMatchesLegacyRunMatrix) {
  auto cells = small_matrix(5);
  const auto legacy = run_matrix(cells, /*jobs=*/1);
  const MatrixResult checked = run_matrix_checked(cells, with_jobs(1));
  ASSERT_EQ(checked.series.size(), legacy.size());
  EXPECT_TRUE(checked.ok());
  EXPECT_EQ(checked.cells_run, cells.size());
  EXPECT_EQ(checked.retries, 0u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(checked.series[i], legacy[i]);
  }
}

TEST(CheckedRunner, ParallelMatchesSerial) {
  auto cells = small_matrix(6);
  const MatrixResult serial = run_matrix_checked(cells, with_jobs(1));
  const MatrixResult parallel = run_matrix_checked(cells, with_jobs(3));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(serial.series[i], parallel.series[i]);
  }
}

TEST(CheckedRunner, PoisonedCellQuarantinesAfterMaxAttempts) {
  auto cells = small_matrix(4);
  cells[1].seed = 0xDEAD;  // marks the poisoned cell

  std::atomic<int> attempts{0};
  const WatchedCellRunner faulty = [&](const ExperimentConfig& cfg,
                                       CellWatchdog* wd) {
    if (cfg.seed == 0xDEAD) {
      ++attempts;
      throw std::runtime_error("boom");
    }
    return run_experiment_watched(cfg, wd);
  };

  MatrixOptions options;
  options.jobs = 2;
  options.watchdog.max_attempts = 3;
  options.watchdog.backoff_base = std::chrono::milliseconds{1};
  const MatrixResult result = run_matrix_checked(cells, options, faulty);

  // Retried exactly max_attempts times, then quarantined with structure.
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(result.retries, 2u);
  ASSERT_EQ(result.quarantined.size(), 1u);
  const CellError& err = result.quarantined[0];
  EXPECT_EQ(err.cell, 1u);
  EXPECT_EQ(err.where, "cell");
  EXPECT_EQ(err.what, "boom");
  EXPECT_EQ(err.attempts, 3);

  // The quarantined cell's series mirrors legacy failure shape; the other
  // cells are untouched.
  EXPECT_EQ(result.series[1].failures, cells[1].runs);
  EXPECT_EQ(result.series[1].first_error, "uncaught exception: boom");
  EXPECT_TRUE(result.series[1].samples.empty());
  for (std::size_t i : {0u, 2u, 3u}) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(result.series[i], run_experiment(cells[i]));
  }
}

TEST(CheckedRunner, TransientFailureSucceedsOnRetry) {
  auto cells = small_matrix(2);
  std::atomic<int> attempts{0};
  const WatchedCellRunner flaky = [&](const ExperimentConfig& cfg,
                                      CellWatchdog* wd) {
    if (cfg.seed == 42 && cfg.kind == methods::ProbeKind::kXhrGet &&
        attempts.fetch_add(1) == 0) {
      throw std::runtime_error("transient");
    }
    return run_experiment_watched(cfg, wd);
  };

  MatrixOptions options;
  options.jobs = 1;
  options.watchdog.max_attempts = 3;
  options.watchdog.backoff_base = std::chrono::milliseconds{1};
  const MatrixResult result = run_matrix_checked(cells, options, flaky);

  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.retries, 1u);
  EXPECT_TRUE(result.quarantined.empty());
  // The retried cell converged to the same deterministic series.
  expect_identical(result.series[0], run_experiment(cells[0]));
}

TEST(CheckedRunner, WallClockWatchdogCancelsHungCell) {
  auto cells = small_matrix(3);
  cells[0].seed = 0xDEAD;  // the hung cell

  // A fake cell that spins forever until the watchdog trips — the shape of
  // a real hang (infinite event loop) without burning minutes of CI time.
  const WatchedCellRunner hung = [](const ExperimentConfig& cfg,
                                    CellWatchdog* wd) {
    if (cfg.seed == 0xDEAD) {
      while (!wd->wall_expired.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
      }
      throw CellAbortError{"watchdog.wall_clock", "wall clock tripped"};
    }
    return run_experiment_watched(cfg, wd);
  };

  MatrixOptions options;
  options.jobs = 2;
  options.watchdog.wall_limit = std::chrono::milliseconds{50};
  options.watchdog.max_attempts = 2;
  options.watchdog.backoff_base = std::chrono::milliseconds{1};
  const MatrixResult result = run_matrix_checked(cells, options, hung);

  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].cell, 0u);
  EXPECT_EQ(result.quarantined[0].where, "watchdog.wall_clock");
  EXPECT_EQ(result.quarantined[0].attempts, 2);
  EXPECT_EQ(result.series[0].failures, cells[0].runs);
  EXPECT_NE(result.series[0].first_error.find("watchdog.wall_clock"),
            std::string::npos);
  // The healthy cells still completed normally.
  expect_identical(result.series[1], run_experiment(cells[1]));
  expect_identical(result.series[2], run_experiment(cells[2]));
}

TEST(CheckedRunner, EventBudgetTripsDeterministically) {
  // A real experiment against a tiny simulated-event budget: the scheduler
  // seam (Scheduler::RunLimits) halts the cell and Experiment::run throws a
  // structured CellAbortError naming the budget guard.
  auto cells = small_matrix(1);
  MatrixOptions options;
  options.jobs = 1;
  options.watchdog.event_budget = 50;  // far below one repetition's events
  options.watchdog.max_attempts = 2;
  options.watchdog.backoff_base = std::chrono::milliseconds{1};
  const MatrixResult result = run_matrix_checked(cells, options);

  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0].where, "watchdog.event_budget");
  EXPECT_EQ(result.quarantined[0].attempts, 2);
  EXPECT_NE(result.quarantined[0].what.find("event_budget"),
            std::string::npos);

  // A generous budget lets the same cell complete, identical to unwatched.
  MatrixOptions roomy;
  roomy.jobs = 1;
  roomy.watchdog.event_budget = 50'000'000;
  const MatrixResult ok = run_matrix_checked(cells, roomy);
  EXPECT_TRUE(ok.ok());
  expect_identical(ok.series[0], run_experiment(cells[0]));
}

TEST(CheckedRunner, CancellationDrainsGracefully) {
  auto cells = small_matrix(8);
  std::atomic<bool> cancel{false};
  std::atomic<int> started{0};

  MatrixOptions options;
  options.jobs = 2;
  options.cancel = &cancel;
  const WatchedCellRunner counting = [&](const ExperimentConfig& cfg,
                                         CellWatchdog* wd) {
    ++started;
    return run_experiment_watched(cfg, wd);
  };
  options.progress = [&](std::size_t done, std::size_t) {
    if (done >= 2) cancel.store(true, std::memory_order_release);
  };
  const MatrixResult result = run_matrix_checked(cells, options, counting);

  EXPECT_TRUE(result.cancelled);
  EXPECT_LT(result.cells_run, cells.size());
  EXPECT_EQ(result.cells_run, static_cast<std::size_t>(started.load()));
  // Cells that did run are complete, not torn.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (result.series[i].samples.empty()) continue;
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(result.series[i], run_experiment(cells[i]));
  }
}

TEST(CheckedRunner, ThrowingProgressDoesNotWedgeTheRun) {
  auto cells = small_matrix(4);

  // Serial legacy path.
  std::size_t calls = 0;
  const auto serial = run_matrix(cells, 1, [&](std::size_t, std::size_t) {
    ++calls;
    throw std::runtime_error("progress boom");
  });
  EXPECT_EQ(calls, cells.size());  // every cell still reported
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(serial[i], run_experiment(cells[i]));
  }

  // Parallel legacy path.
  std::atomic<std::size_t> pcalls{0};
  const auto parallel = run_matrix(cells, 2, [&](std::size_t, std::size_t) {
    ++pcalls;
    throw std::runtime_error("progress boom");
  });
  EXPECT_EQ(pcalls.load(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(parallel[i], serial[i]);
  }

  // Checked engine: throws are counted and surfaced in the result.
  MatrixOptions options;
  options.jobs = 2;
  options.progress = [](std::size_t, std::size_t) {
    throw std::runtime_error("progress boom");
  };
  const MatrixResult checked = run_matrix_checked(cells, options);
  EXPECT_EQ(checked.progress_errors, cells.size());
  EXPECT_EQ(checked.progress_error, "progress boom");
  EXPECT_TRUE(checked.quarantined.empty());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(checked.series[i], serial[i]);
  }
}

TEST(ThreadPoolResilience, CancelDropsQueuedTasksAndStaysUsable) {
  ThreadPool pool{1};
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds{1});
    ++ran;
  });
  for (int i = 0; i < 10; ++i) pool.submit([&] { ++ran; });

  // One task is (or is about to be) in flight; cancel drops the queued rest.
  std::size_t dropped = 0;
  while (dropped == 0 && ran.load() == 0) {
    dropped = pool.cancel();
    if (dropped == 0) std::this_thread::sleep_for(
        std::chrono::milliseconds{1});
  }
  release.store(true);
  pool.wait_idle();
  EXPECT_GE(dropped, 1u);
  EXPECT_EQ(static_cast<std::size_t>(ran.load()), 11u - dropped);
  EXPECT_TRUE(pool.failures().empty());

  // Still serves new work after the cancel.
  pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(static_cast<std::size_t>(ran.load()), 12u - dropped);
}

}  // namespace
}  // namespace bnm::core
