#include <gtest/gtest.h>

#include <vector>

#include "net/netem.h"
#include "net/switch_fabric.h"
#include "sim/simulation.h"

namespace bnm::net {
namespace {

class Collector : public PacketSink {
 public:
  explicit Collector(sim::Simulation& sim) : sim_{sim} {}
  void handle_packet(Packet p) override {
    packets.push_back(p);
    times.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<sim::TimePoint> times;

 private:
  sim::Simulation& sim_;
};

Packet packet_to(IpAddress dst, std::uint64_t id = 0) {
  Packet p;
  p.id = id;
  p.dst = {dst, 80};
  p.payload = to_bytes("x");
  return p;
}

TEST(SwitchFabric, ForwardsByDestination) {
  sim::Simulation sim{1};
  Link::Config lc;
  Link l1{sim, lc}, l2{sim, lc};
  Collector c1{sim}, c2{sim};
  l1.attach(Link::Side::kA, &c1);
  l2.attach(Link::Side::kB, &c2);

  SwitchFabric sw{sim};
  const auto p1 = sw.add_port(&l1, Link::Side::kB);
  const auto p2 = sw.add_port(&l2, Link::Side::kA);
  sw.learn(IpAddress{10, 0, 0, 1}, p1);
  sw.learn(IpAddress{10, 0, 0, 2}, p2);

  sw.handle_packet(packet_to(IpAddress{10, 0, 0, 2}));
  sim.scheduler().run();
  EXPECT_TRUE(c1.packets.empty());
  ASSERT_EQ(c2.packets.size(), 1u);
  EXPECT_EQ(sw.forwarded(), 1u);
}

TEST(SwitchFabric, DropsUnknownDestination) {
  sim::Simulation sim{2};
  SwitchFabric sw{sim};
  sw.handle_packet(packet_to(IpAddress{9, 9, 9, 9}));
  sim.scheduler().run();
  EXPECT_EQ(sw.dropped_no_route(), 1u);
  EXPECT_EQ(sw.forwarded(), 0u);
}

TEST(SwitchFabric, ForwardingLatencyApplied) {
  sim::Simulation sim{3};
  Link::Config lc;
  lc.propagation = sim::Duration::zero();
  Link l{sim, lc};
  Collector c{sim};
  l.attach(Link::Side::kB, &c);

  SwitchFabric::Config sc;
  sc.forwarding_latency = sim::Duration::micros(50);
  SwitchFabric sw{sim, sc};
  const auto port = sw.add_port(&l, Link::Side::kA);
  sw.learn(IpAddress{10, 0, 0, 2}, port);

  sw.handle_packet(packet_to(IpAddress{10, 0, 0, 2}));
  sim.scheduler().run();
  ASSERT_EQ(c.packets.size(), 1u);
  EXPECT_GE(c.times[0] - sim::TimePoint::epoch(), sim::Duration::micros(50));
}

TEST(DelayEmulator, ConstantDelayShiftsRelease) {
  sim::Simulation sim{4};
  DelayEmulator::Config cfg;
  cfg.delay = sim::Duration::millis(50);
  DelayEmulator netem{sim, cfg};
  std::vector<sim::TimePoint> releases;
  netem.set_output([&](Packet) { releases.push_back(sim.now()); });

  netem.enqueue(packet_to(IpAddress{1, 1, 1, 1}));
  sim.scheduler().run();
  ASSERT_EQ(releases.size(), 1u);
  EXPECT_EQ(releases[0] - sim::TimePoint::epoch(), sim::Duration::millis(50));
}

TEST(DelayEmulator, JitterWithoutReorderKeepsOrder) {
  sim::Simulation sim{5};
  DelayEmulator::Config cfg;
  cfg.delay = sim::Duration::millis(10);
  cfg.jitter = sim::Duration::millis(20);
  cfg.allow_reorder = false;
  DelayEmulator netem{sim, cfg};
  std::vector<std::uint64_t> order;
  netem.set_output([&](Packet p) { order.push_back(p.id); });

  for (std::uint64_t i = 0; i < 50; ++i) {
    netem.enqueue(packet_to(IpAddress{1, 1, 1, 1}, i));
  }
  sim.scheduler().run();
  ASSERT_EQ(order.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(DelayEmulator, AllowReorderCanReorder) {
  sim::Simulation sim{6};
  DelayEmulator::Config cfg;
  cfg.delay = sim::Duration::millis(1);
  cfg.jitter = sim::Duration::millis(50);
  cfg.allow_reorder = true;
  DelayEmulator netem{sim, cfg};
  std::vector<std::uint64_t> order;
  netem.set_output([&](Packet p) { order.push_back(p.id); });

  for (std::uint64_t i = 0; i < 100; ++i) {
    netem.enqueue(packet_to(IpAddress{1, 1, 1, 1}, i));
  }
  sim.scheduler().run();
  ASSERT_EQ(order.size(), 100u);
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(DelayEmulator, SetDelayTakesEffect) {
  sim::Simulation sim{7};
  DelayEmulator::Config cfg;
  cfg.delay = sim::Duration::millis(5);
  DelayEmulator netem{sim, cfg};
  std::vector<sim::TimePoint> releases;
  netem.set_output([&](Packet) { releases.push_back(sim.now()); });
  netem.enqueue(packet_to(IpAddress{1, 1, 1, 1}));
  sim.scheduler().run();
  netem.set_delay(sim::Duration::millis(20));
  const sim::TimePoint before = sim.now();
  netem.enqueue(packet_to(IpAddress{1, 1, 1, 1}));
  sim.scheduler().run();
  ASSERT_EQ(releases.size(), 2u);
  EXPECT_EQ(releases[1] - before, sim::Duration::millis(20));
}

}  // namespace
}  // namespace bnm::net
