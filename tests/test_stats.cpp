#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.h"
#include "stats/descriptive.h"

namespace bnm::stats {
namespace {

TEST(Descriptive, MeanAndVariance) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  // Sample variance with n-1: sum of squared devs = 32, / 7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> xs{3, -1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 5.0);
}

TEST(Descriptive, QuantileType7KnownValues) {
  // R: quantile(c(1,2,3,4), type=7) -> 25% = 1.75, 50% = 2.5, 75% = 3.25
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 3.25);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
}

TEST(Descriptive, QuantileUnsortedInput) {
  const std::vector<double> xs{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 10}), 2.5);
}

TEST(Descriptive, Mad) {
  // median = 3; |dev| = {2,1,0,1,2} -> median 1.
  EXPECT_DOUBLE_EQ(mad({1, 2, 3, 4, 5}), 1.0);
  EXPECT_DOUBLE_EQ(mad({}), 0.0);
}

TEST(Descriptive, Iqr) {
  EXPECT_DOUBLE_EQ(iqr({1, 2, 3, 4}), 1.5);
  EXPECT_DOUBLE_EQ(iqr({}), 0.0);
}

TEST(Descriptive, SummaryConsistent) {
  const std::vector<double> xs{5, 1, 4, 2, 3};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Descriptive, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
}

// Empty input must return the NaN sentinel in every build mode — the old
// assert-only guards compiled out in Release and read past the end.
TEST(Descriptive, EmptyInputsReturnNaN) {
  std::vector<double> empty;
  EXPECT_TRUE(std::isnan(min(empty)));
  EXPECT_TRUE(std::isnan(max(empty)));
  EXPECT_TRUE(std::isnan(quantile(empty, 0.5)));
  EXPECT_TRUE(std::isnan(quantile_sorted(empty, 0.5)));
  EXPECT_TRUE(std::isnan(quantile_select(empty, 0.5)));
  double q1 = 0, med = 0, q3 = 0;
  quartiles_select(empty, &q1, &med, &q3);
  EXPECT_TRUE(std::isnan(q1));
  EXPECT_TRUE(std::isnan(med));
  EXPECT_TRUE(std::isnan(q3));
}

TEST(Descriptive, QuantileSelectMatchesSorted) {
  sim::Rng rng{99};
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) xs.push_back(rng.lognormal_med(10, 0.8));
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    std::vector<double> scratch = xs;  // select partially reorders
    EXPECT_DOUBLE_EQ(quantile_select(scratch, q), quantile_sorted(sorted, q))
        << "q=" << q;
  }
}

TEST(Descriptive, SummarizeSelectMatchesSortBased) {
  sim::Rng rng{7};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(50, 12));
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> scratch = xs;
  const Summary s = summarize_select(scratch);
  EXPECT_EQ(s.n, xs.size());
  EXPECT_DOUBLE_EQ(s.min, sorted.front());
  EXPECT_DOUBLE_EQ(s.max, sorted.back());
  EXPECT_DOUBLE_EQ(s.q1, quantile_sorted(sorted, 0.25));
  EXPECT_DOUBLE_EQ(s.median, quantile_sorted(sorted, 0.5));
  EXPECT_DOUBLE_EQ(s.q3, quantile_sorted(sorted, 0.75));
  EXPECT_NEAR(s.mean, mean(xs), 1e-9);
  EXPECT_NEAR(s.stddev, stddev(xs), 1e-9);
}

// Property: for any sample, min <= q1 <= median <= q3 <= max, and the
// quantile function is monotone in q.
class QuantileProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuantileProperty, OrderAndMonotonicity) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0, 10));
  const Summary s = summarize(xs);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);

  double prev = s.min;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = quantile(xs, q);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace bnm::stats
